//! Decoded instruction forms and their semantic metadata.

use crate::reg::Reg;
use std::fmt;

/// Register-register ALU operations (single-cycle, checked by the adder /
/// RSSE sub-checkers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left by `rb & 31`.
    Sll,
    /// Logical shift right by `rb & 31`.
    Srl,
    /// Arithmetic shift right by `rb & 31`.
    Sra,
}

/// Multi-cycle multiplier/divider operations (checked by the mod-M
/// residue sub-checker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    /// Signed 32×32→32 multiply (low word architecturally visible; the
    /// upper word exists in the datapath but is only reachable via
    /// multiply-accumulate, which this core does not implement — the
    /// paper's "masked" error class).
    Mul,
    /// Unsigned multiply.
    Mulu,
    /// Signed divide (quotient). Division by zero yields all-ones, as in
    /// typical embedded cores, rather than trapping.
    Div,
    /// Unsigned divide.
    Divu,
}

/// Immediate ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// `rd = ra + sext(imm16)`.
    Addi,
    /// `rd = ra & zext(imm16)`.
    Andi,
    /// `rd = ra | zext(imm16)`.
    Ori,
    /// `rd = ra ^ sext(imm16)`.
    Xori,
}

/// Shift-by-immediate operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Logical shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
}

/// Sign-/zero-extension unary ops (checked by the RSSE sub-checker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtKind {
    /// Sign-extend low byte.
    Bs,
    /// Zero-extend low byte.
    Bz,
    /// Sign-extend low half-word.
    Hs,
    /// Zero-extend low half-word.
    Hz,
}

/// Compare conditions for the `sf*` flag-setting instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned greater-than.
    Gtu,
    /// Unsigned greater-or-equal.
    Geu,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned less-or-equal.
    Leu,
    /// Signed greater-than.
    Gts,
    /// Signed greater-or-equal.
    Ges,
    /// Signed less-than.
    Lts,
    /// Signed less-or-equal.
    Les,
}

impl Cond {
    /// Evaluates the condition on two operand values.
    pub fn eval(self, a: u32, b: u32) -> bool {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Gtu => a > b,
            Cond::Geu => a >= b,
            Cond::Ltu => a < b,
            Cond::Leu => a <= b,
            Cond::Gts => sa > sb,
            Cond::Ges => sa >= sb,
            Cond::Lts => sa < sb,
            Cond::Les => sa <= sb,
        }
    }

    /// The 5-bit field encoding of the condition.
    pub fn code(self) -> u32 {
        match self {
            Cond::Eq => 0x0,
            Cond::Ne => 0x1,
            Cond::Gtu => 0x2,
            Cond::Geu => 0x3,
            Cond::Ltu => 0x4,
            Cond::Leu => 0x5,
            Cond::Gts => 0xA,
            Cond::Ges => 0xB,
            Cond::Lts => 0xC,
            Cond::Les => 0xD,
        }
    }

    /// Decodes a 5-bit condition field. Unknown codes yield `None`.
    pub fn from_code(code: u32) -> Option<Self> {
        Some(match code {
            0x0 => Cond::Eq,
            0x1 => Cond::Ne,
            0x2 => Cond::Gtu,
            0x3 => Cond::Geu,
            0x4 => Cond::Ltu,
            0x5 => Cond::Leu,
            0xA => Cond::Gts,
            0xB => Cond::Ges,
            0xC => Cond::Lts,
            0xD => Cond::Les,
            _ => return None,
        })
    }
}

/// Memory access width for loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSize {
    /// 8-bit.
    Byte,
    /// 16-bit.
    Half,
    /// 32-bit.
    Word,
}

impl MemSize {
    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemSize::Byte => 1,
            MemSize::Half => 2,
            MemSize::Word => 4,
        }
    }
}

/// A decoded instruction.
///
/// Unknown encodings decode to [`Instr::Nop`]-like behaviour at the machine
/// level (see `argus-machine`); the decoder itself reports them distinctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Register-register ALU operation: `rd = ra <op> rb`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        ra: Reg,
        /// Second source.
        rb: Reg,
    },
    /// Sign/zero extension: `rd = ext(ra)`.
    Ext {
        /// Extension kind.
        kind: ExtKind,
        /// Destination.
        rd: Reg,
        /// Source.
        ra: Reg,
    },
    /// Multi-cycle multiply/divide: `rd = ra <op> rb`.
    MulDiv {
        /// Operation.
        op: MulDivOp,
        /// Destination.
        rd: Reg,
        /// First source.
        ra: Reg,
        /// Second source.
        rb: Reg,
    },
    /// ALU with 16-bit immediate.
    AluImm {
        /// Operation (determines immediate extension).
        op: AluImmOp,
        /// Destination.
        rd: Reg,
        /// Source.
        ra: Reg,
        /// Raw 16-bit immediate.
        imm: u16,
    },
    /// Shift by a 5-bit immediate.
    ShiftImm {
        /// Operation.
        op: ShiftOp,
        /// Destination.
        rd: Reg,
        /// Source.
        ra: Reg,
        /// Shift amount, `0..32`.
        sh: u8,
    },
    /// `rd = imm << 16`.
    Movhi {
        /// Destination.
        rd: Reg,
        /// High half-word.
        imm: u16,
    },
    /// Flag-setting compare: `F = ra <cond> rb`.
    SetFlag {
        /// Condition.
        cond: Cond,
        /// First source.
        ra: Reg,
        /// Second source.
        rb: Reg,
    },
    /// Flag-setting compare with sign-extended immediate.
    SetFlagImm {
        /// Condition.
        cond: Cond,
        /// Source.
        ra: Reg,
        /// Raw 16-bit immediate (sign-extended).
        imm: u16,
    },
    /// Conditional branch on the flag (`bf` when `taken_if`, else `bnf`),
    /// PC-relative word offset, one delay slot.
    Branch {
        /// Branch taken when flag equals this.
        taken_if: bool,
        /// Signed word offset from the branch instruction.
        off: i32,
    },
    /// Unconditional PC-relative jump (`j`/`jal`), one delay slot.
    Jump {
        /// Writes the return address (+ link DCS) to `r9` when true.
        link: bool,
        /// Signed word offset from the jump instruction.
        off: i32,
    },
    /// Register-indirect jump (`jr`/`jalr`), one delay slot. The target
    /// register carries the DCS of the destination block in its top 5 bits.
    JumpReg {
        /// Writes the return address to `r9` when true.
        link: bool,
        /// Register holding the packed target.
        rb: Reg,
    },
    /// Memory load: `rd = mem[ra + sext(off)]`.
    Load {
        /// Access width.
        size: MemSize,
        /// Sign-extend the loaded value (ignored for words).
        signed: bool,
        /// Destination.
        rd: Reg,
        /// Base address register.
        ra: Reg,
        /// Signed byte offset.
        off: i16,
    },
    /// Memory store: `mem[ra + sext(off)] = rb`.
    Store {
        /// Access width.
        size: MemSize,
        /// Base address register.
        ra: Reg,
        /// Data register.
        rb: Reg,
        /// Signed byte offset.
        off: i16,
    },
    /// No operation.
    Nop,
    /// Signature instruction: a NOP whose payload carries up to three 5-bit
    /// DCS slots that did not fit in the block's unused bits (§3.2.2).
    ///
    /// When `eob` is set the instruction also marks the end of a basic
    /// block that falls through into its successor (Figure 2 shows such a
    /// marker at the end of BB3); the runtime checker performs its DCS
    /// comparison there.
    Sig {
        /// Number of meaningful 5-bit slots, `0..=3`.
        nslots: u8,
        /// End-of-block marker for fallthrough blocks.
        eob: bool,
        /// Packed payload, slot 0 in bits `[4:0]`.
        payload: u16,
    },
    /// Stops the simulation (stands in for a syscall/exit; the modeled core
    /// has no I/O or exceptions, matching the paper's scope).
    Halt,
}

/// The source-register list of one instruction: at most two registers,
/// stored inline (no allocation). Dereferences to `[Reg]`, so slice
/// methods (`len`, `iter`, indexing) apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SrcRegs {
    regs: [Reg; 2],
    len: u8,
}

impl SrcRegs {
    /// No source registers.
    pub fn none() -> Self {
        Self { regs: [Reg::ZERO; 2], len: 0 }
    }

    /// One source register.
    pub fn one(ra: Reg) -> Self {
        Self { regs: [ra, Reg::ZERO], len: 1 }
    }

    /// Two source registers, in operand order.
    pub fn two(ra: Reg, rb: Reg) -> Self {
        Self { regs: [ra, rb], len: 2 }
    }

    /// The registers as a slice, in operand order.
    pub fn as_slice(&self) -> &[Reg] {
        &self.regs[..self.len as usize]
    }
}

impl std::ops::Deref for SrcRegs {
    type Target = [Reg];
    fn deref(&self) -> &[Reg] {
        self.as_slice()
    }
}

impl IntoIterator for SrcRegs {
    type Item = Reg;
    type IntoIter = std::iter::Take<std::array::IntoIter<Reg, 2>>;
    fn into_iter(self) -> Self::IntoIter {
        self.regs.into_iter().take(self.len as usize)
    }
}

impl<'a> IntoIterator for &'a SrcRegs {
    type Item = &'a Reg;
    type IntoIter = std::slice::Iter<'a, Reg>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl Instr {
    /// True for control-transfer instructions (all have one delay slot).
    pub fn is_cti(&self) -> bool {
        matches!(self, Instr::Branch { .. } | Instr::Jump { .. } | Instr::JumpReg { .. })
    }

    /// The register written by this instruction, if any. `r0` writes are
    /// architecturally discarded but still reported here.
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Instr::Alu { rd, .. }
            | Instr::Ext { rd, .. }
            | Instr::MulDiv { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::ShiftImm { rd, .. }
            | Instr::Movhi { rd, .. }
            | Instr::Load { rd, .. } => Some(rd),
            Instr::Jump { link: true, .. } | Instr::JumpReg { link: true, .. } => Some(Reg::LR),
            _ => None,
        }
    }

    /// The registers read by this instruction, in operand order. No
    /// instruction reads more than two, so the list is returned inline
    /// (the step loop calls this per retired instruction).
    pub fn sources(&self) -> SrcRegs {
        match *self {
            Instr::Alu { ra, rb, .. }
            | Instr::MulDiv { ra, rb, .. }
            | Instr::SetFlag { ra, rb, .. } => SrcRegs::two(ra, rb),
            Instr::Ext { ra, .. }
            | Instr::AluImm { ra, .. }
            | Instr::ShiftImm { ra, .. }
            | Instr::SetFlagImm { ra, .. }
            | Instr::Load { ra, .. } => SrcRegs::one(ra),
            Instr::Store { ra, rb, .. } => SrcRegs::two(ra, rb),
            Instr::JumpReg { rb, .. } => SrcRegs::one(rb),
            _ => SrcRegs::none(),
        }
    }

    /// True if the instruction reads the compare flag.
    pub fn reads_flag(&self) -> bool {
        matches!(self, Instr::Branch { .. })
    }

    /// True if the instruction writes the compare flag.
    pub fn writes_flag(&self) -> bool {
        matches!(self, Instr::SetFlag { .. } | Instr::SetFlagImm { .. })
    }

    /// True for loads and stores.
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }

    /// True if the instruction uses the multi-cycle multiplier/divider.
    pub fn is_muldiv(&self) -> bool {
        matches!(self, Instr::MulDiv { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, rd, ra, rb } => {
                let m = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::And => "and",
                    AluOp::Or => "or",
                    AluOp::Xor => "xor",
                    AluOp::Sll => "sll",
                    AluOp::Srl => "srl",
                    AluOp::Sra => "sra",
                };
                write!(f, "{m} {rd}, {ra}, {rb}")
            }
            Instr::Ext { kind, rd, ra } => {
                let m = match kind {
                    ExtKind::Bs => "extbs",
                    ExtKind::Bz => "extbz",
                    ExtKind::Hs => "exths",
                    ExtKind::Hz => "exthz",
                };
                write!(f, "{m} {rd}, {ra}")
            }
            Instr::MulDiv { op, rd, ra, rb } => {
                let m = match op {
                    MulDivOp::Mul => "mul",
                    MulDivOp::Mulu => "mulu",
                    MulDivOp::Div => "div",
                    MulDivOp::Divu => "divu",
                };
                write!(f, "{m} {rd}, {ra}, {rb}")
            }
            Instr::AluImm { op, rd, ra, imm } => {
                let m = match op {
                    AluImmOp::Addi => "addi",
                    AluImmOp::Andi => "andi",
                    AluImmOp::Ori => "ori",
                    AluImmOp::Xori => "xori",
                };
                write!(f, "{m} {rd}, {ra}, {:#x}", imm)
            }
            Instr::ShiftImm { op, rd, ra, sh } => {
                let m = match op {
                    ShiftOp::Sll => "slli",
                    ShiftOp::Srl => "srli",
                    ShiftOp::Sra => "srai",
                };
                write!(f, "{m} {rd}, {ra}, {sh}")
            }
            Instr::Movhi { rd, imm } => write!(f, "movhi {rd}, {imm:#x}"),
            Instr::SetFlag { cond, ra, rb } => write!(f, "sf{} {ra}, {rb}", cond_name(cond)),
            Instr::SetFlagImm { cond, ra, imm } => {
                write!(f, "sf{}i {ra}, {imm:#x}", cond_name(cond))
            }
            Instr::Branch { taken_if: true, off } => write!(f, "bf {off:+}"),
            Instr::Branch { taken_if: false, off } => write!(f, "bnf {off:+}"),
            Instr::Jump { link: false, off } => write!(f, "j {off:+}"),
            Instr::Jump { link: true, off } => write!(f, "jal {off:+}"),
            Instr::JumpReg { link: false, rb } => write!(f, "jr {rb}"),
            Instr::JumpReg { link: true, rb } => write!(f, "jalr {rb}"),
            Instr::Load { size, signed, rd, ra, off } => {
                let m = match (size, signed) {
                    (MemSize::Word, _) => "lw",
                    (MemSize::Half, true) => "lh",
                    (MemSize::Half, false) => "lhu",
                    (MemSize::Byte, true) => "lb",
                    (MemSize::Byte, false) => "lbu",
                };
                write!(f, "{m} {rd}, {off}({ra})")
            }
            Instr::Store { size, ra, rb, off } => {
                let m = match size {
                    MemSize::Word => "sw",
                    MemSize::Half => "sh",
                    MemSize::Byte => "sb",
                };
                write!(f, "{m} {rb}, {off}({ra})")
            }
            Instr::Nop => write!(f, "nop"),
            Instr::Sig { nslots, eob, payload } => {
                write!(f, "sig n={nslots}{} {payload:#x}", if eob { " eob" } else { "" })
            }
            Instr::Halt => write!(f, "halt"),
        }
    }
}

fn cond_name(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "eq",
        Cond::Ne => "ne",
        Cond::Gtu => "gtu",
        Cond::Geu => "geu",
        Cond::Ltu => "ltu",
        Cond::Leu => "leu",
        Cond::Gts => "gts",
        Cond::Ges => "ges",
        Cond::Lts => "lts",
        Cond::Les => "les",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::r;

    #[test]
    fn cond_eval_signed_vs_unsigned() {
        assert!(Cond::Gtu.eval(0xFFFF_FFFF, 1));
        assert!(!Cond::Gts.eval(0xFFFF_FFFF, 1)); // -1 > 1 is false
        assert!(Cond::Lts.eval(0x8000_0000, 0)); // i32::MIN < 0
        assert!(!Cond::Ltu.eval(0x8000_0000, 0));
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Les.eval(5, 5));
        assert!(Cond::Geu.eval(5, 5));
    }

    #[test]
    fn cond_code_roundtrip() {
        for c in [
            Cond::Eq,
            Cond::Ne,
            Cond::Gtu,
            Cond::Geu,
            Cond::Ltu,
            Cond::Leu,
            Cond::Gts,
            Cond::Ges,
            Cond::Lts,
            Cond::Les,
        ] {
            assert_eq!(Cond::from_code(c.code()), Some(c));
        }
        assert_eq!(Cond::from_code(0x1F), None);
    }

    #[test]
    fn dest_and_sources() {
        let i = Instr::Alu { op: AluOp::Add, rd: r(1), ra: r(2), rb: r(3) };
        assert_eq!(i.dest(), Some(r(1)));
        assert_eq!(i.sources().as_slice(), [r(2), r(3)]);

        let s = Instr::Store { size: MemSize::Word, ra: r(4), rb: r(5), off: -8 };
        assert_eq!(s.dest(), None);
        assert_eq!(s.sources().as_slice(), [r(4), r(5)]);
        assert_eq!(s.sources().into_iter().collect::<Vec<_>>(), vec![r(4), r(5)]);

        let jal = Instr::Jump { link: true, off: 4 };
        assert_eq!(jal.dest(), Some(Reg::LR));
        assert!(jal.sources().is_empty());
    }

    #[test]
    fn category_predicates() {
        assert!(Instr::Branch { taken_if: true, off: 1 }.is_cti());
        assert!(Instr::JumpReg { link: false, rb: r(9) }.is_cti());
        assert!(!Instr::Nop.is_cti());
        assert!(Instr::Branch { taken_if: false, off: 0 }.reads_flag());
        assert!(Instr::SetFlag { cond: Cond::Eq, ra: r(1), rb: r(2) }.writes_flag());
        assert!(
            Instr::Load { size: MemSize::Byte, signed: true, rd: r(1), ra: r(2), off: 0 }.is_mem()
        );
        assert!(Instr::MulDiv { op: MulDivOp::Div, rd: r(1), ra: r(2), rb: r(3) }.is_muldiv());
    }

    #[test]
    fn mem_size_bytes() {
        assert_eq!(MemSize::Byte.bytes(), 1);
        assert_eq!(MemSize::Half.bytes(), 2);
        assert_eq!(MemSize::Word.bytes(), 4);
    }

    #[test]
    fn display_smoke() {
        let i = Instr::Alu { op: AluOp::Xor, rd: r(8), ra: r(6), rb: r(9) };
        assert_eq!(i.to_string(), "xor r8, r6, r9");
        assert_eq!(Instr::Nop.to_string(), "nop");
        assert_eq!(
            Instr::Load { size: MemSize::Half, signed: false, rd: r(3), ra: r(1), off: 12 }
                .to_string(),
            "lhu r3, 12(r1)"
        );
    }
}
