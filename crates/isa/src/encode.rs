//! Binary instruction encoding, the unused-bit model, and operation tokens.
//!
//! The 6-bit primary opcode lives in bits `[31:26]`. Formats follow the
//! OpenRISC style: register fields are 5 bits, immediates 16 bits (stores
//! split theirs around the `rb` field), jumps carry a signed 26-bit word
//! offset. Many formats leave bits unused; [`unused_bit_positions`] exposes
//! exactly which, and the Argus compiler packs DCS slots into them.

use crate::instr::{AluImmOp, AluOp, ExtKind, Instr, MemSize, MulDivOp, ShiftOp};
use crate::reg::Reg;
use argus_sim::bits::{field, insert};
use argus_sim::bitstream::PackedBits;

/// Primary opcodes.
pub mod opc {
    /// `j` — unconditional jump.
    pub const J: u32 = 0x00;
    /// `jal` — jump and link.
    pub const JAL: u32 = 0x01;
    /// `bnf` — branch if flag clear.
    pub const BNF: u32 = 0x03;
    /// `bf` — branch if flag set.
    pub const BF: u32 = 0x04;
    /// `nop`.
    pub const NOP: u32 = 0x05;
    /// `movhi`.
    pub const MOVHI: u32 = 0x06;
    /// `halt` (simulation exit).
    pub const HALT: u32 = 0x08;
    /// Signature instruction (a NOP carrying DCS slots).
    pub const SIG: u32 = 0x0E;
    /// `jr` — register-indirect jump.
    pub const JR: u32 = 0x11;
    /// `jalr` — register-indirect jump and link.
    pub const JALR: u32 = 0x12;
    /// `lw`.
    pub const LW: u32 = 0x21;
    /// `lbu`.
    pub const LBU: u32 = 0x23;
    /// `lb`.
    pub const LB: u32 = 0x24;
    /// `lhu`.
    pub const LHU: u32 = 0x25;
    /// `lh`.
    pub const LH: u32 = 0x26;
    /// `addi`.
    pub const ADDI: u32 = 0x27;
    /// `andi`.
    pub const ANDI: u32 = 0x29;
    /// `ori`.
    pub const ORI: u32 = 0x2A;
    /// `xori`.
    pub const XORI: u32 = 0x2B;
    /// Shift-by-immediate group.
    pub const SHIFTI: u32 = 0x2E;
    /// Flag-setting compare with immediate.
    pub const SFI: u32 = 0x2F;
    /// `sw`.
    pub const SW: u32 = 0x35;
    /// `sb`.
    pub const SB: u32 = 0x36;
    /// `sh`.
    pub const SH: u32 = 0x37;
    /// Register-register ALU/mul/div/ext group.
    pub const RTYPE: u32 = 0x38;
    /// Flag-setting compare, register-register.
    pub const SF: u32 = 0x39;
}

/// R-type sub-opcodes (bits `[3:0]`).
pub mod sub {
    /// `add`.
    pub const ADD: u32 = 0;
    /// `sub`.
    pub const SUB: u32 = 1;
    /// `and`.
    pub const AND: u32 = 2;
    /// `or`.
    pub const OR: u32 = 3;
    /// `xor`.
    pub const XOR: u32 = 4;
    /// `sll`.
    pub const SLL: u32 = 5;
    /// `srl`.
    pub const SRL: u32 = 6;
    /// `sra`.
    pub const SRA: u32 = 7;
    /// `mul`.
    pub const MUL: u32 = 8;
    /// `mulu`.
    pub const MULU: u32 = 9;
    /// `div`.
    pub const DIV: u32 = 10;
    /// `divu`.
    pub const DIVU: u32 = 11;
    /// `extbs`.
    pub const EXTBS: u32 = 12;
    /// `extbz`.
    pub const EXTBZ: u32 = 13;
    /// `exths`.
    pub const EXTHS: u32 = 14;
    /// `exthz`.
    pub const EXTHZ: u32 = 15;
}

/// Maximum number of 5-bit DCS slots a single Signature instruction carries.
pub const SIG_MAX_SLOTS: u8 = 3;

fn enc_off26(word: u32, off: i32) -> u32 {
    assert!((-(1 << 25)..(1 << 25)).contains(&off), "jump/branch offset {off} out of 26-bit range");
    insert(word, 0, 26, off as u32)
}

/// Encodes a decoded instruction into its canonical 32-bit word, with all
/// unused bits cleared. The DCS embedder later fills those bits; the
/// decoder ignores them.
///
/// # Panics
///
/// Panics if a jump/branch offset exceeds its 26-bit field or a shift
/// amount exceeds 31.
pub fn encode(i: &Instr) -> u32 {
    let op = |o: u32| o << 26;
    match *i {
        Instr::Alu { op: a, rd, ra, rb } => {
            let subop = match a {
                AluOp::Add => sub::ADD,
                AluOp::Sub => sub::SUB,
                AluOp::And => sub::AND,
                AluOp::Or => sub::OR,
                AluOp::Xor => sub::XOR,
                AluOp::Sll => sub::SLL,
                AluOp::Srl => sub::SRL,
                AluOp::Sra => sub::SRA,
            };
            rtype(rd, ra, rb, subop)
        }
        Instr::MulDiv { op: m, rd, ra, rb } => {
            let subop = match m {
                MulDivOp::Mul => sub::MUL,
                MulDivOp::Mulu => sub::MULU,
                MulDivOp::Div => sub::DIV,
                MulDivOp::Divu => sub::DIVU,
            };
            rtype(rd, ra, rb, subop)
        }
        Instr::Ext { kind, rd, ra } => {
            let subop = match kind {
                ExtKind::Bs => sub::EXTBS,
                ExtKind::Bz => sub::EXTBZ,
                ExtKind::Hs => sub::EXTHS,
                ExtKind::Hz => sub::EXTHZ,
            };
            rtype(rd, ra, Reg::ZERO, subop)
        }
        Instr::AluImm { op: a, rd, ra, imm } => {
            let o = match a {
                AluImmOp::Addi => opc::ADDI,
                AluImmOp::Andi => opc::ANDI,
                AluImmOp::Ori => opc::ORI,
                AluImmOp::Xori => opc::XORI,
            };
            op(o) | reg_at(rd, 21) | reg_at(ra, 16) | imm as u32
        }
        Instr::ShiftImm { op: s, rd, ra, sh } => {
            assert!(sh < 32, "shift amount {sh} out of range");
            let subop = match s {
                ShiftOp::Sll => 0u32,
                ShiftOp::Srl => 1,
                ShiftOp::Sra => 2,
            };
            op(opc::SHIFTI) | reg_at(rd, 21) | reg_at(ra, 16) | (subop << 6) | sh as u32
        }
        Instr::Movhi { rd, imm } => op(opc::MOVHI) | reg_at(rd, 21) | imm as u32,
        Instr::SetFlag { cond, ra, rb } => {
            op(opc::SF) | (cond.code() << 21) | reg_at(ra, 16) | reg_at(rb, 11)
        }
        Instr::SetFlagImm { cond, ra, imm } => {
            op(opc::SFI) | (cond.code() << 21) | reg_at(ra, 16) | imm as u32
        }
        Instr::Branch { taken_if, off } => {
            enc_off26(op(if taken_if { opc::BF } else { opc::BNF }), off)
        }
        Instr::Jump { link, off } => enc_off26(op(if link { opc::JAL } else { opc::J }), off),
        Instr::JumpReg { link, rb } => op(if link { opc::JALR } else { opc::JR }) | reg_at(rb, 11),
        Instr::Load { size, signed, rd, ra, off } => {
            let o = match (size, signed) {
                (MemSize::Word, _) => opc::LW,
                (MemSize::Half, true) => opc::LH,
                (MemSize::Half, false) => opc::LHU,
                (MemSize::Byte, true) => opc::LB,
                (MemSize::Byte, false) => opc::LBU,
            };
            op(o) | reg_at(rd, 21) | reg_at(ra, 16) | (off as u16) as u32
        }
        Instr::Store { size, ra, rb, off } => {
            let o = match size {
                MemSize::Word => opc::SW,
                MemSize::Byte => opc::SB,
                MemSize::Half => opc::SH,
            };
            let imm = off as u16 as u32;
            op(o) | ((imm >> 11) << 21) | reg_at(ra, 16) | reg_at(rb, 11) | (imm & 0x7FF)
        }
        Instr::Nop => op(opc::NOP),
        Instr::Sig { nslots, eob, payload } => {
            assert!(nslots <= SIG_MAX_SLOTS, "Sig carries at most {SIG_MAX_SLOTS} slots");
            assert!(payload < (1 << 15), "Sig payload wider than 15 bits");
            op(opc::SIG) | ((nslots as u32) << 24) | ((eob as u32) << 23) | payload as u32
        }
        Instr::Halt => op(opc::HALT),
    }
}

fn rtype(rd: Reg, ra: Reg, rb: Reg, subop: u32) -> u32 {
    (opc::RTYPE << 26) | reg_at(rd, 21) | reg_at(ra, 16) | reg_at(rb, 11) | subop
}

fn reg_at(r: Reg, lo: u32) -> u32 {
    (r.index() as u32) << lo
}

/// Mask of the bit positions within an encoded word that the decoder
/// ignores — the storage the DCS embedder uses. This is the hot-path form:
/// one match and a couple of constant ORs, no allocation.
///
/// Invalid encodings have no usable bits.
pub fn unused_bit_mask(word: u32) -> u32 {
    /// Mask of bits `[lo, hi)`.
    const fn span(lo: u32, hi: u32) -> u32 {
        (((1u64 << hi) - 1) & !((1u64 << lo) - 1)) as u32
    }
    let o = field(word, 26, 6);
    match o {
        opc::RTYPE => {
            let subop = field(word, 0, 4);
            if (sub::EXTBS..=sub::EXTHZ).contains(&subop) {
                // rb field is also free for unary extension ops.
                span(4, 16)
            } else if subop <= sub::DIVU {
                span(4, 11)
            } else {
                0
            }
        }
        opc::SF => span(0, 11),
        opc::SHIFTI => (1 << 5) | span(8, 16),
        opc::MOVHI => span(16, 21),
        opc::JR | opc::JALR => span(0, 11) | span(16, 26),
        opc::NOP => span(0, 16),
        // Sig payload bits are the DCS slots themselves, not general-purpose
        // unused storage; bits [22:15] are reserved.
        opc::SIG => 0,
        _ => 0,
    }
}

/// Bit positions within an encoded word that the decoder ignores, returned
/// low-to-high; the embedder fills them in that order across the block's
/// instructions. Cold-path (allocating) form of [`unused_bit_mask`].
pub fn unused_bit_positions(word: u32) -> Vec<u32> {
    let mut m = unused_bit_mask(word);
    let mut v = Vec::with_capacity(m.count_ones() as usize);
    while m != 0 {
        v.push(m.trailing_zeros());
        m &= m - 1;
    }
    v
}

/// Total unused-bit capacity of one encoded instruction.
pub fn unused_bit_count(word: u32) -> u32 {
    unused_bit_mask(word).count_ones()
}

/// The DCS-carrying bits one instruction word contributes to its basic
/// block's embedded stream, in collection order: a Signature instruction
/// contributes its payload slots, every other instruction its unused-field
/// bits. This is the single definition shared by the fetch-side extraction
/// hardware model, the compiler's phase-3 embedder, and the static binary
/// verifier.
pub fn embedded_bits(word: u32) -> Vec<bool> {
    embedded_bits_packed(word).to_vec()
}

/// [`embedded_bits`] in packed form (the hot-loop representation).
pub fn embedded_bits_packed(word: u32) -> PackedBits {
    embedded_bits_of(&crate::decode::decode(word), word)
}

/// [`embedded_bits_packed`] when the caller already decoded `word` — the
/// step loop reuses its decode instead of paying a fourth one.
pub fn embedded_bits_of(i: &Instr, word: u32) -> PackedBits {
    match *i {
        Instr::Sig { nslots, payload, .. } => PackedBits::new(payload as u32, nslots * 5),
        _ => {
            let mut m = unused_bit_mask(word);
            let mut bits = 0u32;
            let mut k = 0u8;
            while m != 0 {
                bits |= ((word >> m.trailing_zeros()) & 1) << k;
                k += 1;
                m &= m - 1;
            }
            PackedBits::new(bits, k)
        }
    }
}

/// The *operation token*: the semantic identity of an instruction — opcode,
/// sub-opcode, condition, immediates — with register numbers and unused
/// bits cleared.
///
/// The SHS computation unit hashes this token into every result signature,
/// so instruction-memory corruption of any semantic bit (including
/// immediates, which the paper folds into the "function definition")
/// perturbs the DCS. Register numbers are excluded: source identity flows
/// through the operands' own SHSs and destination identity through the
/// register-assignment-sensitive DCS permutation.
pub fn op_token(i: &Instr) -> u32 {
    let neutered = match *i {
        Instr::Alu { op, .. } => Instr::Alu { op, rd: Reg::ZERO, ra: Reg::ZERO, rb: Reg::ZERO },
        Instr::Ext { kind, .. } => Instr::Ext { kind, rd: Reg::ZERO, ra: Reg::ZERO },
        Instr::MulDiv { op, .. } => {
            Instr::MulDiv { op, rd: Reg::ZERO, ra: Reg::ZERO, rb: Reg::ZERO }
        }
        Instr::AluImm { op, imm, .. } => Instr::AluImm { op, rd: Reg::ZERO, ra: Reg::ZERO, imm },
        Instr::ShiftImm { op, sh, .. } => Instr::ShiftImm { op, rd: Reg::ZERO, ra: Reg::ZERO, sh },
        Instr::Movhi { imm, .. } => Instr::Movhi { rd: Reg::ZERO, imm },
        Instr::SetFlag { cond, .. } => Instr::SetFlag { cond, ra: Reg::ZERO, rb: Reg::ZERO },
        Instr::SetFlagImm { cond, imm, .. } => Instr::SetFlagImm { cond, ra: Reg::ZERO, imm },
        Instr::Load { size, signed, off, .. } => {
            Instr::Load { size, signed, rd: Reg::ZERO, ra: Reg::ZERO, off }
        }
        Instr::Store { size, off, .. } => Instr::Store { size, ra: Reg::ZERO, rb: Reg::ZERO, off },
        Instr::JumpReg { link, .. } => Instr::JumpReg { link, rb: Reg::ZERO },
        other => other,
    };
    encode(&neutered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Cond;
    use crate::reg::r;

    #[test]
    fn rtype_layout() {
        let w = encode(&Instr::Alu { op: AluOp::Sub, rd: r(4), ra: r(1), rb: r(2) });
        assert_eq!(field(w, 26, 6), opc::RTYPE);
        assert_eq!(field(w, 21, 5), 4);
        assert_eq!(field(w, 16, 5), 1);
        assert_eq!(field(w, 11, 5), 2);
        assert_eq!(field(w, 0, 4), sub::SUB);
        assert_eq!(field(w, 4, 7), 0, "unused bits canonical zero");
    }

    #[test]
    fn store_splits_immediate() {
        let w = encode(&Instr::Store { size: MemSize::Word, ra: r(1), rb: r(7), off: -4 });
        let imm = (field(w, 21, 5) << 11) | field(w, 0, 11);
        assert_eq!(imm as u16 as i16, -4);
        assert_eq!(field(w, 16, 5), 1);
        assert_eq!(field(w, 11, 5), 7);
    }

    #[test]
    fn unused_bit_counts_match_formats() {
        let cases: Vec<(Instr, u32)> = vec![
            (Instr::Alu { op: AluOp::Add, rd: r(1), ra: r(2), rb: r(3) }, 7),
            (Instr::MulDiv { op: MulDivOp::Mul, rd: r(1), ra: r(2), rb: r(3) }, 7),
            (Instr::Ext { kind: ExtKind::Bs, rd: r(1), ra: r(2) }, 12),
            (Instr::SetFlag { cond: Cond::Eq, ra: r(1), rb: r(2) }, 11),
            (Instr::ShiftImm { op: ShiftOp::Sll, rd: r(1), ra: r(2), sh: 3 }, 9),
            (Instr::Movhi { rd: r(1), imm: 0xBEEF }, 5),
            (Instr::JumpReg { link: false, rb: r(9) }, 21),
            (Instr::Nop, 16),
            (Instr::Sig { nslots: 2, eob: false, payload: 0x3FF }, 0),
            (Instr::AluImm { op: AluImmOp::Addi, rd: r(1), ra: r(2), imm: 5 }, 0),
            (Instr::Load { size: MemSize::Word, signed: false, rd: r(1), ra: r(2), off: 0 }, 0),
            (Instr::Store { size: MemSize::Byte, ra: r(1), rb: r(2), off: 0 }, 0),
            (Instr::Jump { link: true, off: 12 }, 0),
            (Instr::Branch { taken_if: true, off: -3 }, 0),
            (Instr::SetFlagImm { cond: Cond::Ne, ra: r(1), imm: 9 }, 0),
        ];
        for (i, expect) in cases {
            assert_eq!(unused_bit_count(encode(&i)), expect, "for {i}");
        }
    }

    #[test]
    fn unused_positions_do_not_overlap_fields() {
        let w = encode(&Instr::Alu { op: AluOp::Or, rd: r(31), ra: r(31), rb: r(31) });
        for pos in unused_bit_positions(w) {
            let flipped = w ^ (1 << pos);
            assert_eq!(
                crate::decode::decode(flipped),
                crate::decode::decode(w),
                "flipping unused bit {pos} changed decode"
            );
        }
    }

    #[test]
    fn op_token_ignores_registers_but_not_immediates() {
        let a = Instr::AluImm { op: AluImmOp::Addi, rd: r(1), ra: r(2), imm: 5 };
        let b = Instr::AluImm { op: AluImmOp::Addi, rd: r(7), ra: r(9), imm: 5 };
        let c = Instr::AluImm { op: AluImmOp::Addi, rd: r(1), ra: r(2), imm: 6 };
        assert_eq!(op_token(&a), op_token(&b));
        assert_ne!(op_token(&a), op_token(&c));
    }

    #[test]
    fn op_token_distinguishes_operations() {
        let add = Instr::Alu { op: AluOp::Add, rd: r(1), ra: r(2), rb: r(3) };
        let subi = Instr::Alu { op: AluOp::Sub, rd: r(1), ra: r(2), rb: r(3) };
        assert_ne!(op_token(&add), op_token(&subi));
    }

    #[test]
    #[should_panic(expected = "out of 26-bit range")]
    fn jump_offset_overflow_panics() {
        encode(&Instr::Jump { link: false, off: 1 << 25 });
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn sig_slot_overflow_panics() {
        encode(&Instr::Sig { nslots: 4, eob: false, payload: 0 });
    }

    #[test]
    fn sig_eob_bit_roundtrips() {
        for eob in [false, true] {
            let i = Instr::Sig { nslots: 1, eob, payload: 0x15 };
            assert_eq!(crate::decode::decode(encode(&i)), i);
        }
    }
}
