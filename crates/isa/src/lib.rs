//! # argus-isa — the OR1200-like instruction set
//!
//! A 32-bit, fixed-width RISC ISA modeled on the OpenRISC ORBIS32 subset
//! implemented by the OR1200 core the paper instruments: 32 general-purpose
//! registers, a 1-bit compare flag, delayed branches, and no floating point.
//!
//! Beyond ordinary encode/decode, this crate models the property Argus-1's
//! signature embedding exploits: fixed-size RISC formats leave *unused bits*
//! in many instructions (register-register ALU ops most of all), and the
//! compiler hides Dataflow and Control Signatures (DCS) in them. See
//! [`encode::unused_bit_positions`].
//!
//! # Examples
//!
//! ```
//! use argus_isa::{Instr, AluOp, Reg, encode, decode};
//! let i = Instr::Alu { op: AluOp::Add, rd: Reg::new(1), ra: Reg::new(2), rb: Reg::new(3) };
//! let word = encode::encode(&i);
//! assert_eq!(decode::decode(word), i);
//! assert_eq!(encode::unused_bit_positions(word).len(), 7);
//! ```

pub mod decode;
pub mod encode;
pub mod instr;
pub mod reg;

pub use instr::{AluOp, Cond, ExtKind, Instr, MemSize, MulDivOp, ShiftOp};
pub use reg::Reg;

/// Number of architectural general-purpose registers.
pub const NUM_REGS: usize = 32;

/// Bytes per instruction (fixed-width encoding).
pub const INSTR_BYTES: u32 = 4;

/// Number of address bits usable by register-indirect control transfers.
///
/// Argus-1 stores the 5-bit DCS of the target block in the 5 most
/// significant bits of any register holding a branch-target address
/// (§3.2.2, "Indirect Branches"), which restricts the addressable range.
pub const INDIRECT_ADDR_BITS: u32 = 27;

/// Mask selecting the address portion of an indirect branch target.
pub const INDIRECT_ADDR_MASK: u32 = (1 << INDIRECT_ADDR_BITS) - 1;

/// Splits a link/function-pointer register value into `(address, dcs)`.
pub fn split_indirect_target(value: u32) -> (u32, u32) {
    (value & INDIRECT_ADDR_MASK, value >> INDIRECT_ADDR_BITS)
}

/// Packs an address and a DCS into a register value for indirect control
/// transfers.
///
/// # Panics
///
/// Panics if the address does not fit in [`INDIRECT_ADDR_BITS`] bits or the
/// DCS in 5 bits.
pub fn pack_indirect_target(addr: u32, dcs: u32) -> u32 {
    assert!(addr <= INDIRECT_ADDR_MASK, "indirect target {addr:#x} out of range");
    assert!(dcs < 32, "DCS {dcs} wider than 5 bits");
    addr | (dcs << INDIRECT_ADDR_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indirect_target_roundtrip() {
        let v = pack_indirect_target(0x0012_3454, 0b10110);
        let (a, d) = split_indirect_target(v);
        assert_eq!(a, 0x0012_3454);
        assert_eq!(d, 0b10110);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pack_rejects_wide_address() {
        pack_indirect_target(1 << 27, 0);
    }

    #[test]
    #[should_panic(expected = "wider than 5 bits")]
    fn pack_rejects_wide_dcs() {
        pack_indirect_target(0, 32);
    }
}
