//! Architectural register names.

use std::fmt;

/// One of the 32 general-purpose registers, `r0`–`r31`.
///
/// By ABI convention (mirroring OpenRISC): `r0` is hardwired to zero,
/// `r1` is the stack pointer, and `r9` is the link register written by
/// `jal`/`jalr`.
///
/// ```
/// use argus_isa::Reg;
/// assert_eq!(Reg::LR.index(), 9);
/// assert_eq!(format!("{}", Reg::new(17)), "r17");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register `r0`.
    pub const ZERO: Reg = Reg(0);
    /// The stack pointer `r1`.
    pub const SP: Reg = Reg(1);
    /// The link register `r9`.
    pub const LR: Reg = Reg(9);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "register index out of range");
        Reg(index)
    }

    /// Creates a register from the low 5 bits of an encoded field.
    pub const fn from_field(field: u32) -> Self {
        Reg((field & 31) as u8)
    }

    /// The register index, `0..32`.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0u8..32).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.0 as usize
    }
}

/// Shorthand constructor, convenient in tests and workload builders.
///
/// # Panics
///
/// Panics if `index >= 32`.
pub const fn r(index: u8) -> Reg {
    Reg::new(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Reg::new(0), Reg::ZERO);
        assert_eq!(Reg::new(31).index(), 31);
        assert_eq!(Reg::from_field(0xFFFF_FFE3).index(), 3);
        assert_eq!(r(5).index(), 5);
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn out_of_range_panics() {
        Reg::new(32);
    }

    #[test]
    fn all_yields_32_distinct() {
        let v: Vec<Reg> = Reg::all().collect();
        assert_eq!(v.len(), 32);
        assert_eq!(v[9], Reg::LR);
    }

    #[test]
    fn display() {
        assert_eq!(Reg::SP.to_string(), "r1");
        assert_eq!(Reg::new(31).to_string(), "r31");
    }
}
