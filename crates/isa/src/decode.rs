//! Instruction decoding.

use crate::encode::{opc, sub};
use crate::instr::{AluImmOp, AluOp, Cond, ExtKind, Instr, MemSize, MulDivOp, ShiftOp};
use crate::reg::Reg;
use argus_sim::bits::{field, sign_extend};
use std::fmt;

/// Error returned by [`try_decode`] for encodings outside the ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeInstrError {
    /// The offending word.
    pub word: u32,
}

impl fmt::Display for DecodeInstrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction encoding {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeInstrError {}

/// Decodes a word, reporting invalid encodings.
///
/// # Errors
///
/// Returns [`DecodeInstrError`] when the primary opcode, sub-opcode, or
/// condition field has no defined meaning.
pub fn try_decode(word: u32) -> Result<Instr, DecodeInstrError> {
    let err = || DecodeInstrError { word };
    let rd = Reg::from_field(field(word, 21, 5));
    let ra = Reg::from_field(field(word, 16, 5));
    let rb = Reg::from_field(field(word, 11, 5));
    let imm16 = field(word, 0, 16) as u16;
    let off26 = sign_extend(field(word, 0, 26), 26) as i32;

    Ok(match field(word, 26, 6) {
        opc::J => Instr::Jump { link: false, off: off26 },
        opc::JAL => Instr::Jump { link: true, off: off26 },
        opc::BNF => Instr::Branch { taken_if: false, off: off26 },
        opc::BF => Instr::Branch { taken_if: true, off: off26 },
        opc::NOP => Instr::Nop,
        opc::MOVHI => Instr::Movhi { rd, imm: imm16 },
        opc::HALT => Instr::Halt,
        opc::SIG => {
            let nslots = field(word, 24, 2) as u8;
            if nslots > crate::encode::SIG_MAX_SLOTS {
                return Err(err());
            }
            Instr::Sig { nslots, eob: field(word, 23, 1) == 1, payload: field(word, 0, 15) as u16 }
        }
        opc::JR => Instr::JumpReg { link: false, rb },
        opc::JALR => Instr::JumpReg { link: true, rb },
        opc::LW => Instr::Load { size: MemSize::Word, signed: false, rd, ra, off: imm16 as i16 },
        opc::LBU => Instr::Load { size: MemSize::Byte, signed: false, rd, ra, off: imm16 as i16 },
        opc::LB => Instr::Load { size: MemSize::Byte, signed: true, rd, ra, off: imm16 as i16 },
        opc::LHU => Instr::Load { size: MemSize::Half, signed: false, rd, ra, off: imm16 as i16 },
        opc::LH => Instr::Load { size: MemSize::Half, signed: true, rd, ra, off: imm16 as i16 },
        opc::ADDI => Instr::AluImm { op: AluImmOp::Addi, rd, ra, imm: imm16 },
        opc::ANDI => Instr::AluImm { op: AluImmOp::Andi, rd, ra, imm: imm16 },
        opc::ORI => Instr::AluImm { op: AluImmOp::Ori, rd, ra, imm: imm16 },
        opc::XORI => Instr::AluImm { op: AluImmOp::Xori, rd, ra, imm: imm16 },
        opc::SHIFTI => {
            let op = match field(word, 6, 2) {
                0 => ShiftOp::Sll,
                1 => ShiftOp::Srl,
                2 => ShiftOp::Sra,
                _ => return Err(err()),
            };
            Instr::ShiftImm { op, rd, ra, sh: field(word, 0, 5) as u8 }
        }
        opc::SFI => Instr::SetFlagImm {
            cond: Cond::from_code(field(word, 21, 5)).ok_or_else(err)?,
            ra,
            imm: imm16,
        },
        opc::SW | opc::SB | opc::SH => {
            let size = match field(word, 26, 6) {
                opc::SW => MemSize::Word,
                opc::SB => MemSize::Byte,
                _ => MemSize::Half,
            };
            let imm = ((field(word, 21, 5) << 11) | field(word, 0, 11)) as u16;
            Instr::Store { size, ra, rb, off: imm as i16 }
        }
        opc::RTYPE => match field(word, 0, 4) {
            sub::ADD => Instr::Alu { op: AluOp::Add, rd, ra, rb },
            sub::SUB => Instr::Alu { op: AluOp::Sub, rd, ra, rb },
            sub::AND => Instr::Alu { op: AluOp::And, rd, ra, rb },
            sub::OR => Instr::Alu { op: AluOp::Or, rd, ra, rb },
            sub::XOR => Instr::Alu { op: AluOp::Xor, rd, ra, rb },
            sub::SLL => Instr::Alu { op: AluOp::Sll, rd, ra, rb },
            sub::SRL => Instr::Alu { op: AluOp::Srl, rd, ra, rb },
            sub::SRA => Instr::Alu { op: AluOp::Sra, rd, ra, rb },
            sub::MUL => Instr::MulDiv { op: MulDivOp::Mul, rd, ra, rb },
            sub::MULU => Instr::MulDiv { op: MulDivOp::Mulu, rd, ra, rb },
            sub::DIV => Instr::MulDiv { op: MulDivOp::Div, rd, ra, rb },
            sub::DIVU => Instr::MulDiv { op: MulDivOp::Divu, rd, ra, rb },
            sub::EXTBS => Instr::Ext { kind: ExtKind::Bs, rd, ra },
            sub::EXTBZ => Instr::Ext { kind: ExtKind::Bz, rd, ra },
            sub::EXTHS => Instr::Ext { kind: ExtKind::Hs, rd, ra },
            sub::EXTHZ => Instr::Ext { kind: ExtKind::Hz, rd, ra },
            _ => unreachable!("4-bit subop"),
        },
        opc::SF => {
            Instr::SetFlag { cond: Cond::from_code(field(word, 21, 5)).ok_or_else(err)?, ra, rb }
        }
        _ => return Err(err()),
    })
}

/// Total decode: invalid encodings fall back to [`Instr::Nop`].
///
/// This mirrors the fault model: a corrupted instruction that no longer
/// decodes executes as a NOP, dropping its architectural effects — which
/// the DCS comparison then exposes at the end of the basic block.
pub fn decode(word: u32) -> Instr {
    try_decode(word).unwrap_or(Instr::Nop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::reg::r;
    use proptest::prelude::*;

    fn sample_instrs() -> Vec<Instr> {
        let mut v = vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Sig { nslots: 3, eob: false, payload: 0x7FFF },
            Instr::Sig { nslots: 0, eob: true, payload: 0 },
            Instr::Movhi { rd: r(30), imm: 0xFFFF },
            Instr::Jump { link: false, off: -1 },
            Instr::Jump { link: true, off: (1 << 25) - 1 },
            Instr::Branch { taken_if: true, off: -(1 << 25) },
            Instr::Branch { taken_if: false, off: 1234 },
            Instr::JumpReg { link: false, rb: r(9) },
            Instr::JumpReg { link: true, rb: r(11) },
        ];
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sra,
        ] {
            v.push(Instr::Alu { op, rd: r(1), ra: r(2), rb: r(3) });
        }
        for op in [MulDivOp::Mul, MulDivOp::Mulu, MulDivOp::Div, MulDivOp::Divu] {
            v.push(Instr::MulDiv { op, rd: r(4), ra: r(5), rb: r(6) });
        }
        for kind in [ExtKind::Bs, ExtKind::Bz, ExtKind::Hs, ExtKind::Hz] {
            v.push(Instr::Ext { kind, rd: r(7), ra: r(8) });
        }
        for op in [AluImmOp::Addi, AluImmOp::Andi, AluImmOp::Ori, AluImmOp::Xori] {
            v.push(Instr::AluImm { op, rd: r(9), ra: r(10), imm: 0x8001 });
        }
        for op in [ShiftOp::Sll, ShiftOp::Srl, ShiftOp::Sra] {
            v.push(Instr::ShiftImm { op, rd: r(11), ra: r(12), sh: 31 });
        }
        for cond in [
            Cond::Eq,
            Cond::Ne,
            Cond::Gtu,
            Cond::Geu,
            Cond::Ltu,
            Cond::Leu,
            Cond::Gts,
            Cond::Ges,
            Cond::Lts,
            Cond::Les,
        ] {
            v.push(Instr::SetFlag { cond, ra: r(13), rb: r(14) });
            v.push(Instr::SetFlagImm { cond, ra: r(15), imm: 0x7FFF });
        }
        for (size, signed) in [
            (MemSize::Word, false),
            (MemSize::Half, true),
            (MemSize::Half, false),
            (MemSize::Byte, true),
            (MemSize::Byte, false),
        ] {
            v.push(Instr::Load { size, signed, rd: r(16), ra: r(17), off: -32768 });
        }
        for size in [MemSize::Word, MemSize::Half, MemSize::Byte] {
            v.push(Instr::Store { size, ra: r(18), rb: r(19), off: 32767 });
        }
        v
    }

    #[test]
    fn roundtrip_all_forms() {
        for i in sample_instrs() {
            let w = encode(&i);
            assert_eq!(try_decode(w), Ok(i), "roundtrip failed for {i} ({w:#010x})");
        }
    }

    #[test]
    fn invalid_opcode_errors() {
        let w = 0x3Fu32 << 26;
        assert!(try_decode(w).is_err());
        assert_eq!(decode(w), Instr::Nop);
    }

    #[test]
    fn invalid_cond_errors() {
        let w = (opc::SF << 26) | (0x1F << 21);
        assert!(try_decode(w).is_err());
    }

    #[test]
    fn sig_slot_bounds() {
        let max = (opc::SIG << 26) | (0x3 << 24);
        assert!(try_decode(max).is_ok(), "3 slots is the max and valid");
    }

    proptest! {
        #[test]
        fn decode_never_panics(word in any::<u32>()) {
            let _ = decode(word);
        }

        #[test]
        fn decode_encode_decode_is_stable(word in any::<u32>()) {
            // Decoding is a projection: decode(encode(decode(w))) == decode(w).
            let i = decode(word);
            prop_assert_eq!(decode(encode(&i)), i);
        }

        #[test]
        fn rtype_roundtrip(rd in 0u8..32, ra in 0u8..32, rb in 0u8..32, subop in 0u32..16) {
            // Unary extension ops ignore the rb field, so clear it there to
            // compare against the canonical encoding.
            let rb = if subop >= sub::EXTBS { 0 } else { rb };
            let w = (opc::RTYPE << 26)
                | ((rd as u32) << 21) | ((ra as u32) << 16) | ((rb as u32) << 11) | subop;
            let i = try_decode(w).expect("all R-type subops defined");
            prop_assert_eq!(encode(&i), w);
        }

        #[test]
        fn store_offset_roundtrip(off in any::<i16>()) {
            let i = Instr::Store { size: MemSize::Half, ra: r(1), rb: r(2), off };
            prop_assert_eq!(try_decode(encode(&i)), Ok(i));
        }

        #[test]
        fn branch_offset_roundtrip(off in -(1i32 << 25)..(1i32 << 25)) {
            let i = Instr::Branch { taken_if: true, off };
            prop_assert_eq!(try_decode(encode(&i)), Ok(i));
        }
    }
}
