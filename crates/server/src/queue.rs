//! Priority job queue: who runs next, and who gets preempted.
//!
//! Ordering is (priority descending, submission sequence ascending):
//! strict priority between classes, FIFO within a class. There is no
//! aging — instead, starvation is prevented structurally by the
//! scheduler's admission rule (see `daemon.rs`): a job is admitted with
//! `min(budget, free_workers)` workers where free is always at least 1,
//! so a wide job can never hold *all* workers against a queued peer of
//! equal-or-higher priority for more than one lease interval, and a
//! higher-priority arrival preempts a strictly-lower-priority running
//! job via its checkpoint.
//!
//! The queue itself is pure data (no locks, no clock) so the ordering
//! properties can be unit- and property-tested directly.

use crate::jobs::JobId;

/// One queued entry. `seq` is the submission sequence number; a
/// preempted job re-enters with its *original* seq, so it keeps its
/// FIFO position within its priority class rather than going to the
/// back of the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueEntry {
    /// Which job.
    pub id: JobId,
    /// Submission order (FIFO tiebreak).
    pub seq: u64,
    /// Higher runs first.
    pub priority: u8,
}

/// The ready queue. Backed by a sorted `Vec`: the daemon holds a handful
/// to a few hundred jobs, where a linear insert beats heap bookkeeping
/// and keeps iteration order equal to dispatch order for the API's
/// queue listing.
#[derive(Debug, Default, Clone)]
pub struct JobQueue {
    entries: Vec<QueueEntry>,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts an entry at its dispatch position (stable: equal keys keep
    /// insertion order, though (priority, seq) pairs are unique in
    /// practice since seq is unique).
    pub fn push(&mut self, entry: QueueEntry) {
        let pos = self.entries.partition_point(|e| {
            (e.priority > entry.priority) || (e.priority == entry.priority && e.seq <= entry.seq)
        });
        self.entries.insert(pos, entry);
    }

    /// The entry that would dispatch next, without removing it.
    pub fn peek(&self) -> Option<&QueueEntry> {
        self.entries.first()
    }

    /// Removes and returns the next entry to dispatch.
    pub fn pop_front(&mut self) -> Option<QueueEntry> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0))
        }
    }

    /// Removes a job wherever it sits (cancellation of a queued job).
    /// Returns whether it was present.
    pub fn remove(&mut self, id: JobId) -> bool {
        match self.entries.iter().position(|e| e.id == id) {
            Some(i) => {
                self.entries.remove(i);
                true
            }
            None => false,
        }
    }

    /// Dispatch-ordered view (used by `GET /status`).
    pub fn iter(&self) -> impl Iterator<Item = &QueueEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn entry(id: JobId, seq: u64, priority: u8) -> QueueEntry {
        QueueEntry { id, seq, priority }
    }

    #[test]
    fn priority_beats_fifo_and_fifo_breaks_ties() {
        let mut q = JobQueue::new();
        q.push(entry(1, 0, 0));
        q.push(entry(2, 1, 5));
        q.push(entry(3, 2, 5));
        q.push(entry(4, 3, 9));
        q.push(entry(5, 4, 0));
        let order: Vec<JobId> = std::iter::from_fn(|| q.pop_front()).map(|e| e.id).collect();
        // 9 first; the two 5s in submission order; the two 0s in
        // submission order.
        assert_eq!(order, vec![4, 2, 3, 1, 5]);
    }

    #[test]
    fn preempted_job_keeps_its_place() {
        let mut q = JobQueue::new();
        q.push(entry(1, 0, 5));
        q.push(entry(2, 1, 5));
        // Job 1 dispatches, is preempted, and re-enters with its original
        // seq while job 3 arrives at the same priority.
        let first = q.pop_front().unwrap();
        assert_eq!(first.id, 1);
        q.push(entry(3, 2, 5));
        q.push(first);
        let order: Vec<JobId> = std::iter::from_fn(|| q.pop_front()).map(|e| e.id).collect();
        assert_eq!(order, vec![1, 2, 3], "requeue must not send a preempted job to the back");
    }

    #[test]
    fn remove_targets_the_right_entry() {
        let mut q = JobQueue::new();
        q.push(entry(1, 0, 3));
        q.push(entry(2, 1, 3));
        assert!(q.remove(1));
        assert!(!q.remove(1), "double-remove reports absence");
        assert_eq!(q.pop_front().unwrap().id, 2);
        assert!(q.pop_front().is_none());
    }

    proptest! {
        /// Any interleaving of pushes drains in (priority desc, seq asc)
        /// order.
        #[test]
        fn drains_sorted(specs in proptest::collection::vec((0u8..=9, 0u64..1000), 0..64)) {
            let mut q = JobQueue::new();
            for (i, &(priority, seq)) in specs.iter().enumerate() {
                q.push(entry(i as JobId, seq, priority));
            }
            prop_assert_eq!(q.len(), specs.len());
            let drained: Vec<QueueEntry> = std::iter::from_fn(|| q.pop_front()).collect();
            for pair in drained.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                prop_assert!(
                    a.priority > b.priority || (a.priority == b.priority && a.seq <= b.seq),
                    "out of order: {:?} before {:?}", a, b
                );
            }
        }
    }
}
