//! Job model: what a submitted campaign *is* to the daemon.
//!
//! A job is a campaign spec plus a lifecycle:
//!
//! ```text
//! queued ──► running ──► done
//!   ▲           │  ├───► failed
//!   │           │  └───► cancelled
//!   │           ▼
//!   └────── (preempted: back to queued, progress checkpointed)
//!               │
//!               ▼
//!           draining ──► (process exit; resumes as queued on restart)
//! ```
//!
//! Every running job writes checkpoint-v3 files, so all non-terminal
//! states survive a SIGKILL: on restart the job table is reloaded and
//! every `queued`/`running`/`draining` job re-enters the queue, resuming
//! from its checkpoint instead of repeating work.
//!
//! The table is persisted to `<state-dir>/jobs.json` with the same
//! `{crc32, body}` envelope and atomic tmp-rename discipline as campaign
//! checkpoints — a torn write at any point leaves a loadable generation.

use argus_invariants::InvariantMode;
use argus_orchestrator::Json;
use argus_sim::crc::crc32;
use argus_sim::fault::FaultKind;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Job identifier: monotonically increasing, never reused, stable across
/// daemon restarts (the high-water mark is persisted).
pub type JobId = u64;

/// Priority range accepted by the API (inclusive). Higher runs first.
pub const MAX_PRIORITY: u8 = 9;

/// Job table file format version.
const TABLE_VERSION: u64 = 1;

/// What to run: the subset of campaign knobs a client may set, validated
/// at submission. Everything else uses the same `CampaignConfig` defaults
/// as one-shot `argus campaign`, which is what makes the daemon's report
/// byte-identical to the CLI's for the same spec.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Number of injections (`n` in the API).
    pub injections: usize,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Transient or permanent faults.
    pub kind: FaultKind,
    /// Golden-run snapshot interval (perf knob; absent = cold boot).
    pub snapshot_every: Option<u64>,
    /// Scheduler priority, `0..=MAX_PRIORITY`; higher preempts lower.
    pub priority: u8,
    /// Worker budget: the most pool workers this job may hold at once.
    /// Zero is legal only for distributed jobs (remote-only: every chunk
    /// runs on `argus worker` processes, none on the daemon's pool).
    pub budget: usize,
    /// Scheduler lease size cap (`OrchestratorConfig::chunk` default when
    /// absent).
    pub chunk: Option<usize>,
    /// Open this job's chunk pool to remote `argus worker` leasing.
    pub distributed: bool,
    /// Invariant-checking density (`"off"|"sampled"|"full"`), defaulting
    /// to sampled like one-shot `argus campaign`.
    pub invariants: InvariantMode,
    /// Snapshot-store backend (`"ram"|"mmap"`), defaulting to the mapped
    /// store like the CLI. A pure performance knob: reports are
    /// bit-identical either way.
    pub store: argus_faults::StoreKind,
}

impl JobSpec {
    /// Parses and validates a submission body. Unknown fields are an
    /// error — a typo'd knob silently ignored is how a 10-hour campaign
    /// runs with the wrong seed.
    pub fn from_json(doc: &Json, max_budget: usize) -> Result<Self, String> {
        let obj = doc.as_obj().ok_or("job spec must be a JSON object")?;
        const KNOWN: &[&str] = &[
            "n",
            "seed",
            "kind",
            "snapshot_every",
            "priority",
            "budget",
            "chunk",
            "distributed",
            "invariants",
            "store",
        ];
        for (key, _) in obj {
            if !KNOWN.contains(&key.as_str()) {
                return Err(format!("unknown field `{key}` (known: {})", KNOWN.join(", ")));
            }
        }
        let injections = doc
            .get("n")
            .and_then(Json::as_u64)
            .filter(|&n| n >= 1)
            .ok_or("`n` (injections) must be an integer >= 1")? as usize;
        let defaults = argus_faults::CampaignConfig::default();
        let seed = match doc.get("seed") {
            Some(v) => v.as_u64().ok_or("`seed` must be a non-negative integer")?,
            None => defaults.seed,
        };
        let kind = match doc.get("kind") {
            None => FaultKind::Transient,
            Some(v) => match v.as_str() {
                Some("transient") => FaultKind::Transient,
                Some("permanent") => FaultKind::Permanent,
                _ => return Err("`kind` must be \"transient\" or \"permanent\"".into()),
            },
        };
        let snapshot_every = match doc.get("snapshot_every") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64().filter(|&s| s >= 1).ok_or("`snapshot_every` must be an integer >= 1")?,
            ),
        };
        let priority = match doc.get("priority") {
            None => 0,
            Some(v) => v
                .as_u64()
                .filter(|&p| p <= u64::from(MAX_PRIORITY))
                .ok_or_else(|| format!("`priority` must be an integer in 0..={MAX_PRIORITY}"))?
                as u8,
        };
        let distributed = match doc.get("distributed") {
            None => false,
            Some(v) => v.as_bool().ok_or("`distributed` must be a boolean")?,
        };
        let budget = match doc.get("budget") {
            None => max_budget,
            Some(v) => {
                // Budget 0 means remote-only execution, which only makes
                // sense when remote workers can lease the pool at all.
                let b = v
                    .as_u64()
                    .filter(|&b| b >= 1 || distributed)
                    .ok_or("`budget` must be >= 1 (0 is allowed only with `distributed`)")?
                    as usize;
                b.min(max_budget)
            }
        };
        let chunk = match doc.get("chunk") {
            None | Some(Json::Null) => None,
            Some(v) => {
                Some(v.as_u64().filter(|&c| c >= 1).ok_or("`chunk` must be an integer >= 1")?
                    as usize)
            }
        };
        let invariants = match doc.get("invariants") {
            None | Some(Json::Null) => InvariantMode::default(),
            Some(v) => v
                .as_str()
                .and_then(InvariantMode::parse)
                .ok_or("`invariants` must be \"off\", \"sampled\", or \"full\"")?,
        };
        let store = match doc.get("store") {
            None | Some(Json::Null) => argus_faults::StoreKind::Mapped,
            Some(v) => v
                .as_str()
                .and_then(argus_faults::StoreKind::parse)
                .ok_or("`store` must be \"ram\" or \"mmap\"")?,
        };
        Ok(Self {
            injections,
            seed,
            kind,
            snapshot_every,
            priority,
            budget,
            chunk,
            distributed,
            invariants,
            store,
        })
    }

    /// Serializes the spec (job table file and API responses).
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj()
            .set("n", self.injections)
            .set("seed", self.seed)
            .set(
                "kind",
                match self.kind {
                    FaultKind::Transient => "transient",
                    FaultKind::Permanent => "permanent",
                },
            )
            .set("priority", u64::from(self.priority))
            .set("budget", self.budget);
        if let Some(s) = self.snapshot_every {
            doc = doc.set("snapshot_every", s);
        }
        if let Some(c) = self.chunk {
            doc = doc.set("chunk", c);
        }
        if self.distributed {
            doc = doc.set("distributed", true);
        }
        if self.invariants != InvariantMode::default() {
            doc = doc.set("invariants", self.invariants.label());
        }
        if self.store != argus_faults::StoreKind::Mapped {
            doc = doc.set("store", self.store.label());
        }
        doc
    }
}

/// Lifecycle states. `Draining` only exists in a live process (a drained
/// daemon persists the job as resumable work); every other state is
/// persisted verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for pool workers (possibly with checkpointed progress from
    /// an earlier run or preemption).
    Queued,
    /// Injections in flight on the shared pool.
    Running,
    /// Told to stop for daemon shutdown; checkpointing, will resume on
    /// restart.
    Draining,
    /// All injections complete; report stored.
    Done,
    /// The engine errored or panicked; `error` says why.
    Failed,
    /// Cancelled by a client; never resumed.
    Cancelled,
}

impl JobState {
    /// Stable snake_case label (API + job table file).
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Draining => "draining",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "draining" => JobState::Draining,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }

    /// Whether the job can never run again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

/// One durable row of the job table (the parts that survive restart; live
/// handles — stop flags, progress, events — belong to the daemon).
#[derive(Debug, Clone, PartialEq)]
pub struct JobRow {
    /// Stable id.
    pub id: JobId,
    /// Submission order; FIFO tiebreak within a priority, preserved across
    /// preemption and restart so requeued jobs keep their place.
    pub seq: u64,
    /// What to run.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Failure message for `Failed` jobs.
    pub error: Option<String>,
}

impl JobRow {
    fn to_json(&self) -> Json {
        // A drained daemon's jobs resume on restart: persist the live
        // `draining` state as the resumable `running` it semantically is.
        let state = if self.state == JobState::Draining { JobState::Running } else { self.state };
        let mut doc = Json::obj()
            .set("id", self.id)
            .set("seq", self.seq)
            .set("spec", self.spec.to_json())
            .set("state", state.label());
        if let Some(e) = &self.error {
            doc = doc.set("error", e.as_str());
        }
        doc
    }

    fn from_json(doc: &Json, max_budget: usize) -> Result<Self, String> {
        let id = doc.get("id").and_then(Json::as_u64).ok_or("job row missing id")?;
        let seq = doc.get("seq").and_then(Json::as_u64).ok_or("job row missing seq")?;
        let spec = JobSpec::from_json(doc.get("spec").ok_or("job row missing spec")?, max_budget)?;
        let state = doc
            .get("state")
            .and_then(Json::as_str)
            .and_then(JobState::from_label)
            .ok_or("job row missing or unknown state")?;
        // Unfinished work re-enters the queue; its checkpoint carries the
        // progress.
        let state = match state {
            JobState::Running | JobState::Draining => JobState::Queued,
            s => s,
        };
        let error = doc.get("error").and_then(Json::as_str).map(str::to_owned);
        Ok(Self { id, seq, spec, state, error })
    }
}

/// The durable job table: rows plus the id/seq high-water marks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobTable {
    /// All known jobs, any state.
    pub rows: Vec<JobRow>,
    /// Next id to assign.
    pub next_id: u64,
    /// Next submission sequence number.
    pub next_seq: u64,
}

impl JobTable {
    /// Serializes with the `{crc32, body}` envelope.
    pub fn to_file_json(&self) -> Json {
        let body = Json::obj()
            .set("version", TABLE_VERSION)
            .set("next_id", self.next_id)
            .set("next_seq", self.next_seq)
            .set("jobs", Json::Arr(self.rows.iter().map(JobRow::to_json).collect()));
        let crc = crc32(body.to_string_compact().as_bytes());
        Json::obj().set("crc32", u64::from(crc)).set("body", body)
    }

    /// Parses an enveloped table file.
    pub fn from_file_json(doc: &Json, max_budget: usize) -> Result<Self, String> {
        let body = doc.get("body").ok_or("missing body")?;
        let expected = doc.get("crc32").and_then(Json::as_u64).ok_or("missing crc32")? as u32;
        let got = crc32(body.to_string_compact().as_bytes());
        if expected != got {
            return Err(format!("job table checksum mismatch ({expected:#010x} != {got:#010x})"));
        }
        let version = body.get("version").and_then(Json::as_u64).ok_or("missing version")?;
        if version != TABLE_VERSION {
            return Err(format!("unsupported job table version {version}"));
        }
        let rows = body
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or("missing jobs array")?
            .iter()
            .map(|j| JobRow::from_json(j, max_budget))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            rows,
            next_id: body.get("next_id").and_then(Json::as_u64).ok_or("missing next_id")?,
            next_seq: body.get("next_seq").and_then(Json::as_u64).ok_or("missing next_seq")?,
        })
    }

    /// Atomically writes the table (tmp + fsync + rename, like checkpoint
    /// saves; no `.bak` generation — the table is tiny and rewritten on
    /// every transition, and a torn write loses at most one transition).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_file_json().to_string_compact().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::File::open(dir)?.sync_all()?;
        }
        Ok(())
    }

    /// Loads a table file; `Ok(None)` when the file does not exist.
    pub fn load(path: &Path, max_budget: usize) -> Result<Option<Self>, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_file_json(&doc, max_budget)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Paths for one job's durable artifacts inside the state dir.
pub fn checkpoint_path(state_dir: &Path, id: JobId) -> PathBuf {
    state_dir.join(format!("job-{id}.ckpt.json"))
}

/// Where a finished job's report bytes live.
pub fn report_path(state_dir: &Path, id: JobId) -> PathBuf {
    state_dir.join(format!("job-{id}.report.json"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_doc() -> Json {
        Json::obj().set("n", 500u64).set("seed", 7u64).set("priority", 3u64)
    }

    #[test]
    fn spec_parses_with_defaults_and_caps_budget() {
        let spec = JobSpec::from_json(&spec_doc(), 8).unwrap();
        assert_eq!(spec.injections, 500);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.kind, FaultKind::Transient);
        assert_eq!(spec.priority, 3);
        assert_eq!(spec.budget, 8, "budget defaults to the pool size");
        assert_eq!(spec.snapshot_every, None);

        let doc = spec_doc().set("budget", 100u64).set("kind", "permanent");
        let spec = JobSpec::from_json(&doc, 4).unwrap();
        assert_eq!(spec.budget, 4, "budget is capped at the pool size");
        assert_eq!(spec.kind, FaultKind::Permanent);
    }

    #[test]
    fn spec_rejects_bad_input() {
        for (doc, needle) in [
            (Json::obj(), "`n`"),
            (Json::obj().set("n", 0u64), "`n`"),
            (spec_doc().set("typo", 1u64), "unknown field `typo`"),
            (spec_doc().set("kind", "cosmic"), "`kind`"),
            (spec_doc().set("priority", 10u64), "`priority`"),
            (spec_doc().set("budget", 0u64), "`budget`"),
            (spec_doc().set("chunk", 0u64), "`chunk`"),
            (spec_doc().set("snapshot_every", 0u64), "`snapshot_every`"),
        ] {
            let err = JobSpec::from_json(&doc, 8).unwrap_err();
            assert!(err.contains(needle), "{doc:?} -> {err}");
        }
        assert!(JobSpec::from_json(&Json::Arr(vec![]), 8).is_err());
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let doc = spec_doc().set("snapshot_every", 800u64).set("chunk", 4u64);
        let spec = JobSpec::from_json(&doc, 8).unwrap();
        let back = JobSpec::from_json(&spec.to_json(), 8).unwrap();
        assert_eq!(back, spec);

        let doc = spec_doc().set("distributed", true).set("budget", 0u64);
        let spec = JobSpec::from_json(&doc, 8).unwrap();
        let back = JobSpec::from_json(&spec.to_json(), 8).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn zero_budget_requires_distributed() {
        let err = JobSpec::from_json(&spec_doc().set("budget", 0u64), 8).unwrap_err();
        assert!(err.contains("distributed"), "{err}");

        let doc = spec_doc().set("budget", 0u64).set("distributed", true);
        let spec = JobSpec::from_json(&doc, 8).unwrap();
        assert_eq!(spec.budget, 0, "remote-only jobs hold no pool workers");
        assert!(spec.distributed);
    }

    #[test]
    fn table_roundtrips_and_requeues_unfinished_work() {
        let spec = JobSpec::from_json(&spec_doc(), 8).unwrap();
        let mk = |id, state| JobRow { id, seq: id, spec: spec.clone(), state, error: None };
        let table = JobTable {
            rows: vec![
                mk(1, JobState::Done),
                mk(2, JobState::Running),
                mk(3, JobState::Queued),
                mk(4, JobState::Cancelled),
                mk(5, JobState::Draining),
                JobRow {
                    id: 6,
                    seq: 6,
                    spec: spec.clone(),
                    state: JobState::Failed,
                    error: Some("boom".into()),
                },
            ],
            next_id: 7,
            next_seq: 7,
        };
        let back = JobTable::from_file_json(&table.to_file_json(), 8).unwrap();
        assert_eq!(back.next_id, 7);
        let states: Vec<JobState> = back.rows.iter().map(|r| r.state).collect();
        // Running and draining jobs come back queued (they resume from
        // their checkpoints); terminal states persist.
        assert_eq!(
            states,
            vec![
                JobState::Done,
                JobState::Queued,
                JobState::Queued,
                JobState::Cancelled,
                JobState::Queued,
                JobState::Failed
            ]
        );
        assert_eq!(back.rows[5].error.as_deref(), Some("boom"));
    }

    #[test]
    fn table_file_roundtrip_and_corruption_detection() {
        let dir = std::env::temp_dir().join("argus-server-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs_roundtrip.json");
        let spec = JobSpec::from_json(&spec_doc(), 8).unwrap();
        let table = JobTable {
            rows: vec![JobRow { id: 1, seq: 0, spec, state: JobState::Queued, error: None }],
            next_id: 2,
            next_seq: 1,
        };
        table.save(&path).unwrap();
        assert_eq!(JobTable::load(&path, 8).unwrap().unwrap(), table);

        // A flipped byte inside the body fails the CRC, not the parser.
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("\"seed\":7", "\"seed\":9", 1);
        assert_ne!(text, corrupted);
        std::fs::write(&path, corrupted).unwrap();
        let err = JobTable::load(&path, 8).unwrap_err();
        assert!(err.contains("checksum"), "{err}");

        assert_eq!(JobTable::load(&dir.join("nope.json"), 8).unwrap(), None);
        std::fs::remove_file(&path).unwrap();
    }
}
