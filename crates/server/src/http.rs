//! A minimal HTTP/1.1 server over `std::net::TcpListener`.
//!
//! The build environment is offline and the workspace is std-only, so this
//! implements exactly the subset the daemon's JSON API needs: request-line
//! and header parsing, `Content-Length` bodies, query strings, and
//! `Connection: close` responses, served by a small fixed thread pool (one
//! acceptor, N handlers). Every connection carries one request; clients
//! reconnect per call. That keeps the parser simple and torn connections
//! harmless — the daemon's state only changes under its own lock, never
//! mid-parse.
//!
//! Hard limits (header size, body size) make a confused or adversarial
//! client a `400`/`413`, not a memory balloon — the same philosophy as the
//! hardened checkpoint parser in `argus_orchestrator::json`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Maximum accepted size of the request line + headers.
const MAX_HEAD: usize = 16 * 1024;

/// Maximum accepted request body (job specs are a few hundred bytes).
const MAX_BODY: usize = 1024 * 1024;

/// Per-connection socket timeout: a stalled client gets dropped instead of
/// pinning a handler thread forever. Long-poll waits happen *after* the
/// request is fully read, so they are not bounded by this.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string (e.g. `/jobs/7/events`).
    pub path: String,
    /// Decoded `key=value` query parameters, in order.
    pub query: Vec<(String, String)>,
    /// Raw request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First query parameter with this name, parsed as an integer.
    pub fn query_u64(&self, name: &str) -> Option<u64> {
        self.query_param(name)?.parse().ok()
    }
}

/// One response to write back. The body is always bytes; the daemon's API
/// layer fills it with compact JSON (or raw stored report bytes).
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond the always-present trio (`Content-Type`,
    /// `Content-Length`, `Connection`), e.g. `Retry-After` on a 503.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from an already-serialized document.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A raw byte-body response (artifact downloads).
    pub fn bytes(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        Self { status, content_type, headers: Vec::new(), body }
    }

    /// Adds an extra response header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The handler the server dispatches every parsed request to.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A running HTTP listener: one acceptor thread feeding `threads` handler
/// threads over a channel. Dropped connections and parse failures cost one
/// log-free error response, never a thread.
pub struct HttpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `handler` on `threads` handler threads.
    pub fn start(addr: &str, threads: usize, handler: Handler) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        // Bounded hand-off: at most one queued connection per handler
        // thread. When every handler is busy *and* the queue is full, the
        // acceptor answers 503 + `Retry-After` inline instead of letting
        // connections age out silently in an unbounded backlog.
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(threads.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..threads.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || loop {
                    let stream = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                    match stream {
                        Ok(stream) => handle_connection(stream, &handler),
                        Err(_) => break, // acceptor gone: shutdown
                    }
                })
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        match tx.try_send(stream) {
                            Ok(()) => {}
                            Err(mpsc::TrySendError::Full(mut stream)) => {
                                // Saturated: tell the client to back off
                                // rather than queueing it toward a silent
                                // socket timeout.
                                let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
                                let busy = Response::json(
                                    503,
                                    "{\"error\":\"all handlers busy\",\"code\":503}".to_owned(),
                                )
                                .with_header("Retry-After", "1");
                                let _ = busy.write_to(&mut stream);
                            }
                            // Every worker is gone: stop accepting too.
                            Err(mpsc::TrySendError::Disconnected(_)) => break,
                        }
                    }
                }
                drop(tx);
            })
        };

        Ok(Self { local_addr, stop, acceptor: Some(acceptor), workers })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, wakes the acceptor, and joins every thread.
    /// In-flight requests finish; queued-but-unhandled connections are
    /// dropped (clients see a reset and retry against the restarted
    /// daemon).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so the acceptor observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, handler: &Handler) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let response = match read_request(&mut stream) {
        Ok(Some(req)) => handler(&req),
        Ok(None) => return, // empty connection (e.g. the shutdown poke)
        Err(status) => {
            Response::json(status, format!("{{\"error\":\"malformed request\",\"code\":{status}}}"))
        }
    };
    let _ = response.write_to(&mut stream);
}

/// Reads and parses one request. `Ok(None)` is a connection that closed
/// before sending anything; `Err` carries the HTTP status to answer with.
fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, u16> {
    let mut reader = BufReader::new(stream);
    let mut head = Vec::new();
    // Read byte-wise state-machine-free: lines until the blank line.
    loop {
        let mut line = Vec::new();
        reader.read_until(b'\n', &mut line).map_err(|_| 400u16)?;
        if line.is_empty() {
            // EOF before any data (or mid-headers).
            return if head.is_empty() { Ok(None) } else { Err(400) };
        }
        head.extend_from_slice(&line);
        if head.len() > MAX_HEAD {
            return Err(413);
        }
        if line == b"\r\n" || line == b"\n" {
            break;
        }
    }
    let head = String::from_utf8(head).map_err(|_| 400u16)?;
    let mut lines = head.lines();
    let request_line = lines.next().ok_or(400u16)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(400u16)?.to_ascii_uppercase();
    let target = parts.next().ok_or(400u16)?;
    let version = parts.next().ok_or(400u16)?;
    if !version.starts_with("HTTP/1.") {
        return Err(400);
    }

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| 400u16)?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(413);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|_| 400u16)?;

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();

    Ok(Some(Request { method, path: percent_decode(path), query, body }))
}

/// Decodes `%XX` escapes and `+` (query-string space). Invalid escapes
/// pass through literally — the router will simply not match them.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h).ok().and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A tiny blocking HTTP client for tests, benches, and the smoke script's
/// in-process callers: one request per connection, mirroring the server's
/// model.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path_and_query: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path_and_query} HTTP/1.1\r\nHost: argus\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes())?;
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw)?;
    let (head, payload) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header break"))?;
    let status =
        head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
        })?;
    Ok((status, payload.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> HttpServer {
        let handler: Handler = Arc::new(|req: &Request| {
            let q = req.query.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join("&");
            Response::json(
                200,
                format!(
                    "{{\"method\":\"{}\",\"path\":\"{}\",\"query\":\"{q}\",\"body_len\":{}}}",
                    req.method,
                    req.path,
                    req.body.len()
                ),
            )
        });
        HttpServer::start("127.0.0.1:0", 2, handler).unwrap()
    }

    #[test]
    fn serves_parsed_requests() {
        let server = echo_server();
        let (status, body) =
            http_request(server.local_addr(), "GET", "/jobs/7/events?since=3&wait_ms=0", None)
                .unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"path\":\"/jobs/7/events\""), "{body}");
        assert!(body.contains("since=3"), "{body}");

        let (status, body) =
            http_request(server.local_addr(), "POST", "/jobs", Some("{\"n\":12}")).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"body_len\":8"), "{body}");
    }

    #[test]
    fn malformed_requests_get_400_not_a_crash() {
        let server = echo_server();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut out = String::new();
        let _ = BufReader::new(s).read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        // The server survives and keeps answering.
        let (status, _) = http_request(server.local_addr(), "GET", "/ok", None).unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn oversized_headers_get_413() {
        let server = echo_server();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        let huge = format!("GET / HTTP/1.1\r\nX-Filler: {}\r\n\r\n", "a".repeat(MAX_HEAD));
        s.write_all(huge.as_bytes()).unwrap();
        let mut out = String::new();
        let _ = BufReader::new(s).read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 413"), "{out}");
    }

    #[test]
    fn saturated_pool_answers_503_with_retry_after() {
        // One handler thread, one queue slot. Park the handler, fill the
        // slot, and the next connection must get an inline 503 telling
        // it when to come back — not a silent backlog timeout.
        let gate = Arc::new(AtomicBool::new(false));
        let entered = Arc::new(AtomicBool::new(false));
        let handler: Handler = {
            let gate = Arc::clone(&gate);
            let entered = Arc::clone(&entered);
            Arc::new(move |_req: &Request| {
                entered.store(true, Ordering::SeqCst);
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Response::json(200, "{}".into())
            })
        };
        let server = HttpServer::start("127.0.0.1:0", 1, handler).unwrap();
        let addr = server.local_addr();

        // Park the lone handler on a real request, and wait until it is
        // provably *inside* the handler — not merely queued.
        let parked = std::thread::spawn(move || http_request(addr, "GET", "/slow", None));
        while !entered.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(5));
        }

        // Saturate. Whether a given probe lands in the one queue slot
        // (no reply until the gate opens — a read timeout here) or
        // arrives to find the slot already full (inline 503) depends on
        // scheduling; keep timed-out sockets open so whatever they
        // occupy stays occupied, and retry. The slot holds one
        // connection, so an inline 503 must appear within a few probes.
        let mut occupying: Vec<TcpStream> = Vec::new();
        let mut verdict = None;
        for _ in 0..20 {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_millis(250))).unwrap();
            s.write_all(b"GET /now HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
            let mut out = String::new();
            let _ = BufReader::new(&s).read_to_string(&mut out);
            if out.starts_with("HTTP/1.1 503") {
                verdict = Some(out);
                break;
            }
            assert!(out.is_empty(), "unexpected reply while saturated: {out}");
            occupying.push(s);
        }
        let out = verdict.expect("no probe ever drew the inline 503");
        assert!(out.contains("Retry-After: 1"), "503 must carry Retry-After: {out}");

        // Release the handler; the parked request completes normally
        // (queued probes drain too — nobody asserts on their replies).
        gate.store(true, Ordering::SeqCst);
        let (status, _) = parked.join().unwrap().unwrap();
        assert_eq!(status, 200);
        drop(occupying);
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("%41%42"), "AB");
    }

    #[test]
    fn shutdown_joins_all_threads() {
        let mut server = echo_server();
        let addr = server.local_addr();
        server.shutdown();
        // Port is released: no thread still accepting.
        assert!(http_request(addr, "GET", "/", None).is_err());
    }
}
