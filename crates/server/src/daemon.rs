//! The daemon: a shared worker pool multiplexed across checkpointed
//! campaign jobs.
//!
//! ## Scheduling
//!
//! One scheduler thread owns admission. The ready queue orders jobs by
//! (priority desc, submission seq asc). The head is dispatched as soon
//! as at least one pool worker is free, with `min(budget, free)`
//! workers — the sharded engine accepts any worker count for any
//! (possibly resumed) campaign, so allocation is a pure scheduling
//! decision that never affects results.
//!
//! When the pool is saturated and the head outranks a running job
//! *strictly*, the lowest-priority running job is preempted: its stop
//! flag is raised, the engine checkpoints and returns `interrupted`,
//! and the job re-enters the queue with its original submission seq
//! (keeping its FIFO position). Checkpoint v3 makes this cheap and
//! safe — resuming under a different worker count is the engine's
//! bread and butter. At most one preemption is in flight at a time.
//!
//! ## Durability
//!
//! Every state transition rewrites `<state-dir>/jobs.json` atomically.
//! Running jobs checkpoint continuously. A SIGKILL at any moment loses
//! at most one checkpoint interval of work: on restart, every
//! non-terminal job re-enters the queue and resumes from its
//! checkpoint, and finished reports are served from disk.

use crate::http::{Handler, HttpServer};
use crate::jobs::{checkpoint_path, report_path, JobId, JobRow, JobSpec, JobState, JobTable};
use crate::queue::{JobQueue, QueueEntry};
use argus_faults::CampaignConfig;
use argus_orchestrator::{run_sharded, Json, OrchestratorConfig, Progress, RemoteRunStats};
use argus_remote::{run_distributed, CampaignShare, DistributedConfig};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Per-job event ring capacity. Events beyond this are dropped oldest
/// first; `events` responses flag the truncation.
const EVENT_CAP: usize = 4096;

/// How often the progress sampler looks for fresh numbers to publish.
const SAMPLE_INTERVAL: Duration = Duration::from_millis(200);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7700` (`:0` picks a free port).
    pub addr: String,
    /// Campaign worker pool size (shared by all jobs).
    pub workers: usize,
    /// HTTP handler threads.
    pub http_threads: usize,
    /// Where jobs.json, checkpoints, and reports live.
    pub state_dir: PathBuf,
    /// Per-job checkpoint flush interval. Shorter = less work lost to a
    /// crash; results are identical either way.
    pub checkpoint_interval: Duration,
    /// Remote chunk lease time-to-live for distributed jobs. A worker
    /// silent for this long forfeits its chunks (they reissue).
    pub lease_ttl: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().saturating_sub(1).max(1))
                .unwrap_or(1),
            http_threads: 4,
            state_dir: PathBuf::from("argus-serve-state"),
            checkpoint_interval: Duration::from_millis(500),
            lease_ttl: Duration::from_secs(10),
        }
    }
}

/// A job's live (non-durable) half: the durable row plus runtime
/// handles that die with the process.
pub(crate) struct LiveJob {
    /// The durable row (mirrored to jobs.json).
    pub row: JobRow,
    /// Engine stop flag for the current dispatch. Raised by cancel,
    /// preempt, and drain; the engine checkpoints and returns.
    pub stop: Arc<AtomicBool>,
    /// A client asked for cancellation (terminal; beats preempt/drain).
    pub cancel_requested: bool,
    /// The scheduler wants the workers back (job requeues afterwards).
    pub preempt_requested: bool,
    /// Pool workers currently held (0 unless running/draining).
    pub alloc: usize,
    /// Progress/state event ring: (seq, payload).
    pub events: VecDeque<(u64, Json)>,
    /// Next event sequence number to assign.
    pub next_event_seq: u64,
    /// Latest progress payload, for `GET /jobs/<id>`.
    pub last_progress: Option<Json>,
}

impl LiveJob {
    fn new(row: JobRow) -> Self {
        Self {
            row,
            stop: Arc::new(AtomicBool::new(false)),
            cancel_requested: false,
            preempt_requested: false,
            alloc: 0,
            events: VecDeque::new(),
            next_event_seq: 0,
            last_progress: None,
        }
    }

    /// First event seq still retained (older ones were dropped).
    pub fn first_retained_seq(&self) -> u64 {
        self.next_event_seq - self.events.len() as u64
    }

    fn push_event(&mut self, payload: Json) {
        let seq = self.next_event_seq;
        self.next_event_seq += 1;
        self.events.push_back((seq, payload.set("seq", seq)));
        while self.events.len() > EVENT_CAP {
            self.events.pop_front();
        }
    }

    fn push_state_event(&mut self) {
        let mut ev = Json::obj().set("kind", "state").set("state", self.row.state.label());
        if self.row.state == JobState::Running {
            ev = ev.set("workers", self.alloc);
        }
        if let Some(e) = &self.row.error {
            ev = ev.set("error", e.as_str());
        }
        self.push_event(ev);
    }
}

/// Everything behind the daemon's one state lock.
pub(crate) struct DaemonState {
    pub jobs: Vec<LiveJob>,
    pub queue: JobQueue,
    /// Free pool workers.
    pub free: usize,
    /// Drain requested: no more admissions, no more submissions.
    pub draining: bool,
    /// At most one checkpoint-backed preemption in flight.
    preempt_in_flight: bool,
    next_id: u64,
    next_seq: u64,
}

impl DaemonState {
    pub fn job(&self, id: JobId) -> Option<&LiveJob> {
        self.jobs.iter().find(|j| j.row.id == id)
    }

    fn job_mut(&mut self, id: JobId) -> Option<&mut LiveJob> {
        self.jobs.iter_mut().find(|j| j.row.id == id)
    }

    fn to_table(&self) -> JobTable {
        JobTable {
            rows: self.jobs.iter().map(|j| j.row.clone()).collect(),
            next_id: self.next_id,
            next_seq: self.next_seq,
        }
    }
}

/// Shared daemon core: state lock, wakeup condvar, config.
pub struct Daemon {
    pub(crate) cfg: ServerConfig,
    pub(crate) state: Mutex<DaemonState>,
    /// Notified on every state/event change (long-pollers) and on
    /// submissions/completions (scheduler).
    pub(crate) wake: Condvar,
    /// Daemon shutdown flag (scheduler exit).
    stop: AtomicBool,
    /// Runner thread handles, joined on drain.
    runners: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Live distributed campaigns, keyed by job id: the HTTP handlers
    /// route lease/complete/heartbeat/artifact calls through this. A
    /// job registers when its pool opens and deregisters when its run
    /// settles; a request for an absent id answers 409.
    remote: Mutex<HashMap<JobId, Arc<CampaignShare>>>,
}

/// Submission failure modes the API maps to status codes.
pub enum SubmitError {
    /// Daemon is draining; come back after restart.
    Draining,
}

/// Cancel failure modes.
pub enum CancelError {
    /// No such job.
    NotFound,
    /// Already done/failed/cancelled.
    Terminal(JobState),
}

impl Daemon {
    fn jobs_path(&self) -> PathBuf {
        self.cfg.state_dir.join("jobs.json")
    }

    /// The live share for a distributed job, if its pool is open.
    pub fn share(&self, id: JobId) -> Option<Arc<CampaignShare>> {
        self.remote.lock().unwrap_or_else(|p| p.into_inner()).get(&id).cloned()
    }

    /// Job ids currently leasable by remote workers (ascending — workers
    /// drain the oldest job first).
    pub fn leasable_jobs(&self) -> Vec<JobId> {
        let mut ids: Vec<JobId> =
            self.remote.lock().unwrap_or_else(|p| p.into_inner()).keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Persists the job table; failures are reported on stderr and do
    /// not take the daemon down (the next transition retries).
    pub(crate) fn persist(&self, st: &DaemonState) {
        if let Err(e) = st.to_table().save(&self.jobs_path()) {
            eprintln!("warning: cannot persist job table: {e}");
        }
    }

    /// Submits a validated spec; returns the new job id.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let mut st = self.state.lock().unwrap();
        if st.draining || self.stop.load(Ordering::Relaxed) {
            return Err(SubmitError::Draining);
        }
        let id = st.next_id;
        st.next_id += 1;
        let seq = st.next_seq;
        st.next_seq += 1;
        let priority = spec.priority;
        let row = JobRow { id, seq, spec, state: JobState::Queued, error: None };
        let mut job = LiveJob::new(row);
        job.push_state_event();
        st.jobs.push(job);
        st.queue.push(QueueEntry { id, seq, priority });
        self.persist(&st);
        self.wake.notify_all();
        Ok(id)
    }

    /// Requests cancellation. Queued jobs die immediately; running jobs
    /// stop at the next lease boundary and report `cancelled`.
    pub fn cancel(&self, id: JobId) -> Result<JobState, CancelError> {
        let mut st = self.state.lock().unwrap();
        let Some(job) = st.job_mut(id) else {
            return Err(CancelError::NotFound);
        };
        if job.row.state.is_terminal() {
            return Err(CancelError::Terminal(job.row.state));
        }
        job.cancel_requested = true;
        match job.row.state {
            JobState::Queued => {
                job.row.state = JobState::Cancelled;
                job.push_state_event();
                st.queue.remove(id);
                self.remove_job_files(id);
                self.persist(&st);
            }
            _ => {
                // Running or draining: raise the stop flag and let the
                // runner classify the interruption.
                let job = st.job_mut(id).unwrap();
                job.stop.store(true, Ordering::Relaxed);
                job.push_event(Json::obj().set("kind", "cancel_requested"));
            }
        }
        let state = st.job(id).unwrap().row.state;
        self.wake.notify_all();
        Ok(state)
    }

    /// Requests a graceful drain (same as SIGTERM): stop admitting,
    /// raise every running job's stop flag. The owner must still call
    /// [`Server::drain`] to join workers and persist.
    pub fn request_drain(&self) {
        let mut st = self.state.lock().unwrap();
        st.draining = true;
        for job in &mut st.jobs {
            if matches!(job.row.state, JobState::Running | JobState::Draining) {
                job.stop.store(true, Ordering::Relaxed);
            }
        }
        self.persist(&st);
        self.wake.notify_all();
    }

    /// Whether a drain has been requested (by HTTP or signal).
    pub fn drain_requested(&self) -> bool {
        self.state.lock().unwrap().draining
    }

    /// Whether all formerly-running jobs have settled (no worker held).
    pub fn quiesced(&self) -> bool {
        let st = self.state.lock().unwrap();
        st.free == self.cfg.workers.max(1) || st.jobs.iter().all(|j| j.alloc == 0)
    }

    fn remove_job_files(&self, id: JobId) {
        let ckpt = checkpoint_path(&self.cfg.state_dir, id);
        let _ = std::fs::remove_file(&ckpt);
        let _ = std::fs::remove_file(ckpt.with_extension("bak"));
    }

    /// The scheduler: admission + preemption until `stop` is raised.
    fn scheduler(self: &Arc<Self>) {
        let mut st = self.state.lock().unwrap();
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            if !st.draining && self.try_dispatch(&mut st) {
                continue;
            }
            // Occasionally reap finished runner handles so a long-lived
            // daemon does not accumulate them (drop detaches).
            if let Ok(mut runners) = self.runners.try_lock() {
                runners.retain(|h| !h.is_finished());
            }
            st = self.wake.wait_timeout(st, Duration::from_millis(200)).unwrap().0;
        }
    }

    /// One admission step. Returns true when something was dispatched
    /// (caller loops to try more).
    fn try_dispatch(self: &Arc<Self>, st: &mut MutexGuard<'_, DaemonState>) -> bool {
        let Some(&head) = st.queue.peek() else {
            return false;
        };
        // Remote-only distributed jobs (budget 0) hold no pool workers,
        // so they dispatch even when the pool is saturated — their
        // execution capacity lives in `argus worker` processes.
        let remote_only = st
            .job(head.id)
            .map(|j| j.row.spec.distributed && j.row.spec.budget == 0)
            .unwrap_or(false);
        if st.free >= 1 || remote_only {
            let head = st.queue.pop_front().unwrap();
            let alloc = {
                let free = st.free;
                let job = st.job_mut(head.id).expect("queued job exists");
                let alloc = if remote_only { 0 } else { job.row.spec.budget.min(free).max(1) };
                job.alloc = alloc;
                job.stop = Arc::new(AtomicBool::new(false));
                job.row.state = JobState::Running;
                job.push_state_event();
                alloc
            };
            st.free -= alloc;
            self.persist(st);
            self.wake.notify_all();
            let daemon = Arc::clone(self);
            let handle = std::thread::spawn(move || daemon.run_job(head.id));
            self.runners.lock().unwrap().push(handle);
            return true;
        }
        // Saturated. Preempt the lowest-priority running job if the head
        // strictly outranks it; its workers come back at the next lease
        // boundary and the head dispatches then.
        if !st.preempt_in_flight {
            let victim = st
                .jobs
                .iter_mut()
                .filter(|j| j.row.state == JobState::Running && !j.preempt_requested)
                .min_by_key(|j| (j.row.spec.priority, std::cmp::Reverse(j.row.seq)));
            if let Some(victim) = victim {
                if victim.row.spec.priority < head.priority {
                    victim.preempt_requested = true;
                    victim.stop.store(true, Ordering::Relaxed);
                    victim.push_event(Json::obj().set("kind", "preempting"));
                    st.preempt_in_flight = true;
                }
            }
        }
        false
    }

    /// Runs one dispatched job to its next settle point (done, failed,
    /// cancelled, preempted, or drained) on the current thread.
    fn run_job(self: &Arc<Self>, id: JobId) {
        let (spec, stop, alloc) = {
            let st = self.state.lock().unwrap();
            let job = st.job(id).expect("dispatched job exists");
            (job.row.spec.clone(), Arc::clone(&job.stop), job.alloc)
        };
        let ckpt = checkpoint_path(&self.cfg.state_dir, id);

        // Mirror one-shot `argus campaign` exactly: same defaults, same
        // overrides — this is what makes the stored report byte-identical
        // (outside the volatile "run" section) to the CLI's.
        let mut cfg = CampaignConfig {
            injections: spec.injections,
            kind: spec.kind,
            snapshot_every: spec.snapshot_every,
            ..Default::default()
        };
        cfg.seed = spec.seed;
        cfg.invariants = spec.invariants;
        cfg.store = spec.store;
        let mut ocfg = OrchestratorConfig {
            shards: alloc,
            checkpoint_path: Some(ckpt.clone()),
            resume: ckpt.exists() || ckpt.with_extension("bak").exists(),
            checkpoint_interval: self.cfg.checkpoint_interval,
            ..Default::default()
        };
        if let Some(c) = spec.chunk {
            ocfg.chunk = c;
        }

        // Distributed jobs run the coordinator loop on this thread; the
        // progress tracker always has at least one shard because remote
        // deltas are replayed into shard 0 even when alloc == 0.
        let progress = Progress::new(if spec.distributed { alloc.max(1) } else { alloc });
        let sampler_stop = AtomicBool::new(false);
        let result = std::thread::scope(|scope| {
            scope.spawn(|| self.sample_progress(id, &progress, &sampler_stop));
            let result = catch_unwind(AssertUnwindSafe(|| {
                if spec.distributed {
                    let dcfg = DistributedConfig { job: id, lease_ttl: self.cfg.lease_ttl };
                    run_distributed(
                        &argus_workloads::stress(),
                        &cfg,
                        &ocfg,
                        &dcfg,
                        &stop,
                        &progress,
                        &|share: &Arc<CampaignShare>| {
                            self.remote
                                .lock()
                                .unwrap_or_else(|p| p.into_inner())
                                .insert(id, Arc::clone(share));
                            let mut st = self.state.lock().unwrap();
                            if let Some(job) = st.job_mut(id) {
                                job.push_event(
                                    Json::obj()
                                        .set("kind", "distributed_open")
                                        .set("lease_ttl_ms", self.cfg.lease_ttl.as_millis() as u64),
                                );
                            }
                            self.wake.notify_all();
                        },
                    )
                } else {
                    run_sharded(&argus_workloads::stress(), &cfg, &ocfg, &stop, &progress)
                }
            }));
            sampler_stop.store(true, Ordering::Relaxed);
            result
        });
        if spec.distributed {
            self.remote.lock().unwrap_or_else(|p| p.into_inner()).remove(&id);
        }

        let mut st = self.state.lock().unwrap();
        st.free += alloc;
        let draining = st.draining || self.stop.load(Ordering::Relaxed);
        let job = st.job_mut(id).expect("job survives its run");
        job.alloc = 0;
        let was_preempt = std::mem::take(&mut job.preempt_requested);
        let mut requeue = None;
        match result {
            Err(panic) => {
                job.row.state = JobState::Failed;
                job.row.error = Some(panic_message(panic.as_ref()));
            }
            Ok(Err(e)) => {
                job.row.state = JobState::Failed;
                job.row.error = Some(e.to_string());
            }
            Ok(Ok(rep)) if rep.interrupted => {
                if job.cancel_requested {
                    job.row.state = JobState::Cancelled;
                    self.remove_job_files(id);
                } else if draining {
                    // Persisted as resumable work; restart requeues it.
                    job.row.state = JobState::Draining;
                } else {
                    // Preempted: back in line at its original position.
                    job.row.state = JobState::Queued;
                    requeue =
                        Some(QueueEntry { id, seq: job.row.seq, priority: job.row.spec.priority });
                }
            }
            Ok(Ok(rep)) => {
                let bytes = format!("{}\n", rep.to_json().to_string_compact());
                match std::fs::write(report_path(&self.cfg.state_dir, id), bytes) {
                    Ok(()) => {
                        job.row.state = JobState::Done;
                        self.remove_job_files(id);
                    }
                    Err(e) => {
                        job.row.state = JobState::Failed;
                        job.row.error = Some(format!("cannot store report: {e}"));
                    }
                }
            }
        }
        job.push_state_event();
        if let Some(entry) = requeue {
            st.queue.push(entry);
        }
        if was_preempt {
            st.preempt_in_flight = false;
        }
        self.persist(&st);
        self.wake.notify_all();
    }

    /// Publishes a progress event whenever the numbers move, until the
    /// runner raises `done`. For distributed jobs it also watches the
    /// share's remote accounting and turns deltas into discrete
    /// `worker_connected` / `lease_expired` events.
    fn sample_progress(&self, id: JobId, progress: &Progress, done: &AtomicBool) {
        let mut last_done = u64::MAX;
        let mut last_remote: Option<RemoteRunStats> = None;
        let mut last_violations = 0u64;
        while !done.load(Ordering::Relaxed) {
            std::thread::sleep(SAMPLE_INTERVAL);
            let snap = progress.snapshot();
            let remote = self.share(id).map(|s| (s.stats(), s.outstanding()));
            let remote_moved = remote.as_ref().map(|(s, _)| s) != last_remote.as_ref();
            let violations_moved = snap.invariant_violations > last_violations;
            if snap.done == last_done && !remote_moved && !violations_moved {
                continue;
            }
            last_done = snap.done;
            let mut payload = Json::obj()
                .set("kind", "progress")
                .set("done", snap.done)
                .set("total", snap.total)
                .set("rate", snap.rate)
                .set("leases", snap.leases)
                .set("steals", snap.steals)
                .set("busy_pct", snap.busy_pct)
                .set("elapsed_ms", snap.elapsed.as_millis() as u64);
            if snap.invariant_violations > 0 {
                payload = payload.set("invariant_violations", snap.invariant_violations);
            }
            let mut extra: Vec<Json> = Vec::new();
            // Violations become discrete events so a streaming client
            // sees them the moment they happen — identical for local,
            // hybrid, and remote execution, since remote workers' deltas
            // funnel through the same progress counter.
            if violations_moved {
                extra.push(
                    Json::obj()
                        .set("kind", "invariant_violation")
                        .set("violations", snap.invariant_violations)
                        .set("new", snap.invariant_violations - last_violations),
                );
                last_violations = snap.invariant_violations;
            }
            if let Some((stats, outstanding)) = &remote {
                payload =
                    payload.set("remote", stats.to_json().set("outstanding", *outstanding as u64));
                let prev = last_remote.take().unwrap_or_default();
                if stats.workers_seen > prev.workers_seen {
                    extra.push(
                        Json::obj()
                            .set("kind", "worker_connected")
                            .set("workers_seen", stats.workers_seen),
                    );
                }
                if stats.expired_leases > prev.expired_leases {
                    extra.push(
                        Json::obj()
                            .set("kind", "lease_expired")
                            .set("expired_leases", stats.expired_leases),
                    );
                }
                last_remote = Some(stats.clone());
            }
            let mut st = self.state.lock().unwrap();
            if let Some(job) = st.job_mut(id) {
                job.last_progress = Some(payload.clone());
                for ev in extra {
                    job.push_event(ev);
                }
                job.push_event(payload);
            }
            self.wake.notify_all();
        }
    }
}

/// Best-effort panic payload rendering.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "campaign panicked".to_string()
    }
}

/// A running daemon: HTTP front end + scheduler + worker pool.
pub struct Server {
    daemon: Arc<Daemon>,
    http: Option<HttpServer>,
    scheduler: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Loads (or creates) the state dir, resumes any unfinished jobs,
    /// binds the listener, and starts scheduling.
    pub fn start(cfg: ServerConfig) -> Result<Server, String> {
        if cfg.workers < 1 {
            return Err("workers must be >= 1".into());
        }
        if cfg.http_threads < 1 {
            return Err("http threads must be >= 1".into());
        }
        std::fs::create_dir_all(&cfg.state_dir)
            .map_err(|e| format!("cannot create state dir {}: {e}", cfg.state_dir.display()))?;
        let table =
            JobTable::load(&cfg.state_dir.join("jobs.json"), cfg.workers)?.unwrap_or_default();
        let mut queue = JobQueue::new();
        let mut jobs = Vec::with_capacity(table.rows.len());
        for row in table.rows {
            if row.state == JobState::Queued {
                queue.push(QueueEntry { id: row.id, seq: row.seq, priority: row.spec.priority });
            }
            jobs.push(LiveJob::new(row));
        }
        let resumed = queue.len();
        let daemon = Arc::new(Daemon {
            state: Mutex::new(DaemonState {
                jobs,
                queue,
                free: cfg.workers,
                draining: false,
                preempt_in_flight: false,
                next_id: table.next_id,
                next_seq: table.next_seq,
            }),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            runners: Mutex::new(Vec::new()),
            remote: Mutex::new(HashMap::new()),
            cfg,
        });
        if resumed > 0 {
            eprintln!("argus serve: resuming {resumed} unfinished job(s) from checkpoints");
        }
        let sched = {
            let daemon = Arc::clone(&daemon);
            std::thread::spawn(move || daemon.scheduler())
        };
        let handler: Handler = crate::api::router(Arc::clone(&daemon));
        let http = HttpServer::start(&daemon.cfg.addr, daemon.cfg.http_threads, handler)
            .map_err(|e| format!("cannot bind {}: {e}", daemon.cfg.addr))?;
        Ok(Server { daemon, http: Some(http), scheduler: Some(sched) })
    }

    /// The bound listen address (useful with `:0`).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.http.as_ref().expect("server is live").local_addr()
    }

    /// Shared core, for embedding and tests.
    pub fn daemon(&self) -> &Arc<Daemon> {
        &self.daemon
    }

    /// Whether a drain was requested over HTTP or by signal.
    pub fn drain_requested(&self) -> bool {
        self.daemon.drain_requested()
    }

    /// Graceful shutdown: stop admitting, checkpoint and settle every
    /// running job, persist the table, close the listener. Queued and
    /// interrupted jobs resume on the next start.
    pub fn drain(&mut self) {
        self.daemon.request_drain();
        self.daemon.stop.store(true, Ordering::Relaxed);
        self.daemon.wake.notify_all();
        if let Some(sched) = self.scheduler.take() {
            let _ = sched.join();
        }
        loop {
            let handles: Vec<_> = self.daemon.runners.lock().unwrap().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        let st = self.daemon.state.lock().unwrap();
        self.daemon.persist(&st);
        drop(st);
        if let Some(mut http) = self.http.take() {
            http.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.http.is_some() {
            self.drain();
        }
    }
}
