//! HTTP API: routes and JSON shapes.
//!
//! Every response is JSON. Errors are `{"error": "...", "code": N}` with
//! a matching HTTP status. See `EXPERIMENTS.md` for the full reference.
//!
//! | Method | Path                      | What                                   |
//! |--------|---------------------------|----------------------------------------|
//! | GET    | `/healthz`                | liveness probe                         |
//! | GET    | `/status`                 | pool + queue summary                   |
//! | POST   | `/jobs`                   | submit a campaign (`201 {"id": N}`)    |
//! | GET    | `/jobs`                   | list all jobs                          |
//! | GET    | `/jobs/<id>`              | one job: state, spec, latest progress  |
//! | GET    | `/jobs/<id>/events`       | incremental events (`since`, `wait_ms`)|
//! | GET    | `/jobs/<id>/report`       | stored report bytes (done jobs only)   |
//! | POST   | `/jobs/<id>/cancel`       | cancel queued or running job           |
//! | POST   | `/drain`                  | graceful shutdown request              |
//!
//! Distributed-worker endpoints (see `argus_remote::protocol`):
//!
//! | Method | Path                          | What                                |
//! |--------|-------------------------------|-------------------------------------|
//! | GET    | `/work`                       | leasable distributed job ids        |
//! | GET    | `/jobs/<id>/manifest`         | campaign manifest for cold start    |
//! | GET    | `/jobs/<id>/artifacts/<crc>`  | raw ARGSNAP artifact body           |
//! | POST   | `/jobs/<id>/lease`            | lease one injection chunk           |
//! | POST   | `/jobs/<id>/complete`         | post a chunk's merged tally         |
//! | POST   | `/jobs/<id>/heartbeat`        | renew held leases                   |

use crate::daemon::{CancelError, Daemon, SubmitError};
use crate::http::{Handler, Request, Response};
use crate::jobs::{report_path, JobId, JobSpec, JobState};
use argus_orchestrator::Json;
use argus_remote::{CampaignShare, CompleteRequest, CompleteVerdict, LOCAL_PREFIX};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Longest long-poll wait the server honours, however large `wait_ms` is.
const MAX_WAIT: Duration = Duration::from_secs(10);

/// JSON error envelope + status code.
fn error(status: u16, msg: &str) -> Response {
    let doc = Json::obj().set("error", msg).set("code", u64::from(status));
    Response::json(status, doc.to_string_compact())
}

fn ok(doc: Json) -> Response {
    Response::json(200, doc.to_string_compact())
}

/// Builds the request handler closure over the shared daemon core.
pub fn router(daemon: Arc<Daemon>) -> Handler {
    Arc::new(move |req: &Request| route(&daemon, req))
}

fn route(daemon: &Arc<Daemon>, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => ok(Json::obj().set("ok", true)),
        ("GET", ["status"]) => status(daemon),
        ("POST", ["jobs"]) => submit(daemon, req),
        ("GET", ["jobs"]) => list(daemon),
        ("GET", ["jobs", id]) => with_id(id, |id| detail(daemon, id)),
        ("GET", ["jobs", id, "events"]) => with_id(id, |id| events(daemon, id, req)),
        ("GET", ["jobs", id, "report"]) => with_id(id, |id| report(daemon, id)),
        ("POST", ["jobs", id, "cancel"]) => with_id(id, |id| cancel(daemon, id)),
        ("POST", ["drain"]) => drain(daemon),
        ("GET", ["work"]) => work(daemon),
        ("GET", ["jobs", id, "manifest"]) => with_id(id, |id| manifest(daemon, id)),
        ("GET", ["jobs", id, "artifacts", hash]) => with_id(id, |id| artifact(daemon, id, hash)),
        ("POST", ["jobs", id, "lease"]) => with_id(id, |id| lease(daemon, id, req)),
        ("POST", ["jobs", id, "complete"]) => with_id(id, |id| complete(daemon, id, req)),
        ("POST", ["jobs", id, "heartbeat"]) => with_id(id, |id| heartbeat(daemon, id, req)),
        // Known paths with the wrong verb are 405, everything else 404.
        (_, ["healthz" | "status" | "jobs" | "drain" | "work", ..]) => {
            error(405, "method not allowed for this path")
        }
        _ => error(404, "no such endpoint"),
    }
}

fn with_id(raw: &str, f: impl FnOnce(JobId) -> Response) -> Response {
    match raw.parse::<JobId>() {
        Ok(id) => f(id),
        Err(_) => error(400, "job id must be an integer"),
    }
}

fn submit(daemon: &Arc<Daemon>, req: &Request) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return error(400, "body must be UTF-8 JSON"),
    };
    let doc = match Json::parse(text) {
        Ok(d) => d,
        Err(e) => return error(400, &format!("body is not valid JSON: {e}")),
    };
    let spec = match JobSpec::from_json(&doc, daemon.cfg.workers) {
        Ok(s) => s,
        Err(e) => return error(400, &e),
    };
    match daemon.submit(spec) {
        Ok(id) => Response::json(201, Json::obj().set("id", id).to_string_compact()),
        Err(SubmitError::Draining) => error(503, "daemon is draining; not accepting jobs"),
    }
}

fn status(daemon: &Arc<Daemon>) -> Response {
    let st = daemon.state.lock().unwrap();
    let mut by_state = Json::obj();
    for s in [
        JobState::Queued,
        JobState::Running,
        JobState::Draining,
        JobState::Done,
        JobState::Failed,
        JobState::Cancelled,
    ] {
        let n = st.jobs.iter().filter(|j| j.row.state == s).count();
        by_state = by_state.set(s.label(), n);
    }
    let queue: Vec<Json> = st.queue.iter().map(|e| Json::from(e.id)).collect();
    ok(Json::obj()
        .set("workers", daemon.cfg.workers)
        .set("free_workers", st.free)
        .set("draining", st.draining)
        .set("jobs", by_state)
        .set("queue", Json::Arr(queue)))
}

/// Summary row shared by the list and detail endpoints.
fn job_summary(job: &crate::daemon::LiveJob) -> Json {
    let mut doc = Json::obj()
        .set("id", job.row.id)
        .set("state", job.row.state.label())
        .set("priority", u64::from(job.row.spec.priority))
        .set("seq", job.row.seq);
    if job.alloc > 0 {
        doc = doc.set("workers", job.alloc);
    }
    if let Some(e) = &job.row.error {
        doc = doc.set("error", e.as_str());
    }
    doc
}

fn list(daemon: &Arc<Daemon>) -> Response {
    let st = daemon.state.lock().unwrap();
    let jobs: Vec<Json> = st.jobs.iter().map(job_summary).collect();
    ok(Json::obj().set("jobs", Json::Arr(jobs)))
}

fn detail(daemon: &Arc<Daemon>, id: JobId) -> Response {
    let st = daemon.state.lock().unwrap();
    let Some(job) = st.job(id) else {
        return error(404, "no such job");
    };
    let mut doc = job_summary(job)
        .set("spec", job.row.spec.to_json())
        .set("next_since", job.next_event_seq)
        .set("report_ready", job.row.state == JobState::Done);
    if let Some(p) = &job.last_progress {
        doc = doc.set("progress", p.clone());
    }
    ok(doc)
}

/// Incremental event fetch with optional long-poll: returns all events
/// with `seq >= since`; when there are none yet, waits up to
/// `min(wait_ms, 10s)` for one to arrive. `truncated` signals that the
/// ring dropped events the cursor never saw.
fn events(daemon: &Arc<Daemon>, id: JobId, req: &Request) -> Response {
    let since = req.query_u64("since").unwrap_or(0);
    let wait = Duration::from_millis(req.query_u64("wait_ms").unwrap_or(0)).min(MAX_WAIT);
    let deadline = Instant::now() + wait;

    let mut st = daemon.state.lock().unwrap();
    loop {
        let Some(job) = st.job(id) else {
            return error(404, "no such job");
        };
        let fresh = job.next_event_seq > since;
        let terminal = job.row.state.is_terminal();
        if fresh || terminal || Instant::now() >= deadline {
            let events: Vec<Json> = job
                .events
                .iter()
                .filter(|(seq, _)| *seq >= since)
                .map(|(_, ev)| ev.clone())
                .collect();
            let truncated = since < job.first_retained_seq();
            return ok(Json::obj()
                .set("events", Json::Arr(events))
                .set("next_since", job.next_event_seq)
                .set("truncated", truncated)
                .set("state", job.row.state.label()));
        }
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (guard, _) = daemon.wake.wait_timeout(st, timeout).unwrap();
        st = guard;
    }
}

fn report(daemon: &Arc<Daemon>, id: JobId) -> Response {
    let state = {
        let st = daemon.state.lock().unwrap();
        match st.job(id) {
            None => return error(404, "no such job"),
            Some(job) => job.row.state,
        }
    };
    if state != JobState::Done {
        return error(409, &format!("job is {}, report only exists once done", state.label()));
    }
    match std::fs::read(report_path(&daemon.cfg.state_dir, id)) {
        Ok(bytes) => Response::bytes(200, "application/json", bytes),
        Err(e) => error(500, &format!("report missing from state dir: {e}")),
    }
}

fn cancel(daemon: &Arc<Daemon>, id: JobId) -> Response {
    match daemon.cancel(id) {
        Ok(state) => ok(Json::obj().set("id", id).set("state", state.label())),
        Err(CancelError::NotFound) => error(404, "no such job"),
        Err(CancelError::Terminal(s)) => error(409, &format!("job is already {}", s.label())),
    }
}

fn drain(daemon: &Arc<Daemon>) -> Response {
    daemon.request_drain();
    ok(Json::obj().set("draining", true))
}

// ---------------------------------------------------------------- remote

fn work(daemon: &Arc<Daemon>) -> Response {
    let jobs: Vec<Json> = daemon.leasable_jobs().into_iter().map(Json::from).collect();
    ok(Json::obj().set("jobs", Json::Arr(jobs)))
}

/// The open lease pool for a distributed job, or the error that explains
/// its absence: 404 for an unknown id, 409 for a job that exists but is
/// not currently leasable (not distributed, queued, or already settled).
fn open_share(daemon: &Arc<Daemon>, id: JobId) -> Result<Arc<CampaignShare>, Response> {
    if let Some(share) = daemon.share(id) {
        return Ok(share);
    }
    let st = daemon.state.lock().unwrap();
    Err(match st.job(id) {
        None => error(404, "no such job"),
        Some(_) => error(409, "job has no open lease pool"),
    })
}

fn body_json(req: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&req.body).map_err(|_| error(400, "body must be UTF-8 JSON"))?;
    Json::parse(text).map_err(|e| error(400, &format!("body is not valid JSON: {e}")))
}

/// The worker name from a lease/heartbeat body. The `local:` namespace
/// belongs to the coordinator's own pool threads; a remote worker
/// claiming it would skew the remote/local accounting split.
fn worker_name(doc: &Json) -> Result<String, Response> {
    let name = doc
        .get("worker")
        .and_then(Json::as_str)
        .ok_or_else(|| error(400, "body must carry a `worker` name"))?;
    if name.is_empty() || name.starts_with(LOCAL_PREFIX) {
        return Err(error(400, "worker name must be non-empty and not use the `local:` prefix"));
    }
    Ok(name.to_owned())
}

fn manifest(daemon: &Arc<Daemon>, id: JobId) -> Response {
    match open_share(daemon, id) {
        Ok(share) => ok(share.manifest.to_json()),
        Err(resp) => resp,
    }
}

fn artifact(daemon: &Arc<Daemon>, id: JobId, hash: &str) -> Response {
    let share = match open_share(daemon, id) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    match share.artifact(hash) {
        Some(bytes) => Response::bytes(200, "application/octet-stream", bytes),
        None => error(404, "no artifact with that hash"),
    }
}

fn lease(daemon: &Arc<Daemon>, id: JobId, req: &Request) -> Response {
    let share = match open_share(daemon, id) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let worker = match body_json(req).and_then(|doc| worker_name(&doc)) {
        Ok(w) => w,
        Err(resp) => return resp,
    };
    let reply = share.lease(&worker, Instant::now());
    daemon.wake.notify_all();
    ok(reply.to_json())
}

fn complete(daemon: &Arc<Daemon>, id: JobId, req: &Request) -> Response {
    let share = match open_share(daemon, id) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let doc = match body_json(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    let post = match CompleteRequest::from_json(&doc) {
        Ok(p) => p,
        Err(e) => return error(400, &e),
    };
    if post.worker.starts_with(LOCAL_PREFIX) {
        return error(400, "worker name must not use the `local:` prefix");
    }
    let verdict = share.complete(&post.worker, post.chunk, &post.range, &post.tally);
    // Absorb the worker's invariant delta only for fresh work — a
    // duplicate post's checks already counted when it first landed.
    if matches!(verdict, CompleteVerdict::Accepted { .. }) {
        share.absorb_invariants(post.invariants);
        share.note_artifact_cache_hits(post.artifact_cache_hits);
    }
    daemon.wake.notify_all();
    match CampaignShare::reply_for(&verdict) {
        Ok(reply) => ok(reply.to_json()),
        Err(msg) => error(409, &format!("completion conflicts with the lease ledger: {msg}")),
    }
}

fn heartbeat(daemon: &Arc<Daemon>, id: JobId, req: &Request) -> Response {
    let share = match open_share(daemon, id) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let doc = match body_json(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    let worker = match worker_name(&doc) {
        Ok(w) => w,
        Err(resp) => return resp,
    };
    let mut chunks = Vec::new();
    if let Some(arr) = doc.get("chunks").and_then(Json::as_arr) {
        for c in arr {
            match c.as_u64() {
                Some(v) => chunks.push(v),
                None => return error(400, "`chunks` must be an array of chunk ids"),
            }
        }
    }
    let renewed = share.heartbeat(&worker, &chunks, Instant::now());
    ok(Json::obj().set("renewed", renewed as u64).set("ttl_ms", share.ttl_ms()))
}
