//! `argus-server`: campaign-as-a-service.
//!
//! The sharded fault-injection engine (`argus-orchestrator`) already
//! takes an external stop flag and progress sink and checkpoints its
//! work continuously — this crate wraps it in a persistent daemon:
//!
//! - **HTTP/JSON API** ([`http`], [`api`]): submit, inspect, stream,
//!   cancel, and drain campaigns over plain HTTP/1.1 (std-only; the
//!   build environment is offline).
//! - **Multi-tenant scheduling** ([`queue`], [`daemon`]): a shared
//!   worker pool, strict priorities with FIFO within a class, per-job
//!   worker budgets, and checkpoint-backed preemption so a big
//!   campaign cannot starve a smaller, more urgent one.
//! - **Crash safety** ([`jobs`]): every transition persists an
//!   atomically-written job table; every running job is backed by
//!   checkpoint v3. SIGKILL the daemon at any moment and a restart
//!   resumes all in-flight work, losing at most one checkpoint
//!   interval per job.
//!
//! The identity guarantee: a report fetched from
//! `GET /jobs/<id>/report` is byte-identical — outside the volatile
//! `"run"` section — to a one-shot `argus campaign --json` run with
//! the same spec, whatever scheduling, preemption, or crashes happened
//! in between. That falls out of the engine's determinism (per-
//! injection RNG streams, commutative tallies) and is locked in by
//! tests here and by `scripts/serve_smoke.sh` in CI.

pub mod api;
pub mod daemon;
pub mod http;
pub mod jobs;
pub mod queue;

pub use daemon::{Daemon, Server, ServerConfig};
pub use http::http_request;
pub use jobs::{JobId, JobSpec, JobState};
