//! Distributed-execution end-to-end tests over real HTTP: remote
//! workers cold-start from a URL, lease chunks, and post tallies back —
//! and the merged report is byte-identical to a one-shot run no matter
//! how many workers join, crash, or repeat themselves.

use argus_faults::CampaignConfig;
use argus_orchestrator::{
    run_sharded, tally_to_json, CampaignTally, Json, OrchestratorConfig, Progress,
};
use argus_server::http::http_request;
use argus_server::{Server, ServerConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::time::{Duration, Instant};

fn state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("argus-dist-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Short lease TTL so a zombie worker's chunks reissue within the test.
fn start(name: &str, workers: usize) -> (Server, SocketAddr, PathBuf) {
    let dir = state_dir(name);
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        http_threads: 4,
        state_dir: dir.clone(),
        checkpoint_interval: Duration::from_millis(100),
        lease_ttl: Duration::from_millis(500),
    })
    .unwrap();
    let addr = server.addr();
    (server, addr, dir)
}

fn get(addr: SocketAddr, path: &str) -> (u16, Json) {
    let (status, body) = http_request(addr, "GET", path, None).unwrap();
    (status, Json::parse(&body).unwrap_or(Json::Null))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Json) {
    let (status, body) = http_request(addr, "POST", path, Some(body)).unwrap();
    (status, Json::parse(&body).unwrap_or(Json::Null))
}

fn submit(addr: SocketAddr, spec: &str) -> u64 {
    let (status, doc) = post(addr, "/jobs", spec);
    assert_eq!(status, 201, "{doc:?}");
    doc.get("id").and_then(Json::as_u64).unwrap()
}

fn wait_for_state(addr: SocketAddr, id: u64, want: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, doc) = get(addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200, "{doc:?}");
        let state = doc.get("state").and_then(Json::as_str).unwrap().to_owned();
        if state == want {
            return;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in `{state}` waiting for `{want}`");
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// Blocks until the job's lease pool is open (listed under `/work`).
fn wait_leasable(addr: SocketAddr, id: u64, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, doc) = get(addr, "/work");
        assert_eq!(status, 200, "{doc:?}");
        let listed = doc
            .get("jobs")
            .and_then(Json::as_arr)
            .map(|js| js.iter().any(|j| j.as_u64() == Some(id)))
            .unwrap_or(false);
        if listed {
            return;
        }
        assert!(Instant::now() < deadline, "job {id} never became leasable");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn one_shot_payload(n: usize, seed: u64) -> String {
    let mut cfg = CampaignConfig { injections: n, ..Default::default() };
    cfg.seed = seed;
    let ocfg = OrchestratorConfig { shards: 1, ..Default::default() };
    let progress = Progress::new(1);
    let rep =
        run_sharded(&argus_workloads::stress(), &cfg, &ocfg, &AtomicBool::new(false), &progress)
            .unwrap();
    rep.to_json().without("run").to_string_compact()
}

fn fetch_report(addr: SocketAddr, id: u64) -> String {
    let (status, body) = http_request(addr, "GET", &format!("/jobs/{id}/report"), None).unwrap();
    assert_eq!(status, 200, "{body}");
    body
}

fn spawn_worker(
    addr: SocketAddr,
    job: u64,
    name: &str,
    stop: &'static AtomicBool,
) -> std::thread::JoinHandle<argus_remote::WorkerSummary> {
    let wcfg = argus_remote::WorkerConfig {
        connect: addr,
        workers: 1,
        poll: Duration::from_millis(25),
        job: Some(job),
        name: name.to_owned(),
        cache_dir: None,
    };
    std::thread::spawn(move || argus_remote::run_worker(&wcfg, stop).expect("worker run"))
}

/// The tentpole identity bar: a hybrid run (1 daemon worker + 2 remote
/// workers over loopback, plus one zombie worker that leases a chunk and
/// vanishes) stores a report byte-identical to a one-shot `argus
/// campaign --json`, modulo the volatile `run` section — and the `run`
/// section accounts for the zombie's expired lease.
#[test]
fn hybrid_run_with_zombie_worker_matches_one_shot() {
    static STOP: AtomicBool = AtomicBool::new(false);
    let (n, seed) = (60usize, 7u64);
    let (mut server, addr, dir) = start("zombie", 1);
    let id = submit(
        addr,
        &format!(r#"{{"n": {n}, "seed": {seed}, "distributed": true, "budget": 1, "chunk": 4}}"#),
    );
    wait_leasable(addr, id, Duration::from_secs(120));

    // A zombie worker grabs one chunk and is never heard from again —
    // the campaign cannot finish until its lease expires and reissues.
    let (status, grant) = post(addr, &format!("/jobs/{id}/lease"), r#"{"worker":"zombie"}"#);
    assert_eq!(status, 200, "{grant:?}");
    assert!(grant.get("chunk").and_then(Json::as_u64).is_some(), "pool drained early: {grant:?}");

    let w1 = spawn_worker(addr, id, "alpha", &STOP);
    let w2 = spawn_worker(addr, id, "beta", &STOP);
    wait_for_state(addr, id, "done", Duration::from_secs(300));
    let (s1, s2) = (w1.join().unwrap(), w2.join().unwrap());
    assert!(s1.chunks + s2.chunks >= 1, "no remote chunk landed: {s1:?} {s2:?}");

    let report = fetch_report(addr, id);
    let doc = Json::parse(&report).unwrap();
    assert_eq!(doc.clone().without("run").to_string_compact(), one_shot_payload(n, seed));

    // The volatile section carries the distributed accounting.
    let remote = doc.get("run").and_then(|r| r.get("remote")).expect("run.remote present");
    let stat = |k: &str| remote.get(k).and_then(Json::as_u64).unwrap();
    assert!(stat("workers_seen") >= 3, "alpha, beta, zombie: {remote:?}");
    assert!(stat("expired_leases") >= 1, "zombie lease must expire: {remote:?}");
    assert!(stat("remote_chunks") >= 1, "{remote:?}");
    assert!(stat("artifact_fetches") >= 2, "both live workers cold-start: {remote:?}");

    server.drain();
    let _ = std::fs::remove_dir_all(dir);
}

/// Remote-only mode: `budget: 0` holds no pool workers; a single remote
/// worker does all the work and the report still matches one-shot.
#[test]
fn remote_only_job_runs_with_zero_local_workers() {
    static STOP: AtomicBool = AtomicBool::new(false);
    let (n, seed) = (24usize, 3u64);
    let (mut server, addr, dir) = start("remote-only", 1);
    let id =
        submit(addr, &format!(r#"{{"n": {n}, "seed": {seed}, "distributed": true, "budget": 0}}"#));
    wait_leasable(addr, id, Duration::from_secs(120));

    let w = spawn_worker(addr, id, "solo", &STOP);
    wait_for_state(addr, id, "done", Duration::from_secs(300));
    let summary = w.join().unwrap();
    assert!(summary.injections >= n as u64, "solo worker ran everything: {summary:?}");

    let doc = Json::parse(&fetch_report(addr, id)).unwrap();
    assert_eq!(doc.clone().without("run").to_string_compact(), one_shot_payload(n, seed));
    let remote = doc.get("run").and_then(|r| r.get("remote")).expect("run.remote present");
    assert_eq!(remote.get("local_chunks").and_then(Json::as_u64), Some(0));

    server.drain();
    let _ = std::fs::remove_dir_all(dir);
}

/// Wire surface: manifest and content-addressed artifacts round-trip,
/// wrong hashes 404, unknown jobs 404, non-distributed jobs 409.
#[test]
fn manifest_and_artifact_endpoints() {
    static STOP: AtomicBool = AtomicBool::new(false);
    let (mut server, addr, dir) = start("wire", 1);
    let id = submit(addr, r#"{"n": 16, "seed": 5, "distributed": true, "budget": 0}"#);
    wait_leasable(addr, id, Duration::from_secs(120));

    let (status, man) = get(addr, &format!("/jobs/{id}/manifest"));
    assert_eq!(status, 200, "{man:?}");
    assert_eq!(man.get("version").and_then(Json::as_u64), Some(argus_remote::PROTOCOL_VERSION));
    assert_eq!(man.get("workload").and_then(Json::as_str), Some("stress"));
    assert_eq!(man.get("n").and_then(Json::as_u64), Some(16));

    // Every advertised artifact is fetchable at its hash, and the body
    // checks out against the advertised length.
    let artifacts = man.get("artifacts").and_then(Json::as_arr).unwrap();
    assert!(!artifacts.is_empty(), "manifest must advertise the entry snapshot");
    // Artifact bodies are binary ARGSNAP images, so this goes through
    // the worker's binary-safe client, not the text-only test helper.
    for a in artifacts {
        let crc = a.get("crc32").and_then(Json::as_str).unwrap();
        let len = a.get("len").and_then(Json::as_u64).unwrap();
        let (status, body) =
            argus_remote::client::fetch(addr, "GET", &format!("/jobs/{id}/artifacts/{crc}"), None)
                .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.len() as u64, len);
    }
    let (status, _) = get(addr, &format!("/jobs/{id}/artifacts/00000000"));
    assert_eq!(status, 404);

    // Unknown job vs. known-but-not-leasable job.
    let (status, _) = get(addr, "/jobs/999/manifest");
    assert_eq!(status, 404);
    let plain = submit(addr, r#"{"n": 4, "seed": 1}"#);
    let (status, _) = post(addr, &format!("/jobs/{plain}/lease"), r#"{"worker":"w"}"#);
    assert_eq!(status, 409);

    // Local-pool impersonation is rejected before touching the ledger.
    let (status, _) = post(addr, &format!("/jobs/{id}/lease"), r#"{"worker":"local:9"}"#);
    assert_eq!(status, 400);

    // Drain the distributed job so shutdown is clean.
    let w = spawn_worker(addr, id, "finisher", &STOP);
    wait_for_state(addr, id, "done", Duration::from_secs(300));
    w.join().unwrap();
    server.drain();
    let _ = std::fs::remove_dir_all(dir);
}

/// A verbatim re-posted completion (lost-reply retry) is acknowledged as
/// a duplicate and merges nothing.
#[test]
fn duplicate_complete_is_idempotent_over_the_wire() {
    static STOP: AtomicBool = AtomicBool::new(false);
    let (mut server, addr, dir) = start("dup", 1);
    let id = submit(addr, r#"{"n": 20, "seed": 9, "distributed": true, "budget": 0, "chunk": 2}"#);
    wait_leasable(addr, id, Duration::from_secs(120));

    let (status, grant) = post(addr, &format!("/jobs/{id}/lease"), r#"{"worker":"dup"}"#);
    assert_eq!(status, 200, "{grant:?}");
    let chunk = grant.get("chunk").and_then(Json::as_u64).unwrap();
    let start_i = grant.get("start").and_then(Json::as_u64).unwrap();
    let end_i = grant.get("end").and_then(Json::as_u64).unwrap();

    // A synthetic-but-accounting-correct tally: this test checks the
    // dedup gate, not result identity (the job never runs to done here).
    let mut tally = CampaignTally::empty();
    for _ in start_i..end_i {
        tally.apply_hung();
    }
    let body = Json::obj()
        .set("worker", "dup")
        .set("chunk", chunk)
        .set("start", start_i)
        .set("end", end_i)
        .set("tally", tally_to_json(&tally))
        .to_string_compact();

    let (status, first) = post(addr, &format!("/jobs/{id}/complete"), &body);
    assert_eq!(status, 200, "{first:?}");
    assert_eq!(first.get("accepted").and_then(Json::as_bool), Some(true));
    assert_eq!(first.get("duplicate").and_then(Json::as_bool), Some(false));

    let (status, second) = post(addr, &format!("/jobs/{id}/complete"), &body);
    assert_eq!(status, 200, "{second:?}");
    assert_eq!(second.get("accepted").and_then(Json::as_bool), Some(false));
    assert_eq!(second.get("duplicate").and_then(Json::as_bool), Some(true));

    // Heartbeat on a completed chunk renews nothing but answers 200.
    let hb = Json::obj()
        .set("worker", "dup")
        .set("chunks", Json::Arr(vec![Json::from(chunk)]))
        .to_string_compact();
    let (status, renew) = post(addr, &format!("/jobs/{id}/heartbeat"), &hb);
    assert_eq!(status, 200, "{renew:?}");
    assert_eq!(renew.get("renewed").and_then(Json::as_u64), Some(0));

    // Finish the job so drain does not have to cancel it.
    let w = spawn_worker(addr, id, "finisher", &STOP);
    wait_for_state(addr, id, "done", Duration::from_secs(300));
    w.join().unwrap();
    server.drain();
    let _ = std::fs::remove_dir_all(dir);
}
