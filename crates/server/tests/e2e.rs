//! End-to-end daemon tests over real HTTP: submit → schedule → run →
//! report, plus the identity guarantee against one-shot runs, cancel,
//! preemption, and restart-resume.

use argus_faults::CampaignConfig;
use argus_orchestrator::{run_sharded, Json, OrchestratorConfig, Progress};
use argus_server::http::http_request;
use argus_server::{Server, ServerConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::time::{Duration, Instant};

/// Fresh state dir per test.
fn state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("argus-serve-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(name: &str, workers: usize) -> (Server, SocketAddr, PathBuf) {
    let dir = state_dir(name);
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        http_threads: 2,
        state_dir: dir.clone(),
        checkpoint_interval: Duration::from_millis(100),
        lease_ttl: Duration::from_secs(2),
    })
    .unwrap();
    let addr = server.addr();
    (server, addr, dir)
}

fn get(addr: SocketAddr, path: &str) -> (u16, Json) {
    let (status, body) = http_request(addr, "GET", path, None).unwrap();
    (status, Json::parse(&body).unwrap_or(Json::Null))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Json) {
    let (status, body) = http_request(addr, "POST", path, Some(body)).unwrap();
    (status, Json::parse(&body).unwrap_or(Json::Null))
}

fn submit(addr: SocketAddr, spec: &str) -> u64 {
    let (status, doc) = post(addr, "/jobs", spec);
    assert_eq!(status, 201, "{doc:?}");
    doc.get("id").and_then(Json::as_u64).unwrap()
}

fn job_state(addr: SocketAddr, id: u64) -> String {
    let (status, doc) = get(addr, &format!("/jobs/{id}"));
    assert_eq!(status, 200, "{doc:?}");
    doc.get("state").and_then(Json::as_str).unwrap().to_owned()
}

fn wait_for(addr: SocketAddr, id: u64, want: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let state = job_state(addr, id);
        if state == want {
            return;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in `{state}` waiting for `{want}`");
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// The deterministic payload (report minus the volatile `"run"` section)
/// of a one-shot engine run with the given spec — what `argus campaign
/// --json` prints, scheduling noise removed.
fn one_shot_payload(n: usize, seed: u64) -> String {
    let mut cfg = CampaignConfig { injections: n, ..Default::default() };
    cfg.seed = seed;
    let ocfg = OrchestratorConfig { shards: 1, ..Default::default() };
    let progress = Progress::new(1);
    let rep =
        run_sharded(&argus_workloads::stress(), &cfg, &ocfg, &AtomicBool::new(false), &progress)
            .unwrap();
    rep.to_json().without("run").to_string_compact()
}

/// Strips the volatile section from fetched report bytes.
fn payload_of(report_body: &str) -> String {
    Json::parse(report_body).unwrap().without("run").to_string_compact()
}

fn fetch_report(addr: SocketAddr, id: u64) -> String {
    let (status, body) = http_request(addr, "GET", &format!("/jobs/{id}/report"), None).unwrap();
    assert_eq!(status, 200, "{body}");
    body
}

#[test]
fn submit_runs_to_done_and_report_matches_one_shot() {
    let (mut server, addr, dir) = start("basic", 2);

    let (status, doc) = get(addr, "/healthz");
    assert_eq!((status, doc.get("ok").and_then(Json::as_bool)), (200, Some(true)));

    let id = submit(addr, r#"{"n": 48, "seed": 11}"#);
    wait_for(addr, id, "done", Duration::from_secs(120));

    // Byte identity with a one-shot run of the same spec, volatile
    // section removed.
    let report = fetch_report(addr, id);
    assert_eq!(payload_of(&report), one_shot_payload(48, 11));

    // The stored report is complete and uninterrupted.
    let doc = Json::parse(&report).unwrap();
    assert_eq!(doc.get("completed").and_then(Json::as_u64), Some(48));
    assert_eq!(doc.get("interrupted").and_then(Json::as_bool), Some(false));

    // Detail carries the spec back and flags the report.
    let (_, detail) = get(addr, &format!("/jobs/{id}"));
    assert_eq!(detail.get("report_ready").and_then(Json::as_bool), Some(true));
    assert_eq!(detail.get("spec").and_then(|s| s.get("n")).and_then(Json::as_u64), Some(48));

    // Events tell the whole story: queued, running, done.
    let (status, ev) = get(addr, &format!("/jobs/{id}/events?since=0"));
    assert_eq!(status, 200);
    let states: Vec<&str> = ev
        .get("events")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter(|e| e.get("kind").and_then(Json::as_str) == Some("state"))
        .map(|e| e.get("state").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(states, vec!["queued", "running", "done"], "{ev:?}");
    assert_eq!(ev.get("truncated").and_then(Json::as_bool), Some(false));

    // A long-poll against a terminal job returns immediately.
    let t0 = Instant::now();
    let next = ev.get("next_since").and_then(Json::as_u64).unwrap();
    let (status, ev2) = get(addr, &format!("/jobs/{id}/events?since={next}&wait_ms=5000"));
    assert_eq!(status, 200);
    assert!(t0.elapsed() < Duration::from_secs(4), "terminal job must not block long-poll");
    assert_eq!(ev2.get("events").and_then(Json::as_arr).map(<[Json]>::len), Some(0));

    server.drain();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn api_rejects_nonsense() {
    let (mut server, addr, dir) = start("reject", 1);

    for (path, body, want) in [
        ("/jobs", "not json", 400),
        ("/jobs", r#"{"seed": 3}"#, 400),         // n missing
        ("/jobs", r#"{"n": 0}"#, 400),            // n out of range
        ("/jobs", r#"{"n": 5, "typo": 1}"#, 400), // unknown field
        ("/jobs/7/cancel", "", 404),              // unknown job
        ("/nope", "", 404),
    ] {
        let (status, doc) = post(addr, path, body);
        assert_eq!(status, want, "{path}: {doc:?}");
        assert_eq!(doc.get("code").and_then(Json::as_u64), Some(u64::from(want)));
    }
    let (status, _) = get(addr, "/jobs/xyz");
    assert_eq!(status, 400, "non-numeric id");
    let (status, _) = get(addr, "/jobs/99");
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/jobs/99/report");
    assert_eq!(status, 404);
    let (status, doc) = post(addr, "/status", "");
    assert_eq!(status, 405, "{doc:?}");

    server.drain();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn concurrent_priorities_complete_with_correct_tallies() {
    let (mut server, addr, dir) = start("concurrent", 2);

    // Two jobs with different seeds, priorities, and budgets share the
    // pool; each must produce exactly the tallies of its own one-shot
    // run (no cross-talk between concurrently-running campaigns).
    let low = submit(addr, r#"{"n": 40, "seed": 21, "priority": 1, "budget": 1}"#);
    let high = submit(addr, r#"{"n": 40, "seed": 22, "priority": 8, "budget": 1}"#);
    wait_for(addr, low, "done", Duration::from_secs(120));
    wait_for(addr, high, "done", Duration::from_secs(120));

    assert_eq!(payload_of(&fetch_report(addr, low)), one_shot_payload(40, 21));
    assert_eq!(payload_of(&fetch_report(addr, high)), one_shot_payload(40, 22));

    let (_, status_doc) = get(addr, "/status");
    assert_eq!(
        status_doc.get("jobs").and_then(|j| j.get("done")).and_then(Json::as_u64),
        Some(2),
        "{status_doc:?}"
    );

    server.drain();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn queued_jobs_dispatch_by_priority_then_fifo() {
    let (mut server, addr, dir) = start("ordering", 1);

    // Saturate the single worker, then queue three more jobs. The queue
    // must order them priority-first, FIFO within a priority.
    let _running = submit(addr, r#"{"n": 300, "seed": 1}"#);
    let low_a = submit(addr, r#"{"n": 5, "seed": 2, "priority": 1}"#);
    let low_b = submit(addr, r#"{"n": 5, "seed": 3, "priority": 1}"#);
    let mid = submit(addr, r#"{"n": 5, "seed": 4, "priority": 4}"#);

    let (_, status_doc) = get(addr, "/status");
    let queue: Vec<u64> = status_doc
        .get("queue")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    // `mid` outranks both low-priority jobs; the two low jobs keep
    // submission order. (The first job may be running or still queued at
    // head, so only check the relative order of the three.)
    let pos = |id: u64| queue.iter().position(|&q| q == id).unwrap();
    assert!(pos(mid) < pos(low_a), "{queue:?}");
    assert!(pos(low_a) < pos(low_b), "{queue:?}");

    // Everything eventually completes: saturation is not starvation.
    for id in [low_a, low_b, mid] {
        wait_for(addr, id, "done", Duration::from_secs(240));
    }

    server.drain();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cancel_works_on_queued_and_running_jobs() {
    let (mut server, addr, dir) = start("cancel", 1);

    // A long job holds the only worker; a queued job behind it.
    let running = submit(addr, r#"{"n": 5000, "seed": 5, "chunk": 4}"#);
    let queued = submit(addr, r#"{"n": 50, "seed": 6}"#);
    wait_for(addr, running, "running", Duration::from_secs(60));

    // Cancelling a queued job is immediate.
    let (status, doc) = post(addr, &format!("/jobs/{queued}/cancel"), "");
    assert_eq!(status, 200, "{doc:?}");
    assert_eq!(doc.get("state").and_then(Json::as_str), Some("cancelled"));

    // Cancelling the running job stops it at the next lease boundary.
    let (status, _) = post(addr, &format!("/jobs/{running}/cancel"), "");
    assert_eq!(status, 200);
    wait_for(addr, running, "cancelled", Duration::from_secs(60));

    // No report for a cancelled job.
    let (status, _) = http_request(addr, "GET", &format!("/jobs/{running}/report"), None).unwrap();
    assert_eq!(status, 409);

    // Cancelling again conflicts.
    let (status, _) = post(addr, &format!("/jobs/{running}/cancel"), "");
    assert_eq!(status, 409);

    server.drain();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn high_priority_preempts_and_both_finish_correct() {
    let (mut server, addr, dir) = start("preempt", 1);

    // One worker, one long low-priority job: a high-priority arrival can
    // only run if the scheduler preempts via checkpoint.
    let big = submit(addr, r#"{"n": 1500, "seed": 31, "chunk": 4}"#);
    wait_for(addr, big, "running", Duration::from_secs(60));
    let urgent = submit(addr, r#"{"n": 10, "seed": 32, "priority": 9}"#);
    wait_for(addr, urgent, "done", Duration::from_secs(120));

    // The big job was preempted, not killed: it finishes afterwards with
    // the exact one-shot payload despite the checkpoint round-trip.
    wait_for(addr, big, "done", Duration::from_secs(600));
    assert_eq!(payload_of(&fetch_report(addr, urgent)), one_shot_payload(10, 32));
    assert_eq!(payload_of(&fetch_report(addr, big)), one_shot_payload(1500, 31));

    server.drain();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn drain_persists_and_restart_resumes_to_identical_report() {
    let (mut server, addr, dir) = start("resume", 2);

    let id = submit(addr, r#"{"n": 900, "seed": 41, "chunk": 4}"#);
    wait_for(addr, id, "running", Duration::from_secs(60));
    // Let it make some checkpointed progress before draining.
    std::thread::sleep(Duration::from_millis(400));

    // Graceful drain: stop leasing, checkpoint, persist, exit.
    let (status, doc) = post(addr, "/drain", "");
    assert_eq!(status, 200, "{doc:?}");
    // Draining daemons refuse new work.
    let (status, _) = post(addr, "/jobs", r#"{"n": 5}"#);
    assert_eq!(status, 503);
    server.drain();

    // Restart on the same state dir: the job resumes from its checkpoint
    // and completes; the final report is byte-identical to a clean
    // one-shot run.
    let server2 = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        http_threads: 2,
        state_dir: dir.clone(),
        checkpoint_interval: Duration::from_millis(100),
        lease_ttl: Duration::from_secs(2),
    })
    .unwrap();
    let addr2 = server2.addr();
    wait_for(addr2, id, "done", Duration::from_secs(600));
    let report = fetch_report(addr2, id);
    assert_eq!(payload_of(&report), one_shot_payload(900, 41));
    // And it genuinely resumed rather than restarting from scratch:
    // the volatile section shows fewer completions in the final run
    // than the campaign total.
    let doc = Json::parse(&report).unwrap();
    let this_run =
        doc.get("run").and_then(|r| r.get("completed_this_run")).and_then(Json::as_u64).unwrap();
    assert!(this_run < 900, "expected a resumed run, got completed_this_run={this_run}");

    drop(server2);
    let _ = std::fs::remove_dir_all(dir);
}
