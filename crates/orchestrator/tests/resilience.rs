//! Integration tests for the supervision layer's headline guarantees:
//!
//! 1. **crash equivalence** — a campaign disturbed by chaos hooks
//!    (injected panics, livelocks) still completes, and every injection
//!    that was *not* disturbed classifies bit-identically to an
//!    undisturbed run, for any shard count;
//! 2. **strict mode** — the panic net comes off: the first chaos panic
//!    crashes the campaign;
//! 3. **quarantine limit** — mass panics abort the campaign with a
//!    supervision error instead of producing misleading tallies;
//! 4. **corrupt-artifact recovery** — a mangled checkpoint falls back to
//!    its `.bak` generation; with both generations gone the affected work
//!    restarts from scratch. Either way the final tallies equal an
//!    uninterrupted run's.

use argus_faults::{
    prepare_campaign, run_injection, CampaignConfig, ChaosConfig, QuarantineRecord,
};
use argus_orchestrator::{
    backup_path, run_sharded, Checkpoint, OrchestratorConfig, OrchestratorError, Progress,
    ShardedReport,
};
use argus_sim::fault::FaultKind;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

const INJECTIONS: usize = 48;
const PANIC_AT: [usize; 2] = [3, 17];
const LIVELOCK_AT: [usize; 1] = [8];

fn base_config() -> CampaignConfig {
    CampaignConfig {
        injections: INJECTIONS,
        kind: FaultKind::Transient,
        seed: 0xC0FFEE,
        // Exercise the snapshot-forking path under supervision too.
        snapshot_every: Some(800),
        ..Default::default()
    }
}

fn chaos_config() -> CampaignConfig {
    CampaignConfig {
        chaos: Some(ChaosConfig { panic_at: PANIC_AT.to_vec(), livelock_at: LIVELOCK_AT.to_vec() }),
        ..base_config()
    }
}

fn run(cfg: &CampaignConfig, ocfg: OrchestratorConfig) -> ShardedReport {
    let progress = Progress::new(ocfg.shards);
    let stop = AtomicBool::new(false);
    run_sharded(&argus_workloads::stress(), cfg, &ocfg, &stop, &progress).unwrap()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("argus-resilience-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    let _ = std::fs::remove_file(backup_path(&p));
    p
}

#[test]
fn chaos_campaign_completes_and_undisturbed_tallies_are_bit_identical() {
    // Expected tallies: classify exactly the injections chaos leaves
    // alone, via the serial per-injection engine.
    let base = base_config();
    let prep = prepare_campaign(&argus_workloads::stress(), &base);
    let mut expected = [0u64; 4];
    for i in 0..INJECTIONS {
        if PANIC_AT.contains(&i) || LIVELOCK_AT.contains(&i) {
            continue;
        }
        let r = run_injection(&prep, &base, i);
        expected[r.outcome.index()] += 1;
    }

    let chaos = chaos_config();
    let mut reports = Vec::new();
    for shards in [1usize, 2, 8] {
        let rep = run(&chaos, OrchestratorConfig { shards, ..Default::default() });
        assert_eq!(rep.completed, INJECTIONS, "shards={shards}");
        assert!(!rep.interrupted, "shards={shards}");
        assert_eq!(rep.outcomes, expected, "disturbed tallies diverged at shards={shards}");
        assert_eq!(rep.hung, LIVELOCK_AT.len() as u64, "shards={shards}");
        let quarantined: Vec<u64> = rep.quarantine.iter().map(|q| q.index).collect();
        assert_eq!(quarantined, vec![3, 17], "shards={shards}");
        for q in &rep.quarantine {
            assert_eq!(q.seed, chaos.seed);
            assert!(
                q.panic_msg.contains(&format!("chaos: injected panic at injection {}", q.index)),
                "{}",
                q.panic_msg
            );
        }
        assert!(!rep.degraded, "shards={shards}");
        assert_eq!(rep.flush_failures, 0, "shards={shards}");
        reports.push(rep);
    }
    // Attribution and latency of the surviving injections must also be
    // shard-count invariant.
    for rep in &reports[1..] {
        assert_eq!(rep.attribution, reports[0].attribution);
        assert_eq!(rep.latency, reports[0].latency);
        assert_eq!(rep.exercised, reports[0].exercised);
    }
}

#[test]
#[should_panic(expected = "chaos: injected panic")]
fn strict_mode_lets_the_first_panic_crash_the_campaign() {
    let _ =
        run(&chaos_config(), OrchestratorConfig { shards: 2, strict: true, ..Default::default() });
}

#[test]
fn quarantine_limit_aborts_with_a_supervision_error() {
    let cfg = CampaignConfig {
        chaos: Some(ChaosConfig { panic_at: (0..INJECTIONS).collect(), livelock_at: vec![] }),
        ..base_config()
    };
    let ocfg = OrchestratorConfig { shards: 2, quarantine_limit: 3, ..Default::default() };
    let progress = Progress::new(ocfg.shards);
    let stop = AtomicBool::new(false);
    let err = run_sharded(&argus_workloads::stress(), &cfg, &ocfg, &stop, &progress).unwrap_err();
    assert!(matches!(err, OrchestratorError::Supervision(_)), "{err}");
    assert!(err.to_string().contains("quarantined"), "{err}");
    assert!(err.to_string().contains("limit 3"), "{err}");
}

/// Stops a checkpointed campaign partway and returns the interrupted
/// report, leaving the checkpoint file behind.
fn interrupted_run(path: &std::path::Path, shards: usize) -> ShardedReport {
    let ocfg = OrchestratorConfig {
        shards,
        checkpoint_path: Some(path.to_path_buf()),
        ..Default::default()
    };
    let progress = Progress::new(shards);
    let stop = AtomicBool::new(false);
    let rep = std::thread::scope(|scope| {
        scope.spawn(|| {
            while progress.done() < (INJECTIONS / 3) as u64 && !progress.finished() {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
        });
        run_sharded(&argus_workloads::stress(), &base_config(), &ocfg, &stop, &progress).unwrap()
    });
    assert!(rep.interrupted);
    assert!(rep.completed > 0 && rep.completed < INJECTIONS);
    rep
}

#[test]
fn corrupt_checkpoint_recovers_from_backup_generation() {
    let path = temp_path("bak_recovery.ckpt.json");
    let shards = 2usize;
    interrupted_run(&path, shards);

    // Re-save the loaded checkpoint so the atomic writer rotates the
    // current file into `.bak`, then mangle the primary.
    let saved = Checkpoint::load(&path).unwrap();
    saved.save(&path).unwrap();
    assert!(backup_path(&path).exists(), "save must rotate a .bak generation");
    std::fs::write(&path, "{\"truncated\": ").unwrap();

    let resumed = run(
        &base_config(),
        OrchestratorConfig {
            shards,
            checkpoint_path: Some(path.clone()),
            resume: true,
            ..Default::default()
        },
    );
    assert!(!resumed.interrupted);
    assert_eq!(resumed.completed, INJECTIONS);
    assert!(resumed.used_backup_checkpoint, "must report the .bak fallback");
    assert!(
        resumed.recovery_warnings.iter().any(|w| w.contains("backup")),
        "{:?}",
        resumed.recovery_warnings
    );

    // The stitched run equals one undisturbed run.
    let whole = run(&base_config(), OrchestratorConfig { shards, ..Default::default() });
    assert_eq!(resumed.outcomes, whole.outcomes);
    assert_eq!(resumed.attribution, whole.attribution);
    assert_eq!(resumed.latency, whole.latency);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(backup_path(&path));
}

#[test]
fn both_generations_corrupt_restarts_from_scratch() {
    let path = temp_path("scratch_restart.ckpt.json");
    let shards = 2usize;
    interrupted_run(&path, shards);

    let saved = Checkpoint::load(&path).unwrap();
    saved.save(&path).unwrap();
    std::fs::write(&path, "garbage").unwrap();
    std::fs::write(backup_path(&path), "more garbage").unwrap();

    let resumed = run(
        &base_config(),
        OrchestratorConfig {
            shards,
            checkpoint_path: Some(path.clone()),
            resume: true,
            ..Default::default()
        },
    );
    assert!(!resumed.interrupted);
    assert_eq!(resumed.completed, INJECTIONS);
    assert_eq!(resumed.completed_this_run, INJECTIONS, "everything restarts from scratch");
    assert!(!resumed.used_backup_checkpoint);
    assert!(
        resumed.recovery_warnings.iter().any(|w| w.contains("scratch")),
        "{:?}",
        resumed.recovery_warnings
    );

    let whole = run(&base_config(), OrchestratorConfig { shards, ..Default::default() });
    assert_eq!(resumed.outcomes, whole.outcomes);
    assert_eq!(resumed.attribution, whole.attribution);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(backup_path(&path));
}

#[test]
fn strict_mode_refuses_a_corrupt_checkpoint() {
    let path = temp_path("strict_corrupt.ckpt.json");
    let shards = 2usize;
    interrupted_run(&path, shards);
    std::fs::write(&path, "{\"truncated\": ").unwrap();

    let ocfg = OrchestratorConfig {
        shards,
        checkpoint_path: Some(path.clone()),
        resume: true,
        strict: true,
        ..Default::default()
    };
    let progress = Progress::new(shards);
    let stop = AtomicBool::new(false);
    let err = run_sharded(&argus_workloads::stress(), &base_config(), &ocfg, &stop, &progress)
        .unwrap_err();
    assert!(matches!(err, OrchestratorError::Checkpoint(_)), "{err}");

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(backup_path(&path));
}

#[test]
fn quarantine_records_survive_checkpoint_resume() {
    // Interrupt a chaos campaign after its panics have landed, then
    // resume: the quarantine ledger must carry across the restart and the
    // final tallies must match a single-pass chaos run.
    let path = temp_path("quarantine_resume.ckpt.json");
    let shards = 2usize;
    let cfg = chaos_config();

    let ocfg =
        OrchestratorConfig { shards, checkpoint_path: Some(path.clone()), ..Default::default() };
    let progress = Progress::new(shards);
    let stop = AtomicBool::new(false);
    let first = std::thread::scope(|scope| {
        scope.spawn(|| {
            // Past index 17 in shard 0's slice and index 8's livelock.
            while progress.done() < (INJECTIONS * 2 / 3) as u64 && !progress.finished() {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
        });
        run_sharded(&argus_workloads::stress(), &cfg, &ocfg, &stop, &progress).unwrap()
    });

    let resumed = run(
        &cfg,
        OrchestratorConfig {
            shards,
            checkpoint_path: Some(path.clone()),
            resume: true,
            ..Default::default()
        },
    );
    assert_eq!(resumed.completed, INJECTIONS);
    let single = run(&cfg, OrchestratorConfig { shards, ..Default::default() });
    assert_eq!(resumed.outcomes, single.outcomes);
    assert_eq!(resumed.hung, single.hung);
    let key = |q: &QuarantineRecord| (q.index, q.seed, q.panic_msg.clone());
    assert_eq!(
        resumed.quarantine.iter().map(key).collect::<Vec<_>>(),
        single.quarantine.iter().map(key).collect::<Vec<_>>(),
        "quarantine ledger diverged across resume (first pass stopped at {})",
        first.completed
    );

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(backup_path(&path));
}

#[test]
fn resume_under_different_shards_and_chunk_conserves_ledger_and_tally() {
    // The checkpoint is worker-count independent: crash a chaos campaign
    // under one --shards/--chunk geometry and resume under a different
    // one, with the invariant registry in full mode auditing every chunk
    // completion and checkpoint flush. The conservation laws (tally
    // accounts for the done set, quarantine ledger canonical, done ranges
    // coalesced) must hold throughout, and the stitched result must equal
    // a single-pass run's deterministic payload.
    let path = temp_path("reshard_resume.ckpt.json");
    let cfg =
        CampaignConfig { invariants: argus_invariants::InvariantMode::Full, ..chaos_config() };

    // Crash partway under 3 shards / chunk 4.
    let ocfg = OrchestratorConfig {
        shards: 3,
        chunk: 4,
        checkpoint_path: Some(path.clone()),
        ..Default::default()
    };
    let progress = Progress::new(3);
    let stop = AtomicBool::new(false);
    let first = std::thread::scope(|scope| {
        scope.spawn(|| {
            while progress.done() < (INJECTIONS / 2) as u64 && !progress.finished() {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
        });
        run_sharded(&argus_workloads::stress(), &cfg, &ocfg, &stop, &progress).unwrap()
    });
    assert!(first.interrupted);
    assert_eq!(first.invariants.violations, 0, "{:?}", first.invariants.examples);

    // Resume under 2 shards / chunk 7.
    let resumed = run(
        &cfg,
        OrchestratorConfig {
            shards: 2,
            chunk: 7,
            checkpoint_path: Some(path.clone()),
            resume: true,
            ..Default::default()
        },
    );
    assert_eq!(resumed.completed, INJECTIONS);
    assert_eq!(resumed.invariants.mode, "full");
    assert!(resumed.invariants.checks_run > 0, "full mode must actually check");
    assert_eq!(resumed.invariants.violations, 0, "{:?}", resumed.invariants.examples);

    // Tally conservation: every planned injection is accounted for in
    // exactly one bucket after the stitch.
    let accounted =
        resumed.outcomes.iter().sum::<u64>() + resumed.hung + resumed.quarantine.len() as u64;
    assert_eq!(accounted, INJECTIONS as u64, "first pass stopped at {}", first.completed);

    // And the stitched payload is bit-identical to a single-pass run.
    let single = run(&cfg, OrchestratorConfig { shards: 2, ..Default::default() });
    assert_eq!(resumed.outcomes, single.outcomes);
    assert_eq!(resumed.attribution, single.attribution);
    assert_eq!(resumed.hung, single.hung);
    let key = |q: &QuarantineRecord| (q.index, q.seed, q.panic_msg.clone());
    assert_eq!(
        resumed.quarantine.iter().map(key).collect::<Vec<_>>(),
        single.quarantine.iter().map(key).collect::<Vec<_>>(),
    );

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(backup_path(&path));
}
