//! Snapshot-enabled campaigns must be bit-identical to cold-boot ones:
//! same seed, same injections, same JSON report, for every worker count,
//! chunk size, and fork strategy — forking and scheduling buy throughput,
//! never different results.

use argus_faults::campaign::{CampaignConfig, ForkStrategy};
use argus_faults::StoreKind;
use argus_orchestrator::{run_sharded, Json, OrchestratorConfig, Progress, ShardedReport};
use std::sync::atomic::{AtomicBool, Ordering};

fn run(cfg: &CampaignConfig, ocfg: OrchestratorConfig) -> ShardedReport {
    let stop = AtomicBool::new(false);
    let progress = Progress::new(ocfg.shards);
    run_sharded(&argus_workloads::stress(), cfg, &ocfg, &stop, &progress).expect("campaign runs")
}

/// The comparable form: the volatile `"run"` sub-object stripped. Every
/// remaining byte is specified to be schedule- and strategy-independent.
fn canonical_json(rep: &ShardedReport) -> String {
    let Json::Obj(fields) = rep.to_json() else { panic!("report JSON is an object") };
    Json::Obj(fields.into_iter().filter(|(k, _)| k != "run").collect()).to_string_compact()
}

#[test]
fn snapshot_campaigns_match_cold_boot_across_shard_counts() {
    let cold_cfg = CampaignConfig { injections: 48, seed: 0xD15C, ..Default::default() };
    let snap_cfg = CampaignConfig { snapshot_every: Some(500), ..cold_cfg.clone() };

    let reference = run(&cold_cfg, OrchestratorConfig { shards: 1, ..Default::default() });
    for shards in [1usize, 2, 8] {
        let ocfg = OrchestratorConfig { shards, ..Default::default() };
        let cold = run(&cold_cfg, ocfg.clone());
        let snap = run(&snap_cfg, ocfg);
        assert!(snap.snapshots > 1, "expected golden-run checkpoints, got {}", snap.snapshots);
        assert_eq!(snap.snapshot_every, Some(500));
        assert_eq!(
            cold.outcomes, reference.outcomes,
            "cold-boot tallies diverged at {shards} shards"
        );
        assert_eq!(
            canonical_json(&snap),
            canonical_json(&cold),
            "snapshot-enabled JSON diverged from cold-boot at {shards} shards"
        );
    }
}

/// The out-of-core store is a pure perf knob: campaigns forking from the
/// mapped file render the same JSON as RAM-store campaigns at every shard
/// count, and a crash-resume cycle under mmap stitches back to the same
/// report (the checkpoint fingerprint deliberately excludes the store
/// kind, so a RAM checkpoint even resumes under mmap).
#[test]
fn mapped_store_matches_ram_across_shard_counts_and_crash_resume() {
    let ram_cfg = CampaignConfig {
        injections: 48,
        seed: 0xABBA,
        snapshot_every: Some(500),
        store: StoreKind::Ram,
        ..Default::default()
    };
    let mmap_cfg = CampaignConfig { store: StoreKind::Mapped, ..ram_cfg.clone() };

    let reference =
        canonical_json(&run(&ram_cfg, OrchestratorConfig { shards: 1, ..Default::default() }));
    for shards in [1usize, 2, 8] {
        let rep = run(&mmap_cfg, OrchestratorConfig { shards, ..Default::default() });
        assert!(rep.snapshots > 1, "expected checkpoints, got {}", rep.snapshots);
        assert_eq!(
            canonical_json(&rep),
            reference,
            "mmap JSON diverged from RAM at {shards} shards"
        );
    }

    let path = std::env::temp_dir().join("argus-snapdet-mmap-resume.ckpt.json");
    let _ = std::fs::remove_file(&path);
    let ocfg =
        OrchestratorConfig { shards: 2, checkpoint_path: Some(path.clone()), ..Default::default() };
    let stop = AtomicBool::new(false);
    let progress = Progress::new(2);
    let rep = std::thread::scope(|scope| {
        scope.spawn(|| {
            while progress.done() < 16 && !progress.finished() {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
        });
        run_sharded(&argus_workloads::stress(), &mmap_cfg, &ocfg, &stop, &progress)
            .expect("interruptible mmap campaign runs")
    });
    if rep.interrupted {
        let resumed = run(&mmap_cfg, OrchestratorConfig { resume: true, ..ocfg });
        assert_eq!(canonical_json(&resumed), reference, "resumed mmap JSON diverged from RAM");
    } else {
        // The interrupter lost the race on a fast machine; the completed
        // run must still match.
        assert_eq!(canonical_json(&rep), reference);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fork_strategy_chunk_and_worker_count_never_change_the_report() {
    // Disable the inert shortcut so the delta/full/cold paths all do real
    // work for every injection, then sweep the perf knobs: every cell of
    // the (strategy × workers × chunk) grid must render the same
    // deterministic JSON payload.
    let base = CampaignConfig {
        injections: 48,
        seed: 0xF0CA,
        snapshot_every: Some(500),
        shortcut_inert: false,
        ..Default::default()
    };

    let reference = canonical_json(&run(
        &CampaignConfig { fork: ForkStrategy::Delta, ..base.clone() },
        OrchestratorConfig { shards: 1, ..Default::default() },
    ));
    for fork in [ForkStrategy::Delta, ForkStrategy::Full, ForkStrategy::Cold] {
        for (shards, chunk) in [(1usize, 1usize), (2, 4), (8, 32)] {
            let rep = run(
                &CampaignConfig { fork, ..base.clone() },
                OrchestratorConfig { shards, chunk, ..Default::default() },
            );
            assert_eq!(rep.completed, base.injections);
            assert_eq!(
                canonical_json(&rep),
                reference,
                "JSON diverged: fork={fork:?} shards={shards} chunk={chunk}"
            );
        }
    }
}
