//! Snapshot-enabled campaigns must be bit-identical to cold-boot ones:
//! same seed, same injections, same JSON report, for every shard count —
//! snapshots buy throughput, never different results.

use argus_faults::campaign::CampaignConfig;
use argus_orchestrator::{run_sharded, OrchestratorConfig, Progress, ShardedReport};
use std::sync::atomic::AtomicBool;
use std::time::Duration;

fn run(cfg: &CampaignConfig, shards: usize) -> ShardedReport {
    let ocfg = OrchestratorConfig { shards, ..Default::default() };
    let stop = AtomicBool::new(false);
    let progress = Progress::new(shards);
    run_sharded(&argus_workloads::stress(), cfg, &ocfg, &stop, &progress).expect("campaign runs")
}

/// The comparable form: timing zeroed (elapsed/rate are the only
/// non-deterministic fields in the JSON report).
fn canonical_json(mut rep: ShardedReport) -> String {
    rep.elapsed = Duration::ZERO;
    rep.to_json().to_string_compact()
}

#[test]
fn snapshot_campaigns_match_cold_boot_across_shard_counts() {
    let cold_cfg = CampaignConfig { injections: 48, seed: 0xD15C, ..Default::default() };
    let snap_cfg = CampaignConfig { snapshot_every: Some(500), ..cold_cfg.clone() };

    let reference = run(&cold_cfg, 1);
    for shards in [1usize, 2, 8] {
        let cold = run(&cold_cfg, shards);
        let snap = run(&snap_cfg, shards);
        assert!(snap.snapshots > 1, "expected golden-run checkpoints, got {}", snap.snapshots);
        assert_eq!(snap.snapshot_every, Some(500));
        assert_eq!(
            cold.outcomes, reference.outcomes,
            "cold-boot tallies diverged at {shards} shards"
        );
        assert_eq!(
            canonical_json(snap),
            canonical_json(cold),
            "snapshot-enabled JSON diverged from cold-boot at {shards} shards"
        );
    }
}
