//! Integration tests for the sharded engine's headline guarantees:
//!
//! 1. shard-count invariance — `shards=1`, `shards=4`, and the legacy
//!    serial engine produce identical tallies for the same seed;
//! 2. checkpoint/resume — a campaign stopped after K injections and then
//!    resumed finishes with tallies identical to an uninterrupted run.

use argus_faults::campaign::{run_campaign, CampaignConfig, CampaignReport};
use argus_faults::sites::{full_inventory, sample_points};
use argus_faults::Outcome;
use argus_orchestrator::{
    run_sharded, Checkpoint, Json, OrchestratorConfig, Progress, ShardedReport,
};
use argus_sim::fault::FaultKind;
use argus_sim::stats::{CounterSet, Histogram};
use std::sync::atomic::{AtomicBool, Ordering};

const INJECTIONS: usize = 120;

fn config() -> CampaignConfig {
    CampaignConfig {
        injections: INJECTIONS,
        kind: FaultKind::Transient,
        seed: 0xD15C0,
        ..Default::default()
    }
}

/// Collapses the serial per-injection report into the sharded report's
/// aggregate form.
fn aggregate(rep: &CampaignReport) -> ([u64; 4], CounterSet, Histogram, u64) {
    let mut outcomes = [0u64; 4];
    let mut latency = Histogram::new();
    let mut exercised = 0u64;
    for r in &rep.results {
        outcomes[r.outcome.index()] += 1;
        if let Some(l) = r.detect_latency {
            latency.record(l);
        }
        exercised += u64::from(r.exercised);
    }
    (outcomes, rep.attribution.clone(), latency, exercised)
}

fn run_with_shards(shards: usize, ocfg: OrchestratorConfig) -> ShardedReport {
    let progress = Progress::new(shards);
    let stop = AtomicBool::new(false);
    run_sharded(&argus_workloads::stress(), &config(), &ocfg, &stop, &progress).unwrap()
}

#[test]
fn sharded_tallies_match_legacy_serial_for_any_shard_count() {
    let serial = run_campaign(&argus_workloads::stress(), &config());
    let (outcomes, attribution, latency, exercised) = aggregate(&serial);

    for shards in [1usize, 4] {
        let rep = run_with_shards(shards, OrchestratorConfig { shards, ..Default::default() });
        assert_eq!(rep.completed, INJECTIONS, "shards={shards}");
        assert!(!rep.interrupted);
        assert_eq!(rep.outcomes, outcomes, "outcome tallies diverged at shards={shards}");
        assert_eq!(rep.attribution, attribution, "attribution diverged at shards={shards}");
        assert_eq!(rep.latency, latency, "latency histogram diverged at shards={shards}");
        assert_eq!(rep.exercised, exercised, "exercised count diverged at shards={shards}");
        assert_eq!(rep.golden_cycles, serial.golden_cycles);
        for o in Outcome::ALL {
            assert_eq!(rep.count(o) as usize, serial.count(o), "count({o:?}), shards={shards}");
        }
    }
}

/// The campaign JSON with the volatile `"run"` sub-object removed —
/// everything left is specified to be a deterministic tally.
fn canonical_json(rep: &ShardedReport) -> String {
    let Json::Obj(fields) = rep.to_json() else { panic!("report JSON is an object") };
    Json::Obj(fields.into_iter().filter(|(k, _)| k != "run").collect()).to_string_compact()
}

#[test]
fn predecode_memo_and_shard_count_leave_json_tallies_identical() {
    // The predecode memo only matters if the campaign actually arms decode
    // faults: confirm the sampled plan hits at least one ID_OPC_* site, so
    // the memo's armed slow path (full tapped decode) is exercised.
    let plan = sample_points(&full_inventory(), INJECTIONS, config().seed);
    assert!(
        plan.iter().any(|p| p.site.name.starts_with("id_opc_")),
        "sample plan never targets a decode site; pick a different seed"
    );

    let mut tallies: Vec<(bool, usize, String)> = Vec::new();
    for predecode in [true, false] {
        for shards in [1usize, 2, 8] {
            let mut ccfg = config();
            ccfg.mcfg.predecode = predecode;
            let progress = Progress::new(shards);
            let stop = AtomicBool::new(false);
            let ocfg = OrchestratorConfig { shards, ..Default::default() };
            let rep =
                run_sharded(&argus_workloads::stress(), &ccfg, &ocfg, &stop, &progress).unwrap();
            assert_eq!(rep.completed, INJECTIONS, "predecode={predecode} shards={shards}");
            tallies.push((predecode, shards, canonical_json(&rep)));
        }
    }
    for (predecode, shards, t) in &tallies[1..] {
        assert_eq!(
            *t, tallies[0].2,
            "campaign JSON diverged: predecode={predecode} shards={shards} vs baseline"
        );
    }
}

#[test]
fn checkpoint_resume_after_stop_matches_uninterrupted_run() {
    let dir = std::env::temp_dir().join("argus-orch-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("resume_test.ckpt.json");
    let _ = std::fs::remove_file(&path);

    let shards = 3usize;
    let ocfg = OrchestratorConfig {
        shards,
        checkpoint_path: Some(path.clone()),
        checkpoint_interval: std::time::Duration::from_millis(10),
        resume: false,
        ..Default::default()
    };

    // Phase 1: stop the campaign once ~a third of it has completed. The
    // watcher polls the shared progress — exactly how the CLI's Ctrl-C
    // handler flips the same flag.
    let progress = Progress::new(shards);
    let stop = AtomicBool::new(false);
    let interrupted = std::thread::scope(|scope| {
        scope.spawn(|| {
            while progress.done() < (INJECTIONS / 3) as u64 && !progress.finished() {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
        });
        run_sharded(&argus_workloads::stress(), &config(), &ocfg, &stop, &progress).unwrap()
    });
    assert!(interrupted.interrupted, "stop flag must cut the campaign short");
    assert!(interrupted.completed < INJECTIONS, "some work must remain");
    assert!(interrupted.completed > 0, "some work must have finished");

    // The final flush must reflect exactly the completed work.
    let saved = Checkpoint::load(&path).unwrap();
    assert_eq!(saved.completed(), interrupted.completed);

    // Phase 2: resume to completion — under a *different* worker count,
    // because the checkpoint deliberately does not record one: a campaign
    // interrupted on a 3-worker box must resume cleanly on a 5-worker box.
    let ocfg2 = OrchestratorConfig { resume: true, shards: 5, ..ocfg };
    let resumed = run_with_shards(5, ocfg2);
    assert!(!resumed.interrupted);
    assert_eq!(resumed.completed, INJECTIONS);
    assert_eq!(
        resumed.completed_this_run,
        INJECTIONS - interrupted.completed,
        "resume must not repeat finished injections"
    );

    // The stitched-together campaign equals one uninterrupted run, down to
    // the deterministic JSON payload.
    let whole = run_with_shards(shards, OrchestratorConfig { shards, ..Default::default() });
    assert_eq!(resumed.outcomes, whole.outcomes);
    assert_eq!(resumed.attribution, whole.attribution);
    assert_eq!(resumed.latency, whole.latency);
    assert_eq!(resumed.exercised, whole.exercised);
    assert_eq!(canonical_json(&resumed), canonical_json(&whole));

    // Resuming an already-complete campaign is a no-op.
    let ocfg3 = OrchestratorConfig {
        shards,
        checkpoint_path: Some(path.clone()),
        resume: true,
        ..Default::default()
    };
    let noop = run_with_shards(shards, ocfg3);
    assert_eq!(noop.completed, INJECTIONS);
    assert_eq!(noop.completed_this_run, 0);
    assert_eq!(noop.outcomes, whole.outcomes);

    // A mismatched campaign must refuse the file rather than mix tallies.
    let bad = CampaignConfig { seed: 0xBAD, ..config() };
    let progress = Progress::new(shards);
    let stop = AtomicBool::new(false);
    let ocfg4 = OrchestratorConfig {
        shards,
        checkpoint_path: Some(path.clone()),
        resume: true,
        ..Default::default()
    };
    let err = run_sharded(&argus_workloads::stress(), &bad, &ocfg4, &stop, &progress).unwrap_err();
    assert!(err.to_string().contains("different campaign"), "{err}");

    let _ = std::fs::remove_file(&path);
}
