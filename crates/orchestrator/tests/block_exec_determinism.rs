//! Block-compiled execution across the sharded engine: the deterministic
//! JSON payload (everything outside the volatile `"run"` sub-object) must
//! be identical with the plan cache on or off, for any shard count — the
//! JIT-lite engine may only change throughput, never tallies.

use argus_faults::campaign::CampaignConfig;
use argus_orchestrator::{run_sharded, Json, OrchestratorConfig, Progress, ShardedReport};
use argus_sim::fault::FaultKind;
use std::sync::atomic::AtomicBool;

const INJECTIONS: usize = 90;

/// The campaign JSON with the volatile `"run"` sub-object removed —
/// everything left is specified to be a deterministic tally.
fn canonical_json(rep: &ShardedReport) -> String {
    let Json::Obj(fields) = rep.to_json() else { panic!("report JSON is an object") };
    Json::Obj(fields.into_iter().filter(|(k, _)| k != "run").collect()).to_string_compact()
}

#[test]
fn block_exec_and_shard_count_leave_json_tallies_identical() {
    let mut tallies: Vec<(bool, usize, String)> = Vec::new();
    for block_exec in [true, false] {
        for shards in [1usize, 2, 8] {
            let mut ccfg = CampaignConfig {
                injections: INJECTIONS,
                kind: FaultKind::Transient,
                seed: 0xB10C5,
                ..Default::default()
            };
            ccfg.mcfg.block_exec = block_exec;
            let progress = Progress::new(shards);
            let stop = AtomicBool::new(false);
            let ocfg = OrchestratorConfig { shards, ..Default::default() };
            let rep =
                run_sharded(&argus_workloads::stress(), &ccfg, &ocfg, &stop, &progress).unwrap();
            assert_eq!(rep.completed, INJECTIONS, "block_exec={block_exec} shards={shards}");
            if block_exec {
                assert!(
                    rep.golden_exec.plan_hits > 0,
                    "block engine never engaged on the golden run"
                );
            } else {
                assert_eq!(rep.golden_exec.plan_hits, 0, "plan cache leaked past the knob");
                assert_eq!(rep.exec.plan_hits, 0, "plan cache leaked past the knob");
            }
            tallies.push((block_exec, shards, canonical_json(&rep)));
        }
    }
    let (_, _, reference) = &tallies[0];
    for (block_exec, shards, json) in &tallies {
        assert_eq!(json, reference, "tallies diverged at block_exec={block_exec} shards={shards}");
    }
}
