//! A minimal hand-rolled JSON tree, writer, and parser.
//!
//! The build environment is offline, so checkpoint files and the CLI's
//! structured reports cannot use serde; this module implements exactly the
//! JSON subset the orchestrator needs: objects (insertion-ordered), arrays,
//! strings with standard escapes, `f64` numbers, booleans, and null.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder starting empty.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds/replaces a field on an object (panics on non-objects).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_owned(), value));
                }
                self
            }
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Returns the value without the named top-level field (no-op when the
    /// field is absent or `self` is not an object). Used to strip the
    /// volatile `"run"` sub-object from campaign reports before comparing
    /// the deterministic payload byte-for-byte.
    pub fn without(mut self, key: &str) -> Json {
        if let Json::Obj(ref mut fields) = self {
            fields.retain(|(k, _)| k != key);
        }
        self
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if it is one and integral.
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        (x >= 0.0 && x <= u64::MAX as f64 && x.fract() == 0.0).then_some(x as u64)
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// The object fields, if this is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes compactly (no insignificant whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    /// Nesting is capped at [`MAX_DEPTH`] levels so adversarial input
    /// (e.g. a corrupted resume file full of `[`) errors out instead of
    /// overflowing the stack.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage"));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(xs: Vec<Json>) -> Json {
        Json::Arr(xs)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts. Our own files nest a
/// handful of levels; anything deeper is corrupt or adversarial.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_owned(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(found) if found == b => {
                self.pos += 1;
                Ok(())
            }
            Some(found) => Err(self.err(&format!(
                "expected `{}`, found `{}`",
                b as char,
                found.escape_ascii()
            ))),
            None => Err(self.err(&format!("expected `{}`, found end of input", b as char))),
        }
    }

    /// Tracks descent into an array/object; errors past [`MAX_DEPTH`].
    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err(&format!("nesting deeper than {MAX_DEPTH} levels")))
        } else {
            Ok(())
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.descend()?;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'{') => {
                self.descend()?;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(found) => {
                Err(self.err(&format!("expected a value, found `{}`", found.escape_ascii())))
            }
            None => Err(self.err("expected a value, found end of input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not needed by our own files.
                            s.push(char::from_u32(code).ok_or_else(|| self.err("bad code point"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        // The consumed bytes are all ASCII digits/signs/dots by
        // construction, but a typed error beats relying on that here.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError { message: "non-UTF-8 in number".to_owned(), offset: start })?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { message: format!("bad number `{text}`"), offset: start })
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(xs));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let doc = Json::obj()
            .set("version", 1u64)
            .set("name", "shard \"zero\"\n")
            .set("mask", 0.3)
            .set("flags", Json::Arr(vec![Json::Bool(true), Json::Null]))
            .set("inner", Json::obj().set("counts", Json::Arr(vec![1u64.into(), 2u64.into()])));
        let text = doc.to_string_compact();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("version").and_then(Json::as_u64), Some(1));
        assert_eq!(back.get("mask").and_then(Json::as_f64), Some(0.3));
        assert_eq!(back.get("name").and_then(Json::as_str), Some("shard \"zero\"\n"));
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , -2.5e2 , \"π → ∞\", \"\\u0041\" ] } ").unwrap();
        let arr = v.get("k").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-250.0));
        assert_eq!(arr[2].as_str(), Some("π → ∞"));
        assert_eq!(arr[3].as_str(), Some("A"));
    }

    #[test]
    fn large_integers_roundtrip() {
        for x in [0u64, 1, 1 << 40, (1 << 53) - 1] {
            let text = Json::from(x).to_string_compact();
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(x), "{x}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn as_u64_rejects_non_integers() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("1".into()).as_u64(), None);
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // A corrupt resume file could be 100k open brackets; that must be
        // a parse error, not a stack overflow (which aborts the process).
        let bomb = "[".repeat(100_000);
        let err = Json::parse(&bomb).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let obj_bomb = "{\"k\":".repeat(100_000);
        assert!(Json::parse(&obj_bomb).is_err());
        // Nesting at the cap parses fine.
        let ok = format!("{}1{}", "[".repeat(128), "]".repeat(128));
        assert!(Json::parse(&ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(129), "]".repeat(129));
        assert!(Json::parse(&too_deep).is_err());
    }

    #[test]
    fn errors_name_the_offending_byte() {
        let err = Json::parse("{\"a\" 1}").unwrap_err();
        assert!(err.message.contains("expected `:`"), "{err}");
        assert!(err.message.contains("found `1`"), "{err}");
        let err = Json::parse("[@]").unwrap_err();
        assert!(err.message.contains("found `@`"), "{err}");
        let err = Json::parse("[1,").unwrap_err();
        assert!(err.message.contains("end of input"), "{err}");
    }
}
