//! Live campaign observability.
//!
//! Worker threads publish per-injection updates through atomics only (no
//! locks on the hot path); any other thread may take a consistent-enough
//! [`ProgressSnapshot`] at any time to render a progress line, without
//! perturbing the workers.

use argus_faults::campaign::ExecStats;
use argus_faults::Outcome;
use argus_sim::supervise::Anomaly;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How long a shard may go without completing an injection before the
/// snapshot reports it as stalled (it may legitimately be inside one long
/// hung-run window).
const LIVENESS_WINDOW: Duration = Duration::from_secs(5);

/// Sentinel heartbeat meaning "shard finished its slice".
const BEAT_DONE: u64 = u64::MAX;

/// Shared, atomically-updated campaign progress.
pub struct Progress {
    started: Mutex<Instant>,
    total: AtomicU64,
    /// Injections already complete when this run began (resume).
    initial: AtomicU64,
    done: AtomicU64,
    outcomes: [AtomicU64; 4],
    /// Supervision anomalies: `[quarantined, hung]`, indexed by
    /// [`Anomaly`] order. Counted in `done` but not in `outcomes`.
    anomalies: [AtomicU64; 2],
    /// Set when checkpoint flushing is limping (retries were needed or a
    /// periodic flush failed outright).
    degraded: AtomicBool,
    /// Per-shard completed counts.
    shard_done: Vec<AtomicU64>,
    /// Per-shard heartbeat: millis since `started` of the last completion,
    /// or [`BEAT_DONE`] once the shard's slice is finished.
    shard_beat: Vec<AtomicU64>,
    /// Scheduler chunks leased out this run.
    leases: AtomicU64,
    /// Leases taken outside the leasing worker's home region.
    steals: AtomicU64,
    /// Microseconds workers have spent inside injections this run.
    busy_us: AtomicU64,
    /// Block-plan cache counters published by the workers:
    /// `[hits, misses, evictions, fallbacks]`.
    plan: [AtomicU64; 4],
    /// Cumulative invariant violations observed by the campaign's
    /// invariant engine (published after each chunk; 0 on healthy runs).
    invariant_violations: AtomicU64,
    finished: AtomicBool,
}

/// Position of an [`Anomaly`] in the `anomalies` arrays.
fn anomaly_index(a: Anomaly) -> usize {
    match a {
        Anomaly::Quarantined => 0,
        Anomaly::Hung => 1,
    }
}

impl Progress {
    /// Creates progress state for `shards` worker shards.
    pub fn new(shards: usize) -> Self {
        Self {
            started: Mutex::new(Instant::now()),
            total: AtomicU64::new(0),
            initial: AtomicU64::new(0),
            done: AtomicU64::new(0),
            outcomes: [const { AtomicU64::new(0) }; 4],
            anomalies: [const { AtomicU64::new(0) }; 2],
            degraded: AtomicBool::new(false),
            shard_done: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_beat: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            leases: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            busy_us: AtomicU64::new(0),
            plan: [const { AtomicU64::new(0) }; 4],
            invariant_violations: AtomicU64::new(0),
            finished: AtomicBool::new(false),
        }
    }

    /// Number of shards this progress state tracks.
    pub fn shards(&self) -> usize {
        self.shard_done.len()
    }

    /// (Re)starts the clock and seeds totals; called by the engine once it
    /// knows the campaign size and any resumed progress.
    pub fn begin(
        &self,
        total: u64,
        resumed: u64,
        resumed_outcomes: [u64; 4],
        resumed_anomalies: [u64; 2],
        per_shard: &[u64],
    ) {
        *self.started.lock().unwrap_or_else(|e| e.into_inner()) = Instant::now();
        self.total.store(total, Ordering::Relaxed);
        self.initial.store(resumed, Ordering::Relaxed);
        self.done.store(resumed, Ordering::Relaxed);
        for (slot, &v) in self.outcomes.iter().zip(resumed_outcomes.iter()) {
            slot.store(v, Ordering::Relaxed);
        }
        for (slot, &v) in self.anomalies.iter().zip(resumed_anomalies.iter()) {
            slot.store(v, Ordering::Relaxed);
        }
        for (slot, &v) in self.shard_done.iter().zip(per_shard.iter()) {
            slot.store(v, Ordering::Relaxed);
        }
        self.leases.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.busy_us.store(0, Ordering::Relaxed);
        for slot in &self.plan {
            slot.store(0, Ordering::Relaxed);
        }
        self.invariant_violations.store(0, Ordering::Relaxed);
        self.degraded.store(false, Ordering::Relaxed);
        self.finished.store(false, Ordering::Relaxed);
    }

    /// Publishes the engine's cumulative invariant-violation count (a
    /// store, not an add — the engine already accumulates).
    pub fn set_invariant_violations(&self, total: u64) {
        self.invariant_violations.store(total, Ordering::Relaxed);
    }

    /// Records one scheduler lease; `stolen` when it came from outside the
    /// worker's home region.
    pub fn record_lease(&self, stolen: bool) {
        self.leases.fetch_add(1, Ordering::Relaxed);
        if stolen {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds time a worker spent inside an injection (utilization numerator).
    pub fn add_busy(&self, spent: Duration) {
        self.busy_us.fetch_add(spent.as_micros() as u64, Ordering::Relaxed);
    }

    /// Publishes a worker's drained predecode/plan-cache counters.
    pub fn add_exec(&self, e: &ExecStats) {
        for (slot, v) in
            self.plan.iter().zip([e.plan_hits, e.plan_misses, e.plan_evictions, e.plan_fallbacks])
        {
            if v > 0 {
                slot.fetch_add(v, Ordering::Relaxed);
            }
        }
    }

    /// Records one completed injection on `shard`.
    pub fn record(&self, shard: usize, outcome: Outcome) {
        let ms = self.elapsed().as_millis() as u64;
        self.outcomes[outcome.index()].fetch_add(1, Ordering::Relaxed);
        self.shard_done[shard].fetch_add(1, Ordering::Relaxed);
        self.shard_beat[shard].store(ms, Ordering::Relaxed);
        self.done.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one injection on `shard` that ended in a supervision anomaly
    /// (quarantined panic or watchdog hang) instead of a classification.
    pub fn record_anomaly(&self, shard: usize, anomaly: Anomaly) {
        let ms = self.elapsed().as_millis() as u64;
        self.anomalies[anomaly_index(anomaly)].fetch_add(1, Ordering::Relaxed);
        self.shard_done[shard].fetch_add(1, Ordering::Relaxed);
        self.shard_beat[shard].store(ms, Ordering::Relaxed);
        self.done.fetch_add(1, Ordering::Relaxed);
    }

    /// Flags (or clears) degraded checkpoint-flush mode.
    pub fn set_degraded(&self, on: bool) {
        self.degraded.store(on, Ordering::Relaxed);
    }

    /// Whether checkpoint flushing has been limping.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Marks `shard` as having finished its slice.
    pub fn shard_finished(&self, shard: usize) {
        self.shard_beat[shard].store(BEAT_DONE, Ordering::Relaxed);
    }

    /// Marks the whole campaign as over (completed or cancelled).
    pub fn finish(&self) {
        self.finished.store(true, Ordering::Relaxed);
    }

    /// Whether the campaign is over.
    pub fn finished(&self) -> bool {
        self.finished.load(Ordering::Relaxed)
    }

    /// Injections completed so far (including resumed ones).
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    fn elapsed(&self) -> Duration {
        self.started.lock().unwrap_or_else(|e| e.into_inner()).elapsed()
    }

    /// Takes a point-in-time view for rendering. Counters are read without
    /// a barrier, so totals may be off by the few injections in flight —
    /// fine for observability.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let elapsed = self.elapsed();
        let done = self.done.load(Ordering::Relaxed);
        let initial = self.initial.load(Ordering::Relaxed);
        let fresh = done.saturating_sub(initial);
        let rate =
            if elapsed.as_secs_f64() > 1e-9 { fresh as f64 / elapsed.as_secs_f64() } else { 0.0 };
        let now_ms = elapsed.as_millis() as u64;
        let live_cutoff = now_ms.saturating_sub(LIVENESS_WINDOW.as_millis() as u64);
        let workers = self.shard_done.len().max(1) as f64;
        let busy = Duration::from_micros(self.busy_us.load(Ordering::Relaxed));
        let busy_pct = if elapsed.as_secs_f64() > 1e-9 {
            100.0 * busy.as_secs_f64() / (elapsed.as_secs_f64() * workers)
        } else {
            0.0
        };
        ProgressSnapshot {
            total: self.total.load(Ordering::Relaxed),
            done,
            outcomes: std::array::from_fn(|i| self.outcomes[i].load(Ordering::Relaxed)),
            anomalies: std::array::from_fn(|i| self.anomalies[i].load(Ordering::Relaxed)),
            degraded: self.degraded.load(Ordering::Relaxed),
            elapsed,
            rate,
            leases: self.leases.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            busy_pct,
            plan: std::array::from_fn(|i| self.plan[i].load(Ordering::Relaxed)),
            invariant_violations: self.invariant_violations.load(Ordering::Relaxed),
            shard_done: self.shard_done.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            shard_live: self
                .shard_beat
                .iter()
                .map(|a| {
                    let beat = a.load(Ordering::Relaxed);
                    beat != BEAT_DONE && beat >= live_cutoff
                })
                .collect(),
        }
    }
}

/// One observed point in time of a running campaign.
#[derive(Debug, Clone)]
pub struct ProgressSnapshot {
    /// Planned injections.
    pub total: u64,
    /// Completed injections (including any resumed from a checkpoint).
    pub done: u64,
    /// Running per-outcome counts, indexed like [`Outcome::ALL`].
    pub outcomes: [u64; 4],
    /// Supervision anomaly counts: `[quarantined, hung]`.
    pub anomalies: [u64; 2],
    /// True when checkpoint flushing has needed retries or failed.
    pub degraded: bool,
    /// Wall-clock time since the engine started.
    pub elapsed: Duration,
    /// Injections per second completed by *this* run (resumed work
    /// excluded from the numerator).
    pub rate: f64,
    /// Scheduler chunks leased out so far.
    pub leases: u64,
    /// Leases taken outside the leasing worker's home region.
    pub steals: u64,
    /// Worker utilization so far: busy time over `elapsed * workers`, in
    /// percent.
    pub busy_pct: f64,
    /// Block-plan cache counters published by the workers:
    /// `[hits, misses, evictions, fallbacks]`.
    pub plan: [u64; 4],
    /// Cumulative invariant violations observed so far (0 when healthy).
    pub invariant_violations: u64,
    /// Per-shard completed counts.
    pub shard_done: Vec<u64>,
    /// Per-shard liveness: finished shards and recently-active shards are
    /// distinguished from ones that have gone quiet.
    pub shard_live: Vec<bool>,
}

impl std::fmt::Display for ProgressSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pct =
            if self.total == 0 { 100.0 } else { 100.0 * self.done as f64 / self.total as f64 };
        let quiet = self.shard_live.iter().filter(|l| !**l).count();
        write!(
            f,
            "[{:6.1}s] {:>6}/{} ({pct:5.1}%) {:7.1} inj/s | sdc {} det {} benign {} dme {} | {} shards ({} idle/done)",
            self.elapsed.as_secs_f64(),
            self.done,
            self.total,
            self.rate,
            self.outcomes[0],
            self.outcomes[1],
            self.outcomes[2],
            self.outcomes[3],
            self.shard_done.len(),
            quiet,
        )?;
        if self.leases > 0 {
            write!(f, " | lease {} steal {} busy {:.0}%", self.leases, self.steals, self.busy_pct)?;
        }
        if self.plan.iter().any(|&v| v > 0) {
            write!(
                f,
                " | plan hit {} miss {} evict {} fb {}",
                self.plan[0], self.plan[1], self.plan[2], self.plan[3]
            )?;
        }
        if self.anomalies.iter().any(|&a| a > 0) {
            write!(f, " | quar {} hung {}", self.anomalies[0], self.anomalies[1])?;
        }
        if self.invariant_violations > 0 {
            write!(f, " | INVARIANT VIOLATIONS {}", self.invariant_violations)?;
        }
        if self.degraded {
            write!(f, " [degraded: checkpoint I/O]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let p = Progress::new(2);
        p.begin(10, 0, [0; 4], [0; 2], &[0, 0]);
        p.record(0, Outcome::UnmaskedDetected);
        p.record(1, Outcome::UnmaskedDetected);
        p.record(1, Outcome::MaskedUndetected);
        let s = p.snapshot();
        assert_eq!(s.done, 3);
        assert_eq!(s.outcomes[Outcome::UnmaskedDetected.index()], 2);
        assert_eq!(s.shard_done, vec![1, 2]);
        assert!(s.shard_live.iter().all(|&l| l), "recent completions count as live");
        assert!(!p.finished());
        p.shard_finished(0);
        assert!(!p.snapshot().shard_live[0]);
        p.finish();
        assert!(p.finished());
        let line = p.snapshot().to_string();
        assert!(line.contains("3/10"), "{line}");
        assert!(!line.contains("quar"), "anomaly tail only renders when non-zero: {line}");
    }

    #[test]
    fn resume_seeds_counters_and_rate_excludes_resumed_work() {
        let p = Progress::new(1);
        p.begin(100, 40, [10, 20, 5, 5], [0; 2], &[40]);
        let s = p.snapshot();
        assert_eq!(s.done, 40);
        assert_eq!(s.outcomes, [10, 20, 5, 5]);
        // No fresh work yet → near-zero rate regardless of resumed count.
        assert!(s.rate < 1.0);
    }

    #[test]
    fn anomalies_count_as_done_and_render() {
        let p = Progress::new(1);
        p.begin(10, 0, [0; 4], [0; 2], &[0]);
        p.record(0, Outcome::MaskedUndetected);
        p.record_anomaly(0, Anomaly::Quarantined);
        p.record_anomaly(0, Anomaly::Hung);
        p.record_anomaly(0, Anomaly::Hung);
        let s = p.snapshot();
        assert_eq!(s.done, 4, "anomalies count toward done");
        assert_eq!(s.anomalies, [1, 2]);
        assert_eq!(s.outcomes.iter().sum::<u64>(), 1, "anomalies stay out of the quadrants");
        let line = s.to_string();
        assert!(line.contains("quar 1 hung 2"), "{line}");
        assert!(!s.degraded);
        p.set_degraded(true);
        assert!(p.degraded());
        assert!(p.snapshot().to_string().contains("degraded"), "degraded marker renders");
    }

    #[test]
    fn scheduler_stats_render_only_once_leased() {
        let p = Progress::new(2);
        p.begin(10, 0, [0; 4], [0; 2], &[0, 0]);
        assert!(!p.snapshot().to_string().contains("lease"), "no lease tail before any lease");
        p.record_lease(false);
        p.record_lease(true);
        p.add_busy(Duration::from_millis(3));
        let s = p.snapshot();
        assert_eq!(s.leases, 2);
        assert_eq!(s.steals, 1);
        assert!(s.busy_pct > 0.0);
        let line = s.to_string();
        assert!(line.contains("lease 2 steal 1"), "{line}");
        // begin() resets scheduler counters for the next run.
        p.begin(10, 0, [0; 4], [0; 2], &[0, 0]);
        assert_eq!(p.snapshot().leases, 0);
    }

    #[test]
    fn resume_seeds_anomaly_counters() {
        let p = Progress::new(1);
        p.begin(100, 40, [10, 20, 5, 2], [2, 1], &[40]);
        let s = p.snapshot();
        assert_eq!(s.done, 40);
        assert_eq!(s.anomalies, [2, 1]);
    }
}
