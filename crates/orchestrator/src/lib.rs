//! # argus-orchestrator — parallel campaign engine
//!
//! Turns a `CampaignConfig` into a sharded, multi-threaded fault-injection
//! campaign (std-only: `std::thread` + atomics, no external dependencies)
//! with three properties the serial engine lacks:
//!
//! * **Determinism under parallelism** — every injection's randomness is a
//!   private `SplitMix64` stream keyed by `(campaign seed, injection
//!   index)`, and every tally accumulator is commutative, so the merged
//!   report is bit-identical to the serial run for *any* worker count,
//!   chunk size, or work-stealing schedule.
//! * **Checkpoint/resume** — the completed-index set (coalesced ranges) and
//!   the global tally are flushed to a hand-rolled JSON state file
//!   periodically and on exit; an interrupted campaign resumes exactly
//!   where it stopped, under any worker count.
//! * **Live observability** — workers publish per-injection updates through
//!   atomics; any thread can snapshot injections/sec, per-outcome running
//!   counts, per-shard liveness, and elapsed time while the campaign runs.
//! * **Supervision** — each injection runs behind a panic net and a
//!   watchdog; panics become quarantine records, runaways are classified
//!   hung, corrupt checkpoints fall back to their `.bak` generation, and
//!   transient flush failures retry with backoff under a degraded flag.
//!
//! # Examples
//!
//! ```no_run
//! use argus_orchestrator::{run_sharded, OrchestratorConfig, Progress};
//! use argus_faults::CampaignConfig;
//! use std::sync::atomic::AtomicBool;
//!
//! let cfg = CampaignConfig { injections: 10_000, ..Default::default() };
//! let ocfg = OrchestratorConfig { shards: 8, ..Default::default() };
//! let progress = Progress::new(ocfg.shards);
//! let stop = AtomicBool::new(false);
//! let report =
//!     run_sharded(&argus_workloads::stress(), &cfg, &ocfg, &stop, &progress).unwrap();
//! println!("coverage {:.1}%", 100.0 * report.unmasked_coverage());
//! ```

pub mod checkpoint;
pub mod engine;
pub mod json;
pub mod progress;

pub use checkpoint::{
    backup_path, tally_from_json, tally_to_json, CampaignTally, Checkpoint, CheckpointError,
    Fingerprint, Recovery,
};
pub use engine::{
    complement, ledger_view, mark_done, mark_range_done, range_overlap, run_sharded, shard_ranges,
    OrchestratorConfig, OrchestratorError, RemoteRunStats, ShardedReport,
};
pub use json::Json;
pub use progress::{Progress, ProgressSnapshot};
