//! The sharded campaign engine.
//!
//! A campaign of `n` injections is split into `shards` contiguous index
//! slices, one worker thread per shard. Every injection draws all of its
//! randomness from a private stream keyed by `(seed, injection index)`
//! (see `argus_faults::run_injection`), so the merged tallies are
//! bit-identical to the serial engine for any shard count.
//!
//! The engine supports:
//!
//! * **checkpoint/resume** — per-shard progress and tallies are flushed to a
//!   JSON state file periodically and on exit; a later run with `resume`
//!   picks up exactly where the file left off;
//! * **graceful cancellation** — a shared stop flag (wired to Ctrl-C by the
//!   CLI) makes every worker break after its current injection, and a final
//!   checkpoint is flushed before returning;
//! * **live observability** — workers publish to a shared [`Progress`]
//!   (atomics only on the hot path) that any thread can snapshot;
//! * **golden-run forking** — when `CampaignConfig::snapshot_every` is
//!   set, `prepare_campaign` checkpoints the golden run and every worker
//!   forks injections from the read-only snapshot store the prepared
//!   campaign shares (one `Arc<SnapshotStore>` behind `&prep`), instead
//!   of cold-booting each one. Tallies are bit-identical either way;
//! * **supervision** — each injection runs inside a panic quarantine and
//!   under a watchdog (see `argus_sim::supervise`), so one buggy or
//!   livelocked injection costs one ledger entry, not the campaign.
//!   Checkpoint files carry a CRC and a `.bak` generation; resume heals
//!   around torn or corrupted artifacts instead of crashing. `strict`
//!   turns all of this off for debugging.

use crate::checkpoint::{Checkpoint, CheckpointError, Fingerprint, ShardCheckpoint};
use crate::json::Json;
use crate::progress::Progress;
use argus_faults::campaign::{
    prepare_campaign, run_injection_guarded, run_injection_supervised, CampaignConfig,
    InjectionResult, QuarantineRecord, SupervisedOutcome,
};
use argus_faults::Outcome;
use argus_sim::fault::FaultKind;
use argus_sim::stats::{CounterSet, Histogram};
use argus_sim::supervise::{panic_message, Anomaly};
use argus_workloads::Workload;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Orchestration knobs on top of a [`CampaignConfig`].
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Worker thread / slice count (≥ 1).
    pub shards: usize,
    /// Where to write checkpoints; `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Minimum time between periodic checkpoint flushes.
    pub checkpoint_interval: Duration,
    /// Load prior progress from `checkpoint_path` before starting.
    pub resume: bool,
    /// Strict mode: disable the supervision safety nets. Injection panics
    /// propagate and kill the run, a hung injection is a panic, and a
    /// corrupt checkpoint is a hard error instead of a recovery.
    pub strict: bool,
    /// Abort the campaign once more than this many injections have been
    /// quarantined — past that point the campaign machinery itself is
    /// suspect and tallies would be misleading.
    pub quarantine_limit: usize,
    /// Extra attempts for a failed checkpoint flush before giving up on
    /// that flush (periodic) or erroring out (final).
    pub flush_retries: u32,
    /// Base backoff between flush retries (grows linearly per attempt).
    pub flush_backoff: Duration,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            checkpoint_path: None,
            checkpoint_interval: Duration::from_secs(5),
            resume: false,
            strict: false,
            quarantine_limit: 64,
            flush_retries: 3,
            flush_backoff: Duration::from_millis(25),
        }
    }
}

/// Aggregated results of a sharded campaign. Unlike the serial
/// `CampaignReport` this holds only merged tallies, not per-injection
/// records — that is what makes checkpoints small and merging cheap.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Per-outcome counts over completed injections, indexed like
    /// [`Outcome::ALL`].
    pub outcomes: [u64; 4],
    /// First-detector attribution over completed injections.
    pub attribution: CounterSet,
    /// Detection-latency distribution (cycles from first corruption to
    /// detection) over completed, detected injections.
    pub latency: Histogram,
    /// Completed injections that actually corrupted a signal.
    pub exercised: u64,
    /// Completed injections (equals `total` unless cancelled).
    pub completed: usize,
    /// Injections completed by this run (excludes resumed work).
    pub completed_this_run: usize,
    /// Planned injections.
    pub total: usize,
    /// Fault kind injected.
    pub kind: FaultKind,
    /// Golden run length in cycles.
    pub golden_cycles: u64,
    /// Wall-clock time of this run (setup + injection loop).
    pub elapsed: Duration,
    /// Shard count used.
    pub shards: usize,
    /// True when the stop flag cut the campaign short.
    pub interrupted: bool,
    /// Snapshot interval the campaign ran with (`None`: cold-boot path).
    ///
    /// Deliberately absent from [`ShardedReport::to_json`]: snapshots only
    /// change throughput, never results, and the JSON report is specified
    /// to be byte-identical with snapshots on or off.
    pub snapshot_every: Option<u64>,
    /// Golden-run checkpoints captured (0 on the cold-boot path).
    pub snapshots: usize,
    /// Injections the watchdog declared hung (counted in `completed`,
    /// absent from `outcomes`).
    pub hung: u64,
    /// Quarantined (panicked) injections, merged across shards and sorted
    /// by injection index. `quarantine.len()` is the quarantined count.
    pub quarantine: Vec<QuarantineRecord>,
    /// True when checkpoint flushing needed retries or failed — tallies
    /// are still exact, but the on-disk checkpoint may lag.
    pub degraded: bool,
    /// Individual checkpoint-flush attempts that failed (retries that
    /// later succeeded still count).
    pub flush_failures: u64,
    /// Injections that cold-booted because their golden-run snapshot
    /// failed verification (0 unless a snapshot was corrupted in memory).
    pub snapshot_fallbacks: u64,
    /// Human-readable warnings from artifact recovery (corrupt checkpoint
    /// or snapshot handling). Empty on undisturbed runs.
    pub recovery_warnings: Vec<String>,
    /// True when resume had to fall back to the `.bak` checkpoint
    /// generation.
    pub used_backup_checkpoint: bool,
}

impl ShardedReport {
    /// Count of one outcome.
    pub fn count(&self, o: Outcome) -> u64 {
        self.outcomes[o.index()]
    }

    /// Fraction of one outcome over completed injections (0.0 when empty).
    pub fn fraction(&self, o: Outcome) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.count(o) as f64 / self.completed as f64
        }
    }

    /// Coverage of unmasked errors: detected / (detected + undetected).
    pub fn unmasked_coverage(&self) -> f64 {
        let d = self.count(Outcome::UnmaskedDetected) as f64;
        let u = self.count(Outcome::UnmaskedUndetected) as f64;
        if d + u == 0.0 {
            1.0
        } else {
            d / (d + u)
        }
    }

    /// Injections per second achieved by this run.
    pub fn rate(&self) -> f64 {
        if self.elapsed.as_secs_f64() > 1e-9 {
            self.completed_this_run as f64 / self.elapsed.as_secs_f64()
        } else {
            0.0
        }
    }

    /// The final structured report rendered by `argus campaign --json`.
    pub fn to_json(&self) -> Json {
        let mut outcomes = Json::obj();
        let mut fractions = Json::obj();
        for o in Outcome::ALL {
            outcomes = outcomes.set(o.label(), self.count(o));
            fractions = fractions.set(o.label(), self.fraction(o));
        }
        Json::obj()
            .set(
                "kind",
                match self.kind {
                    FaultKind::Transient => "transient",
                    FaultKind::Permanent => "permanent",
                },
            )
            .set("total", self.total)
            .set("completed", self.completed)
            .set("completed_this_run", self.completed_this_run)
            .set("interrupted", self.interrupted)
            .set("shards", self.shards)
            .set("elapsed_seconds", self.elapsed.as_secs_f64())
            .set("injections_per_second", self.rate())
            .set("golden_cycles", self.golden_cycles)
            .set("outcomes", outcomes)
            .set("fractions", fractions)
            .set("unmasked_coverage", self.unmasked_coverage())
            .set("exercised", self.exercised)
            .set(
                "attribution",
                Json::Obj(self.attribution.iter().map(|(k, v)| (k.to_owned(), v.into())).collect()),
            )
            .set(
                "detect_latency",
                Json::obj()
                    .set("count", self.latency.count())
                    .set("mean", self.latency.mean())
                    .set("p50", self.latency.percentile(0.5).map_or(Json::Null, Json::from))
                    .set("p99", self.latency.percentile(0.99).map_or(Json::Null, Json::from))
                    .set("max", self.latency.max().map_or(Json::Null, Json::from)),
            )
            .set("hung", self.hung)
            .set("quarantined", self.quarantine.len())
            .set(
                "quarantine",
                Json::Arr(
                    self.quarantine
                        .iter()
                        .map(|q| {
                            Json::obj()
                                .set("index", q.index)
                                .set("seed", q.seed)
                                .set("panic_msg", q.panic_msg.as_str())
                        })
                        .collect(),
                ),
            )
            .set("degraded", self.degraded)
            .set("flush_failures", self.flush_failures)
            .set("snapshot_fallbacks", self.snapshot_fallbacks)
            .set(
                "recovery_warnings",
                Json::Arr(self.recovery_warnings.iter().map(|w| w.as_str().into()).collect()),
            )
            .set("used_backup_checkpoint", self.used_backup_checkpoint)
    }
}

/// Errors surfaced by the sharded engine. With supervision on (the
/// default), injection panics become quarantine records instead of
/// propagating; in strict mode they propagate as panics, like the serial
/// engine's.
#[derive(Debug)]
pub enum OrchestratorError {
    /// Checkpoint loading/validation/saving failed.
    Checkpoint(CheckpointError),
    /// Nonsensical orchestration config.
    Config(String),
    /// The supervision layer aborted the campaign (quarantine limit
    /// exceeded — the campaign machinery itself is suspect).
    Supervision(String),
}

impl std::fmt::Display for OrchestratorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Checkpoint(e) => write!(f, "{e}"),
            Self::Config(m) => write!(f, "bad orchestrator config: {m}"),
            Self::Supervision(m) => write!(f, "campaign aborted by supervision: {m}"),
        }
    }
}

impl std::error::Error for OrchestratorError {}

impl From<CheckpointError> for OrchestratorError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

/// Splits `0..n` into `shards` contiguous slices whose lengths differ by at
/// most one (the first `n % shards` slices are one longer).
pub fn shard_ranges(n: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    assert!(shards > 0, "need at least one shard");
    let base = n / shards;
    let extra = n % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut at = 0;
    for k in 0..shards {
        let len = base + usize::from(k < extra);
        ranges.push(at..at + len);
        at += len;
    }
    ranges
}

/// Per-shard mutable tallies; locked briefly after each injection so the
/// checkpointer can snapshot a consistent (done, tallies) pair.
struct ShardState {
    cp: ShardCheckpoint,
}

impl ShardState {
    fn apply(&mut self, r: &InjectionResult) {
        self.cp.done += 1;
        self.cp.outcomes[r.outcome.index()] += 1;
        if r.exercised {
            self.cp.exercised += 1;
        }
        if let Some(k) = r.detector {
            self.cp.attribution.bump(&k.to_string());
        }
        if let Some(l) = r.detect_latency {
            self.cp.latency.record(l);
        }
    }

    fn apply_hung(&mut self) {
        self.cp.done += 1;
        self.cp.hung += 1;
    }

    fn apply_quarantined(&mut self, q: QuarantineRecord) {
        self.cp.done += 1;
        self.cp.quarantine.push(q);
    }
}

/// Poison-tolerant lock: a worker that panicked (strict mode) must not
/// wedge the checkpoint coordinator out of saving everyone else's work.
fn lock_state(m: &Mutex<ShardState>) -> std::sync::MutexGuard<'_, ShardState> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Decrements the live-worker count when the worker exits — including by
/// unwinding in strict mode, so the checkpoint coordinator's wait loop
/// always terminates.
struct LiveGuard<'a>(&'a AtomicUsize);

impl Drop for LiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// Runs a sharded, checkpointable, cancellable campaign.
///
/// `stop` is polled between injections on every shard; once set, workers
/// drain and a final checkpoint is written. `progress` must have been
/// created with the same shard count.
///
/// # Panics
///
/// Panics if the workload fails to compile, the golden run does not halt
/// (same contract as the serial engine), or `progress` disagrees on the
/// shard count.
pub fn run_sharded(
    w: &Workload,
    cfg: &CampaignConfig,
    ocfg: &OrchestratorConfig,
    stop: &AtomicBool,
    progress: &Progress,
) -> Result<ShardedReport, OrchestratorError> {
    if ocfg.shards == 0 {
        return Err(OrchestratorError::Config("shards must be >= 1".into()));
    }
    assert_eq!(progress.shards(), ocfg.shards, "progress was created for a different shard count");
    let started = Instant::now();

    let fingerprint = Fingerprint {
        workload: w.name.to_owned(),
        injections: cfg.injections,
        seed: cfg.seed,
        kind: cfg.kind,
        structural_mask: cfg.structural_mask,
        shards: ocfg.shards,
    };

    // Fresh shard slices, or the ones saved by an earlier interrupted run.
    let ranges = shard_ranges(cfg.injections, ocfg.shards);
    let mut initial: Vec<ShardCheckpoint> =
        ranges.iter().map(|r| ShardCheckpoint::empty(r.start, r.end)).collect();
    let mut recovery_warnings: Vec<String> = Vec::new();
    let mut used_backup_checkpoint = false;
    if ocfg.resume {
        let path = ocfg
            .checkpoint_path
            .as_deref()
            .ok_or_else(|| OrchestratorError::Config("--resume needs a checkpoint path".into()))?;
        if path.exists() {
            let saved = if ocfg.strict {
                // Strict mode: a damaged checkpoint is a hard error.
                Some(Checkpoint::load(path)?)
            } else {
                let rec = Checkpoint::load_resilient(path);
                recovery_warnings = rec.warnings;
                used_backup_checkpoint = rec.used_backup;
                rec.checkpoint
            };
            if let Some(saved) = saved {
                saved.check_matches(&fingerprint)?;
                for (s, r) in saved.shards.iter().zip(ranges.iter()) {
                    if s.start != r.start || s.end != r.end {
                        return Err(CheckpointError::Mismatch(format!(
                            "saved shard slice {}..{} disagrees with computed {}..{}",
                            s.start, s.end, r.start, r.end
                        ))
                        .into());
                    }
                }
                initial = saved.shards;
            }
            // rec.checkpoint == None: both generations were unusable; the
            // warnings say so and the whole slice restarts from scratch.
        }
    }

    let resumed: usize = initial.iter().map(|s| s.done).sum();
    let mut resumed_outcomes = [0u64; 4];
    let mut resumed_anomalies = [0u64; 2];
    for s in &initial {
        for (acc, &c) in resumed_outcomes.iter_mut().zip(s.outcomes.iter()) {
            *acc += c;
        }
        resumed_anomalies[0] += s.quarantine.len() as u64;
        resumed_anomalies[1] += s.hung;
    }
    let per_shard_done: Vec<u64> = initial.iter().map(|s| s.done as u64).collect();
    progress.begin(
        cfg.injections as u64,
        resumed as u64,
        resumed_outcomes,
        resumed_anomalies,
        &per_shard_done,
    );
    let resumed_quarantined = resumed_anomalies[0] as usize;

    let prep = prepare_campaign(w, cfg);
    let states: Vec<Mutex<ShardState>> =
        initial.into_iter().map(|cp| Mutex::new(ShardState { cp })).collect();
    let live_workers = AtomicUsize::new(ocfg.shards);
    let quarantined_total = AtomicUsize::new(resumed_quarantined);
    let quarantine_abort = AtomicBool::new(false);
    let flush_failures = AtomicU64::new(0);
    let flush_degraded = AtomicBool::new(false);
    // First panic payload seen by a strict-mode worker: re-raised from the
    // caller's thread after the final checkpoint flush, so the original
    // message survives `thread::scope`'s generic join panic and the
    // progress made so far is still persisted.
    let strict_panic: Mutex<Option<String>> = Mutex::new(None);

    let snapshot_all = |states: &[Mutex<ShardState>]| -> Checkpoint {
        Checkpoint {
            fingerprint: fingerprint.clone(),
            shards: states.iter().map(|m| lock_state(m).cp.clone()).collect(),
        }
    };

    std::thread::scope(|scope| {
        for (k, state) in states.iter().enumerate() {
            let range = ranges[k].clone();
            let prep = &prep;
            let live_workers = &live_workers;
            let quarantined_total = &quarantined_total;
            let quarantine_abort = &quarantine_abort;
            let strict_panic = &strict_panic;
            scope.spawn(move || {
                let _live = LiveGuard(live_workers);
                let first = range.start + lock_state(state).cp.done;
                for index in first..range.end {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // Strict mode runs without the panic net: a panicking
                    // (or hung) injection aborts the whole campaign. The
                    // payload is captured so it can be re-raised from the
                    // caller's thread with its message intact —
                    // `thread::scope` would replace it with a generic
                    // "a scoped thread panicked".
                    let sup = if ocfg.strict {
                        let guarded =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                run_injection_guarded(prep, cfg, index)
                            }));
                        match guarded {
                            Ok(SupervisedOutcome::Hung { index, cause }) => {
                                strict_panic
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .get_or_insert_with(|| {
                                        format!("injection {index} hung ({})", cause.label())
                                    });
                                stop.store(true, Ordering::Release);
                                break;
                            }
                            Ok(other) => other,
                            Err(payload) => {
                                strict_panic
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .get_or_insert_with(|| panic_message(payload.as_ref()));
                                stop.store(true, Ordering::Release);
                                break;
                            }
                        }
                    } else {
                        run_injection_supervised(prep, cfg, index)
                    };
                    match sup {
                        SupervisedOutcome::Classified(r) => {
                            lock_state(state).apply(&r);
                            progress.record(k, r.outcome);
                        }
                        SupervisedOutcome::Hung { .. } => {
                            lock_state(state).apply_hung();
                            progress.record_anomaly(k, Anomaly::Hung);
                        }
                        SupervisedOutcome::Quarantined(q) => {
                            lock_state(state).apply_quarantined(q);
                            progress.record_anomaly(k, Anomaly::Quarantined);
                            let seen = quarantined_total.fetch_add(1, Ordering::AcqRel) + 1;
                            if seen > ocfg.quarantine_limit {
                                quarantine_abort.store(true, Ordering::Release);
                                stop.store(true, Ordering::Release);
                            }
                        }
                    }
                }
                progress.shard_finished(k);
            });
        }

        // Checkpoint coordinator (runs on the caller's thread inside the
        // scope): periodic flushes while workers make progress.
        if let Some(path) = ocfg.checkpoint_path.as_deref() {
            let mut last_flush = Instant::now();
            while live_workers.load(Ordering::Acquire) > 0 {
                std::thread::sleep(Duration::from_millis(25));
                if last_flush.elapsed() >= ocfg.checkpoint_interval {
                    // A failing periodic flush is not fatal mid-run — it
                    // retries with backoff, flags degraded mode, and the
                    // final flush below surfaces persistent I/O problems.
                    match snapshot_all(&states).save_with_retry(
                        path,
                        ocfg.flush_retries,
                        ocfg.flush_backoff,
                    ) {
                        Ok(0) => {}
                        Ok(failed_attempts) => {
                            flush_failures.fetch_add(u64::from(failed_attempts), Ordering::Relaxed);
                            flush_degraded.store(true, Ordering::Relaxed);
                            progress.set_degraded(true);
                        }
                        Err(_) => {
                            flush_failures
                                .fetch_add(u64::from(ocfg.flush_retries) + 1, Ordering::Relaxed);
                            flush_degraded.store(true, Ordering::Relaxed);
                            progress.set_degraded(true);
                        }
                    }
                    last_flush = Instant::now();
                }
            }
        }
    });

    let interrupted = stop.load(Ordering::Relaxed);
    let final_cp = snapshot_all(&states);
    if let Some(path) = ocfg.checkpoint_path.as_deref() {
        match final_cp.save_with_retry(path, ocfg.flush_retries, ocfg.flush_backoff) {
            Ok(0) => {}
            Ok(failed_attempts) => {
                flush_failures.fetch_add(u64::from(failed_attempts), Ordering::Relaxed);
                flush_degraded.store(true, Ordering::Relaxed);
                progress.set_degraded(true);
            }
            Err(e) => return Err(CheckpointError::from(e).into()),
        }
    }
    progress.finish();

    // Strict mode: re-raise the worker's panic with its original message,
    // now that progress has been flushed.
    if let Some(msg) = strict_panic.lock().unwrap_or_else(|e| e.into_inner()).take() {
        panic!("{msg}");
    }

    if quarantine_abort.load(Ordering::Acquire) {
        return Err(OrchestratorError::Supervision(format!(
            "{} injections quarantined (limit {}); progress checkpointed, tallies would be \
             misleading",
            quarantined_total.load(Ordering::Acquire),
            ocfg.quarantine_limit
        )));
    }

    // Deterministic merge: shard order is fixed and every accumulator is
    // commutative/associative, so the result is independent of timing.
    let mut outcomes = [0u64; 4];
    let mut attribution = CounterSet::new();
    let mut latency = Histogram::new();
    let mut exercised = 0u64;
    let mut hung = 0u64;
    let mut quarantine: Vec<QuarantineRecord> = Vec::new();
    for s in &final_cp.shards {
        for (acc, &c) in outcomes.iter_mut().zip(s.outcomes.iter()) {
            *acc += c;
        }
        attribution.merge(&s.attribution);
        latency.merge(&s.latency);
        exercised += s.exercised;
        hung += s.hung;
        quarantine.extend(s.quarantine.iter().cloned());
    }
    quarantine.sort_by_key(|q| q.index);
    let completed = final_cp.completed();

    recovery_warnings.extend(prep.take_snapshot_warnings());

    Ok(ShardedReport {
        outcomes,
        attribution,
        latency,
        exercised,
        completed,
        completed_this_run: completed - resumed,
        total: cfg.injections,
        kind: cfg.kind,
        golden_cycles: prep.golden_cycles(),
        elapsed: started.elapsed(),
        shards: ocfg.shards,
        interrupted,
        snapshot_every: cfg.snapshot_every,
        snapshots: prep.snapshot_store().map_or(0, |s| s.len()),
        hung,
        quarantine,
        degraded: flush_degraded.load(Ordering::Relaxed),
        flush_failures: flush_failures.load(Ordering::Relaxed),
        snapshot_fallbacks: prep.snapshot_fallbacks(),
        recovery_warnings,
        used_backup_checkpoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_exactly() {
        for n in [0usize, 1, 7, 100, 101, 1000] {
            for shards in [1usize, 2, 3, 8, 17] {
                let ranges = shard_ranges(n, shards);
                assert_eq!(ranges.len(), shards);
                let mut at = 0;
                for r in &ranges {
                    assert_eq!(r.start, at, "contiguous");
                    at = r.end;
                }
                assert_eq!(at, n, "covers 0..{n}");
                let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (lo, hi) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(hi - lo <= 1, "balanced: {lens:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        shard_ranges(10, 0);
    }

    #[test]
    fn zero_shard_config_is_an_error() {
        let w = argus_workloads::stress();
        let cfg = CampaignConfig { injections: 1, ..Default::default() };
        let ocfg = OrchestratorConfig { shards: 0, ..Default::default() };
        let progress = Progress::new(0);
        let stop = AtomicBool::new(false);
        assert!(matches!(
            run_sharded(&w, &cfg, &ocfg, &stop, &progress),
            Err(OrchestratorError::Config(_))
        ));
    }
}
