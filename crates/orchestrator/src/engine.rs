//! The sharded campaign engine.
//!
//! A campaign of `n` injections is split into `shards` contiguous index
//! slices, one worker thread per shard. Every injection draws all of its
//! randomness from a private stream keyed by `(seed, injection index)`
//! (see `argus_faults::run_injection`), so the merged tallies are
//! bit-identical to the serial engine for any shard count.
//!
//! The engine supports:
//!
//! * **checkpoint/resume** — per-shard progress and tallies are flushed to a
//!   JSON state file periodically and on exit; a later run with `resume`
//!   picks up exactly where the file left off;
//! * **graceful cancellation** — a shared stop flag (wired to Ctrl-C by the
//!   CLI) makes every worker break after its current injection, and a final
//!   checkpoint is flushed before returning;
//! * **live observability** — workers publish to a shared [`Progress`]
//!   (atomics only on the hot path) that any thread can snapshot;
//! * **golden-run forking** — when `CampaignConfig::snapshot_every` is
//!   set, `prepare_campaign` checkpoints the golden run and every worker
//!   forks injections from the read-only snapshot store the prepared
//!   campaign shares (one `Arc<SnapshotStore>` behind `&prep`), instead
//!   of cold-booting each one. Tallies are bit-identical either way.

use crate::checkpoint::{Checkpoint, CheckpointError, Fingerprint, ShardCheckpoint};
use crate::json::Json;
use crate::progress::Progress;
use argus_faults::campaign::{prepare_campaign, run_injection, CampaignConfig, InjectionResult};
use argus_faults::Outcome;
use argus_sim::fault::FaultKind;
use argus_sim::stats::{CounterSet, Histogram};
use argus_workloads::Workload;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Orchestration knobs on top of a [`CampaignConfig`].
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Worker thread / slice count (≥ 1).
    pub shards: usize,
    /// Where to write checkpoints; `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Minimum time between periodic checkpoint flushes.
    pub checkpoint_interval: Duration,
    /// Load prior progress from `checkpoint_path` before starting.
    pub resume: bool,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            checkpoint_path: None,
            checkpoint_interval: Duration::from_secs(5),
            resume: false,
        }
    }
}

/// Aggregated results of a sharded campaign. Unlike the serial
/// `CampaignReport` this holds only merged tallies, not per-injection
/// records — that is what makes checkpoints small and merging cheap.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Per-outcome counts over completed injections, indexed like
    /// [`Outcome::ALL`].
    pub outcomes: [u64; 4],
    /// First-detector attribution over completed injections.
    pub attribution: CounterSet,
    /// Detection-latency distribution (cycles from first corruption to
    /// detection) over completed, detected injections.
    pub latency: Histogram,
    /// Completed injections that actually corrupted a signal.
    pub exercised: u64,
    /// Completed injections (equals `total` unless cancelled).
    pub completed: usize,
    /// Injections completed by this run (excludes resumed work).
    pub completed_this_run: usize,
    /// Planned injections.
    pub total: usize,
    /// Fault kind injected.
    pub kind: FaultKind,
    /// Golden run length in cycles.
    pub golden_cycles: u64,
    /// Wall-clock time of this run (setup + injection loop).
    pub elapsed: Duration,
    /// Shard count used.
    pub shards: usize,
    /// True when the stop flag cut the campaign short.
    pub interrupted: bool,
    /// Snapshot interval the campaign ran with (`None`: cold-boot path).
    ///
    /// Deliberately absent from [`ShardedReport::to_json`]: snapshots only
    /// change throughput, never results, and the JSON report is specified
    /// to be byte-identical with snapshots on or off.
    pub snapshot_every: Option<u64>,
    /// Golden-run checkpoints captured (0 on the cold-boot path).
    pub snapshots: usize,
}

impl ShardedReport {
    /// Count of one outcome.
    pub fn count(&self, o: Outcome) -> u64 {
        self.outcomes[o.index()]
    }

    /// Fraction of one outcome over completed injections (0.0 when empty).
    pub fn fraction(&self, o: Outcome) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.count(o) as f64 / self.completed as f64
        }
    }

    /// Coverage of unmasked errors: detected / (detected + undetected).
    pub fn unmasked_coverage(&self) -> f64 {
        let d = self.count(Outcome::UnmaskedDetected) as f64;
        let u = self.count(Outcome::UnmaskedUndetected) as f64;
        if d + u == 0.0 {
            1.0
        } else {
            d / (d + u)
        }
    }

    /// Injections per second achieved by this run.
    pub fn rate(&self) -> f64 {
        if self.elapsed.as_secs_f64() > 1e-9 {
            self.completed_this_run as f64 / self.elapsed.as_secs_f64()
        } else {
            0.0
        }
    }

    /// The final structured report rendered by `argus campaign --json`.
    pub fn to_json(&self) -> Json {
        let mut outcomes = Json::obj();
        let mut fractions = Json::obj();
        for o in Outcome::ALL {
            outcomes = outcomes.set(o.label(), self.count(o));
            fractions = fractions.set(o.label(), self.fraction(o));
        }
        Json::obj()
            .set(
                "kind",
                match self.kind {
                    FaultKind::Transient => "transient",
                    FaultKind::Permanent => "permanent",
                },
            )
            .set("total", self.total)
            .set("completed", self.completed)
            .set("completed_this_run", self.completed_this_run)
            .set("interrupted", self.interrupted)
            .set("shards", self.shards)
            .set("elapsed_seconds", self.elapsed.as_secs_f64())
            .set("injections_per_second", self.rate())
            .set("golden_cycles", self.golden_cycles)
            .set("outcomes", outcomes)
            .set("fractions", fractions)
            .set("unmasked_coverage", self.unmasked_coverage())
            .set("exercised", self.exercised)
            .set(
                "attribution",
                Json::Obj(self.attribution.iter().map(|(k, v)| (k.to_owned(), v.into())).collect()),
            )
            .set(
                "detect_latency",
                Json::obj()
                    .set("count", self.latency.count())
                    .set("mean", self.latency.mean())
                    .set("p50", self.latency.percentile(0.5).map_or(Json::Null, Json::from))
                    .set("p99", self.latency.percentile(0.99).map_or(Json::Null, Json::from))
                    .set("max", self.latency.max().map_or(Json::Null, Json::from)),
            )
    }
}

/// Errors surfaced by the sharded engine (worker panics still propagate as
/// panics, like the serial engine's).
#[derive(Debug)]
pub enum OrchestratorError {
    /// Checkpoint loading/validation/saving failed.
    Checkpoint(CheckpointError),
    /// Nonsensical orchestration config.
    Config(String),
}

impl std::fmt::Display for OrchestratorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Checkpoint(e) => write!(f, "{e}"),
            Self::Config(m) => write!(f, "bad orchestrator config: {m}"),
        }
    }
}

impl std::error::Error for OrchestratorError {}

impl From<CheckpointError> for OrchestratorError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

/// Splits `0..n` into `shards` contiguous slices whose lengths differ by at
/// most one (the first `n % shards` slices are one longer).
pub fn shard_ranges(n: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    assert!(shards > 0, "need at least one shard");
    let base = n / shards;
    let extra = n % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut at = 0;
    for k in 0..shards {
        let len = base + usize::from(k < extra);
        ranges.push(at..at + len);
        at += len;
    }
    ranges
}

/// Per-shard mutable tallies; locked briefly after each injection so the
/// checkpointer can snapshot a consistent (done, tallies) pair.
struct ShardState {
    cp: ShardCheckpoint,
}

impl ShardState {
    fn apply(&mut self, r: &InjectionResult) {
        self.cp.done += 1;
        self.cp.outcomes[r.outcome.index()] += 1;
        if r.exercised {
            self.cp.exercised += 1;
        }
        if let Some(k) = r.detector {
            self.cp.attribution.bump(&k.to_string());
        }
        if let Some(l) = r.detect_latency {
            self.cp.latency.record(l);
        }
    }
}

/// Runs a sharded, checkpointable, cancellable campaign.
///
/// `stop` is polled between injections on every shard; once set, workers
/// drain and a final checkpoint is written. `progress` must have been
/// created with the same shard count.
///
/// # Panics
///
/// Panics if the workload fails to compile, the golden run does not halt
/// (same contract as the serial engine), or `progress` disagrees on the
/// shard count.
pub fn run_sharded(
    w: &Workload,
    cfg: &CampaignConfig,
    ocfg: &OrchestratorConfig,
    stop: &AtomicBool,
    progress: &Progress,
) -> Result<ShardedReport, OrchestratorError> {
    if ocfg.shards == 0 {
        return Err(OrchestratorError::Config("shards must be >= 1".into()));
    }
    assert_eq!(progress.shards(), ocfg.shards, "progress was created for a different shard count");
    let started = Instant::now();

    let fingerprint = Fingerprint {
        workload: w.name.to_owned(),
        injections: cfg.injections,
        seed: cfg.seed,
        kind: cfg.kind,
        structural_mask: cfg.structural_mask,
        shards: ocfg.shards,
    };

    // Fresh shard slices, or the ones saved by an earlier interrupted run.
    let ranges = shard_ranges(cfg.injections, ocfg.shards);
    let mut initial: Vec<ShardCheckpoint> =
        ranges.iter().map(|r| ShardCheckpoint::empty(r.start, r.end)).collect();
    if ocfg.resume {
        let path = ocfg
            .checkpoint_path
            .as_deref()
            .ok_or_else(|| OrchestratorError::Config("--resume needs a checkpoint path".into()))?;
        if path.exists() {
            let saved = Checkpoint::load(path)?;
            saved.check_matches(&fingerprint)?;
            initial = saved.shards;
        }
    }

    let resumed: usize = initial.iter().map(|s| s.done).sum();
    let mut resumed_outcomes = [0u64; 4];
    for s in &initial {
        for (acc, &c) in resumed_outcomes.iter_mut().zip(s.outcomes.iter()) {
            *acc += c;
        }
    }
    let per_shard_done: Vec<u64> = initial.iter().map(|s| s.done as u64).collect();
    progress.begin(cfg.injections as u64, resumed as u64, resumed_outcomes, &per_shard_done);

    let prep = prepare_campaign(w, cfg);
    let states: Vec<Mutex<ShardState>> =
        initial.into_iter().map(|cp| Mutex::new(ShardState { cp })).collect();
    let live_workers = AtomicUsize::new(ocfg.shards);

    let snapshot_all = |states: &[Mutex<ShardState>]| -> Checkpoint {
        Checkpoint {
            fingerprint: fingerprint.clone(),
            shards: states.iter().map(|m| m.lock().unwrap().cp.clone()).collect(),
        }
    };

    std::thread::scope(|scope| {
        for (k, state) in states.iter().enumerate() {
            let range = ranges[k].clone();
            let prep = &prep;
            let live_workers = &live_workers;
            scope.spawn(move || {
                let first = range.start + state.lock().unwrap().cp.done;
                for index in first..range.end {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let r = run_injection(prep, cfg, index);
                    state.lock().unwrap().apply(&r);
                    progress.record(k, r.outcome);
                }
                progress.shard_finished(k);
                live_workers.fetch_sub(1, Ordering::Release);
            });
        }

        // Checkpoint coordinator (runs on the caller's thread inside the
        // scope): periodic flushes while workers make progress.
        if let Some(path) = ocfg.checkpoint_path.as_deref() {
            let mut last_flush = Instant::now();
            while live_workers.load(Ordering::Acquire) > 0 {
                std::thread::sleep(Duration::from_millis(25));
                if last_flush.elapsed() >= ocfg.checkpoint_interval {
                    // A failed periodic flush is not fatal mid-run; the
                    // final flush below surfaces persistent I/O problems.
                    let _ = snapshot_all(&states).save(path);
                    last_flush = Instant::now();
                }
            }
        }
    });

    let interrupted = stop.load(Ordering::Relaxed);
    let final_cp = snapshot_all(&states);
    if let Some(path) = ocfg.checkpoint_path.as_deref() {
        final_cp.save(path).map_err(CheckpointError::from)?;
    }
    progress.finish();

    // Deterministic merge: shard order is fixed and every accumulator is
    // commutative/associative, so the result is independent of timing.
    let mut outcomes = [0u64; 4];
    let mut attribution = CounterSet::new();
    let mut latency = Histogram::new();
    let mut exercised = 0u64;
    for s in &final_cp.shards {
        for (acc, &c) in outcomes.iter_mut().zip(s.outcomes.iter()) {
            *acc += c;
        }
        attribution.merge(&s.attribution);
        latency.merge(&s.latency);
        exercised += s.exercised;
    }
    let completed = final_cp.completed();

    Ok(ShardedReport {
        outcomes,
        attribution,
        latency,
        exercised,
        completed,
        completed_this_run: completed - resumed,
        total: cfg.injections,
        kind: cfg.kind,
        golden_cycles: prep.golden_cycles(),
        elapsed: started.elapsed(),
        shards: ocfg.shards,
        interrupted,
        snapshot_every: cfg.snapshot_every,
        snapshots: prep.snapshot_store().map_or(0, |s| s.len()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_exactly() {
        for n in [0usize, 1, 7, 100, 101, 1000] {
            for shards in [1usize, 2, 3, 8, 17] {
                let ranges = shard_ranges(n, shards);
                assert_eq!(ranges.len(), shards);
                let mut at = 0;
                for r in &ranges {
                    assert_eq!(r.start, at, "contiguous");
                    at = r.end;
                }
                assert_eq!(at, n, "covers 0..{n}");
                let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (lo, hi) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(hi - lo <= 1, "balanced: {lens:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        shard_ranges(10, 0);
    }

    #[test]
    fn zero_shard_config_is_an_error() {
        let w = argus_workloads::stress();
        let cfg = CampaignConfig { injections: 1, ..Default::default() };
        let ocfg = OrchestratorConfig { shards: 0, ..Default::default() };
        let progress = Progress::new(0);
        let stop = AtomicBool::new(false);
        assert!(matches!(
            run_sharded(&w, &cfg, &ocfg, &stop, &progress),
            Err(OrchestratorError::Config(_))
        ));
    }
}
