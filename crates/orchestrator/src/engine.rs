//! The work-stealing campaign engine.
//!
//! A campaign of `n` injections is a single shared pool of indices.
//! Workers *lease* chunks of contiguous indices from a scheduler instead
//! of owning fixed slices: each worker prefers work inside its "home"
//! region (the static slice [`shard_ranges`] would have given it, for
//! locality of the warm per-worker fork workspace) and steals from the
//! front of the remaining pool once its home is drained. Lease size decays
//! toward 1 as the pool empties, so the tail of the campaign never leaves
//! a worker idle behind one long-running slice.
//!
//! Determinism under this dynamic schedule rests on two facts:
//!
//! * every injection draws all of its randomness from a private stream
//!   keyed by `(seed, injection index)` (see `argus_faults::run_injection`)
//!   — results depend only on *which* indices run, never on where or when;
//! * every accumulator in the global [`CampaignTally`] is commutative
//!   (counts, BTreeMap counters, histogram merges, an index-sorted
//!   quarantine ledger), so the merged tallies — and the JSON report built
//!   from them — are bit-identical for any worker count, chunk size, or
//!   interleaving, including runs stitched together through a checkpoint.
//!
//! The engine supports:
//!
//! * **checkpoint/resume** — the completed-index set (coalesced ranges)
//!   and the global tally are flushed to a JSON state file periodically
//!   and on exit; a later run with `resume` leases out exactly the
//!   complement, under *any* worker count;
//! * **graceful cancellation** — a shared stop flag (wired to Ctrl-C by the
//!   CLI) makes every worker break after its current injection, and a final
//!   checkpoint is flushed before returning;
//! * **live observability** — workers publish to a shared [`Progress`]
//!   (atomics only on the hot path) including scheduler utilization
//!   (leases, steals, busy time) that any thread can snapshot;
//! * **golden-run forking** — when `CampaignConfig::snapshot_every` is
//!   set, each worker forks injections from the shared read-only snapshot
//!   store into its private reusable workspace (delta restore: only pages
//!   dirtied since the last fork are rewritten), instead of cold-booting;
//! * **supervision** — each injection runs inside a panic quarantine and
//!   under a watchdog (see `argus_sim::supervise`), so one buggy or
//!   livelocked injection costs one ledger entry, not the campaign.
//!   Checkpoint files carry a CRC and a `.bak` generation; resume heals
//!   around torn or corrupted artifacts instead of crashing. `strict`
//!   turns all of this off for debugging.

use crate::checkpoint::{CampaignTally, Checkpoint, CheckpointError, Fingerprint};
use crate::json::Json;
use crate::progress::Progress;
use argus_faults::campaign::{
    prepare_campaign, run_injection_guarded_in, run_injection_supervised_in, CampaignConfig,
    CampaignWorkspace, ExecStats, InjectionResult, QuarantineRecord, SupervisedOutcome,
};
use argus_faults::Outcome;
use argus_invariants::{Hook, InvariantCtx, InvariantStats, LedgerView};
use argus_sim::fault::FaultKind;
use argus_sim::stats::{CounterSet, Histogram};
use argus_sim::supervise::{panic_message, Anomaly};
use argus_workloads::Workload;
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Orchestration knobs on top of a [`CampaignConfig`].
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Worker thread count (≥ 1).
    pub shards: usize,
    /// Maximum injections per scheduler lease (≥ 1). Larger chunks
    /// amortize scheduler locking; the scheduler shrinks leases toward 1
    /// at the tail regardless, so this only caps the *early* lease size.
    pub chunk: usize,
    /// Where to write checkpoints; `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Minimum time between periodic checkpoint flushes.
    pub checkpoint_interval: Duration,
    /// Load prior progress from `checkpoint_path` before starting.
    pub resume: bool,
    /// Strict mode: disable the supervision safety nets. Injection panics
    /// propagate and kill the run, a hung injection is a panic, and a
    /// corrupt checkpoint is a hard error instead of a recovery.
    pub strict: bool,
    /// Abort the campaign once more than this many injections have been
    /// quarantined — past that point the campaign machinery itself is
    /// suspect and tallies would be misleading.
    pub quarantine_limit: usize,
    /// Extra attempts for a failed checkpoint flush before giving up on
    /// that flush (periodic) or erroring out (final).
    pub flush_retries: u32,
    /// Base backoff between flush retries (grows linearly per attempt).
    pub flush_backoff: Duration,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            chunk: 32,
            checkpoint_path: None,
            checkpoint_interval: Duration::from_secs(5),
            resume: false,
            strict: false,
            quarantine_limit: 64,
            flush_retries: 3,
            flush_backoff: Duration::from_millis(25),
        }
    }
}

/// Aggregated results of a campaign. Unlike the serial `CampaignReport`
/// this holds only merged tallies, not per-injection records — that is
/// what makes checkpoints small and merging cheap.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Per-outcome counts over completed injections, indexed like
    /// [`Outcome::ALL`].
    pub outcomes: [u64; 4],
    /// First-detector attribution over completed injections.
    pub attribution: CounterSet,
    /// Detection-latency distribution (cycles from first corruption to
    /// detection) over completed, detected injections.
    pub latency: Histogram,
    /// Completed injections that actually corrupted a signal.
    pub exercised: u64,
    /// Completed injections (equals `total` unless cancelled).
    pub completed: usize,
    /// Injections completed by this run (excludes resumed work).
    pub completed_this_run: usize,
    /// Planned injections.
    pub total: usize,
    /// Fault kind injected.
    pub kind: FaultKind,
    /// Golden run length in cycles.
    pub golden_cycles: u64,
    /// Wall-clock time of this run (setup + injection loop).
    pub elapsed: Duration,
    /// Worker thread count used.
    pub shards: usize,
    /// Maximum scheduler lease size used.
    pub chunk: usize,
    /// Chunks leased out by the scheduler this run.
    pub leases: u64,
    /// Leases taken outside the leasing worker's home region (its static
    /// `shard_ranges` slice) — work-stealing events.
    pub steals: u64,
    /// Total time workers spent inside injections this run (summed across
    /// workers; compare against `elapsed * shards` for utilization).
    pub busy: Duration,
    /// Spread between the first and the last worker to run out of work —
    /// the wall-clock cost of load imbalance at the tail.
    pub tail_imbalance: Duration,
    /// True when the stop flag cut the campaign short.
    pub interrupted: bool,
    /// Snapshot interval the campaign ran with (`None`: cold-boot path).
    ///
    /// Deliberately absent from [`ShardedReport::to_json`]: snapshots only
    /// change throughput, never results, and the JSON report is specified
    /// to be byte-identical with snapshots on or off.
    pub snapshot_every: Option<u64>,
    /// Golden-run checkpoints captured (0 on the cold-boot path).
    pub snapshots: usize,
    /// Injections the watchdog declared hung (counted in `completed`,
    /// absent from `outcomes`).
    pub hung: u64,
    /// Quarantined (panicked) injections, sorted by injection index.
    /// `quarantine.len()` is the quarantined count.
    pub quarantine: Vec<QuarantineRecord>,
    /// True when checkpoint flushing needed retries or failed — tallies
    /// are still exact, but the on-disk checkpoint may lag.
    pub degraded: bool,
    /// Individual checkpoint-flush attempts that failed (retries that
    /// later succeeded still count).
    pub flush_failures: u64,
    /// Injections that cold-booted because their golden-run snapshot
    /// failed verification (0 unless a snapshot was corrupted in memory).
    pub snapshot_fallbacks: u64,
    /// Predecode/plan-cache counters summed over this run's local workers.
    /// Volatile — cache warmth depends on scheduling and fork strategy —
    /// so it serializes under the report's `"run"` key.
    pub exec: ExecStats,
    /// Predecode/plan-cache counters from the campaign's golden run (after
    /// the lowering pass warmed the plan cache). Also under `"run"`.
    pub golden_exec: ExecStats,
    /// Human-readable warnings from artifact recovery (corrupt checkpoint
    /// or snapshot handling). Empty on undisturbed runs.
    pub recovery_warnings: Vec<String>,
    /// True when resume had to fall back to the `.bak` checkpoint
    /// generation.
    pub used_backup_checkpoint: bool,
    /// Distributed-execution accounting, present only on runs coordinated
    /// through the remote lease protocol. Volatile (scheduling-shaped), so
    /// it serializes under the `"run"` key and never perturbs the
    /// deterministic payload.
    pub remote: Option<RemoteRunStats>,
    /// Always-on invariant accounting. `checks_run` is scheduling-shaped
    /// (hooks stride over whatever chunks this run happened to execute),
    /// so the whole object serializes under the volatile `"run"` key; on a
    /// healthy campaign `violations` is 0 in every mode.
    pub invariants: InvariantStats,
}

/// Accounting for a distributed (remote-lease) run: how the chunk pool was
/// split between the daemon's local workers and remote `argus worker`
/// processes, and how often the lease machinery had to intervene. All
/// values are wall-clock/schedule shaped — two identical campaigns may
/// differ here — so they live under the report's volatile `"run"` key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RemoteRunStats {
    /// Distinct remote workers that ever held a lease this run.
    pub workers_seen: u64,
    /// Chunks completed over the wire by remote workers.
    pub remote_chunks: u64,
    /// Chunks completed by the daemon's local pool workers.
    pub local_chunks: u64,
    /// Leases that expired (missed heartbeats) and were reissued.
    pub expired_leases: u64,
    /// Duplicate `complete` posts dropped by chunk/range dedup.
    pub duplicate_completes: u64,
    /// Artifact bodies served to cold-starting workers.
    pub artifact_fetches: u64,
    /// Artifact bodies workers resolved from their on-disk CRC-keyed
    /// caches instead of re-fetching (reported on completion posts).
    pub artifact_cache_hits: u64,
}

impl RemoteRunStats {
    /// The `"remote"` object under the report's `"run"` key.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("workers_seen", self.workers_seen)
            .set("remote_chunks", self.remote_chunks)
            .set("local_chunks", self.local_chunks)
            .set("expired_leases", self.expired_leases)
            .set("duplicate_completes", self.duplicate_completes)
            .set("artifact_fetches", self.artifact_fetches)
            .set("artifact_cache_hits", self.artifact_cache_hits)
    }
}

/// An [`InvariantStats`] as the `"invariants"` object under the `"run"`
/// key: mode, totals, per-invariant violation counts, and example details.
fn invariants_json(s: &InvariantStats) -> Json {
    Json::obj()
        .set("mode", s.mode.as_str())
        .set("checks_run", s.checks_run)
        .set("violations", s.violations)
        .set(
            "per_invariant",
            Json::Obj(s.per_invariant.iter().map(|(k, v)| (k.clone(), (*v).into())).collect()),
        )
        .set(
            "examples",
            Json::Arr(
                s.examples
                    .iter()
                    .map(|(name, detail)| {
                        Json::obj().set("invariant", name.as_str()).set("detail", detail.as_str())
                    })
                    .collect(),
            ),
        )
}

/// An [`ExecStats`] as a `"run"`-key JSON object.
fn exec_json(e: &ExecStats) -> Json {
    Json::obj()
        .set("predecode_hits", e.predecode_hits)
        .set("predecode_misses", e.predecode_misses)
        .set("plan_hits", e.plan_hits)
        .set("plan_misses", e.plan_misses)
        .set("plan_evictions", e.plan_evictions)
        .set("plan_fallbacks", e.plan_fallbacks)
}

impl ShardedReport {
    /// Count of one outcome.
    pub fn count(&self, o: Outcome) -> u64 {
        self.outcomes[o.index()]
    }

    /// Fraction of one outcome over completed injections (0.0 when empty).
    pub fn fraction(&self, o: Outcome) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.count(o) as f64 / self.completed as f64
        }
    }

    /// Coverage of unmasked errors: detected / (detected + undetected).
    pub fn unmasked_coverage(&self) -> f64 {
        let d = self.count(Outcome::UnmaskedDetected) as f64;
        let u = self.count(Outcome::UnmaskedUndetected) as f64;
        if d + u == 0.0 {
            1.0
        } else {
            d / (d + u)
        }
    }

    /// Injections per second achieved by this run.
    pub fn rate(&self) -> f64 {
        if self.elapsed.as_secs_f64() > 1e-9 {
            self.completed_this_run as f64 / self.elapsed.as_secs_f64()
        } else {
            0.0
        }
    }

    /// Worker utilization: busy time over total worker-time, in percent.
    pub fn busy_pct(&self) -> f64 {
        let denom = self.elapsed.as_secs_f64() * self.shards as f64;
        if denom > 1e-9 {
            100.0 * self.busy.as_secs_f64() / denom
        } else {
            0.0
        }
    }

    /// The final structured report rendered by `argus campaign --json`.
    ///
    /// The top-level keys are the *deterministic* payload: byte-identical
    /// for any worker count, chunk size, fork strategy, or clean-vs-resumed
    /// run of the same campaign. Everything run-shaped (wall clock,
    /// scheduler utilization, recovery metadata) lives under the single
    /// volatile `"run"` key, so consumers can diff reports by dropping one
    /// field.
    pub fn to_json(&self) -> Json {
        let mut outcomes = Json::obj();
        let mut fractions = Json::obj();
        for o in Outcome::ALL {
            outcomes = outcomes.set(o.label(), self.count(o));
            fractions = fractions.set(o.label(), self.fraction(o));
        }
        let mut run = Json::obj()
            .set("elapsed_seconds", self.elapsed.as_secs_f64())
            .set("injections_per_second", self.rate())
            .set("completed_this_run", self.completed_this_run)
            .set("workers", self.shards)
            .set("chunk", self.chunk)
            .set("leases", self.leases)
            .set("steals", self.steals)
            .set("busy_pct", self.busy_pct())
            .set("tail_imbalance_seconds", self.tail_imbalance.as_secs_f64())
            .set("degraded", self.degraded)
            .set("flush_failures", self.flush_failures)
            .set("snapshot_fallbacks", self.snapshot_fallbacks)
            .set(
                "recovery_warnings",
                Json::Arr(self.recovery_warnings.iter().map(|w| w.as_str().into()).collect()),
            )
            .set("used_backup_checkpoint", self.used_backup_checkpoint)
            .set("exec", exec_json(&self.exec))
            .set("golden_exec", exec_json(&self.golden_exec))
            .set("invariants", invariants_json(&self.invariants));
        if let Some(remote) = &self.remote {
            run = run.set("remote", remote.to_json());
        }
        Json::obj()
            .set(
                "kind",
                match self.kind {
                    FaultKind::Transient => "transient",
                    FaultKind::Permanent => "permanent",
                },
            )
            .set("total", self.total)
            .set("completed", self.completed)
            .set("interrupted", self.interrupted)
            .set("golden_cycles", self.golden_cycles)
            .set("outcomes", outcomes)
            .set("fractions", fractions)
            .set("unmasked_coverage", self.unmasked_coverage())
            .set("exercised", self.exercised)
            .set(
                "attribution",
                Json::Obj(self.attribution.iter().map(|(k, v)| (k.to_owned(), v.into())).collect()),
            )
            .set(
                "detect_latency",
                Json::obj()
                    .set("count", self.latency.count())
                    .set("mean", self.latency.mean())
                    .set("p50", self.latency.percentile(0.5).map_or(Json::Null, Json::from))
                    .set("p99", self.latency.percentile(0.99).map_or(Json::Null, Json::from))
                    .set("max", self.latency.max().map_or(Json::Null, Json::from)),
            )
            .set("hung", self.hung)
            .set("quarantined", self.quarantine.len())
            .set(
                "quarantine",
                Json::Arr(
                    self.quarantine
                        .iter()
                        .map(|q| {
                            Json::obj()
                                .set("index", q.index)
                                .set("seed", q.seed)
                                .set("panic_msg", q.panic_msg.as_str())
                        })
                        .collect(),
                ),
            )
            .set("run", run)
    }
}

/// Errors surfaced by the engine. With supervision on (the default),
/// injection panics become quarantine records instead of propagating; in
/// strict mode they propagate as panics, like the serial engine's.
#[derive(Debug)]
pub enum OrchestratorError {
    /// Checkpoint loading/validation/saving failed.
    Checkpoint(CheckpointError),
    /// Nonsensical orchestration config.
    Config(String),
    /// The supervision layer aborted the campaign (quarantine limit
    /// exceeded — the campaign machinery itself is suspect).
    Supervision(String),
    /// Strict mode observed an invariant violation; the message names the
    /// violating invariant and its first recorded detail.
    Invariant(String),
}

impl std::fmt::Display for OrchestratorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Checkpoint(e) => write!(f, "{e}"),
            Self::Config(m) => write!(f, "bad orchestrator config: {m}"),
            Self::Supervision(m) => write!(f, "campaign aborted by supervision: {m}"),
            Self::Invariant(m) => write!(f, "invariant violated: {m}"),
        }
    }
}

impl std::error::Error for OrchestratorError {}

impl From<CheckpointError> for OrchestratorError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

/// Splits `0..n` into `shards` contiguous slices whose lengths differ by at
/// most one (the first `n % shards` slices are one longer). The scheduler
/// uses these as advisory *home regions* for locality and steal
/// accounting; correctness never depends on them.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    assert!(shards > 0, "need at least one shard");
    let base = n / shards;
    let extra = n % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut at = 0;
    for k in 0..shards {
        let len = base + usize::from(k < extra);
        ranges.push(at..at + len);
        at += len;
    }
    ranges
}

/// One chunk of injection indices handed to a worker.
struct Lease {
    range: Range<usize>,
    /// True when the chunk lies outside the worker's home region.
    stolen: bool,
}

/// The work-stealing chunk scheduler: unleased indices as sorted disjoint
/// ranges. Workers lease from their home region while it lasts, then steal
/// from the front of whatever remains. Lease size is
/// `clamp(remaining / (workers * 2), 1, chunk_max)` — large while the pool
/// is deep (amortizing the lock), decaying to single injections at the
/// tail so no worker idles behind one long lease.
struct Scheduler {
    /// Unleased work, ascending and disjoint.
    remaining: Vec<Range<usize>>,
    remaining_len: usize,
    workers: usize,
    chunk_max: usize,
    leases: u64,
    steals: u64,
}

impl Scheduler {
    fn new(remaining: Vec<Range<usize>>, workers: usize, chunk_max: usize) -> Self {
        let remaining_len = remaining.iter().map(Range::len).sum();
        Self { remaining, remaining_len, workers, chunk_max, leases: 0, steals: 0 }
    }

    fn lease(&mut self, home: &Range<usize>) -> Option<Lease> {
        if self.remaining_len == 0 {
            return None;
        }
        let chunk = (self.remaining_len / (self.workers * 2)).clamp(1, self.chunk_max);
        // Prefer work overlapping the home region; otherwise steal the
        // lowest remaining indices.
        let pick = self.remaining.iter().position(|r| r.start < home.end && home.start < r.end);
        let (i, stolen) = match pick {
            Some(i) => (i, false),
            None => (0, true),
        };
        let r = self.remaining[i].clone();
        let s = if stolen { r.start } else { r.start.max(home.start) };
        let e = (s + chunk).min(r.end);
        // Carve s..e out of the range, leaving up to two remnants.
        let mut remnants = Vec::with_capacity(2);
        if r.start < s {
            remnants.push(r.start..s);
        }
        if e < r.end {
            remnants.push(e..r.end);
        }
        self.remaining.splice(i..i + 1, remnants);
        self.remaining_len -= e - s;
        self.leases += 1;
        self.steals += u64::from(stolen);
        Some(Lease { range: s..e, stolen })
    }
}

/// Folds `index` into a sorted, disjoint, coalesced range set.
pub fn mark_done(done: &mut Vec<Range<usize>>, index: usize) {
    let i = done.partition_point(|r| r.end < index);
    if i < done.len() {
        if done[i].start <= index && index < done[i].end {
            return; // already recorded (never happens: indices lease once)
        }
        if done[i].end == index {
            done[i].end = index + 1;
            if i + 1 < done.len() && done[i + 1].start == index + 1 {
                done[i].end = done[i + 1].end;
                done.remove(i + 1);
            }
            return;
        }
        if index + 1 == done[i].start {
            done[i].start = index;
            return;
        }
    }
    done.insert(i, index..index + 1);
}

/// Folds a whole chunk range into a sorted, disjoint, coalesced range set
/// (the distributed lease protocol completes work a chunk at a time).
pub fn mark_range_done(done: &mut Vec<Range<usize>>, range: Range<usize>) {
    for index in range {
        mark_done(done, index);
    }
}

/// Whether `range` overlaps the done set at all, and whether it is fully
/// covered by it. `(overlaps, covered)`: a duplicate chunk completion is
/// `(true, true)`; fresh work is `(false, false)`; `(true, false)` is a
/// partial overlap the lease protocol treats as a protocol violation.
pub fn range_overlap(done: &[Range<usize>], range: &Range<usize>) -> (bool, bool) {
    if range.is_empty() {
        return (false, true);
    }
    let mut covered_until = range.start;
    let mut overlaps = false;
    for r in done {
        if r.start >= range.end {
            break;
        }
        if r.end <= range.start {
            continue;
        }
        overlaps = true;
        if r.start <= covered_until {
            covered_until = covered_until.max(r.end);
        }
    }
    (overlaps, covered_until >= range.end)
}

/// The unleased complement of a done-range set within `0..n`.
pub fn complement(done: &[Range<usize>], n: usize) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut at = 0;
    for r in done {
        if at < r.start {
            out.push(at..r.start);
        }
        at = r.end.max(at);
    }
    if at < n {
        out.push(at..n);
    }
    out
}

/// The bookkeeping view the orchestrator's conservation-law invariants
/// check: done ranges, outcome tallies, and the quarantine ledger, as one
/// plain-data snapshot taken under the state lock.
pub fn ledger_view(total: usize, done: &[Range<usize>], tally: &CampaignTally) -> LedgerView {
    LedgerView {
        total: total as u64,
        done: done.iter().map(|r| (r.start as u64, r.end as u64)).collect(),
        outcomes: tally.outcomes.to_vec(),
        hung: tally.hung,
        quarantine_indices: tally.quarantine.iter().map(|q| q.index).collect(),
        accounted: tally.accounted(),
    }
}

/// All campaign-global mutable state behind one lock: the scheduler, the
/// completed-index set, and the tallies. Workers take the lock twice per
/// injection (lease amortized over its chunk, then one tally apply) —
/// injections cost milliseconds, so contention is negligible.
struct CampaignState {
    sched: Scheduler,
    done: Vec<Range<usize>>,
    tally: CampaignTally,
}

impl CampaignState {
    fn apply(&mut self, index: usize, r: &InjectionResult) {
        mark_done(&mut self.done, index);
        self.tally.apply(r);
    }

    fn apply_hung(&mut self, index: usize) {
        mark_done(&mut self.done, index);
        self.tally.apply_hung();
    }

    fn apply_quarantined(&mut self, index: usize, q: QuarantineRecord) {
        mark_done(&mut self.done, index);
        self.tally.apply_quarantined(q);
    }
}

/// Poison-tolerant lock: a worker that panicked (strict mode) must not
/// wedge the checkpoint coordinator out of saving everyone else's work.
fn lock_state(m: &Mutex<CampaignState>) -> std::sync::MutexGuard<'_, CampaignState> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Decrements the live-worker count when the worker exits — including by
/// unwinding in strict mode, so the checkpoint coordinator's wait loop
/// always terminates.
struct LiveGuard<'a>(&'a AtomicUsize);

impl Drop for LiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// Runs a work-stealing, checkpointable, cancellable campaign.
///
/// `stop` is polled between injections on every worker; once set, workers
/// drain and a final checkpoint is written. `progress` must have been
/// created with the same worker count.
///
/// # Panics
///
/// Panics if the workload fails to compile, the golden run does not halt
/// (same contract as the serial engine), or `progress` disagrees on the
/// worker count.
pub fn run_sharded(
    w: &Workload,
    cfg: &CampaignConfig,
    ocfg: &OrchestratorConfig,
    stop: &AtomicBool,
    progress: &Progress,
) -> Result<ShardedReport, OrchestratorError> {
    if ocfg.shards == 0 {
        return Err(OrchestratorError::Config("shards must be >= 1".into()));
    }
    if ocfg.chunk == 0 {
        return Err(OrchestratorError::Config("chunk must be >= 1".into()));
    }
    assert_eq!(progress.shards(), ocfg.shards, "progress was created for a different shard count");
    let cfg = &cfg.sized_for(w);
    let started = Instant::now();

    let fingerprint = Fingerprint {
        workload: w.name.to_owned(),
        injections: cfg.injections,
        seed: cfg.seed,
        kind: cfg.kind,
        structural_mask: cfg.structural_mask,
    };

    // Fresh pool, or the progress saved by an earlier interrupted run —
    // the checkpoint is worker-count independent, so a file written under
    // any --shards value resumes here.
    let mut initial = Checkpoint::empty(fingerprint.clone());
    let mut recovery_warnings: Vec<String> = Vec::new();
    let mut used_backup_checkpoint = false;
    if ocfg.resume {
        let path = ocfg
            .checkpoint_path
            .as_deref()
            .ok_or_else(|| OrchestratorError::Config("--resume needs a checkpoint path".into()))?;
        if path.exists() {
            let saved = if ocfg.strict {
                // Strict mode: a damaged checkpoint is a hard error.
                Some(Checkpoint::load(path)?)
            } else {
                let rec = Checkpoint::load_resilient(path);
                recovery_warnings = rec.warnings;
                used_backup_checkpoint = rec.used_backup;
                rec.checkpoint
            };
            if let Some(saved) = saved {
                saved.check_matches(&fingerprint)?;
                initial = saved;
            }
            // rec.checkpoint == None: both generations were unusable; the
            // warnings say so and the affected work restarts from scratch.
        }
    }
    if argus_sim::canary::enabled("canary-quarantine-drop-on-resume") {
        // Seeded bug: resume "forgets" the quarantine ledger it just
        // loaded. The post-load checkpoint audit must flag the tally as no
        // longer accounting for the done ranges.
        initial.tally.quarantine.clear();
    }

    let resumed = initial.completed();
    let resumed_anomalies = [initial.tally.quarantine.len() as u64, initial.tally.hung];
    progress.begin(
        cfg.injections as u64,
        resumed as u64,
        initial.tally.outcomes,
        resumed_anomalies,
        &vec![0; ocfg.shards],
    );
    let resumed_quarantined = initial.tally.quarantine.len();

    let prep = prepare_campaign(w, cfg);
    let inv = prep.invariants().clone();
    // Audit the bookkeeping exactly as loaded (or empty, on a fresh run)
    // before any new work: a resume that lost or double-counted ledger
    // state is caught here, not hours into the continuation.
    if inv.enabled() {
        inv.run_hook(
            Hook::Checkpoint,
            &InvariantCtx::Ledger(ledger_view(cfg.injections, &initial.done, &initial.tally)),
        );
    }
    let homes = shard_ranges(cfg.injections, ocfg.shards);
    let pool = complement(&initial.done, cfg.injections);
    let state = Mutex::new(CampaignState {
        sched: Scheduler::new(pool, ocfg.shards, ocfg.chunk),
        done: initial.done,
        tally: initial.tally,
    });
    let live_workers = AtomicUsize::new(ocfg.shards);
    let quarantined_total = AtomicUsize::new(resumed_quarantined);
    let quarantine_abort = AtomicBool::new(false);
    let flush_failures = AtomicU64::new(0);
    let flush_degraded = AtomicBool::new(false);
    // Per-worker (busy time, out-of-work instant, exec-cache counters) for
    // utilization and plan-cache stats.
    let worker_stats: Mutex<Vec<Option<(Duration, Duration, ExecStats)>>> =
        Mutex::new(vec![None; ocfg.shards]);
    // First panic payload seen by a strict-mode worker: re-raised from the
    // caller's thread after the final checkpoint flush, so the original
    // message survives `thread::scope`'s generic join panic and the
    // progress made so far is still persisted.
    let strict_panic: Mutex<Option<String>> = Mutex::new(None);

    let snapshot_all = |state: &Mutex<CampaignState>| -> Checkpoint {
        let g = lock_state(state);
        let cp = Checkpoint {
            fingerprint: fingerprint.clone(),
            done: g.done.clone(),
            tally: g.tally.clone(),
        };
        // Every checkpoint snapshot is audited before it hits disk, in
        // every mode — a persisted ledger that violates the conservation
        // laws would poison any later resume. The audit runs under the
        // state lock: ledger snapshots must reach the monotonicity
        // invariants in the order they were taken.
        if inv.enabled() {
            inv.run_hook(
                Hook::Checkpoint,
                &InvariantCtx::Ledger(ledger_view(cfg.injections, &cp.done, &cp.tally)),
            );
        }
        cp
    };

    std::thread::scope(|scope| {
        for (k, home) in homes.iter().enumerate() {
            let state = &state;
            let prep = &prep;
            let inv = &inv;
            let live_workers = &live_workers;
            let quarantined_total = &quarantined_total;
            let quarantine_abort = &quarantine_abort;
            let strict_panic = &strict_panic;
            let worker_stats = &worker_stats;
            scope.spawn(move || {
                let _live = LiveGuard(live_workers);
                // One reusable fork target per worker: consecutive leases
                // delta-restore into the same warm Machine/Argus pair.
                let mut ws = CampaignWorkspace::new();
                let mut busy = Duration::ZERO;
                let mut exec_total = ExecStats::default();
                'work: loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let lease = lock_state(state).sched.lease(home);
                    let Some(lease) = lease else { break };
                    progress.record_lease(lease.stolen);
                    // Execute the lease in arm-cycle order: each injection's
                    // parameters (and thus its result) depend only on its
                    // index, so any order tallies identically — but armed
                    // neighbors fork from the same golden snapshot, so the
                    // warm workspace rewrites only run-dirty pages instead
                    // of cross-snapshot diffs.
                    let mut order: Vec<usize> = lease.range.clone().collect();
                    order.sort_by_key(|&i| prep.arm_cycle_of(cfg, i));
                    for index in order {
                        if stop.load(Ordering::Relaxed) {
                            break 'work;
                        }
                        let t0 = Instant::now();
                        // Strict mode runs without the panic net: a
                        // panicking (or hung) injection aborts the whole
                        // campaign. The payload is captured so it can be
                        // re-raised from the caller's thread with its
                        // message intact — `thread::scope` would replace it
                        // with a generic "a scoped thread panicked".
                        let sup = if ocfg.strict {
                            let guarded =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    run_injection_guarded_in(prep, cfg, index, &mut ws)
                                }));
                            match guarded {
                                Ok(SupervisedOutcome::Hung { index, cause }) => {
                                    strict_panic
                                        .lock()
                                        .unwrap_or_else(|e| e.into_inner())
                                        .get_or_insert_with(|| {
                                            format!("injection {index} hung ({})", cause.label())
                                        });
                                    stop.store(true, Ordering::Release);
                                    break 'work;
                                }
                                Ok(other) => other,
                                Err(payload) => {
                                    strict_panic
                                        .lock()
                                        .unwrap_or_else(|e| e.into_inner())
                                        .get_or_insert_with(|| panic_message(payload.as_ref()));
                                    stop.store(true, Ordering::Release);
                                    break 'work;
                                }
                            }
                        } else {
                            run_injection_supervised_in(prep, cfg, index, &mut ws)
                        };
                        let spent = t0.elapsed();
                        busy += spent;
                        progress.add_busy(spent);
                        let ex = ws.take_exec_stats();
                        exec_total.merge(&ex);
                        progress.add_exec(&ex);
                        match sup {
                            SupervisedOutcome::Classified(r) => {
                                let mut g = lock_state(state);
                                if lease.stolen
                                    && argus_sim::canary::enabled("canary-tally-drop-on-steal")
                                {
                                    // Seeded bug: stolen work is marked
                                    // done but never tallied, so the tally
                                    // stops accounting for the done set.
                                    mark_done(&mut g.done, index);
                                } else {
                                    g.apply(index, &r);
                                }
                                drop(g);
                                progress.record(k, r.outcome);
                            }
                            SupervisedOutcome::Hung { .. } => {
                                lock_state(state).apply_hung(index);
                                progress.record_anomaly(k, Anomaly::Hung);
                            }
                            SupervisedOutcome::Quarantined(q) => {
                                lock_state(state).apply_quarantined(index, q);
                                progress.record_anomaly(k, Anomaly::Quarantined);
                                let seen = quarantined_total.fetch_add(1, Ordering::AcqRel) + 1;
                                if seen > ocfg.quarantine_limit {
                                    quarantine_abort.store(true, Ordering::Release);
                                    stop.store(true, Ordering::Release);
                                }
                            }
                        }
                    }
                    // Chunk-completion ledger audit (every chunk, every
                    // mode): the conservation laws must hold at each lease
                    // boundary, not only at checkpoint flushes.
                    if inv.enabled() {
                        // Snapshot and audit under one lock hold: if another
                        // worker's newer snapshot could overtake this one on
                        // the way into the registry, the monotonicity
                        // invariants would see time run backwards.
                        let g = lock_state(state);
                        let view = ledger_view(cfg.injections, &g.done, &g.tally);
                        let fresh = inv.run_hook(Hook::ChunkComplete, &InvariantCtx::Ledger(view));
                        drop(g);
                        progress.set_invariant_violations(inv.violations());
                        if fresh > 0 && ocfg.strict {
                            stop.store(true, Ordering::Release);
                        }
                    }
                }
                worker_stats.lock().unwrap_or_else(|e| e.into_inner())[k] =
                    Some((busy, started.elapsed(), exec_total));
                progress.shard_finished(k);
            });
        }

        // Checkpoint coordinator (runs on the caller's thread inside the
        // scope): periodic flushes while workers make progress.
        if let Some(path) = ocfg.checkpoint_path.as_deref() {
            let mut last_flush = Instant::now();
            while live_workers.load(Ordering::Acquire) > 0 {
                std::thread::sleep(Duration::from_millis(25));
                if last_flush.elapsed() >= ocfg.checkpoint_interval {
                    // A failing periodic flush is not fatal mid-run — it
                    // retries with backoff, flags degraded mode, and the
                    // final flush below surfaces persistent I/O problems.
                    match snapshot_all(&state).save_with_retry(
                        path,
                        ocfg.flush_retries,
                        ocfg.flush_backoff,
                    ) {
                        Ok(0) => {}
                        Ok(failed_attempts) => {
                            flush_failures.fetch_add(u64::from(failed_attempts), Ordering::Relaxed);
                            flush_degraded.store(true, Ordering::Relaxed);
                            progress.set_degraded(true);
                        }
                        Err(_) => {
                            flush_failures
                                .fetch_add(u64::from(ocfg.flush_retries) + 1, Ordering::Relaxed);
                            flush_degraded.store(true, Ordering::Relaxed);
                            progress.set_degraded(true);
                        }
                    }
                    last_flush = Instant::now();
                }
            }
        }
    });

    let interrupted = stop.load(Ordering::Relaxed);
    let final_cp = snapshot_all(&state);
    if let Some(path) = ocfg.checkpoint_path.as_deref() {
        match final_cp.save_with_retry(path, ocfg.flush_retries, ocfg.flush_backoff) {
            Ok(0) => {}
            Ok(failed_attempts) => {
                flush_failures.fetch_add(u64::from(failed_attempts), Ordering::Relaxed);
                flush_degraded.store(true, Ordering::Relaxed);
                progress.set_degraded(true);
            }
            Err(e) => return Err(CheckpointError::from(e).into()),
        }
    }
    progress.finish();

    // Strict mode: re-raise the worker's panic with its original message,
    // now that progress has been flushed.
    if let Some(msg) = strict_panic.lock().unwrap_or_else(|e| e.into_inner()).take() {
        panic!("{msg}");
    }

    if quarantine_abort.load(Ordering::Acquire) {
        return Err(OrchestratorError::Supervision(format!(
            "{} injections quarantined (limit {}); progress checkpointed, tallies would be \
             misleading",
            quarantined_total.load(Ordering::Acquire),
            ocfg.quarantine_limit
        )));
    }

    let invariants = inv.stats();
    progress.set_invariant_violations(invariants.violations);
    if ocfg.strict && invariants.violations > 0 {
        let first = inv.first_violation().unwrap_or_else(|| "unnamed invariant".into());
        return Err(OrchestratorError::Invariant(first));
    }

    // The global tally IS the merged result: every accumulator is
    // commutative over the completed-index set, so no per-worker merge
    // step exists to get wrong.
    let completed = final_cp.completed();
    let tally = final_cp.tally;

    let stats = worker_stats.into_inner().unwrap_or_else(|e| e.into_inner());
    let busy = stats.iter().flatten().map(|&(b, _, _)| b).sum();
    let finishes: Vec<Duration> = stats.iter().flatten().map(|&(_, f, _)| f).collect();
    let mut exec = ExecStats::default();
    for &(_, _, e) in stats.iter().flatten() {
        exec.merge(&e);
    }
    let tail_imbalance = match (finishes.iter().min(), finishes.iter().max()) {
        (Some(&lo), Some(&hi)) => hi - lo,
        _ => Duration::ZERO,
    };
    let (leases, steals) = {
        let g = lock_state(&state);
        (g.sched.leases, g.sched.steals)
    };

    recovery_warnings.extend(prep.take_snapshot_warnings());

    Ok(ShardedReport {
        outcomes: tally.outcomes,
        attribution: tally.attribution,
        latency: tally.latency,
        exercised: tally.exercised,
        completed,
        completed_this_run: completed - resumed,
        total: cfg.injections,
        kind: cfg.kind,
        golden_cycles: prep.golden_cycles(),
        elapsed: started.elapsed(),
        shards: ocfg.shards,
        chunk: ocfg.chunk,
        leases,
        steals,
        busy,
        tail_imbalance,
        interrupted,
        snapshot_every: cfg.snapshot_every,
        snapshots: prep.snapshot_store().map_or(0, |s| s.len()),
        hung: tally.hung,
        quarantine: tally.quarantine,
        degraded: flush_degraded.load(Ordering::Relaxed),
        flush_failures: flush_failures.load(Ordering::Relaxed),
        snapshot_fallbacks: prep.snapshot_fallbacks(),
        exec,
        golden_exec: prep.golden_exec(),
        recovery_warnings,
        used_backup_checkpoint,
        remote: None,
        invariants,
    })
}

#[cfg(test)]
// Done-sets really are `Vec<Range<usize>>`; single-range literals are the
// point of these fixtures, not a mistyped `collect()`.
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_exactly() {
        for n in [0usize, 1, 7, 100, 101, 1000] {
            for shards in [1usize, 2, 3, 8, 17] {
                let ranges = shard_ranges(n, shards);
                assert_eq!(ranges.len(), shards);
                let mut at = 0;
                for r in &ranges {
                    assert_eq!(r.start, at, "contiguous");
                    at = r.end;
                }
                assert_eq!(at, n, "covers 0..{n}");
                let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (lo, hi) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(hi - lo <= 1, "balanced: {lens:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        shard_ranges(10, 0);
    }

    #[test]
    fn zero_shard_config_is_an_error() {
        let w = argus_workloads::stress();
        let cfg = CampaignConfig { injections: 1, ..Default::default() };
        let ocfg = OrchestratorConfig { shards: 0, ..Default::default() };
        let progress = Progress::new(0);
        let stop = AtomicBool::new(false);
        assert!(matches!(
            run_sharded(&w, &cfg, &ocfg, &stop, &progress),
            Err(OrchestratorError::Config(_))
        ));
    }

    #[test]
    fn zero_chunk_config_is_an_error() {
        let w = argus_workloads::stress();
        let cfg = CampaignConfig { injections: 1, ..Default::default() };
        let ocfg = OrchestratorConfig { shards: 1, chunk: 0, ..Default::default() };
        let progress = Progress::new(1);
        let stop = AtomicBool::new(false);
        assert!(matches!(
            run_sharded(&w, &cfg, &ocfg, &stop, &progress),
            Err(OrchestratorError::Config(_))
        ));
    }

    #[test]
    fn chunk_larger_than_remaining_clamps_instead_of_empty_lease() {
        // Regression: a --chunk far beyond the remaining injection count
        // must clamp the lease to the remnant, never hand out an empty or
        // out-of-range chunk.
        let mut s = Scheduler::new(vec![0..5], 1, 1000);
        let home = 0..5;
        let mut drained = Vec::new();
        while let Some(l) = s.lease(&home) {
            assert!(!l.range.is_empty(), "oversized chunk must clamp, not issue empty");
            assert!(l.range.end <= 5, "lease stays inside the pool");
            drained.extend(l.range.clone());
        }
        drained.sort_unstable();
        assert_eq!(drained, (0..5).collect::<Vec<_>>(), "pool fully drained");

        // Same at the tail of a larger pool: the last lease is exactly the
        // leftover, and every lease stays non-empty and in range.
        let mut s = Scheduler::new(vec![0..7], 2, 64);
        let mut seen = Vec::new();
        while let Some(l) = s.lease(&(0..7)) {
            assert!(!l.range.is_empty());
            assert!(l.range.end <= 7);
            seen.extend(l.range.clone());
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>(), "every index leased exactly once");
    }

    #[test]
    fn range_overlap_classifies_fresh_duplicate_partial() {
        let done = vec![0..4, 8..12];
        assert_eq!(range_overlap(&done, &(4..8)), (false, false), "fresh");
        assert_eq!(range_overlap(&done, &(0..4)), (true, true), "duplicate");
        assert_eq!(range_overlap(&done, &(8..12)), (true, true), "duplicate");
        assert_eq!(range_overlap(&done, &(2..6)), (true, false), "partial");
        assert_eq!(range_overlap(&done, &(0..12)), (true, false), "spanning");
        assert_eq!(range_overlap(&[], &(0..3)), (false, false));
    }

    #[test]
    fn mark_range_done_matches_per_index() {
        let mut a = vec![2..4];
        let mut b = vec![2..4];
        mark_range_done(&mut a, 7..13);
        for i in 7..13 {
            mark_done(&mut b, i);
        }
        assert_eq!(a, b);
        mark_range_done(&mut a, 4..7);
        assert_eq!(a, vec![2..13]);
    }

    #[test]
    fn mark_done_coalesces_every_shape() {
        let mut done = Vec::new();
        for i in [5usize, 7, 6, 0, 9, 8, 1] {
            mark_done(&mut done, i);
        }
        assert_eq!(done, vec![0..2, 5..10]);
        mark_done(&mut done, 4);
        assert_eq!(done, vec![0..2, 4..10]);
        mark_done(&mut done, 3);
        mark_done(&mut done, 2);
        assert_eq!(done, vec![0..10]);
    }

    #[test]
    fn mark_done_adjacency_edges() {
        // Extending a range on its right edge, left edge, and bridging
        // two ranges into one — each adjacency case separately.
        let mut done = vec![2..4];
        mark_done(&mut done, 4); // right-adjacent
        assert_eq!(done, vec![2..5]);
        mark_done(&mut done, 1); // left-adjacent
        assert_eq!(done, vec![1..5]);
        let mut done = vec![0..3, 4..7];
        mark_done(&mut done, 3); // bridges: both neighbours adjacent
        assert_eq!(done, vec![0..7]);
        // A mark adjacent to nothing opens its own range.
        let mut done = vec![0..2, 10..12];
        mark_done(&mut done, 5);
        assert_eq!(done, vec![0..2, 5..6, 10..12]);
    }

    #[test]
    fn mark_done_duplicates_are_idempotent() {
        // The engine never leases an index twice, but a resumed run
        // re-deriving ranges must tolerate replayed marks: interior,
        // first, and last index of an existing range are all no-ops.
        let mut done = vec![3..8];
        for dup in [3usize, 5, 7, 5, 3] {
            mark_done(&mut done, dup);
            assert_eq!(done, vec![3..8], "duplicate mark {dup} must not change the set");
        }
    }

    #[test]
    fn mark_done_any_order_converges() {
        // Out-of-order completion (work stealing finishes indices in an
        // arbitrary interleaving) must always coalesce to the same set.
        let indices = [9usize, 2, 7, 0, 4, 3, 8, 1];
        let mut perm: Vec<usize> = indices.to_vec();
        // Walk a few hundred distinct orders via next-permutation-ish
        // rotations; every order must produce the identical range set.
        for rotation in 0..indices.len() {
            perm.rotate_left(1);
            for window in 2..=perm.len() {
                let mut order = perm.clone();
                order[..window].reverse();
                let mut done = Vec::new();
                for &i in &order {
                    mark_done(&mut done, i);
                }
                assert_eq!(
                    done,
                    vec![0..5, 7..10],
                    "order {order:?} (rotation {rotation}, window {window})"
                );
            }
        }
    }

    proptest::proptest! {
        /// Random marks with duplicates, any order: the coalesced set
        /// must cover exactly the marked indices, stay sorted, disjoint,
        /// non-empty, and gap-separated (no two mergeable neighbours).
        #[test]
        fn mark_done_matches_set_model(marks in proptest::collection::vec(0usize..64, 0..96)) {
            let mut done = Vec::new();
            for &i in &marks {
                mark_done(&mut done, i);
            }
            let model: std::collections::BTreeSet<usize> = marks.iter().copied().collect();
            let covered: Vec<usize> = done.iter().flat_map(|r| r.clone()).collect();
            proptest::prop_assert_eq!(&covered, &model.iter().copied().collect::<Vec<_>>());
            for pair in done.windows(2) {
                proptest::prop_assert!(
                    pair[0].end < pair[1].start,
                    "ranges {:?} are unsorted, overlapping, or failed to coalesce", pair
                );
            }
            for r in &done {
                proptest::prop_assert!(r.start < r.end, "empty range {r:?}");
            }
            // Complement round-trips: done ∪ complement partitions 0..64.
            let holes = complement(&done, 64);
            let total: usize = done.iter().map(Range::len).sum::<usize>()
                + holes.iter().map(Range::len).sum::<usize>();
            proptest::prop_assert_eq!(total, 64);
        }
    }

    #[test]
    fn complement_inverts_done_ranges() {
        assert_eq!(complement(&[], 5), vec![0..5]);
        assert_eq!(complement(&[0..5], 5), Vec::<Range<usize>>::new());
        assert_eq!(complement(&[1..2, 4..5], 7), vec![0..1, 2..4, 5..7]);
        assert_eq!(complement(&[0..3], 3), Vec::<Range<usize>>::new());
    }

    #[test]
    fn scheduler_leases_cover_the_pool_exactly_once() {
        // Whatever the stealing pattern, the union of leases must be a
        // partition of the pool.
        let n = 103;
        let workers = 4;
        let homes = shard_ranges(n, workers);
        let mut sched = Scheduler::new(vec![0..n], workers, 8);
        let mut seen = vec![false; n];
        let mut turn = 0;
        loop {
            // Round-robin the workers so everyone leases from everywhere.
            let home = &homes[turn % workers];
            turn += 1;
            let Some(lease) = sched.lease(home) else { break };
            assert!(lease.range.len() <= 8, "chunk cap respected");
            for i in lease.range {
                assert!(!seen[i], "index {i} leased twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every index leased");
        assert!(sched.leases > 0);
        assert_eq!(sched.remaining_len, 0);
    }

    #[test]
    fn scheduler_shrinks_leases_at_the_tail() {
        let workers = 2;
        let homes = shard_ranges(20, workers);
        let mut sched = Scheduler::new(vec![0..20], workers, 64);
        // 20 remaining / (2 workers * 2) = 5 → first lease is 5 wide.
        let first = sched.lease(&homes[0]).unwrap();
        assert_eq!(first.range.len(), 5);
        // Drain to a tiny tail: leases decay to single injections.
        while sched.remaining_len > 3 {
            sched.lease(&homes[0]).unwrap();
        }
        let tail = sched.lease(&homes[1]).unwrap();
        assert_eq!(tail.range.len(), 1, "tail leases shrink to 1");
    }

    #[test]
    fn scheduler_counts_steals_only_outside_home() {
        let workers = 2;
        let homes = shard_ranges(10, workers);
        let mut sched = Scheduler::new(vec![0..10], workers, 100);
        // Worker 1 drains its own home first: no steals.
        let l = sched.lease(&homes[1]).unwrap();
        assert!(!l.stolen, "home-region lease is not a steal");
        assert!(l.range.start >= homes[1].start);
        // Keep leasing as worker 1 until its home is gone, then the next
        // lease comes from worker 0's territory and counts as a steal.
        loop {
            let l = sched.lease(&homes[1]).unwrap();
            if l.stolen {
                assert!(l.range.end <= homes[1].start, "stolen work lies outside home");
                break;
            }
        }
        assert_eq!(sched.steals, 1);
    }
}
