//! Campaign checkpoint files: periodic serialization of campaign progress
//! so an interrupted campaign can resume without repeating work.
//!
//! The file is hand-rolled JSON (see [`crate::json`]); it records a
//! fingerprint of the campaign configuration (so a stale file is never
//! silently applied to a different campaign), the set of completed
//! injection indices as sorted, disjoint, coalesced ranges, and one global
//! [`CampaignTally`] accumulated over exactly those injections. Because
//! every injection draws its randomness from a private stream keyed by
//! `(seed, index)`, the tally depends only on *which* indices are done —
//! not on worker count, lease order, or scheduling — so a checkpoint
//! written by an 8-worker run resumes cleanly under 1 worker and vice
//! versa.

use crate::json::Json;
use argus_faults::{InjectionResult, QuarantineRecord};
use argus_sim::crc::crc32;
use argus_sim::fault::FaultKind;
use argus_sim::stats::{CounterSet, Histogram};
use std::fmt;
use std::io::Write as _;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Current file format version.
///
/// Version 3 replaces the per-shard progress prefixes of v1/v2 with a
/// single global tally plus a coalesced done-range set, dropping the
/// worker count from the campaign fingerprint: resume no longer requires
/// the same `--shards` value that wrote the file. Version 2 added the
/// supervision tallies and the `{crc32, body}` envelope; version-1 files
/// (no envelope, no supervision fields) are still accepted. Legacy files
/// are converted on load: each shard's `start..start+done` prefix becomes
/// a done-range and the shard tallies merge into the global one.
const VERSION: u64 = 3;

/// Oldest file format version `from_json` still accepts.
const MIN_VERSION: u64 = 1;

/// Identifies a campaign; a checkpoint only resumes a campaign with an
/// identical fingerprint. Deliberately excludes the worker count and every
/// other knob that changes throughput but not results.
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    /// Workload name.
    pub workload: String,
    /// Total planned injections.
    pub injections: usize,
    /// Campaign RNG seed.
    pub seed: u64,
    /// `"transient"` or `"permanent"`.
    pub kind: FaultKind,
    /// Structural-masking probability.
    pub structural_mask: f64,
}

impl Fingerprint {
    fn kind_str(&self) -> &'static str {
        match self.kind {
            FaultKind::Transient => "transient",
            FaultKind::Permanent => "permanent",
        }
    }
}

/// Merged tallies over a set of completed injections. Every field is a
/// commutative accumulator, so applying injections in any order — or
/// merging partial tallies — yields the same value as long as the same
/// index set is covered.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignTally {
    /// Per-outcome counts, indexed like `Outcome::ALL`.
    pub outcomes: [u64; 4],
    /// Injections that actually corrupted a signal.
    pub exercised: u64,
    /// First-detector attribution.
    pub attribution: CounterSet,
    /// Detection-latency samples.
    pub latency: Histogram,
    /// Injections the watchdog declared hung (absent from `outcomes`).
    pub hung: u64,
    /// Quarantined (panicked) injections, kept sorted by injection index
    /// (absent from `outcomes`).
    pub quarantine: Vec<QuarantineRecord>,
}

impl Default for CampaignTally {
    fn default() -> Self {
        Self::empty()
    }
}

impl CampaignTally {
    /// A tally covering no injections.
    pub fn empty() -> Self {
        Self {
            outcomes: [0; 4],
            exercised: 0,
            attribution: CounterSet::new(),
            latency: Histogram::new(),
            hung: 0,
            quarantine: Vec::new(),
        }
    }

    /// Injections this tally accounts for (classified + hung +
    /// quarantined).
    pub fn accounted(&self) -> u64 {
        self.outcomes.iter().sum::<u64>() + self.hung + self.quarantine.len() as u64
    }

    /// Folds one classified injection in.
    pub fn apply(&mut self, r: &InjectionResult) {
        self.outcomes[r.outcome.index()] += 1;
        if r.exercised {
            self.exercised += 1;
        }
        if let Some(k) = r.detector {
            self.attribution.bump(&k.to_string());
        }
        if let Some(l) = r.detect_latency {
            self.latency.record(l);
        }
    }

    /// Folds one watchdog-hung injection in.
    pub fn apply_hung(&mut self) {
        self.hung += 1;
    }

    /// Folds one quarantined injection in, keeping the ledger sorted by
    /// injection index so serialized tallies are independent of completion
    /// order.
    pub fn apply_quarantined(&mut self, q: QuarantineRecord) {
        let at = self.quarantine.partition_point(|p| p.index < q.index);
        self.quarantine.insert(at, q);
    }

    /// Adds every accumulator of `other` into `self`. Legal whenever the
    /// two tallies cover disjoint injection-index sets: every field is
    /// commutative, so merging partial tallies in any order yields the
    /// serial result. Used by legacy per-shard checkpoint loading and by
    /// the distributed lease protocol's chunk completions.
    pub fn merge(&mut self, other: &CampaignTally) {
        for (acc, &c) in self.outcomes.iter_mut().zip(other.outcomes.iter()) {
            *acc += c;
        }
        self.exercised += other.exercised;
        self.attribution.merge(&other.attribution);
        self.latency.merge(&other.latency);
        self.hung += other.hung;
        for q in &other.quarantine {
            self.apply_quarantined(q.clone());
        }
    }
}

/// A whole campaign checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Which campaign this file belongs to.
    pub fingerprint: Fingerprint,
    /// Completed injection indices as sorted, disjoint, coalesced,
    /// non-empty ranges.
    pub done: Vec<Range<usize>>,
    /// Tallies over exactly the injections in `done`.
    pub tally: CampaignTally,
}

/// Why loading a checkpoint failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Unparseable or structurally wrong file.
    Corrupt(String),
    /// The file parsed but its CRC envelope disagrees with its body —
    /// a torn write or on-disk corruption.
    Checksum {
        /// CRC recorded in the envelope.
        expected: u32,
        /// CRC computed over the body as loaded.
        got: u32,
    },
    /// A valid file for a *different* campaign.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            Self::Checksum { expected, got } => write!(
                f,
                "checkpoint checksum mismatch (recorded {expected:#010x}, computed {got:#010x})"
            ),
            Self::Mismatch(m) => {
                write!(f, "checkpoint belongs to a different campaign: {m}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(msg.into())
}

impl Checkpoint {
    /// A fresh checkpoint with no completed work.
    pub fn empty(fingerprint: Fingerprint) -> Self {
        Self { fingerprint, done: Vec::new(), tally: CampaignTally::empty() }
    }

    /// Total completed injections.
    pub fn completed(&self) -> usize {
        self.done.iter().map(Range::len).sum()
    }

    /// Serializes to the JSON document format.
    pub fn to_json(&self) -> Json {
        let fp = &self.fingerprint;
        Json::obj()
            .set("version", VERSION)
            .set(
                "fingerprint",
                Json::obj()
                    .set("workload", fp.workload.as_str())
                    .set("injections", fp.injections)
                    .set("seed", fp.seed)
                    .set("kind", fp.kind_str())
                    .set("structural_mask", fp.structural_mask),
            )
            .set(
                "done",
                Json::Arr(
                    self.done
                        .iter()
                        .map(|r| Json::Arr(vec![r.start.into(), r.end.into()]))
                        .collect(),
                ),
            )
            .set("tally", tally_to_json(&self.tally))
    }

    /// Parses the JSON document format (the *body*, without the CRC
    /// envelope). Legacy v1/v2 per-shard layouts are converted to the
    /// global-tally form.
    pub fn from_json(doc: &Json) -> Result<Self, CheckpointError> {
        let version = field_u64(doc, "version")?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(corrupt(format!("unsupported checkpoint version {version}")));
        }
        let fp = doc.get("fingerprint").ok_or_else(|| corrupt("missing fingerprint"))?;
        let kind = match field_str(fp, "kind")? {
            "transient" => FaultKind::Transient,
            "permanent" => FaultKind::Permanent,
            other => return Err(corrupt(format!("unknown fault kind `{other}`"))),
        };
        let fingerprint = Fingerprint {
            workload: field_str(fp, "workload")?.to_owned(),
            injections: field_u64(fp, "injections")? as usize,
            seed: field_u64(fp, "seed")?,
            kind,
            structural_mask: fp
                .get("structural_mask")
                .and_then(Json::as_f64)
                .ok_or_else(|| corrupt("missing structural_mask"))?,
        };
        let (done, tally) = if version < 3 {
            legacy_shards_to_global(doc, fp)?
        } else {
            let done = doc
                .get("done")
                .and_then(Json::as_arr)
                .ok_or_else(|| corrupt("missing done ranges"))?
                .iter()
                .map(range_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            let tally = tally_from_json(doc.get("tally").ok_or_else(|| corrupt("missing tally"))?)?;
            (done, tally)
        };
        let cp = Self { fingerprint, done, tally };
        cp.validate()?;
        Ok(cp)
    }

    /// Structural invariants every loaded checkpoint must satisfy.
    fn validate(&self) -> Result<(), CheckpointError> {
        let mut at = 0usize;
        for r in &self.done {
            if r.start >= r.end {
                return Err(corrupt(format!(
                    "empty or inverted done range {}..{}",
                    r.start, r.end
                )));
            }
            if r.start < at {
                return Err(corrupt("done ranges overlap or are unsorted"));
            }
            at = r.end;
        }
        if at > self.fingerprint.injections {
            return Err(corrupt(format!(
                "done ranges reach {at} but the campaign plans only {} injections",
                self.fingerprint.injections
            )));
        }
        let accounted = self.tally.accounted();
        if accounted != self.completed() as u64 {
            return Err(corrupt(format!(
                "tallies account for {accounted} injections but done ranges cover {}",
                self.completed()
            )));
        }
        Ok(())
    }

    /// Atomically writes the checkpoint: the CRC-enveloped document goes to
    /// `path.tmp`, is fsynced, the previous checkpoint (if any) is rotated
    /// to the `.bak` generation, the temp file is renamed into place, and
    /// the parent directory is fsynced so both renames are durable. A crash
    /// at any point leaves either the old file, the new file, or the old
    /// file under `.bak` — never nothing.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let body = self.to_json();
        let crc = crc32(body.to_string_compact().as_bytes());
        let doc = Json::obj().set("crc32", u64::from(crc)).set("body", body);
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(doc.to_string_compact().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        if path.exists() {
            // Best-effort rotation: losing the backup generation must not
            // block the fresher checkpoint from landing.
            let _ = std::fs::rename(path, backup_path(path));
        }
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path)
    }

    /// [`Checkpoint::save`] with bounded retry for transient I/O errors
    /// (backoff grows linearly per attempt). Returns how many attempts
    /// failed before one succeeded; `Err` is the final error after all
    /// `retries` extra attempts were exhausted.
    pub fn save_with_retry(
        &self,
        path: &Path,
        retries: u32,
        backoff: Duration,
    ) -> Result<u32, std::io::Error> {
        let mut failures = 0u32;
        loop {
            match self.save(path) {
                Ok(()) => return Ok(failures),
                Err(e) => {
                    failures += 1;
                    if failures > retries {
                        return Err(e);
                    }
                    std::thread::sleep(backoff * failures);
                }
            }
        }
    }

    /// Loads and validates a checkpoint file, verifying its CRC envelope.
    /// Version-1 files (which predate the envelope) are accepted as-is.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path)?;
        let doc = Json::parse(&text).map_err(|e| corrupt(e.to_string()))?;
        match doc.get("body") {
            Some(body) => {
                let expected = field_u64(&doc, "crc32")? as u32;
                let got = crc32(body.to_string_compact().as_bytes());
                if expected != got {
                    return Err(CheckpointError::Checksum { expected, got });
                }
                Self::from_json(body)
            }
            // Legacy v1 layout: the whole document is the body.
            None => Self::from_json(&doc),
        }
    }

    /// Self-healing load: on a corrupt (or checksum-failing, or unreadable)
    /// primary file, falls back to the `.bak` generation kept by
    /// [`Checkpoint::save`]; when both are unusable, reports that the
    /// affected work must restart from scratch. Never returns an error —
    /// every failure mode degrades to "less resumed work" plus warnings.
    pub fn load_resilient(path: &Path) -> Recovery {
        match Self::load(path) {
            Ok(cp) => Recovery { checkpoint: Some(cp), warnings: Vec::new(), used_backup: false },
            Err(primary) => {
                let mut warnings =
                    vec![format!("checkpoint {} unusable: {primary}", path.display())];
                let bak = backup_path(path);
                if bak.exists() {
                    match Self::load(&bak) {
                        Ok(cp) => {
                            warnings.push(format!(
                                "recovered from backup checkpoint {}",
                                bak.display()
                            ));
                            Recovery { checkpoint: Some(cp), warnings, used_backup: true }
                        }
                        Err(backup) => {
                            warnings.push(format!(
                                "backup checkpoint {} also unusable: {backup}; restarting \
                                 affected injections from scratch",
                                bak.display()
                            ));
                            Recovery { checkpoint: None, warnings, used_backup: false }
                        }
                    }
                } else {
                    warnings.push(
                        "no backup checkpoint; restarting affected injections from scratch"
                            .to_owned(),
                    );
                    Recovery { checkpoint: None, warnings, used_backup: false }
                }
            }
        }
    }

    /// Errors unless `other` describes the same campaign. The worker count
    /// is deliberately not part of campaign identity: a checkpoint written
    /// under any `--shards` value resumes under any other.
    pub fn check_matches(&self, expected: &Fingerprint) -> Result<(), CheckpointError> {
        let got = &self.fingerprint;
        let mut diffs = Vec::new();
        if got.workload != expected.workload {
            diffs.push(format!("workload {} != {}", got.workload, expected.workload));
        }
        if got.injections != expected.injections {
            diffs.push(format!("injections {} != {}", got.injections, expected.injections));
        }
        if got.seed != expected.seed {
            diffs.push(format!("seed {:#x} != {:#x}", got.seed, expected.seed));
        }
        if got.kind != expected.kind {
            diffs.push(format!("kind {:?} != {:?}", got.kind, expected.kind));
        }
        if got.structural_mask != expected.structural_mask {
            diffs.push(format!(
                "structural_mask {} != {}",
                got.structural_mask, expected.structural_mask
            ));
        }
        if diffs.is_empty() {
            Ok(())
        } else {
            Err(CheckpointError::Mismatch(diffs.join("; ")))
        }
    }
}

/// Outcome of [`Checkpoint::load_resilient`]: whatever progress could be
/// salvaged, plus a human-readable account of anything that was lost.
#[derive(Debug)]
pub struct Recovery {
    /// The salvaged checkpoint; `None` when both generations were unusable.
    pub checkpoint: Option<Checkpoint>,
    /// Warnings describing what was corrupt and what was done about it.
    pub warnings: Vec<String>,
    /// True when the `.bak` generation supplied the checkpoint.
    pub used_backup: bool,
}

/// The `.bak` sibling of a checkpoint path.
pub fn backup_path(path: &Path) -> PathBuf {
    path.with_extension("bak")
}

/// Fsyncs the directory containing `path`, making a just-completed rename
/// durable.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Serializes a tally to the stable JSON shape used by checkpoint files
/// and by the distributed `complete` wire message.
pub fn tally_to_json(t: &CampaignTally) -> Json {
    Json::obj()
        .set("outcomes", Json::Arr(t.outcomes.iter().map(|&c| c.into()).collect()))
        .set("exercised", t.exercised)
        .set(
            "attribution",
            Json::Obj(t.attribution.iter().map(|(k, v)| (k.to_owned(), v.into())).collect()),
        )
        .set(
            "latency",
            Json::obj()
                .set("buckets", Json::Arr(t.latency.buckets().iter().map(|&c| c.into()).collect()))
                .set("count", t.latency.count())
                // u128 sum is stored as a decimal string to avoid f64 loss.
                .set("sum", t.latency.sum().to_string())
                .set("min", t.latency.min().map_or(Json::Null, Json::from))
                .set("max", t.latency.max().map_or(Json::Null, Json::from)),
        )
        .set("hung", t.hung)
        .set("quarantine", Json::Arr(t.quarantine.iter().map(quarantine_to_json).collect()))
}

/// Parses the tally shape written by [`tally_to_json`].
pub fn tally_from_json(doc: &Json) -> Result<CampaignTally, CheckpointError> {
    let outcomes_arr =
        doc.get("outcomes").and_then(Json::as_arr).ok_or_else(|| corrupt("missing outcomes"))?;
    if outcomes_arr.len() != 4 {
        return Err(corrupt("outcomes must have 4 entries"));
    }
    let mut outcomes = [0u64; 4];
    for (slot, v) in outcomes.iter_mut().zip(outcomes_arr) {
        *slot = v.as_u64().ok_or_else(|| corrupt("bad outcome count"))?;
    }
    let mut attribution = CounterSet::new();
    for (k, v) in doc
        .get("attribution")
        .and_then(Json::as_obj)
        .ok_or_else(|| corrupt("missing attribution"))?
    {
        attribution.add(k, v.as_u64().ok_or_else(|| corrupt("bad attribution count"))?);
    }
    let lat = doc.get("latency").ok_or_else(|| corrupt("missing latency"))?;
    let buckets = lat
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| corrupt("missing latency buckets"))?
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| corrupt("bad latency bucket")))
        .collect::<Result<Vec<_>, _>>()?;
    let sum: u128 = field_str(lat, "sum")?.parse().map_err(|_| corrupt("bad latency sum"))?;
    let latency = Histogram::from_parts(
        buckets,
        field_u64(lat, "count")?,
        sum,
        lat.get("min").and_then(Json::as_u64),
        lat.get("max").and_then(Json::as_u64),
    );
    // Supervision fields are absent from v1 files; default them.
    let hung = match doc.get("hung") {
        Some(v) => v.as_u64().ok_or_else(|| corrupt("bad hung count"))?,
        None => 0,
    };
    let quarantine = match doc.get("quarantine") {
        Some(v) => v
            .as_arr()
            .ok_or_else(|| corrupt("quarantine must be an array"))?
            .iter()
            .map(quarantine_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        None => Vec::new(),
    };
    Ok(CampaignTally {
        outcomes,
        exercised: field_u64(doc, "exercised")?,
        attribution,
        latency,
        hung,
        quarantine,
    })
}

fn range_from_json(doc: &Json) -> Result<Range<usize>, CheckpointError> {
    let pair = doc.as_arr().ok_or_else(|| corrupt("done range must be a [start, end] pair"))?;
    if pair.len() != 2 {
        return Err(corrupt("done range must have exactly 2 entries"));
    }
    let start = pair[0].as_u64().ok_or_else(|| corrupt("bad done range start"))? as usize;
    let end = pair[1].as_u64().ok_or_else(|| corrupt("bad done range end"))? as usize;
    Ok(start..end)
}

fn quarantine_to_json(q: &QuarantineRecord) -> Json {
    Json::obj().set("index", q.index).set("seed", q.seed).set("panic_msg", q.panic_msg.as_str())
}

fn quarantine_from_json(doc: &Json) -> Result<QuarantineRecord, CheckpointError> {
    Ok(QuarantineRecord {
        index: field_u64(doc, "index")?,
        seed: field_u64(doc, "seed")?,
        panic_msg: field_str(doc, "panic_msg")?.to_owned(),
    })
}

/// Converts a legacy v1/v2 per-shard document into the global form: each
/// shard's completed prefix `start..start+done` becomes a done-range and
/// the shard tallies merge into one. Shards processed their slice in index
/// order, so the prefix fully describes which injections the tallies
/// cover.
fn legacy_shards_to_global(
    doc: &Json,
    fp: &Json,
) -> Result<(Vec<Range<usize>>, CampaignTally), CheckpointError> {
    // v1/v2 fingerprints carried the shard count; only the array-length
    // cross-check still uses it.
    let declared_shards = field_u64(fp, "shards")? as usize;
    let shards =
        doc.get("shards").and_then(Json::as_arr).ok_or_else(|| corrupt("missing shards array"))?;
    if shards.len() != declared_shards {
        return Err(corrupt("shard array length disagrees with fingerprint"));
    }
    let mut done = Vec::new();
    let mut tally = CampaignTally::empty();
    for s in shards {
        let start = field_u64(s, "start")? as usize;
        let end = field_u64(s, "end")? as usize;
        let shard_done = field_u64(s, "done")? as usize;
        if start > end || shard_done > end - start {
            return Err(corrupt("shard progress out of range"));
        }
        let t = tally_from_json(s)?;
        if t.accounted() != shard_done as u64 {
            return Err(corrupt(format!(
                "shard tallies account for {} injections but done = {shard_done}",
                t.accounted()
            )));
        }
        if shard_done > 0 {
            done.push(start..start + shard_done);
        }
        tally.merge(&t);
    }
    done.sort_by_key(|r| r.start);
    // Coalesce ranges that happen to abut (a fully-finished shard followed
    // by its successor's prefix).
    let mut coalesced: Vec<Range<usize>> = Vec::with_capacity(done.len());
    for r in done {
        match coalesced.last_mut() {
            Some(last) if last.end == r.start => last.end = r.end,
            _ => coalesced.push(r),
        }
    }
    Ok((coalesced, tally))
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, CheckpointError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| corrupt(format!("missing or non-integer `{key}`")))
}

fn field_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, CheckpointError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt(format!("missing or non-string `{key}`")))
}

#[cfg(test)]
// Done-sets really are `Vec<Range<usize>>`; single-range literals are the
// point of these fixtures, not a mistyped `collect()`.
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;

    fn sample_tally() -> CampaignTally {
        let mut attribution = CounterSet::new();
        attribution.add("dcs", 9);
        attribution.add("computation: adder", 4);
        let mut latency = Histogram::new();
        for v in [1u64, 30, 500, 70_000] {
            latency.record(v);
        }
        CampaignTally {
            // 123 classified + 2 hung + 1 quarantined = 126 accounted.
            outcomes: [3, 80, 30, 10],
            exercised: 90,
            attribution,
            latency,
            hung: 2,
            quarantine: vec![QuarantineRecord {
                index: 17,
                seed: 0xA905,
                panic_msg: "boom \"quoted\"".into(),
            }],
        }
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: Fingerprint {
                workload: "stress".into(),
                injections: 1000,
                seed: 0xA905,
                kind: FaultKind::Transient,
                structural_mask: 0.3,
            },
            done: vec![0..126],
            tally: sample_tally(),
        }
    }

    /// Builds a legacy (v1/v2) per-shard JSON body for conversion tests.
    fn legacy_doc(version: u64, shards: &[(usize, usize, usize, &CampaignTally)]) -> Json {
        let cp = sample();
        let fp = &cp.fingerprint;
        Json::obj()
            .set("version", version)
            .set(
                "fingerprint",
                Json::obj()
                    .set("workload", fp.workload.as_str())
                    .set("injections", fp.injections)
                    .set("seed", fp.seed)
                    .set("kind", "transient")
                    .set("structural_mask", fp.structural_mask)
                    .set("shards", shards.len()),
            )
            .set(
                "shards",
                Json::Arr(
                    shards
                        .iter()
                        .map(|&(start, end, done, t)| {
                            let Json::Obj(fields) = tally_to_json(t) else { unreachable!() };
                            let mut all = vec![
                                ("start".to_owned(), Json::from(start)),
                                ("end".to_owned(), Json::from(end)),
                                ("done".to_owned(), Json::from(done)),
                            ];
                            all.extend(fields);
                            Json::Obj(all)
                        })
                        .collect(),
                ),
            )
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let cp = sample();
        let text = cp.to_json().to_string_compact();
        let back = Checkpoint::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.completed(), 126);
        assert_eq!(back.tally.hung, 2);
        assert_eq!(back.tally.quarantine[0].panic_msg, "boom \"quoted\"");
    }

    #[test]
    fn fragmented_done_ranges_roundtrip() {
        let mut cp = sample();
        cp.done = vec![0..100, 120..140, 500..506];
        let text = cp.to_json().to_string_compact();
        let back = Checkpoint::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.done, cp.done);
        assert_eq!(back.completed(), 126);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("argus-orch-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt_roundtrip.json");
        let cp = sample();
        cp.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_detected() {
        let cp = sample();
        let mut other = cp.fingerprint.clone();
        other.seed ^= 1;
        other.injections = 2000;
        let err = cp.check_matches(&other).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("seed"), "{msg}");
        assert!(msg.contains("injections"), "{msg}");
        assert!(cp.check_matches(&cp.fingerprint).is_ok());
    }

    #[test]
    fn corrupt_files_are_rejected() {
        assert!(matches!(
            Checkpoint::from_json(&Json::parse("{}").unwrap()),
            Err(CheckpointError::Corrupt(_))
        ));
        let mut doc = sample().to_json();
        doc = doc.set("version", 99u64);
        assert!(matches!(Checkpoint::from_json(&doc), Err(CheckpointError::Corrupt(_))));
        // Done ranges past the planned injection count.
        let mut cp = sample();
        cp.done = vec![0..1001];
        assert!(matches!(Checkpoint::from_json(&cp.to_json()), Err(CheckpointError::Corrupt(_))));
        // Overlapping ranges.
        let mut cp = sample();
        cp.done = vec![0..100, 50..76];
        assert!(matches!(Checkpoint::from_json(&cp.to_json()), Err(CheckpointError::Corrupt(_))));
        // Tallies that do not account for every done injection.
        let mut cp = sample();
        cp.tally.hung += 1;
        assert!(matches!(Checkpoint::from_json(&cp.to_json()), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn flipped_byte_fails_checksum() {
        let dir = std::env::temp_dir().join("argus-orch-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt_crc.json");
        let cp = sample();
        cp.save(&path).unwrap();
        // Corrupt one digit inside the body (not the crc field itself).
        let text = std::fs::read_to_string(&path).unwrap();
        let at = text.find("\"exercised\":90").expect("body contains the exercised field");
        let mut bytes = text.into_bytes();
        bytes[at + 13] = b'7'; // 90 -> 97: still valid JSON, wrong content
        std::fs::write(&path, &bytes).unwrap();
        match Checkpoint::load(&path) {
            Err(CheckpointError::Checksum { expected, got }) => assert_ne!(expected, got),
            other => panic!("expected checksum failure, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_v2_per_shard_files_convert_to_global_tally() {
        // Two shards: 0..500 with 126 done, 500..1000 with 1 done.
        let t0 = sample_tally();
        let mut t1 = CampaignTally::empty();
        t1.outcomes[2] = 1;
        let doc = legacy_doc(2, &[(0, 500, 126, &t0), (500, 1000, 1, &t1)]);
        let cp = Checkpoint::from_json(&doc).unwrap();
        assert_eq!(cp.done, vec![0..126, 500..501]);
        assert_eq!(cp.completed(), 127);
        assert_eq!(cp.tally.outcomes, [3, 80, 31, 10]);
        assert_eq!(cp.tally.hung, 2);
        assert_eq!(cp.tally.quarantine.len(), 1);

        // A fully-finished shard abutting its successor's prefix coalesces.
        let mut full = CampaignTally::empty();
        full.outcomes[1] = 500;
        let doc = legacy_doc(2, &[(0, 500, 500, &full), (500, 1000, 1, &t1)]);
        let cp = Checkpoint::from_json(&doc).unwrap();
        assert_eq!(cp.done, vec![0..501]);

        // Legacy validation still applies: done beyond the slice length.
        let doc = legacy_doc(2, &[(0, 100, 126, &t0), (500, 1000, 1, &t1)]);
        assert!(matches!(Checkpoint::from_json(&doc), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn legacy_v1_files_without_envelope_load() {
        let dir = std::env::temp_dir().join("argus-orch-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt_v1.json");
        // A v1 file: bare body, version 1, no supervision fields.
        let mut t = sample_tally();
        t.hung = 0;
        t.quarantine.clear(); // 123 classified only
        let mut body = legacy_doc(1, &[(0, 1000, 123, &t)]);
        if let Json::Obj(ref mut fields) = body {
            for (_, shard) in fields.iter_mut().filter(|(k, _)| k == "shards") {
                if let Json::Arr(ref mut arr) = shard {
                    for s in arr.iter_mut() {
                        if let Json::Obj(ref mut sf) = s {
                            sf.retain(|(k, _)| k != "hung" && k != "quarantine");
                        }
                    }
                }
            }
        }
        std::fs::write(&path, body.to_string_compact()).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.tally.hung, 0);
        assert!(back.tally.quarantine.is_empty());
        assert_eq!(back.completed(), 123);
        assert_eq!(back.done, vec![0..123]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_rotates_previous_generation_to_bak() {
        let dir = std::env::temp_dir().join("argus-orch-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt_rotate.json");
        let bak = backup_path(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&bak);

        let mut cp = sample();
        cp.save(&path).unwrap();
        assert!(!bak.exists(), "first save has nothing to rotate");
        cp.done = vec![0..126, 500..501];
        cp.tally.outcomes[2] += 1;
        cp.save(&path).unwrap();
        assert!(bak.exists(), "second save rotates the first generation");
        assert_eq!(Checkpoint::load(&bak).unwrap().completed(), 126);
        assert_eq!(Checkpoint::load(&path).unwrap().completed(), 127);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&bak).unwrap();
    }

    #[test]
    fn load_resilient_falls_back_to_bak_then_scratch() {
        let dir = std::env::temp_dir().join("argus-orch-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt_resilient.json");
        let bak = backup_path(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&bak);

        let mut cp = sample();
        cp.save(&path).unwrap();
        cp.done = vec![0..126, 500..501];
        cp.tally.outcomes[0] += 1;
        cp.save(&path).unwrap(); // first generation now in .bak

        // Truncate the primary: resilient load recovers the backup.
        std::fs::write(&path, b"{\"crc32\":12,\"bo").unwrap();
        let rec = Checkpoint::load_resilient(&path);
        assert!(rec.used_backup);
        assert_eq!(rec.checkpoint.as_ref().unwrap().completed(), 126);
        assert!(rec.warnings.iter().any(|w| w.contains("unusable")), "{:?}", rec.warnings);

        // Destroy both generations: recovery degrades to scratch.
        std::fs::write(&bak, b"garbage").unwrap();
        let rec = Checkpoint::load_resilient(&path);
        assert!(rec.checkpoint.is_none());
        assert!(!rec.used_backup);
        assert!(rec.warnings.iter().any(|w| w.contains("from scratch")), "{:?}", rec.warnings);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&bak).unwrap();
    }

    #[test]
    fn save_with_retry_reports_zero_failures_on_success() {
        let dir = std::env::temp_dir().join("argus-orch-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt_retry.json");
        let failures = sample().save_with_retry(&path, 3, Duration::from_millis(1)).unwrap();
        assert_eq!(failures, 0);
        // An unwritable path exhausts its retries and surfaces the error.
        let bad = dir.join("no-such-dir").join("ckpt.json");
        assert!(sample().save_with_retry(&bad, 1, Duration::from_millis(1)).is_err());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(backup_path(&path));
    }
}
