//! Campaign checkpoint files: periodic serialization of per-shard progress
//! so an interrupted campaign can resume without repeating work.
//!
//! The file is hand-rolled JSON (see [`crate::json`]); it records a
//! fingerprint of the campaign configuration (so a stale file is never
//! silently applied to a different campaign) plus, per shard, the contiguous
//! index range, how many injections of it are complete, and the tallies
//! accumulated from them. Shards process their slice in index order, so
//! `done` fully describes *which* injections the tallies cover.

use crate::json::Json;
use argus_sim::fault::FaultKind;
use argus_sim::stats::{CounterSet, Histogram};
use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Current file format version.
const VERSION: u64 = 1;

/// Identifies a campaign; a checkpoint only resumes a campaign with an
/// identical fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    /// Workload name.
    pub workload: String,
    /// Total planned injections.
    pub injections: usize,
    /// Campaign RNG seed.
    pub seed: u64,
    /// `"transient"` or `"permanent"`.
    pub kind: FaultKind,
    /// Structural-masking probability.
    pub structural_mask: f64,
    /// Shard count (ranges depend on it).
    pub shards: usize,
}

impl Fingerprint {
    fn kind_str(&self) -> &'static str {
        match self.kind {
            FaultKind::Transient => "transient",
            FaultKind::Permanent => "permanent",
        }
    }
}

/// One shard's saved progress.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCheckpoint {
    /// First injection index owned by the shard.
    pub start: usize,
    /// One past the last owned index.
    pub end: usize,
    /// Completed injections (`start..start + done` are done).
    pub done: usize,
    /// Per-outcome counts over the completed injections, indexed like
    /// `Outcome::ALL`.
    pub outcomes: [u64; 4],
    /// How many completed injections actually corrupted a signal.
    pub exercised: u64,
    /// First-detector attribution over the completed injections.
    pub attribution: CounterSet,
    /// Detection-latency samples over the completed injections.
    pub latency: Histogram,
}

impl ShardCheckpoint {
    /// Fresh, empty progress for one slice.
    pub fn empty(start: usize, end: usize) -> Self {
        Self {
            start,
            end,
            done: 0,
            outcomes: [0; 4],
            exercised: 0,
            attribution: CounterSet::new(),
            latency: Histogram::new(),
        }
    }
}

/// A whole campaign checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Which campaign this file belongs to.
    pub fingerprint: Fingerprint,
    /// Per-shard progress, in shard order.
    pub shards: Vec<ShardCheckpoint>,
}

/// Why loading a checkpoint failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Unparseable or structurally wrong file.
    Corrupt(String),
    /// A valid file for a *different* campaign.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            Self::Mismatch(m) => {
                write!(f, "checkpoint belongs to a different campaign: {m}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(msg.into())
}

impl Checkpoint {
    /// Total completed injections across all shards.
    pub fn completed(&self) -> usize {
        self.shards.iter().map(|s| s.done).sum()
    }

    /// Serializes to the JSON document format.
    pub fn to_json(&self) -> Json {
        let fp = &self.fingerprint;
        Json::obj()
            .set("version", VERSION)
            .set(
                "fingerprint",
                Json::obj()
                    .set("workload", fp.workload.as_str())
                    .set("injections", fp.injections)
                    .set("seed", fp.seed)
                    .set("kind", fp.kind_str())
                    .set("structural_mask", fp.structural_mask)
                    .set("shards", fp.shards),
            )
            .set("shards", Json::Arr(self.shards.iter().map(shard_to_json).collect()))
    }

    /// Parses the JSON document format.
    pub fn from_json(doc: &Json) -> Result<Self, CheckpointError> {
        let version = field_u64(doc, "version")?;
        if version != VERSION {
            return Err(corrupt(format!("unsupported checkpoint version {version}")));
        }
        let fp = doc.get("fingerprint").ok_or_else(|| corrupt("missing fingerprint"))?;
        let kind = match field_str(fp, "kind")? {
            "transient" => FaultKind::Transient,
            "permanent" => FaultKind::Permanent,
            other => return Err(corrupt(format!("unknown fault kind `{other}`"))),
        };
        let fingerprint = Fingerprint {
            workload: field_str(fp, "workload")?.to_owned(),
            injections: field_u64(fp, "injections")? as usize,
            seed: field_u64(fp, "seed")?,
            kind,
            structural_mask: fp
                .get("structural_mask")
                .and_then(Json::as_f64)
                .ok_or_else(|| corrupt("missing structural_mask"))?,
            shards: field_u64(fp, "shards")? as usize,
        };
        let shards = doc
            .get("shards")
            .and_then(Json::as_arr)
            .ok_or_else(|| corrupt("missing shards array"))?
            .iter()
            .map(shard_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if shards.len() != fingerprint.shards {
            return Err(corrupt("shard array length disagrees with fingerprint"));
        }
        for s in &shards {
            if s.start > s.end || s.done > s.end - s.start {
                return Err(corrupt("shard progress out of range"));
            }
        }
        Ok(Self { fingerprint, shards })
    }

    /// Atomically writes the checkpoint (`path.tmp` + rename), so a crash
    /// mid-write never destroys the previous good checkpoint.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_json().to_string_compact().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads and validates a checkpoint file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path)?;
        let doc = Json::parse(&text).map_err(|e| corrupt(e.to_string()))?;
        Self::from_json(&doc)
    }

    /// Errors unless `other` describes the same campaign.
    pub fn check_matches(&self, expected: &Fingerprint) -> Result<(), CheckpointError> {
        let got = &self.fingerprint;
        let mut diffs = Vec::new();
        if got.workload != expected.workload {
            diffs.push(format!("workload {} != {}", got.workload, expected.workload));
        }
        if got.injections != expected.injections {
            diffs.push(format!("injections {} != {}", got.injections, expected.injections));
        }
        if got.seed != expected.seed {
            diffs.push(format!("seed {:#x} != {:#x}", got.seed, expected.seed));
        }
        if got.kind != expected.kind {
            diffs.push(format!("kind {:?} != {:?}", got.kind, expected.kind));
        }
        if got.structural_mask != expected.structural_mask {
            diffs.push(format!(
                "structural_mask {} != {}",
                got.structural_mask, expected.structural_mask
            ));
        }
        if got.shards != expected.shards {
            diffs.push(format!("shards {} != {}", got.shards, expected.shards));
        }
        if diffs.is_empty() {
            Ok(())
        } else {
            Err(CheckpointError::Mismatch(diffs.join("; ")))
        }
    }
}

fn shard_to_json(s: &ShardCheckpoint) -> Json {
    Json::obj()
        .set("start", s.start)
        .set("end", s.end)
        .set("done", s.done)
        .set("outcomes", Json::Arr(s.outcomes.iter().map(|&c| c.into()).collect()))
        .set("exercised", s.exercised)
        .set(
            "attribution",
            Json::Obj(s.attribution.iter().map(|(k, v)| (k.to_owned(), v.into())).collect()),
        )
        .set(
            "latency",
            Json::obj()
                .set("buckets", Json::Arr(s.latency.buckets().iter().map(|&c| c.into()).collect()))
                .set("count", s.latency.count())
                // u128 sum is stored as a decimal string to avoid f64 loss.
                .set("sum", s.latency.sum().to_string())
                .set("min", s.latency.min().map_or(Json::Null, Json::from))
                .set("max", s.latency.max().map_or(Json::Null, Json::from)),
        )
}

fn shard_from_json(doc: &Json) -> Result<ShardCheckpoint, CheckpointError> {
    let outcomes_arr =
        doc.get("outcomes").and_then(Json::as_arr).ok_or_else(|| corrupt("missing outcomes"))?;
    if outcomes_arr.len() != 4 {
        return Err(corrupt("outcomes must have 4 entries"));
    }
    let mut outcomes = [0u64; 4];
    for (slot, v) in outcomes.iter_mut().zip(outcomes_arr) {
        *slot = v.as_u64().ok_or_else(|| corrupt("bad outcome count"))?;
    }
    let mut attribution = CounterSet::new();
    for (k, v) in doc
        .get("attribution")
        .and_then(Json::as_obj)
        .ok_or_else(|| corrupt("missing attribution"))?
    {
        attribution.add(k, v.as_u64().ok_or_else(|| corrupt("bad attribution count"))?);
    }
    let lat = doc.get("latency").ok_or_else(|| corrupt("missing latency"))?;
    let buckets = lat
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| corrupt("missing latency buckets"))?
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| corrupt("bad latency bucket")))
        .collect::<Result<Vec<_>, _>>()?;
    let sum: u128 = field_str(lat, "sum")?.parse().map_err(|_| corrupt("bad latency sum"))?;
    let latency = Histogram::from_parts(
        buckets,
        field_u64(lat, "count")?,
        sum,
        lat.get("min").and_then(Json::as_u64),
        lat.get("max").and_then(Json::as_u64),
    );
    Ok(ShardCheckpoint {
        start: field_u64(doc, "start")? as usize,
        end: field_u64(doc, "end")? as usize,
        done: field_u64(doc, "done")? as usize,
        outcomes,
        exercised: field_u64(doc, "exercised")?,
        attribution,
        latency,
    })
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, CheckpointError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| corrupt(format!("missing or non-integer `{key}`")))
}

fn field_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, CheckpointError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt(format!("missing or non-string `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut attribution = CounterSet::new();
        attribution.add("dcs", 9);
        attribution.add("computation: adder", 4);
        let mut latency = Histogram::new();
        for v in [1u64, 30, 500, 70_000] {
            latency.record(v);
        }
        Checkpoint {
            fingerprint: Fingerprint {
                workload: "stress".into(),
                injections: 1000,
                seed: 0xA905,
                kind: FaultKind::Transient,
                structural_mask: 0.3,
                shards: 2,
            },
            shards: vec![
                ShardCheckpoint {
                    start: 0,
                    end: 500,
                    done: 123,
                    outcomes: [3, 80, 30, 10],
                    exercised: 90,
                    attribution,
                    latency,
                },
                ShardCheckpoint::empty(500, 1000),
            ],
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let cp = sample();
        let text = cp.to_json().to_string_compact();
        let back = Checkpoint::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.completed(), 123);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("argus-orch-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt_roundtrip.json");
        let cp = sample();
        cp.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_detected() {
        let cp = sample();
        let mut other = cp.fingerprint.clone();
        other.seed ^= 1;
        other.shards = 4;
        let err = cp.check_matches(&other).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("seed"), "{msg}");
        assert!(msg.contains("shards"), "{msg}");
        assert!(cp.check_matches(&cp.fingerprint).is_ok());
    }

    #[test]
    fn corrupt_files_are_rejected() {
        assert!(matches!(
            Checkpoint::from_json(&Json::parse("{}").unwrap()),
            Err(CheckpointError::Corrupt(_))
        ));
        let mut doc = sample().to_json();
        doc = doc.set("version", 99u64);
        assert!(matches!(Checkpoint::from_json(&doc), Err(CheckpointError::Corrupt(_))));
        // Shard progress beyond its slice length.
        let mut cp = sample();
        cp.shards[0].done = 501;
        let doc = cp.to_json();
        assert!(matches!(Checkpoint::from_json(&doc), Err(CheckpointError::Corrupt(_))));
    }
}
