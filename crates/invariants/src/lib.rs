//! # argus-invariants — the always-on invariant registry
//!
//! Campaign correctness used to rest on end-state digest equality and
//! per-crate unit tests; nothing continuously asserted that machine,
//! checker, and orchestrator state stay *internally legal* while a
//! campaign runs. This crate closes that gap with a pluggable registry of
//! invariant checkers, each a small predicate over a read-only view of
//! live state, evaluated at well-defined hooks:
//!
//! * **Commit** — after a committed instruction (sampled by stride);
//! * **BlockEnd** — at a basic-block boundary (per-commit or batched);
//! * **SnapshotRestore** — after a snapshot restore reconstructed a
//!   machine+checker pair;
//! * **ChunkComplete** — after the sharded engine folds a finished lease
//!   into the campaign ledger;
//! * **Checkpoint** — around checkpoint save and load.
//!
//! Every invariant documents what failure it is *expected to catch*
//! (`Invariant::expected_to_catch`), which doubles as the canary-matrix
//! documentation: `scripts/canary_matrix.sh` builds the workspace with the
//! `canary` feature, activates one deliberately seeded checker bug at a
//! time (`ARGUS_CANARY=<name>`), and asserts a named invariant — or
//! campaign divergence — notices.
//!
//! Exec-level invariants (`InvariantCtx::Exec`) are only meaningful on a
//! pristine trajectory: once a fault has flipped state, "illegal" machine
//! state is the expected experimental outcome. Callers gate on
//! `FaultInjector::first_flip_cycle().is_none()`. Ledger invariants run
//! unconditionally — conservation laws hold regardless of what the
//! injections did.
//!
//! Checking never mutates the observed state and never alters campaign
//! results: the mode knob (`--invariants {off,sampled,full}`) is a
//! perf/diagnosis knob, never a result knob.

use argus_core::Argus;
use argus_machine::{BlockPlan, Machine};
use argus_mem::cache::CacheState;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// How densely the registry is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InvariantMode {
    /// No checking at all (the registry is never consulted).
    Off,
    /// Strided exec checks + every-Nth snapshot restore + every ledger
    /// event. The default: cheap enough for the bench gates.
    #[default]
    Sampled,
    /// Dense exec checks, every snapshot restore, every ledger event.
    Full,
}

impl InvariantMode {
    /// Parses a `--invariants` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(Self::Off),
            "sampled" => Some(Self::Sampled),
            "full" => Some(Self::Full),
            _ => None,
        }
    }

    /// The canonical flag spelling.
    pub fn label(self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::Sampled => "sampled",
            Self::Full => "full",
        }
    }

    /// Commits between two Commit-hook evaluations (0 = never).
    pub fn commit_stride(self) -> u64 {
        match self {
            Self::Off => 0,
            Self::Sampled => 4096,
            Self::Full => 64,
        }
    }

    /// Block boundaries between two BlockEnd-hook evaluations (0 = never).
    pub fn block_stride(self) -> u64 {
        match self {
            Self::Off => 0,
            Self::Sampled => 512,
            Self::Full => 8,
        }
    }

    /// Snapshot restores between two SnapshotRestore-hook evaluations
    /// (0 = never). Fingerprint reconstruction walks the whole machine, so
    /// sampled mode amortizes it across forks.
    pub fn snapshot_stride(self) -> u64 {
        match self {
            Self::Off => 0,
            Self::Sampled => 64,
            Self::Full => 1,
        }
    }
}

/// Where in the engine an invariant is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hook {
    /// After a committed instruction (strided).
    Commit,
    /// At a basic-block boundary.
    BlockEnd,
    /// After a snapshot restore.
    SnapshotRestore,
    /// After a finished lease folds into the campaign ledger.
    ChunkComplete,
    /// Around checkpoint save/load.
    Checkpoint,
    /// After a snapshot store (RAM-built or memory-mapped) finishes
    /// opening, before any fork reads from it.
    StoreOpen,
}

impl Hook {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Commit => "commit",
            Self::BlockEnd => "block",
            Self::SnapshotRestore => "snapshot",
            Self::ChunkComplete => "chunk",
            Self::Checkpoint => "checkpoint",
            Self::StoreOpen => "store",
        }
    }
}

/// How bad a violation is. Everything registered today is a genuine
/// state-corruption witness, but the split keeps room for advisory checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// State corruption that invalidates campaign results.
    Critical,
    /// Internal inconsistency that may bias results.
    Error,
}

impl Severity {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Critical => "critical",
            Self::Error => "error",
        }
    }
}

/// Read-only view of live execution state (machine + checker), handed to
/// Commit/BlockEnd hooks on a pristine trajectory.
pub struct ExecView<'a> {
    /// The machine under test.
    pub machine: &'a Machine,
    /// The Argus checker shadowing it.
    pub argus: &'a Argus,
    /// Whether the campaign armed an entry-block DCS expectation (argus
    /// mode with an entry DCS); gates the expectation-armed invariant.
    pub entry_armed: bool,
    /// The block plan just batch-checked, when the hook fires from the
    /// block-compiled path (enables the batched-vs-fold cross-check).
    pub block: Option<&'a BlockPlan>,
}

/// A snapshot-restore identity observation: the fingerprint recorded when
/// the snapshot was captured vs. the digest recomputed from the restored
/// machine + checker.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView {
    /// Fingerprint stored in the snapshot (ARGSNAP).
    pub expected: u64,
    /// `combined_fingerprint` over the freshly restored state.
    pub reconstructed: u64,
    /// Capture cycle, for diagnostics.
    pub cycle: u64,
}

/// A plain-data copy of the campaign ledger: done ranges, tally counters,
/// and the quarantine index list. Neutral (no orchestrator types) so the
/// dependency arrow stays orchestrator → invariants.
#[derive(Debug, Clone, Default)]
pub struct LedgerView {
    /// Total injections in the campaign.
    pub total: u64,
    /// Completed index ranges, half-open `[start, end)`, expected sorted,
    /// disjoint, and coalesced.
    pub done: Vec<(u64, u64)>,
    /// Classified outcome counters (detected/silent/masked/etc.).
    pub outcomes: Vec<u64>,
    /// Injections classified as hung.
    pub hung: u64,
    /// Quarantined injection indices, expected sorted and unique.
    pub quarantine_indices: Vec<u64>,
    /// The tally's own account of how many injections it covers.
    pub accounted: u64,
}

impl LedgerView {
    /// Injections covered by the done ranges.
    pub fn covered(&self) -> u64 {
        self.done.iter().map(|&(s, e)| e.saturating_sub(s)).sum()
    }
}

/// A plain-data observation of a freshly opened snapshot store
/// (RAM-built or memory-mapped), taken before any fork reads from it.
/// Neutral (no snapshot-crate types) so the dependency arrow stays
/// faults → invariants.
#[derive(Debug, Clone, Default)]
pub struct StoreView {
    /// Backend label ("ram" / "mmap").
    pub backend: String,
    /// Snapshots in the store.
    pub snapshots: usize,
    /// Distinct pages stored.
    pub pages_distinct: u64,
    /// Total page references across all snapshots (>= distinct).
    pub pages_total: u64,
    /// Per-snapshot page-table lengths.
    pub table_lens: Vec<usize>,
    /// Per-snapshot expected table lengths (`mem_words.div_ceil(PAGE_WORDS)`).
    pub expected_lens: Vec<usize>,
    /// Per-snapshot capture cycles (must be strictly increasing).
    pub cycles: Vec<u64>,
    /// Largest page id referenced by any snapshot (mapped backend only).
    pub max_page_id: Option<u32>,
    /// Page-body CRC spot checks as (page id, ok) (mapped backend only).
    pub crc_checks: Vec<(u32, bool)>,
}

/// The state an invariant is asked to judge.
pub enum InvariantCtx<'a> {
    /// Live machine + checker state.
    Exec(ExecView<'a>),
    /// A snapshot-restore identity observation.
    Snapshot(SnapshotView),
    /// A campaign-ledger observation.
    Ledger(LedgerView),
    /// A freshly opened snapshot store.
    Store(StoreView),
}

/// One invariant's verdict on one observation.
pub enum InvariantResult {
    /// The invariant held.
    Pass,
    /// The observation was not applicable (wrong ctx variant, or a
    /// precondition like "at a block boundary" did not hold).
    Skip,
    /// The invariant is violated; the string says how.
    Violation(String),
}

/// One registered invariant checker.
pub trait Invariant: Send + Sync {
    /// Stable kebab-case identifier (report JSON key, exit messages).
    fn name(&self) -> &'static str;
    /// How bad a violation is.
    fn severity(&self) -> Severity;
    /// The hooks this invariant wants to observe.
    fn hooks(&self) -> &'static [Hook];
    /// What real-world failure this invariant is expected to catch —
    /// the registry's documentation of its own purpose, printed by
    /// `argus invariants list` and exercised by the canary matrix.
    fn expected_to_catch(&self) -> &'static str;
    /// Judges one observation.
    fn check(&self, ctx: &InvariantCtx) -> InvariantResult;
}

// ---------------------------------------------------------------------------
// Registered invariants
// ---------------------------------------------------------------------------

/// Declares an invariant struct with static metadata and a check body.
macro_rules! invariant {
    ($ty:ident, $name:literal, $sev:expr, $hooks:expr, $doc:literal,
     |$self_:ident, $ctx:ident| $body:expr) => {
        struct $ty {
            #[allow(dead_code)]
            state: AtomicU64,
        }
        impl $ty {
            fn boxed() -> Box<dyn Invariant> {
                Box::new(Self { state: AtomicU64::new(0) })
            }
        }
        impl Invariant for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn severity(&self) -> Severity {
                $sev
            }
            fn hooks(&self) -> &'static [Hook] {
                $hooks
            }
            fn expected_to_catch(&self) -> &'static str {
                $doc
            }
            fn check(&self, ctx: &InvariantCtx) -> InvariantResult {
                let $self_ = self;
                let $ctx = ctx;
                $body
            }
        }
    };
}

fn violation(msg: String) -> InvariantResult {
    InvariantResult::Violation(msg)
}

fn pass_if(ok: bool, msg: impl FnOnce() -> String) -> InvariantResult {
    if ok {
        InvariantResult::Pass
    } else {
        violation(msg())
    }
}

const EXEC_HOOKS: &[Hook] = &[Hook::Commit, Hook::BlockEnd];
const COMMIT_ONLY: &[Hook] = &[Hook::Commit];
const BLOCK_ONLY: &[Hook] = &[Hook::BlockEnd];
const LEDGER_HOOKS: &[Hook] = &[Hook::ChunkComplete, Hook::Checkpoint];

invariant!(
    PcWordAligned,
    "pc-word-aligned",
    Severity::Critical,
    EXEC_HOOKS,
    "PC corruption below instruction granularity: a fetch address that is not \
     word-aligned can only arise from machine-state corruption, never from a \
     legal control transfer.",
    |_s, ctx| {
        let InvariantCtx::Exec(v) = ctx else { return InvariantResult::Skip };
        let pc = v.machine.pc();
        pass_if(pc % 4 == 0, || format!("pc {pc:#x} is not word-aligned"))
    }
);

invariant!(
    RetiredWithinCycles,
    "retired-within-cycles",
    Severity::Critical,
    COMMIT_ONLY,
    "Counter corruption in the pipeline bookkeeping: every commit costs at \
     least one cycle, so the retired-instruction count can never exceed the \
     cycle count.",
    |_s, ctx| {
        let InvariantCtx::Exec(v) = ctx else { return InvariantResult::Skip };
        let (r, c) = (v.machine.retired(), v.machine.cycle());
        pass_if(r <= c, || format!("retired {r} exceeds cycle {c}"))
    }
);

invariant!(
    CfcBlockLengthBound,
    "cfc-block-length-bound",
    Severity::Critical,
    COMMIT_ONLY,
    "A CFC that silently stops bounding basic-block length (the guarantee \
     that caps time-between-checks together with the watchdog): the live \
     block-length counter must never exceed the configured bound.",
    |_s, ctx| {
        let InvariantCtx::Exec(v) = ctx else { return InvariantResult::Skip };
        let len = v.argus.cfc().block_len();
        let max = v.argus.config().max_block_len;
        pass_if(len <= max, || format!("cfc block length {len} exceeds bound {max}"))
    }
);

invariant!(
    CfcExpectationArmed,
    "cfc-expectation-armed",
    Severity::Critical,
    EXEC_HOOKS,
    "A CFC that drops its successor-DCS expectation (canary-cfc-drop-\
     expectation): once the entry block's DCS is armed, every subsequent \
     block hand-off must leave an expectation in place, otherwise DCS \
     comparisons silently stop happening.",
    |_s, ctx| {
        let InvariantCtx::Exec(v) = ctx else { return InvariantResult::Skip };
        if !v.entry_armed || !v.argus.config().enable_dcs {
            return InvariantResult::Skip;
        }
        pass_if(v.argus.cfc().expected().is_some(), || {
            "cfc expectation is unarmed after the entry DCS was armed".into()
        })
    }
);

invariant!(
    WatchdogWithinBudget,
    "watchdog-within-budget",
    Severity::Critical,
    COMMIT_ONLY,
    "Watchdog budget corruption or trip suppression: the stall counter \
     saturates at the threshold, reaching the threshold must coincide \
     with a trip, and a probe of a cloned watchdog driven to saturation \
     must fire (canary-watchdog-never-fires suppresses the trip, which \
     only the probe can see — healthy programs never stall that long).",
    |s, ctx| {
        let InvariantCtx::Exec(v) = ctx else { return InvariantResult::Skip };
        if !v.argus.config().enable_watchdog {
            return InvariantResult::Skip;
        }
        let wd = v.argus.watchdog();
        let (c, t) = (wd.count(), wd.threshold());
        if c > t {
            return violation(format!("watchdog count {c} exceeds threshold {t}"));
        }
        if c >= t && !wd.tripped() {
            return violation(format!("watchdog saturated at {c} without tripping"));
        }
        if wd.tripped() && c < t {
            return violation(format!("watchdog tripped with count {c} below threshold {t}"));
        }
        // Active probe (throttled): saturate a clone of the live
        // watchdog and require it to fire. The live counter never gets
        // near the threshold on a healthy run, so trip suppression is
        // invisible to the passive checks above.
        if s.state.fetch_add(1, Ordering::Relaxed).is_multiple_of(64) {
            let mut probe = wd.clone();
            let mut inj = argus_sim::fault::FaultInjector::none();
            if !probe.stall(t, &mut inj) {
                return violation(format!("watchdog probe driven {t} stall cycles did not trip"));
            }
        }
        InvariantResult::Pass
    }
);

invariant!(
    ShsSigsWithinWidth,
    "shs-sigs-within-width",
    Severity::Critical,
    EXEC_HOOKS,
    "SHS file corruption: every one of the 35 location signatures is a \
     width-bit value; a signature with set bits above the width means the \
     file itself (not the program) was corrupted.",
    |_s, ctx| {
        let InvariantCtx::Exec(v) = ctx else { return InvariantResult::Skip };
        let f = v.argus.shs_file();
        let mask = (1u32 << f.width()) - 1;
        for (i, sig) in f.all().iter().enumerate() {
            if sig & !mask != 0 {
                return violation(format!("SHS location {i} holds {sig:#x}, above width mask"));
            }
        }
        InvariantResult::Pass
    }
);

invariant!(
    ShsResetAtBoundary,
    "shs-reset-at-boundary",
    Severity::Critical,
    BLOCK_ONLY,
    "A missed SHS file reset at a basic-block boundary: block signatures are \
     defined over a per-block-reset file, so at a CFC block boundary every \
     location must sit at its initial value.",
    |_s, ctx| {
        let InvariantCtx::Exec(v) = ctx else { return InvariantResult::Skip };
        if !v.argus.config().enable_dcs || !v.argus.cfc().at_block_boundary() {
            return InvariantResult::Skip;
        }
        let f = v.argus.shs_file();
        let fresh = argus_core::shs::ShsFile::new(f.width());
        pass_if(f.all() == fresh.all(), || {
            "SHS file not at initial values at a block boundary".into()
        })
    }
);

invariant!(
    DcsWithinWidth,
    "dcs-within-width",
    Severity::Critical,
    BLOCK_ONLY,
    "DCS fold corruption: the XOR fold of width-bit signatures through the \
     hard-wired permutation is itself a width-bit value.",
    |_s, ctx| {
        let InvariantCtx::Exec(v) = ctx else { return InvariantResult::Skip };
        if !v.argus.config().enable_dcs {
            return InvariantResult::Skip;
        }
        let dcs = v.argus.current_dcs();
        let w = v.argus.config().sig_width;
        pass_if(dcs >> w == 0, || format!("DCS {dcs:#x} has bits above width {w}"))
    }
);

invariant!(
    ShsFusedTablesMatchReference,
    "shs-fused-tables-match-reference",
    Severity::Critical,
    BLOCK_ONLY,
    "Silent corruption of the fused CRC/substitution lookup tables \
     (canary-shs-stale-table-row): every entry must equal a from-scratch \
     recomputation of the bit-serial CRC followed by the substitution box. \
     Self-throttled: the full table sweep runs every 32nd evaluation.",
    |s, ctx| {
        let InvariantCtx::Exec(v) = ctx else { return InvariantResult::Skip };
        if !s.state.fetch_add(1, Ordering::Relaxed).is_multiple_of(32) {
            return InvariantResult::Skip;
        }
        match v.argus.verify_shs_tables() {
            Ok(()) => InvariantResult::Pass,
            Err(e) => violation(e),
        }
    }
);

invariant!(
    ShsOpMemoConsistent,
    "shs-op-memo-consistent",
    Severity::Critical,
    BLOCK_ONLY,
    "A stale or corrupted operation-symbol memo: every cached (pc, instr, \
     sym) triple must satisfy sym == op_sym(instr), else the checker applies \
     wrong symbols without noticing. Self-throttled: the full memo sweep \
     runs every 16th evaluation.",
    |s, ctx| {
        let InvariantCtx::Exec(v) = ctx else { return InvariantResult::Skip };
        if !s.state.fetch_add(1, Ordering::Relaxed).is_multiple_of(16) {
            return InvariantResult::Skip;
        }
        match v.argus.audit_op_memo() {
            Ok(()) => InvariantResult::Pass,
            Err(e) => violation(e),
        }
    }
);

invariant!(
    DcsBlockMemoMatchesFold,
    "dcs-block-memo-matches-fold",
    Severity::Critical,
    BLOCK_ONLY,
    "Divergence between the block-batched checking path and the per-step \
     fold it memoizes: the static DCS and successor slots cached for a block \
     must equal a fresh per-instruction SHS replay over that block's plan.",
    |_s, ctx| {
        let InvariantCtx::Exec(v) = ctx else { return InvariantResult::Skip };
        let Some(plan) = v.block else { return InvariantResult::Skip };
        match v.argus.audit_block_plan(plan) {
            Ok(()) => InvariantResult::Pass,
            Err(e) => violation(e),
        }
    }
);

fn check_cache(label: &str, st: &CacheState, sets: u32, ways: u32) -> Result<(), String> {
    if st.lines.len() != (sets * ways) as usize {
        return Err(format!(
            "{label}: {} lines captured for a {sets}x{ways} geometry",
            st.lines.len()
        ));
    }
    for set in 0..sets as usize {
        let lines = &st.lines[set * ways as usize..(set + 1) * ways as usize];
        for (i, a) in lines.iter().enumerate() {
            if !a.valid {
                continue;
            }
            if a.lru > st.tick {
                return Err(format!(
                    "{label}: set {set} way {i} lru stamp {} ahead of clock {}",
                    a.lru, st.tick
                ));
            }
            for (j, b) in lines.iter().enumerate().skip(i + 1) {
                if b.valid && a.tag == b.tag {
                    return Err(format!(
                        "{label}: set {set} ways {i},{j} hold duplicate tag {:#x}",
                        a.tag
                    ));
                }
            }
        }
    }
    let s = st.stats;
    if s.hits + s.misses != s.accesses {
        return Err(format!(
            "{label}: hits {} + misses {} != accesses {}",
            s.hits, s.misses, s.accesses
        ));
    }
    Ok(())
}

invariant!(
    CacheArraysLegal,
    "cache-arrays-legal",
    Severity::Critical,
    COMMIT_ONLY,
    "Corruption of the flat cache arrays (e.g. by a bad delta restore): \
     valid lines within a set must carry distinct tags, every LRU stamp \
     must be behind the LRU clock, and hits + misses must equal accesses.",
    |_s, ctx| {
        let InvariantCtx::Exec(v) = ctx else { return InvariantResult::Skip };
        let mem = v.machine.mem();
        let cfg = mem.config();
        let caches = mem.capture_caches();
        for (label, st, c) in
            [("icache", &caches.icache, cfg.icache), ("dcache", &caches.dcache, cfg.dcache)]
        {
            if let Err(e) = check_cache(label, st, c.num_sets(), c.ways) {
                return violation(e);
            }
        }
        InvariantResult::Pass
    }
);

invariant!(
    CacheTagsWithinMemory,
    "cache-tags-within-memory",
    Severity::Critical,
    COMMIT_ONLY,
    "Cache tags decoding to addresses outside the backing main-memory pages: \
     every valid line must name a line-aligned address inside mem_bytes, or \
     the tag array and the page store have come apart.",
    |_s, ctx| {
        let InvariantCtx::Exec(v) = ctx else { return InvariantResult::Skip };
        let mem = v.machine.mem();
        let cfg = mem.config();
        let caches = mem.capture_caches();
        for (label, st, c) in
            [("icache", &caches.icache, cfg.icache), ("dcache", &caches.dcache, cfg.dcache)]
        {
            let sets = c.num_sets() as u64;
            let ways = c.ways as usize;
            for (k, l) in st.lines.iter().enumerate() {
                if !l.valid {
                    continue;
                }
                let set = (k / ways) as u64;
                let addr = (u64::from(l.tag) * sets + set) * u64::from(c.line_bytes);
                if addr >= u64::from(cfg.mem_bytes) {
                    return violation(format!(
                        "{label}: valid tag {:#x} decodes to {addr:#x}, beyond mem_bytes {:#x}",
                        l.tag, cfg.mem_bytes
                    ));
                }
            }
        }
        InvariantResult::Pass
    }
);

invariant!(
    SnapshotFingerprintIdentity,
    "snapshot-fingerprint-identity",
    Severity::Critical,
    &[Hook::SnapshotRestore],
    "A snapshot restore that reconstructs different state than was captured \
     (ARGSNAP fingerprint vs. recomputed digest) — e.g. a generation-stamp \
     or dirty-page bug in the delta-restore path.",
    |_s, ctx| {
        let InvariantCtx::Snapshot(v) = ctx else { return InvariantResult::Skip };
        pass_if(v.expected == v.reconstructed, || {
            format!(
                "restored state digest {:#x} != captured fingerprint {:#x} (cycle {})",
                v.reconstructed, v.expected, v.cycle
            )
        })
    }
);

invariant!(
    DoneRangesCanonical,
    "done-ranges-canonical",
    Severity::Critical,
    LEDGER_HOOKS,
    "Done-range coalescing that loses or double-counts an injection: the \
     completed ranges must stay sorted, non-empty, disjoint, coalesced \
     (gap-separated), and inside the campaign total.",
    |_s, ctx| {
        let InvariantCtx::Ledger(v) = ctx else { return InvariantResult::Skip };
        let mut prev_end: Option<u64> = None;
        for &(s, e) in &v.done {
            if s >= e {
                return violation(format!("empty or inverted done range [{s}, {e})"));
            }
            if e > v.total {
                return violation(format!("done range [{s}, {e}) beyond total {}", v.total));
            }
            if let Some(p) = prev_end {
                if s <= p {
                    return violation(format!(
                        "done range [{s}, {e}) overlaps or abuts previous end {p} (uncoalesced)"
                    ));
                }
            }
            prev_end = Some(e);
        }
        InvariantResult::Pass
    }
);

invariant!(
    TallyAccountsDone,
    "tally-accounts-done",
    Severity::Critical,
    LEDGER_HOOKS,
    "Tally/ledger conservation: the injections the tally accounts for must \
     equal the injections the done ranges cover — broken by dropping a \
     stolen lease's results (canary-tally-drop-on-steal), double-merging a \
     remote completion (canary-lease-double-complete), or losing quarantine \
     entries across resume (canary-quarantine-drop-on-resume).",
    |_s, ctx| {
        let InvariantCtx::Ledger(v) = ctx else { return InvariantResult::Skip };
        let covered = v.covered();
        pass_if(v.accounted == covered, || {
            format!("tally accounts for {} injections but done ranges cover {covered}", v.accounted)
        })
    }
);

invariant!(
    TallyWithinTotal,
    "tally-within-total",
    Severity::Critical,
    LEDGER_HOOKS,
    "Tally counter overflow or double-merge: no outcome counter, nor the \
     accounted sum, may exceed the campaign total.",
    |_s, ctx| {
        let InvariantCtx::Ledger(v) = ctx else { return InvariantResult::Skip };
        if v.accounted > v.total {
            return violation(format!("accounted {} exceeds total {}", v.accounted, v.total));
        }
        for (i, &c) in v.outcomes.iter().enumerate() {
            if c > v.total {
                return violation(format!("outcome counter {i} at {c} exceeds total {}", v.total));
            }
        }
        if v.hung > v.total {
            return violation(format!("hung count {} exceeds total {}", v.hung, v.total));
        }
        InvariantResult::Pass
    }
);

invariant!(
    QuarantineLedgerCanonical,
    "quarantine-ledger-canonical",
    Severity::Critical,
    LEDGER_HOOKS,
    "Quarantine-ledger corruption across steal/lease-expiry/resume: the \
     quarantined indices must stay sorted, unique, inside the total, and \
     each must lie inside a completed done range (a quarantined injection \
     is a completed injection).",
    |_s, ctx| {
        let InvariantCtx::Ledger(v) = ctx else { return InvariantResult::Skip };
        let mut prev: Option<u64> = None;
        for &ix in &v.quarantine_indices {
            if ix >= v.total {
                return violation(format!("quarantined index {ix} beyond total {}", v.total));
            }
            if let Some(p) = prev {
                if ix <= p {
                    return violation(format!(
                        "quarantine ledger not strictly increasing at index {ix} (prev {p})"
                    ));
                }
            }
            if !v.done.iter().any(|&(s, e)| ix >= s && ix < e) {
                return violation(format!(
                    "quarantined index {ix} is not inside any completed done range"
                ));
            }
            prev = Some(ix);
        }
        InvariantResult::Pass
    }
);

invariant!(
    CompletedMonotone,
    "completed-monotone",
    Severity::Critical,
    LEDGER_HOOKS,
    "Ledger regression: the number of completed injections never decreases \
     within one engine run — a decrease means a merge or resume dropped \
     completed work.",
    |s, ctx| {
        let InvariantCtx::Ledger(v) = ctx else { return InvariantResult::Skip };
        let covered = v.covered();
        // Monotone high-water mark; the stored value only ever grows.
        let prev = s.state.fetch_max(covered, Ordering::Relaxed);
        pass_if(covered >= prev, || format!("completed count regressed from {prev} to {covered}"))
    }
);

invariant!(
    CfcBitsMatchLength,
    "cfc-bits-match-length",
    Severity::Critical,
    EXEC_HOOKS,
    "A CFC whose collected embedded-bit stream and instruction counter come \
     apart (delay-slot/transition bookkeeping bugs): collected bits without \
     counted instructions, or an implausibly long stream for the counted \
     block length, mean the per-commit transition accounting is broken.",
    |_s, ctx| {
        let InvariantCtx::Exec(v) = ctx else { return InvariantResult::Skip };
        if !v.argus.config().enable_dcs {
            return InvariantResult::Skip;
        }
        let cfc = v.argus.cfc();
        let (bits, len) = (cfc.bits_len(), cfc.block_len());
        if len == 0 && bits != 0 {
            return violation(format!("{bits} embedded bits collected with zero instructions"));
        }
        pass_if(bits as u64 <= u64::from(len) * 32, || {
            format!("{bits} embedded bits collected over only {len} instructions")
        })
    }
);

invariant!(
    StorePageIndexCanonical,
    "store-page-index-canonical",
    Severity::Critical,
    &[Hook::StoreOpen],
    "Snapshot-store index corruption at open time: every snapshot's page \
     table must cover exactly its memory image (one entry per page), page \
     ids must stay inside the stored page pool, capture cycles must be \
     strictly increasing, and the reference/distinct page accounting must \
     balance — a store violating any of these would fork corrupted state \
     into every injection.",
    |_s, ctx| {
        let InvariantCtx::Store(v) = ctx else { return InvariantResult::Skip };
        if v.table_lens.len() != v.snapshots || v.cycles.len() != v.snapshots {
            return violation(format!(
                "store holds {} snapshots but {} page tables / {} cycles",
                v.snapshots,
                v.table_lens.len(),
                v.cycles.len()
            ));
        }
        for (i, (&got, &want)) in v.table_lens.iter().zip(&v.expected_lens).enumerate() {
            if got != want {
                return violation(format!(
                    "snapshot {i} page table has {got} entries, memory needs {want}"
                ));
            }
        }
        for w in v.cycles.windows(2) {
            if w[1] <= w[0] {
                return violation(format!(
                    "capture cycles not strictly increasing: {} then {}",
                    w[0], w[1]
                ));
            }
        }
        if let Some(max) = v.max_page_id {
            if u64::from(max) >= v.pages_distinct {
                return violation(format!(
                    "page id {max} referenced but only {} pages stored",
                    v.pages_distinct
                ));
            }
        }
        let refs: u64 = v.table_lens.iter().map(|&n| n as u64).sum();
        pass_if(v.pages_total == refs, || {
            format!("store accounts {} page references but tables hold {refs}", v.pages_total)
        })
    }
);

invariant!(
    StorePageCrcSpotCheck,
    "store-page-crc-spot-check",
    Severity::Critical,
    &[Hook::StoreOpen],
    "Bit rot or post-write tampering in a memory-mapped store's page \
     bodies: a deterministic sample of stored pages is re-CRCed against \
     the on-disk index at open; a mismatch means the mapped file no longer \
     holds the bytes the golden run wrote.",
    |_s, ctx| {
        let InvariantCtx::Store(v) = ctx else { return InvariantResult::Skip };
        if v.crc_checks.is_empty() {
            return InvariantResult::Skip;
        }
        for &(id, ok) in &v.crc_checks {
            if !ok {
                return violation(format!("stored page {id} fails its index CRC"));
            }
        }
        InvariantResult::Pass
    }
);

/// Builds one fresh instance of every registered invariant. Per-campaign
/// instances: some invariants carry monotonicity state.
pub fn registry() -> Vec<Box<dyn Invariant>> {
    vec![
        PcWordAligned::boxed(),
        RetiredWithinCycles::boxed(),
        CfcBlockLengthBound::boxed(),
        CfcExpectationArmed::boxed(),
        WatchdogWithinBudget::boxed(),
        ShsSigsWithinWidth::boxed(),
        ShsResetAtBoundary::boxed(),
        DcsWithinWidth::boxed(),
        ShsFusedTablesMatchReference::boxed(),
        ShsOpMemoConsistent::boxed(),
        CfcBitsMatchLength::boxed(),
        DcsBlockMemoMatchesFold::boxed(),
        CacheArraysLegal::boxed(),
        CacheTagsWithinMemory::boxed(),
        SnapshotFingerprintIdentity::boxed(),
        DoneRangesCanonical::boxed(),
        TallyAccountsDone::boxed(),
        TallyWithinTotal::boxed(),
        QuarantineLedgerCanonical::boxed(),
        CompletedMonotone::boxed(),
        StorePageIndexCanonical::boxed(),
        StorePageCrcSpotCheck::boxed(),
    ]
}

/// The names of the deliberately seeded checker bugs gated behind the
/// `canary` cargo feature (activated one at a time via `ARGUS_CANARY`).
/// `scripts/canary_matrix.sh` iterates exactly this list.
pub const CANARIES: &[&str] = &[
    "canary-dcs-skip-last-block",
    "canary-shs-stale-table-row",
    "canary-cfc-drop-expectation",
    "canary-watchdog-never-fires",
    "canary-parity-skip-loads",
    "canary-tally-drop-on-steal",
    "canary-lease-double-complete",
    "canary-quarantine-drop-on-resume",
];

// ---------------------------------------------------------------------------
// Engine: registry + mode + violation sink
// ---------------------------------------------------------------------------

/// Aggregated invariant-checking results, plain data for report JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvariantStats {
    /// The mode label ("off"/"sampled"/"full").
    pub mode: String,
    /// Invariant evaluations that returned Pass or Violation.
    pub checks_run: u64,
    /// Total violations observed.
    pub violations: u64,
    /// Violation counts keyed by invariant name (violating invariants
    /// only; empty when everything held).
    pub per_invariant: Vec<(String, u64)>,
    /// Up to [`MAX_EXAMPLES`] example violations as (invariant, detail).
    pub examples: Vec<(String, String)>,
}

impl InvariantStats {
    /// The increment since `prev` (an earlier snapshot of the same
    /// engine). Remote workers post per-chunk deltas rather than their
    /// cumulative totals, so the coordinator can `absorb_remote` each
    /// post without double-counting; deltas telescope back to the total.
    pub fn delta_since(&self, prev: &InvariantStats) -> InvariantStats {
        let per_invariant = self
            .per_invariant
            .iter()
            .filter_map(|(name, count)| {
                let before =
                    prev.per_invariant.iter().find(|(n, _)| n == name).map_or(0, |(_, c)| *c);
                let d = count.saturating_sub(before);
                (d > 0).then(|| (name.clone(), d))
            })
            .collect();
        InvariantStats {
            mode: self.mode.clone(),
            checks_run: self.checks_run.saturating_sub(prev.checks_run),
            violations: self.violations.saturating_sub(prev.violations),
            per_invariant,
            examples: self.examples.get(prev.examples.len()..).unwrap_or_default().to_vec(),
        }
    }

    /// True when this snapshot carries nothing worth posting.
    pub fn is_empty(&self) -> bool {
        self.checks_run == 0 && self.violations == 0 && self.per_invariant.is_empty()
    }
}

/// Cap on retained example violation details.
pub const MAX_EXAMPLES: usize = 8;

#[derive(Default)]
struct SinkDetail {
    counts: BTreeMap<String, u64>,
    examples: Vec<(String, String)>,
}

/// A registry instance bound to a mode, with thread-safe violation
/// accounting. One per campaign; shared by every worker.
pub struct InvariantEngine {
    mode: InvariantMode,
    invariants: Vec<Box<dyn Invariant>>,
    entry_armed: AtomicBool,
    checks_run: AtomicU64,
    violations: AtomicU64,
    snapshot_clock: AtomicU64,
    detail: Mutex<SinkDetail>,
}

impl InvariantEngine {
    /// Builds the full registry at the given mode.
    pub fn new(mode: InvariantMode) -> Self {
        Self {
            mode,
            invariants: if mode == InvariantMode::Off { Vec::new() } else { registry() },
            entry_armed: AtomicBool::new(false),
            checks_run: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            snapshot_clock: AtomicU64::new(0),
            detail: Mutex::new(SinkDetail::default()),
        }
    }

    /// The mode this engine runs at.
    pub fn mode(&self) -> InvariantMode {
        self.mode
    }

    /// Whether any checking happens at all.
    pub fn enabled(&self) -> bool {
        self.mode != InvariantMode::Off
    }

    /// Records whether the campaign armed an entry-block DCS.
    pub fn set_entry_armed(&self, armed: bool) {
        self.entry_armed.store(armed, Ordering::Relaxed);
    }

    /// Whether the campaign armed an entry-block DCS.
    pub fn entry_armed(&self) -> bool {
        self.entry_armed.load(Ordering::Relaxed)
    }

    /// Whether this snapshot restore should be identity-checked (advances
    /// the shared restore clock).
    pub fn snapshot_due(&self) -> bool {
        let stride = self.mode.snapshot_stride();
        if stride == 0 {
            return false;
        }
        self.snapshot_clock.fetch_add(1, Ordering::Relaxed).is_multiple_of(stride)
    }

    /// Evaluates every invariant subscribed to `hook` against `ctx`.
    /// Returns the number of new violations.
    pub fn run_hook(&self, hook: Hook, ctx: &InvariantCtx) -> u64 {
        if self.mode == InvariantMode::Off {
            return 0;
        }
        let mut new_violations = 0u64;
        for inv in &self.invariants {
            if !inv.hooks().contains(&hook) {
                continue;
            }
            match inv.check(ctx) {
                InvariantResult::Skip => {}
                InvariantResult::Pass => {
                    self.checks_run.fetch_add(1, Ordering::Relaxed);
                }
                InvariantResult::Violation(detail) => {
                    self.checks_run.fetch_add(1, Ordering::Relaxed);
                    self.violations.fetch_add(1, Ordering::Relaxed);
                    new_violations += 1;
                    let mut d = self.detail.lock().unwrap();
                    *d.counts.entry(inv.name().to_string()).or_insert(0) += 1;
                    if d.examples.len() < MAX_EXAMPLES {
                        d.examples.push((inv.name().to_string(), detail));
                    }
                }
            }
        }
        new_violations
    }

    /// Total violations so far.
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// Total evaluations so far.
    pub fn checks_run(&self) -> u64 {
        self.checks_run.load(Ordering::Relaxed)
    }

    /// The first recorded violation as "invariant: detail" (exit messages).
    pub fn first_violation(&self) -> Option<String> {
        let d = self.detail.lock().unwrap();
        d.examples.first().map(|(n, e)| format!("{n}: {e}"))
    }

    /// Folds violation accounting reported by a remote worker into this
    /// engine (the worker ran the same registry on its own chunk).
    pub fn absorb_remote(&self, stats: &InvariantStats) {
        self.checks_run.fetch_add(stats.checks_run, Ordering::Relaxed);
        self.violations.fetch_add(stats.violations, Ordering::Relaxed);
        if stats.violations == 0 && stats.per_invariant.is_empty() {
            return;
        }
        let mut d = self.detail.lock().unwrap();
        for (name, count) in &stats.per_invariant {
            *d.counts.entry(name.clone()).or_insert(0) += count;
        }
        for (name, ex) in &stats.examples {
            if d.examples.len() < MAX_EXAMPLES {
                d.examples.push((name.clone(), ex.clone()));
            }
        }
    }

    /// Plain-data snapshot of the accounting, for report JSON.
    pub fn stats(&self) -> InvariantStats {
        let d = self.detail.lock().unwrap();
        InvariantStats {
            mode: self.mode.label().to_string(),
            checks_run: self.checks_run(),
            violations: self.violations(),
            per_invariant: d.counts.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            examples: d.examples.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_core::ArgusConfig;
    use argus_machine::{Machine, MachineConfig};

    fn exec_ctx<'a>(m: &'a Machine, a: &'a Argus) -> InvariantCtx<'a> {
        InvariantCtx::Exec(ExecView { machine: m, argus: a, entry_armed: false, block: None })
    }

    #[test]
    fn registry_meets_floor_and_is_documented() {
        let regs = registry();
        assert!(regs.len() >= 15, "registry shrank below the 15-invariant floor");
        let mut names = std::collections::HashSet::new();
        for inv in &regs {
            assert!(!inv.expected_to_catch().is_empty(), "{} undocumented", inv.name());
            assert!(!inv.hooks().is_empty(), "{} subscribed to no hooks", inv.name());
            assert!(names.insert(inv.name()), "duplicate invariant name {}", inv.name());
            assert!(
                inv.name().chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{} is not kebab-case",
                inv.name()
            );
        }
    }

    #[test]
    fn fresh_machine_passes_every_exec_hook() {
        let m = Machine::new(MachineConfig::default());
        let a = Argus::new(ArgusConfig::default());
        let eng = InvariantEngine::new(InvariantMode::Full);
        for hook in [Hook::Commit, Hook::BlockEnd] {
            eng.run_hook(hook, &exec_ctx(&m, &a));
        }
        assert_eq!(eng.violations(), 0, "{:?}", eng.stats().examples);
        assert!(eng.checks_run() > 0);
    }

    #[test]
    fn ledger_conservation_catches_dropped_tally() {
        let eng = InvariantEngine::new(InvariantMode::Sampled);
        let good = LedgerView {
            total: 100,
            done: vec![(0, 10), (20, 30)],
            outcomes: vec![15, 3, 2, 0],
            hung: 0,
            quarantine_indices: vec![5, 25],
            accounted: 20,
        };
        eng.run_hook(Hook::ChunkComplete, &InvariantCtx::Ledger(good.clone()));
        assert_eq!(eng.violations(), 0, "{:?}", eng.stats().examples);

        let mut dropped = good;
        dropped.accounted = 15; // a stolen lease's results went missing
        eng.run_hook(Hook::ChunkComplete, &InvariantCtx::Ledger(dropped));
        assert!(eng.violations() > 0);
        assert!(eng.first_violation().unwrap().starts_with("tally-accounts-done"));
    }

    #[test]
    fn ledger_catches_uncanonical_ranges_and_quarantine() {
        for (view, want) in [
            (
                LedgerView {
                    total: 50,
                    done: vec![(0, 10), (5, 20)],
                    accounted: 25,
                    ..Default::default()
                },
                "done-ranges-canonical",
            ),
            (
                LedgerView {
                    total: 50,
                    done: vec![(0, 10)],
                    quarantine_indices: vec![40],
                    accounted: 10,
                    ..Default::default()
                },
                "quarantine-ledger-canonical",
            ),
            (
                LedgerView { total: 5, done: vec![(0, 5)], accounted: 9, ..Default::default() },
                "tally-accounts-done",
            ),
        ] {
            let eng = InvariantEngine::new(InvariantMode::Full);
            eng.run_hook(Hook::Checkpoint, &InvariantCtx::Ledger(view));
            let first = eng.first_violation().expect("violation expected");
            assert!(first.starts_with(want), "wanted {want}, got {first}");
        }
    }

    #[test]
    fn completed_monotone_flags_regression() {
        let eng = InvariantEngine::new(InvariantMode::Full);
        let at = |n: u64| LedgerView {
            total: 100,
            done: vec![(0, n)],
            accounted: n,
            ..Default::default()
        };
        eng.run_hook(Hook::ChunkComplete, &InvariantCtx::Ledger(at(30)));
        assert_eq!(eng.violations(), 0);
        eng.run_hook(Hook::ChunkComplete, &InvariantCtx::Ledger(at(10)));
        assert!(eng.stats().per_invariant.iter().any(|(n, _)| n == "completed-monotone"));
    }

    #[test]
    fn snapshot_identity_catches_mismatch() {
        let eng = InvariantEngine::new(InvariantMode::Full);
        let ok = SnapshotView { expected: 7, reconstructed: 7, cycle: 10 };
        eng.run_hook(Hook::SnapshotRestore, &InvariantCtx::Snapshot(ok));
        assert_eq!(eng.violations(), 0);
        let bad = SnapshotView { expected: 7, reconstructed: 8, cycle: 10 };
        eng.run_hook(Hook::SnapshotRestore, &InvariantCtx::Snapshot(bad));
        assert!(eng.first_violation().unwrap().starts_with("snapshot-fingerprint-identity"));
    }

    #[test]
    fn off_mode_runs_nothing() {
        let eng = InvariantEngine::new(InvariantMode::Off);
        assert!(!eng.enabled());
        let bad = SnapshotView { expected: 1, reconstructed: 2, cycle: 0 };
        eng.run_hook(Hook::SnapshotRestore, &InvariantCtx::Snapshot(bad));
        assert_eq!(eng.checks_run(), 0);
        assert_eq!(eng.violations(), 0);
        assert!(!eng.snapshot_due());
    }

    #[test]
    fn mode_parse_roundtrip() {
        for m in [InvariantMode::Off, InvariantMode::Sampled, InvariantMode::Full] {
            assert_eq!(InvariantMode::parse(m.label()), Some(m));
        }
        assert_eq!(InvariantMode::parse("bogus"), None);
        assert_eq!(InvariantMode::default(), InvariantMode::Sampled);
    }

    #[test]
    fn absorb_remote_folds_counts_and_examples() {
        let eng = InvariantEngine::new(InvariantMode::Sampled);
        let remote = InvariantStats {
            mode: "sampled".into(),
            checks_run: 40,
            violations: 2,
            per_invariant: vec![("tally-accounts-done".into(), 2)],
            examples: vec![("tally-accounts-done".into(), "remote detail".into())],
        };
        eng.absorb_remote(&remote);
        let s = eng.stats();
        assert_eq!(s.checks_run, 40);
        assert_eq!(s.violations, 2);
        assert_eq!(s.per_invariant, vec![("tally-accounts-done".to_string(), 2)]);
        assert_eq!(eng.first_violation().unwrap(), "tally-accounts-done: remote detail");
    }

    fn store_view() -> StoreView {
        StoreView {
            backend: "mmap".into(),
            snapshots: 2,
            pages_distinct: 5,
            pages_total: 8,
            table_lens: vec![4, 4],
            expected_lens: vec![4, 4],
            cycles: vec![100, 200],
            max_page_id: Some(4),
            crc_checks: vec![(0, true), (4, true)],
        }
    }

    #[test]
    fn healthy_store_passes_open_hook() {
        let eng = InvariantEngine::new(InvariantMode::Full);
        eng.run_hook(Hook::StoreOpen, &InvariantCtx::Store(store_view()));
        assert_eq!(eng.violations(), 0, "{:?}", eng.stats().examples);
        assert!(eng.checks_run() >= 2);
    }

    #[test]
    fn store_open_catches_index_and_crc_corruption() {
        for (mutate, want) in [
            (
                Box::new(|v: &mut StoreView| v.table_lens[1] = 3) as Box<dyn Fn(&mut StoreView)>,
                "store-page-index-canonical",
            ),
            (Box::new(|v: &mut StoreView| v.cycles = vec![200, 100]), "store-page-index-canonical"),
            (Box::new(|v: &mut StoreView| v.max_page_id = Some(5)), "store-page-index-canonical"),
            (Box::new(|v: &mut StoreView| v.pages_total = 9), "store-page-index-canonical"),
            (
                Box::new(|v: &mut StoreView| v.crc_checks[1] = (4, false)),
                "store-page-crc-spot-check",
            ),
        ] {
            let mut v = store_view();
            mutate(&mut v);
            let eng = InvariantEngine::new(InvariantMode::Full);
            eng.run_hook(Hook::StoreOpen, &InvariantCtx::Store(v));
            let first = eng.first_violation().expect("violation expected");
            assert!(first.starts_with(want), "wanted {want}, got {first}");
        }
    }

    #[test]
    fn ram_store_without_crc_checks_skips_spot_check() {
        let eng = InvariantEngine::new(InvariantMode::Full);
        let v = StoreView {
            backend: "ram".into(),
            max_page_id: None,
            crc_checks: Vec::new(),
            ..store_view()
        };
        eng.run_hook(Hook::StoreOpen, &InvariantCtx::Store(v));
        assert_eq!(eng.violations(), 0, "{:?}", eng.stats().examples);
    }

    #[test]
    fn canary_list_is_stable() {
        assert_eq!(CANARIES.len(), 8);
        for c in CANARIES {
            assert!(c.starts_with("canary-"), "{c} must carry the canary- prefix");
        }
    }
}
