//! # argus-core — the Argus-1 error-detection checkers
//!
//! This crate is the paper's contribution: runtime verification of the four
//! invariants that make a von Neumann core correct — **control flow**,
//! **dataflow**, **computation**, and **memory access** — implemented the
//! way the Argus-1 prototype does (§3):
//!
//! * [`shs`] — State History Signatures: one CRC-updated signature per
//!   architectural location, tracking the *creation history* of its value
//!   (never the value itself).
//! * [`dcs`] — the Dataflow and Control Signature: a hard-wired bit
//!   permutation and XOR tree folding all SHSs into one block signature,
//!   compared at every basic-block boundary against the static DCS the
//!   compiler embedded in the binary.
//! * [`cfc`] — control-flow checking: selecting the anticipated successor
//!   DCS from the embedded slots (or from the top bits of an indirect
//!   branch target), bounding block length, and keeping a private flag
//!   copy so a corrupted branch direction cannot fool the selection.
//! * [`cc`] — computation sub-checkers per functional unit: the adder
//!   checker (also covering bitwise logic by emulation), the RSSE
//!   (right-shift + sign-extend) unit for shifts/extensions/sub-word
//!   alignment, and the Mersenne mod-M residue checker for multiply/divide.
//! * [`watchdog`] — the 6-bit stall counter for liveness.
//! * [`argus`] — [`argus::Argus`], the façade consuming
//!   `argus_machine::CommitRecord`s and raising [`DetectionEvent`]s.
//! * [`ideal`] — the "perfect checker" of Appendix A, realized as a
//!   lockstep golden core, used to ground-truth masking and to test the
//!   Appendix B equivalence claims.
//!
//! # Examples
//!
//! ```
//! use argus_core::shs::{ShsEngine, ShsFile};
//! use argus_isa::{Instr, AluOp, Reg};
//! use argus_sim::fault::FaultInjector;
//!
//! let engine = ShsEngine::new(5);
//! let mut file = ShsFile::new(5);
//! let add = Instr::Alu { op: AluOp::Add, rd: Reg::new(1), ra: Reg::new(2), rb: Reg::new(3) };
//! engine.apply(&mut file, &add, &[Some(Reg::new(2)), Some(Reg::new(3))],
//!              Some(Reg::new(1)), &mut FaultInjector::none());
//! assert_ne!(file.reg(Reg::new(1)), 1, "history of r1 changed");
//! ```

pub mod argus;
pub mod cc;
pub mod cfc;
pub mod config;
pub mod dcs;
pub mod ideal;
pub mod recovery;
pub mod shs;
pub mod sites;
pub mod watchdog;

pub use argus::{Argus, ArgusState};
pub use config::{ArgusConfig, CheckerKind, DetectionEvent};
