//! Checker configuration and detection events.

use std::fmt;

/// Which Argus-1 checker raised a detection (the attribution axis of
/// §4.1.1: computation 45%, parity 36%, DCS 16%, watchdog 3%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CheckerKind {
    /// A computation sub-checker (adder, RSSE, mod-M, compare, target
    /// address).
    Computation,
    /// Parity on operands, registers, load values or memory words.
    Parity,
    /// The DCS comparison (covers both dataflow shape and control flow).
    Dcs,
    /// The liveness watchdog.
    Watchdog,
}

impl fmt::Display for CheckerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CheckerKind::Computation => "computation",
            CheckerKind::Parity => "parity",
            CheckerKind::Dcs => "dcs",
            CheckerKind::Watchdog => "watchdog",
        };
        f.write_str(s)
    }
}

/// One detected error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionEvent {
    /// The checker that fired.
    pub checker: CheckerKind,
    /// A short machine-readable reason (e.g. `"adder_mismatch"`).
    pub reason: &'static str,
    /// Cycle at which the checker fired.
    pub cycle: u64,
    /// PC of the instruction being checked (0 for watchdog timeouts).
    pub pc: u32,
}

impl fmt::Display for DetectionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} error at cycle {} (pc {:#x}): {}",
            self.checker, self.cycle, self.pc, self.reason
        )
    }
}

/// Argus-1 configuration. The defaults are the paper's design point:
/// 5-bit signatures (CRC5), modulus 31 (Mersenne 2^5−1), a 6-bit watchdog,
/// and a 64-instruction basic-block cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArgusConfig {
    /// SHS/DCS signature width in bits (3–5; ablation knob). The upper
    /// bound is architectural: embedded DCS slots and the top bits of
    /// indirect-branch targets hold exactly 5 bits, so wider internal
    /// signatures could never be compared end-to-end.
    pub sig_width: u32,
    /// Modulus for the multiplier/divider residue checker (ablation knob).
    pub modulus: u32,
    /// Watchdog counter width in bits.
    pub watchdog_bits: u32,
    /// Maximum legal basic-block length in instructions.
    pub max_block_len: u32,
    /// Enable the computation sub-checkers.
    pub enable_cc: bool,
    /// Enable parity checking (operands, registers, load values).
    pub enable_parity: bool,
    /// Enable DCS (dataflow + control flow) checking.
    pub enable_dcs: bool,
    /// Enable the watchdog.
    pub enable_watchdog: bool,
}

impl Default for ArgusConfig {
    fn default() -> Self {
        Self {
            sig_width: 5,
            modulus: 31,
            watchdog_bits: 6,
            max_block_len: 64,
            enable_cc: true,
            enable_parity: true,
            enable_dcs: true,
            enable_watchdog: true,
        }
    }
}

impl ArgusConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sig_width` is outside 3–8, `modulus` < 3, or
    /// `watchdog_bits` is outside 2–16.
    pub fn validate(&self) {
        assert!(
            (3..=5).contains(&self.sig_width),
            "sig_width {} outside 3..=5 (embedded slots are 5 bits wide)",
            self.sig_width
        );
        assert!(self.modulus >= 3, "modulus {} too small", self.modulus);
        assert!(
            (2..=16).contains(&self.watchdog_bits),
            "watchdog_bits {} outside 2..=16",
            self.watchdog_bits
        );
        assert!(self.max_block_len >= 4, "max_block_len too small");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_papers_design_point() {
        let c = ArgusConfig::default();
        c.validate();
        assert_eq!(c.sig_width, 5);
        assert_eq!(c.modulus, 31);
        assert_eq!(c.watchdog_bits, 6);
    }

    #[test]
    #[should_panic(expected = "sig_width")]
    fn validate_rejects_wide_signatures() {
        ArgusConfig { sig_width: 6, ..Default::default() }.validate();
    }

    #[test]
    fn event_display() {
        let e = DetectionEvent {
            checker: CheckerKind::Parity,
            reason: "operand_parity",
            cycle: 42,
            pc: 0x100,
        };
        let s = e.to_string();
        assert!(s.contains("parity") && s.contains("42") && s.contains("0x100"));
    }
}
