//! Fault sites inside the Argus-1 checker hardware itself.
//!
//! The paper injects errors into the checker logic too; such errors can
//! never corrupt the core's architectural execution, so they are always
//! masked — but many of them trip a checker, producing the paper's
//! "detected masked errors" (DMEs).

use argus_sim::fault::{SiteDesc, Unit};

/// CRC unit output in an SHS computation unit.
pub const SHS_CRC_OUT: &str = "shs_crc_out";
/// Stored SHS bits read from the signature file.
pub const SHS_FILE_CELL: &str = "shs_file_cell";
/// DCS XOR-tree output.
pub const DCS_XOR_OUT: &str = "dcs_xor_out";
/// The statically-embedded DCS selected for comparison.
pub const DCS_EXPECTED: &str = "dcs_expected";
/// Embedded-slot parser output in the control-flow checker.
pub const CFC_SLOT_PARSE: &str = "cfc_slot_parse";
/// The CFC's private copy of the compare flag.
pub const CFC_FLAG_SHADOW: &str = "cfc_flag_shadow";
/// Adder sub-checker recomputation output.
pub const CC_ADDER_OUT: &str = "cc_adder_out";
/// RSSE sub-checker output.
pub const CC_RSSE_OUT: &str = "cc_rsse_out";
/// Mod-M residue sub-checker output.
pub const CC_MOD_OUT: &str = "cc_mod_out";
/// Compare sub-checker output.
pub const CC_CMP_OUT: &str = "cc_cmp_out";
/// Parity tag read from the register parity file.
pub const PARITY_RF_TAG: &str = "parity_rf_tag";
/// Parity-check comparator output.
pub const PARITY_CHECK: &str = "parity_check";
/// Memory parity-check comparator output.
pub const MFC_PARITY_CHECK: &str = "mfc_parity_check";
/// Watchdog counter bits.
pub const WD_COUNT: &str = "wd_count";

/// Fault-site inventory of the checker hardware.
pub fn argus_sites() -> Vec<SiteDesc> {
    vec![
        SiteDesc::new(SHS_CRC_OUT, 8, Unit::ArgusShs, 3.2).sensitized(0.5),
        SiteDesc::new(SHS_FILE_CELL, 8, Unit::ArgusShs, 2.6).sensitized(0.9),
        SiteDesc::new(DCS_XOR_OUT, 8, Unit::ArgusDcs, 0.8).sensitized(0.6),
        SiteDesc::new(DCS_EXPECTED, 8, Unit::ArgusDcs, 0.6).sensitized(0.6),
        SiteDesc::new(CFC_SLOT_PARSE, 5, Unit::ArgusDcs, 0.4).sensitized(0.6),
        SiteDesc::new(CFC_FLAG_SHADOW, 1, Unit::ArgusDcs, 0.1).sensitized(0.8),
        SiteDesc::new(CC_ADDER_OUT, 32, Unit::ArgusCc, 1.9).sensitized(0.4),
        SiteDesc::new(CC_RSSE_OUT, 32, Unit::ArgusCc, 1.0).sensitized(0.4),
        SiteDesc::new(CC_MOD_OUT, 8, Unit::ArgusCc, 0.8).sensitized(0.4),
        SiteDesc::new(CC_CMP_OUT, 1, Unit::ArgusCc, 0.2).sensitized(0.5),
        SiteDesc::new(PARITY_RF_TAG, 1, Unit::ArgusParity, 0.5).sensitized(0.8),
        SiteDesc::new(PARITY_CHECK, 1, Unit::ArgusParity, 0.5).sensitized(0.5),
        SiteDesc::new(MFC_PARITY_CHECK, 1, Unit::ArgusParity, 0.3).sensitized(0.5),
        SiteDesc::new(WD_COUNT, 8, Unit::ArgusWatchdog, 0.3).sensitized(0.7),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sites_are_argus_hardware() {
        for s in argus_sites() {
            assert!(s.unit.is_argus_hardware(), "{} misclassified", s.name);
            assert!(s.weight > 0.0);
        }
    }

    #[test]
    fn names_are_unique() {
        let sites = argus_sites();
        let mut names: Vec<_> = sites.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), sites.len());
    }
}
