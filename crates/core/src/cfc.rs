//! Control-flow checker state (§3.2.1).
//!
//! The CFC collects the embedded DCS slots of the executing basic block,
//! and — when the block ends — selects which successor DCS the *next*
//! block must produce:
//!
//! * conditional branch: slot 0 (taken target) or slot 1 (fall-through),
//!   selected by the checker's private copy of the compare flag (whose
//!   value the computation checker verified when it was written);
//! * direct jump / call: slot 0 (the callee's entry DCS for `jal`);
//! * indirect jump / return: the DCS carried in the top 5 bits of the
//!   target register (§3.2.2, "Indirect Branches");
//! * fall-through block (ends with an end-of-block Signature marker):
//!   slot 0.
//!
//! It also bounds basic-block length, which together with the watchdog
//! bounds the time between control-flow checks.

use crate::sites;
use argus_isa::instr::Instr;
use argus_machine::commit::BranchInfo;
use argus_sim::bitstream::{BitStream, PackedBits};
use argus_sim::fault::FaultInjector;

/// Control-flow checker state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfc {
    max_block_len: u32,
    block_bits: BitStream,
    block_len: u32,
    /// DCS the current block must produce (selected when the previous
    /// block ended). `None` before the first boundary.
    expected: Option<u32>,
    /// Successor DCS selected at the block's CTI, applied at block end.
    pending_next: Option<u32>,
    /// The checker's private flag copy.
    flag_shadow: bool,
}

impl Cfc {
    /// Creates the checker with a block-length bound.
    pub fn new(max_block_len: u32) -> Self {
        Self {
            max_block_len,
            block_bits: BitStream::new(),
            block_len: 0,
            expected: None,
            pending_next: None,
            flag_shadow: false,
        }
    }

    /// The DCS anticipated for the block currently executing.
    pub fn expected(&self) -> Option<u32> {
        self.expected
    }

    /// Instructions counted in the current block (invariant auditing).
    pub fn block_len(&self) -> u32 {
        self.block_len
    }

    /// Embedded bits collected for the current block (invariant auditing).
    pub fn bits_len(&self) -> usize {
        self.block_bits.len()
    }

    /// Flattens the checker into state words (external serialization; the
    /// inverse of [`Cfc::from_state_words`]).
    pub fn state_words(&self) -> Vec<u64> {
        let mut v = vec![self.max_block_len as u64, self.block_bits.len() as u64];
        v.extend_from_slice(self.block_bits.words());
        v.push(self.block_len as u64);
        v.push(self.expected.map_or(u64::MAX, u64::from));
        v.push(self.pending_next.map_or(u64::MAX, u64::from));
        v.push(self.flag_shadow as u64);
        v
    }

    /// Rebuilds a checker from [`Cfc::state_words`] output; `None` when the
    /// words are malformed.
    pub fn from_state_words(ws: &[u64]) -> Option<Self> {
        let [max_block_len, nbits, rest @ ..] = ws else { return None };
        let nbits = usize::try_from(*nbits).ok()?;
        let nwords = nbits.div_ceil(64);
        if rest.len() != nwords + 4 {
            return None;
        }
        if !nbits.is_multiple_of(64)
            && rest.get(nwords.wrapping_sub(1)).is_some_and(|&w| w >> (nbits % 64) != 0)
        {
            return None; // set bits past the stream length
        }
        let decode_opt = |w: u64| -> Option<Option<u32>> {
            if w == u64::MAX {
                Some(None)
            } else {
                Some(Some(u32::try_from(w).ok()?))
            }
        };
        Some(Self {
            max_block_len: u32::try_from(*max_block_len).ok()?,
            block_bits: BitStream::from_words(rest[..nwords].to_vec(), nbits),
            block_len: u32::try_from(rest[nwords]).ok()?,
            expected: decode_opt(rest[nwords + 1])?,
            pending_next: decode_opt(rest[nwords + 2])?,
            flag_shadow: rest[nwords + 3] != 0,
        })
    }

    /// Folds the full checker state into `mix` (state fingerprints).
    pub fn fold_state(&self, mix: &mut dyn FnMut(u64)) {
        mix(self.max_block_len as u64);
        mix(self.block_bits.len() as u64);
        for &w in self.block_bits.words() {
            mix(w);
        }
        mix(self.block_len as u64);
        mix(self.expected.map_or(u64::MAX, u64::from));
        mix(self.pending_next.map_or(u64::MAX, u64::from));
        mix(self.flag_shadow as u64);
    }

    /// Arms the expectation for the entry block (supplied by the loader's
    /// indirect jump into the binary).
    pub fn expect_entry(&mut self, dcs: u32) {
        self.expected = Some(dcs & 31);
    }

    /// Accounts one committed instruction: collects its embedded bits and
    /// enforces the block-length bound. Returns a violation reason when the
    /// block is illegally long.
    pub fn note_instr(&mut self, embedded_bits: PackedBits) -> Option<&'static str> {
        self.block_bits.push_packed(embedded_bits);
        self.block_len += 1;
        (self.block_len > self.max_block_len).then_some("block_length_exceeded")
    }

    /// Records a verified flag write (the computation checker has already
    /// validated the compare result).
    pub fn on_flag_write(&mut self, value: bool) {
        self.flag_shadow = value;
    }

    /// Parses the k-th embedded 5-bit slot of the current block.
    pub fn slot(&self, k: usize, inj: &mut FaultInjector) -> u32 {
        inj.tap32(sites::CFC_SLOT_PARSE, self.block_bits.extract(5 * k, 5)) & 31
    }

    /// Handles the block's control-transfer instruction: selects the
    /// anticipated successor DCS.
    pub fn on_cti(&mut self, op: &Instr, branch: &BranchInfo, inj: &mut FaultInjector) {
        let next = match op {
            Instr::Branch { taken_if, .. } => {
                let shadow = inj.tap1(sites::CFC_FLAG_SHADOW, self.flag_shadow);
                if shadow == *taken_if {
                    self.slot(0, inj)
                } else {
                    self.slot(1, inj)
                }
            }
            Instr::Jump { .. } => self.slot(0, inj),
            Instr::JumpReg { .. } => branch.indirect_dcs.unwrap_or(0),
            _ => return,
        };
        self.pending_next = Some(next);
    }

    /// Whether the checker sits exactly at a block boundary: no collected
    /// bits, no counted instructions, no pending successor. This is the
    /// precondition for [`Cfc::batch_block`].
    pub fn at_block_boundary(&self) -> bool {
        self.block_bits.is_empty() && self.block_len == 0 && self.pending_next.is_none()
    }

    /// Batched equivalent of `note_instr` × N + `on_flag_write` + `on_cti` +
    /// `finish_block` over one whole block, for callers that computed the
    /// successor selection themselves (block-compiled execution): collecting
    /// then clearing the block bits is a net no-op from a boundary, so only
    /// the expectation hand-off and the flag shadow remain. Returns the DCS
    /// the finished block was expected to produce, exactly like
    /// [`Cfc::finish_block`].
    ///
    /// Callers must hold [`Cfc::at_block_boundary`] and must not exceed the
    /// block-length bound (gated by `Argus::block_ready`).
    pub fn batch_block(&mut self, next_expected: u32, flag_after: bool) -> Option<u32> {
        debug_assert!(self.at_block_boundary());
        let finished_expectation = self.expected;
        self.flag_shadow = flag_after;
        self.expected = Some(next_expected);
        if argus_sim::canary::enabled("canary-cfc-drop-expectation") {
            self.expected = None;
        }
        self.pending_next = None;
        finished_expectation
    }

    /// Ends the current block. `ended_by_cti` is true when the block ended
    /// after the delay slot of a control transfer (vs. a fall-through
    /// end-of-block marker). Returns the DCS the block was expected to
    /// produce (for the caller to compare) and arms the expectation for
    /// the next block.
    pub fn finish_block(&mut self, ended_by_cti: bool, inj: &mut FaultInjector) -> Option<u32> {
        let finished_expectation = self.expected;
        self.expected = if ended_by_cti {
            self.pending_next.take()
        } else {
            self.pending_next = None;
            Some(self.slot(0, inj))
        };
        if argus_sim::canary::enabled("canary-cfc-drop-expectation") {
            self.expected = None;
        }
        self.block_bits.clear();
        self.block_len = 0;
        finished_expectation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_isa::reg::Reg;

    fn bits_of(v: u32, n: usize) -> PackedBits {
        PackedBits::new(v, n as u8)
    }

    fn cond_branch() -> Instr {
        Instr::Branch { taken_if: true, off: 4 }
    }

    fn binfo(taken: bool) -> BranchInfo {
        BranchInfo {
            conditional: true,
            taken,
            flag_used: Some(taken),
            target: None,
            indirect_dcs: None,
        }
    }

    #[test]
    fn slot_parsing() {
        let mut cfc = Cfc::new(64);
        let mut inj = FaultInjector::none();
        // slots: 0b10101, 0b00111
        cfc.note_instr(bits_of(0b00111_10101, 10));
        assert_eq!(cfc.slot(0, &mut inj), 0b10101);
        assert_eq!(cfc.slot(1, &mut inj), 0b00111);
        assert_eq!(cfc.slot(2, &mut inj), 0, "missing slots read as zero");
    }

    #[test]
    fn conditional_selection_uses_shadow_flag() {
        let mut inj = FaultInjector::none();
        for (flag, expect) in [(true, 0b10101u32), (false, 0b00111)] {
            let mut cfc = Cfc::new(64);
            cfc.note_instr(bits_of(0b00111_10101, 10));
            cfc.on_flag_write(flag);
            cfc.on_cti(&cond_branch(), &binfo(flag), &mut inj);
            assert_eq!(cfc.finish_block(true, &mut inj), None, "first block unchecked");
            assert_eq!(cfc.expected(), Some(expect));
        }
    }

    #[test]
    fn selection_ignores_datapath_direction() {
        // A fault flipped the actual branch direction; the CFC still selects
        // by its verified flag copy, so the next block will mismatch.
        let mut inj = FaultInjector::none();
        let mut cfc = Cfc::new(64);
        cfc.note_instr(bits_of(0b00111_10101, 10));
        cfc.on_flag_write(true);
        cfc.on_cti(&cond_branch(), &binfo(false), &mut inj);
        cfc.finish_block(true, &mut inj);
        assert_eq!(cfc.expected(), Some(0b10101), "selected the flag-consistent successor");
    }

    #[test]
    fn indirect_uses_register_dcs() {
        let mut inj = FaultInjector::none();
        let mut cfc = Cfc::new(64);
        let b = BranchInfo {
            conditional: false,
            taken: true,
            flag_used: None,
            target: Some(0x40),
            indirect_dcs: Some(0b01110),
        };
        cfc.on_cti(&Instr::JumpReg { link: false, rb: Reg::LR }, &b, &mut inj);
        cfc.finish_block(true, &mut inj);
        assert_eq!(cfc.expected(), Some(0b01110));
    }

    #[test]
    fn fallthrough_uses_slot0() {
        let mut inj = FaultInjector::none();
        let mut cfc = Cfc::new(64);
        cfc.note_instr(bits_of(0b11011, 5));
        cfc.finish_block(false, &mut inj);
        assert_eq!(cfc.expected(), Some(0b11011));
    }

    #[test]
    fn finish_returns_previous_expectation_and_resets_bits() {
        let mut inj = FaultInjector::none();
        let mut cfc = Cfc::new(64);
        cfc.note_instr(bits_of(0b00001, 5));
        cfc.finish_block(false, &mut inj);
        cfc.note_instr(bits_of(0b00010, 5));
        let checked = cfc.finish_block(false, &mut inj);
        assert_eq!(checked, Some(0b00001));
        assert_eq!(cfc.expected(), Some(0b00010));
    }

    #[test]
    fn state_words_roundtrip_packed_bits() {
        let mut inj = FaultInjector::none();
        let mut cfc = Cfc::new(64);
        // 70 bits: the packed stream spans two words.
        for _ in 0..7 {
            cfc.note_instr(bits_of(0b11010_01101, 10));
        }
        cfc.on_flag_write(true);
        cfc.on_cti(&cond_branch(), &binfo(true), &mut inj);
        let ws = cfc.state_words();
        let back = Cfc::from_state_words(&ws).expect("well-formed words");
        assert_eq!(back, cfc);
        assert_eq!(back.state_words(), ws);
        // Malformed: truncated, and dirty bits past the stream length.
        assert!(Cfc::from_state_words(&ws[..ws.len() - 1]).is_none());
        let mut dirty = ws.clone();
        dirty[3] |= 1 << 63; // second bit word; stream is 70 bits long
        assert!(Cfc::from_state_words(&dirty).is_none());
    }

    #[test]
    fn block_length_bound() {
        let mut cfc = Cfc::new(4);
        for _ in 0..4 {
            assert_eq!(cfc.note_instr(PackedBits::EMPTY), None);
        }
        assert_eq!(cfc.note_instr(PackedBits::EMPTY), Some("block_length_exceeded"));
    }
}
