//! The ideal checker of Appendix A, realized as a lockstep golden core.
//!
//! An Argus implementation with perfect checkers detects *any* deviation of
//! the architectural execution from the correct one. The strongest oracle
//! with that property is dual-modular redundancy: re-execute the program on
//! a pristine copy of the machine and compare every architectural effect at
//! every commit. This module provides exactly that, and the test suite uses
//! it to ground-truth masking classification and to validate the Appendix B
//! claim that Argus-1 detects the same errors as an ideal implementation up
//! to signature aliasing and the documented memory-checker gaps.

use argus_machine::{CommitRecord, Machine, StepOutcome};
use argus_sim::fault::FaultInjector;
use std::fmt;

/// A detected divergence between the observed execution and the golden one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Which architectural effect diverged first.
    pub field: &'static str,
    /// Commit cycle (of the observed run) at which it diverged.
    pub cycle: u64,
    /// PC of the observed instruction.
    pub pc: u32,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ideal checker: {} diverged at cycle {} (pc {:#x})",
            self.field, self.cycle, self.pc
        )
    }
}

/// Lockstep golden-core checker.
#[derive(Debug, Clone)]
pub struct IdealChecker {
    golden: Machine,
    divergence: Option<Divergence>,
}

impl IdealChecker {
    /// Creates the checker from a pristine copy of the machine (clone it
    /// *before* the observed run starts).
    pub fn new(pristine: Machine) -> Self {
        Self { golden: pristine, divergence: None }
    }

    /// The first divergence observed, if any.
    pub fn divergence(&self) -> Option<&Divergence> {
        self.divergence.as_ref()
    }

    /// Compares one observed commit against the golden execution. Returns
    /// the divergence on first mismatch; afterwards the checker latches.
    pub fn on_commit(&mut self, rec: &CommitRecord) -> Option<Divergence> {
        if self.divergence.is_some() {
            return self.divergence.clone();
        }
        let mut none = FaultInjector::none();
        let g = loop {
            match self.golden.step(&mut none) {
                StepOutcome::Committed(g) => break g,
                StepOutcome::Stalled => continue,
                StepOutcome::Halted => {
                    let d = Divergence {
                        field: "extra_commit_after_golden_halt",
                        cycle: rec.cycle,
                        pc: rec.pc,
                    };
                    self.divergence = Some(d.clone());
                    return Some(d);
                }
            }
        };
        let field: Option<&'static str> = if g.pc != rec.pc {
            Some("pc")
        } else if g.raw != rec.raw {
            Some("instruction_bits")
        } else if g.wb != rec.wb {
            Some("writeback")
        } else if g.flag_write != rec.flag_write {
            Some("flag")
        } else if g.next_pc != rec.next_pc {
            Some("next_pc")
        } else if !mem_matches(&g, rec) {
            Some("memory_access")
        } else {
            None
        };
        if let Some(field) = field {
            let d = Divergence { field, cycle: rec.cycle, pc: rec.pc };
            self.divergence = Some(d.clone());
            return Some(d);
        }
        None
    }
}

fn mem_matches(g: &CommitRecord, o: &CommitRecord) -> bool {
    match (&g.mem, &o.mem) {
        (None, None) => true,
        (Some(a), Some(b)) => {
            a.is_store == b.is_store
                && a.addr == b.addr
                && a.word_addr_row == b.word_addr_row
                && a.value == b.value
                && a.store_merged == b.store_merged
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_isa::encode::encode;
    use argus_isa::instr::{AluImmOp, AluOp, Instr};
    use argus_isa::reg::{r, Reg};
    use argus_machine::{MachineConfig, StepOutcome};
    use argus_sim::fault::{Fault, FaultKind, SiteFlavor};

    fn program() -> Vec<u32> {
        [
            Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 5 },
            Instr::Alu { op: AluOp::Add, rd: r(4), ra: r(3), rb: r(3) },
            Instr::Alu { op: AluOp::Xor, rd: r(5), ra: r(4), rb: r(3) },
            Instr::Halt,
        ]
        .iter()
        .map(encode)
        .collect()
    }

    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig::default());
        m.load_code(0, &program());
        m
    }

    #[test]
    fn clean_run_never_diverges() {
        let m0 = machine();
        let mut m = m0.clone();
        let mut ideal = IdealChecker::new(m0);
        let mut inj = FaultInjector::none();
        loop {
            match m.step(&mut inj) {
                StepOutcome::Committed(rec) => {
                    assert_eq!(ideal.on_commit(&rec), None);
                }
                StepOutcome::Stalled => {}
                StepOutcome::Halted => break,
            }
        }
        assert!(ideal.divergence().is_none());
    }

    #[test]
    fn any_architectural_corruption_diverges() {
        let m0 = machine();
        let mut m = m0.clone();
        let mut ideal = IdealChecker::new(m0);
        let mut inj = FaultInjector::with_fault(Fault {
            site: argus_machine::sites::ALU_ADDER_OUT,
            bit: 0,
            kind: FaultKind::Permanent,
            arm_cycle: 0,
            flavor: SiteFlavor::Single,
            width: 32,
            sensitization: 1.0,
        });
        let mut diverged = false;
        loop {
            match m.step(&mut inj) {
                StepOutcome::Committed(rec) => {
                    if ideal.on_commit(&rec).is_some() {
                        diverged = true;
                        break;
                    }
                }
                StepOutcome::Stalled => {}
                StepOutcome::Halted => break,
            }
        }
        assert!(diverged, "ideal checker must catch a corrupted writeback");
        assert_eq!(ideal.divergence().unwrap().field, "writeback");
    }

    #[test]
    fn masked_fault_never_diverges() {
        // MUL_HI corruption is architecturally invisible in this core.
        let mut m = Machine::new(MachineConfig::default());
        let prog: Vec<u32> = [
            Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 5 },
            Instr::MulDiv { op: argus_isa::instr::MulDivOp::Mulu, rd: r(4), ra: r(3), rb: r(3) },
            Instr::Halt,
        ]
        .iter()
        .map(encode)
        .collect();
        m.load_code(0, &prog);
        let m0 = m.clone();
        let mut ideal = IdealChecker::new(m0);
        let mut inj = FaultInjector::with_fault(Fault {
            site: argus_machine::sites::MUL_HI,
            bit: 9,
            kind: FaultKind::Permanent,
            arm_cycle: 0,
            flavor: SiteFlavor::Single,
            width: 32,
            sensitization: 1.0,
        });
        loop {
            match m.step(&mut inj) {
                StepOutcome::Committed(rec) => {
                    // aux_result is microarchitectural; the ideal checker
                    // compares only architectural effects.
                    assert_eq!(ideal.on_commit(&rec), None);
                }
                StepOutcome::Stalled => {}
                StepOutcome::Halted => break,
            }
        }
    }

    #[test]
    fn latches_after_first_divergence() {
        let m0 = machine();
        let mut ideal = IdealChecker::new(m0.clone());
        // Hand a fabricated record with a wrong pc.
        let mut m = m0;
        let mut inj = FaultInjector::none();
        let rec = match m.step(&mut inj) {
            StepOutcome::Committed(mut rec) => {
                rec.pc = 0xBAD0;
                rec
            }
            other => panic!("unexpected {other:?}"),
        };
        let d1 = ideal.on_commit(&rec).unwrap();
        assert_eq!(d1.field, "pc");
        let d2 = ideal.on_commit(&rec).unwrap();
        assert_eq!(d1, d2, "divergence latches");
    }
}
