//! State History Signatures (§3.2.2).
//!
//! Every architectural location — the 32 registers, the program counter,
//! memory (as one aggregate), and the compare flag — carries a small
//! signature describing *how* its current value was created: the operation
//! identifiers and input histories involved, but never the data values.
//! Signatures are reset to location-specific initial values at the start of
//! every basic block; the DCS folds them all together at the end.
//!
//! The same engine is used by the runtime checker (fed with effective
//! register indices from commit records, under fault injection) and by the
//! compiler (fed with canonical indices, fault-free) — by construction the
//! two agree exactly on error-free executions.

use crate::sites;
use argus_isa::encode::op_token;
use argus_isa::instr::Instr;
use argus_isa::reg::Reg;
use argus_sim::crc::Crc;
use argus_sim::fault::FaultInjector;

/// Initial-value salt for the PC signature.
const PC_INIT: u32 = 0x05;
/// Initial-value salt for the memory signature.
const MEM_INIT: u32 = 0x0B;
/// Initial-value salt for the flag signature.
const FLAG_INIT: u32 = 0x13;
/// Symbol mixed into a link-register write so it differs from the PC write
/// of the same jump.
const LINK_SALT: u32 = 0x1D;

/// The per-location signature file (the paper's 160-bit wide SHS register,
/// plus PC/memory/flag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShsFile {
    width: u32,
    regs: [u32; 32],
    pc: u32,
    mem: u32,
    flag: u32,
}

impl ShsFile {
    /// Creates a file with all locations at their initial values.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside 3–8.
    pub fn new(width: u32) -> Self {
        assert!((3..=8).contains(&width), "SHS width {width} outside 3..=8");
        let mut f = Self { width, regs: [0; 32], pc: 0, mem: 0, flag: 0 };
        f.reset();
        f
    }

    /// Signature width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Flattens the file into state words (external serialization; the
    /// inverse of [`ShsFile::from_state_words`]).
    pub fn state_words(&self) -> Vec<u64> {
        let mut v = vec![self.width as u64];
        v.extend(self.regs.iter().map(|&r| r as u64));
        v.push(self.pc as u64);
        v.push(self.mem as u64);
        v.push(self.flag as u64);
        v
    }

    /// Rebuilds a file from [`ShsFile::state_words`] output; `None` when
    /// the words are malformed.
    pub fn from_state_words(ws: &[u64]) -> Option<Self> {
        if ws.len() != 36 {
            return None;
        }
        let width = u32::try_from(ws[0]).ok()?;
        if !(3..=8).contains(&width) {
            return None;
        }
        let mut regs = [0u32; 32];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = u32::try_from(ws[1 + i]).ok()?;
        }
        Some(Self {
            width,
            regs,
            pc: u32::try_from(ws[33]).ok()?,
            mem: u32::try_from(ws[34]).ok()?,
            flag: u32::try_from(ws[35]).ok()?,
        })
    }

    /// Folds every signature into `mix` (checker state fingerprints).
    pub fn fold_state(&self, mix: &mut dyn FnMut(u64)) {
        mix(self.width as u64);
        for &r in &self.regs {
            mix(r as u64);
        }
        mix(self.pc as u64);
        mix(self.mem as u64);
        mix(self.flag as u64);
    }

    fn mask(&self) -> u32 {
        (1 << self.width) - 1
    }

    /// Resets every location to its initial value (performed in parallel at
    /// each basic-block boundary; the paper sizes the signature at 5 bits
    /// precisely so each of the 32 registers gets a unique initial value).
    pub fn reset(&mut self) {
        let mask = self.mask();
        for (i, r) in self.regs.iter_mut().enumerate() {
            *r = i as u32 & mask;
        }
        self.pc = PC_INIT & self.mask();
        self.mem = MEM_INIT & self.mask();
        self.flag = FLAG_INIT & self.mask();
    }

    /// The signature of a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[usize::from(r)]
    }

    /// Overwrites a register's signature (tests and fault modeling).
    pub fn set_reg(&mut self, r: Reg, sig: u32) {
        self.regs[usize::from(r)] = sig & self.mask();
    }

    /// The PC signature.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// The memory signature.
    pub fn mem(&self) -> u32 {
        self.mem
    }

    /// The flag signature.
    pub fn flag(&self) -> u32 {
        self.flag
    }

    /// All 35 signatures in canonical order (r0..r31, pc, mem, flag), as
    /// consumed by the DCS unit.
    pub fn all(&self) -> [u32; 35] {
        let mut out = [0u32; 35];
        out[..32].copy_from_slice(&self.regs);
        out[32] = self.pc;
        out[33] = self.mem;
        out[34] = self.flag;
        out
    }
}

/// Seed of the hard-wired substitution box (a design constant shared by
/// compiler and checker).
const SBOX_SEED: u64 = 0x5B0C_5EED;

/// The SHS update unit: one CRC per functional unit in hardware, one shared
/// engine here.
///
/// The update is CRC absorption followed by a hard-wired substitution box.
/// A pure CRC update is *affine* (`U(s, x) = A·s ⊕ B·x ⊕ c`), and
/// self-referential dataflow of the form `x ← x op f(x)` — the inner loop
/// of every hash and PRNG — composes two affine images of the same
/// signature, so the corruption-difference map becomes `B(A ⊕ B)`, which is
/// singular for CRC5: a wrong-operand error whose signature difference lies
/// in the kernel is *systematically* cancelled, not 1-in-2^w aliased. The
/// substitution layer (a few gates per SHS unit) removes the algebraic
/// structure and restores ordinary aliasing behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShsEngine {
    crc: Crc,
    /// `crc_tab[(state << width) | symbol]` = `crc.update(state, symbol)`.
    /// The bit-serial CRC costs `width` dependent-branch iterations per
    /// symbol and runs on every commit; the state space is only
    /// `2^width ≤ 256`, so the whole transition function fits in one small
    /// table and an update becomes a single load.
    crc_tab: Vec<u32>,
    /// `step_tab[(state << width) | symbol]` = `sbox[crc.update(state,
    /// symbol)]` — the CRC transition fused with the substitution layer,
    /// the exact step [`ShsEngine::update`] performs per input.
    step_tab: Vec<u32>,
}

impl ShsEngine {
    /// Creates an engine with the given signature width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside 3–8.
    pub fn new(width: u32) -> Self {
        let crc = Crc::new(width);
        let sbox: Vec<u32> =
            argus_sim::rng::seeded_permutation(SBOX_SEED ^ width as u64, 1 << width)
                .into_iter()
                .map(|v| v as u32)
                .collect();
        let n = 1usize << width;
        let mut crc_tab = vec![0u32; n * n];
        let mut step_tab = vec![0u32; n * n];
        for state in 0..n {
            for symbol in 0..n {
                let next = crc.update(state as u32, symbol as u32);
                crc_tab[(state << width) | symbol] = next;
                step_tab[(state << width) | symbol] = sbox[next as usize];
            }
        }
        if argus_sim::canary::enabled("canary-shs-stale-table-row") {
            // Seeded bug: one fused-table row holds a stale transition.
            // Both live updates and static recomputation read the same
            // corrupted table, so the campaign stays self-consistent —
            // only the table-vs-reference invariant can notice.
            let row = n / 2;
            for symbol in 0..n {
                step_tab[(row << width) | symbol] ^= 1;
            }
        }
        Self { crc, crc_tab, step_tab }
    }

    /// Recomputes both fused tables from first principles (the bit-serial
    /// CRC and the seeded substitution box) and compares every entry
    /// against the tables in use. The invariant registry calls this on
    /// sampled block boundaries to catch silent table corruption.
    pub fn verify_tables(&self) -> Result<(), String> {
        let width = self.crc.width();
        let sbox: Vec<u32> =
            argus_sim::rng::seeded_permutation(SBOX_SEED ^ width as u64, 1 << width)
                .into_iter()
                .map(|v| v as u32)
                .collect();
        let n = 1usize << width;
        for state in 0..n {
            for symbol in 0..n {
                let ix = (state << width) | symbol;
                let next = self.crc.update(state as u32, symbol as u32);
                if self.crc_tab[ix] != next {
                    return Err(format!(
                        "crc_tab[{state},{symbol}] = {} but reference CRC gives {next}",
                        self.crc_tab[ix]
                    ));
                }
                let stepped = sbox[next as usize];
                if self.step_tab[ix] != stepped {
                    return Err(format!(
                        "step_tab[{state},{symbol}] = {} but reference CRC+sbox gives {stepped}",
                        self.step_tab[ix]
                    ));
                }
            }
        }
        Ok(())
    }

    /// Signature width in bits.
    pub fn width(&self) -> u32 {
        self.crc.width()
    }

    /// The operation identifier fed into every update: a hash of the
    /// instruction's semantic bits (opcode, sub-opcode, condition,
    /// immediates — register numbers excluded). Table-driven equivalent of
    /// `crc.fold_word(0, op_token(instr))`.
    pub fn op_sym(&self, instr: &Instr) -> u32 {
        let width = self.crc.width();
        let mask = self.crc.mask();
        let mut s = 0u32;
        let mut w = op_token(instr);
        let mut bits = 32u32;
        while bits > 0 {
            s = self.crc_tab[((s as usize) << width) | (w & mask) as usize];
            w >>= width;
            bits = bits.saturating_sub(width);
        }
        s
    }

    fn update(&self, op_sym: u32, inputs: &[u32], inj: &mut FaultInjector) -> u32 {
        let width = self.crc.width();
        let mask = self.crc.mask();
        let mut s = self.step_tab[(op_sym & mask) as usize];
        for &i in inputs {
            s = self.step_tab[((s as usize) << width) | (i & mask) as usize];
        }
        inj.tap32(sites::SHS_CRC_OUT, s) & mask
    }

    /// Applies one committed instruction to the signature file.
    ///
    /// `srcs` are the *effective* source registers the datapath actually
    /// read (in operand order); `dest` is the *effective* destination
    /// register actually written. In fault-free execution these equal the
    /// instruction's canonical fields; under a fault they may differ, which
    /// is exactly what perturbs the DCS.
    pub fn apply(
        &self,
        file: &mut ShsFile,
        instr: &Instr,
        srcs: &[Option<Reg>],
        dest: Option<Reg>,
        inj: &mut FaultInjector,
    ) {
        self.apply_with_sym(file, self.op_sym(instr), instr, srcs, dest, inj);
    }

    /// [`Self::apply`] with the operation symbol already computed.
    ///
    /// `op_sym` is a pure function of the instruction, so callers that see
    /// the same instruction repeatedly (the checker replays loops millions
    /// of times) can memoize it; `sym` must equal `self.op_sym(instr)`.
    pub fn apply_with_sym(
        &self,
        file: &mut ShsFile,
        sym: u32,
        instr: &Instr,
        srcs: &[Option<Reg>],
        dest: Option<Reg>,
        inj: &mut FaultInjector,
    ) {
        let op = sym;
        let mask = file.mask();
        let nsrc = instr.sources().len();
        let mut input_buf = [0u32; 2];
        for (k, sig) in input_buf.iter_mut().enumerate().take(nsrc) {
            *sig = srcs
                .get(k)
                .copied()
                .flatten()
                .map(|r| inj.tap32(sites::SHS_FILE_CELL, file.reg(r)) & mask)
                .unwrap_or(0);
        }
        let inputs = &input_buf[..nsrc.min(2)];

        match instr {
            Instr::Alu { .. }
            | Instr::Ext { .. }
            | Instr::MulDiv { .. }
            | Instr::AluImm { .. }
            | Instr::ShiftImm { .. }
            | Instr::Movhi { .. }
            | Instr::Load { .. } => {
                let out = self.update(op, inputs, inj);
                if let Some(d) = dest {
                    if d != Reg::ZERO {
                        file.regs[usize::from(d)] = out;
                    }
                }
            }
            Instr::Store { .. } => {
                // SHS_mem ← hash(prior SHS_mem, store output SHS): preserves
                // the history of every prior store in the block.
                let out = self.update(op, inputs, inj);
                let prior = file.mem;
                file.mem = self.update(out, &[prior], inj);
            }
            Instr::SetFlag { .. } | Instr::SetFlagImm { .. } => {
                file.flag = self.update(op, inputs, inj);
            }
            Instr::Branch { .. } => {
                let f = file.flag;
                file.pc = self.update(op, &[f], inj);
            }
            Instr::Jump { link, .. } => {
                file.pc = self.update(op, &[], inj);
                if *link {
                    let out = self.update(op, &[LINK_SALT & file.mask()], inj);
                    let d = dest.unwrap_or(Reg::LR);
                    if d != Reg::ZERO {
                        file.regs[usize::from(d)] = out;
                    }
                }
            }
            Instr::JumpReg { link, .. } => {
                let rb = inputs.first().copied().unwrap_or(0);
                file.pc = self.update(op, &[rb], inj);
                if *link {
                    let out = self.update(op, &[rb, LINK_SALT & file.mask()], inj);
                    let d = dest.unwrap_or(Reg::LR);
                    if d != Reg::ZERO {
                        file.regs[usize::from(d)] = out;
                    }
                }
            }
            Instr::Nop | Instr::Sig { .. } | Instr::Halt => {}
        }
    }

    /// Convenience for static (compiler-side) evaluation: canonical
    /// indices, no faults.
    pub fn apply_static(&self, file: &mut ShsFile, instr: &Instr) {
        let srcs: Vec<Option<Reg>> = instr.sources().into_iter().map(Some).collect();
        self.apply(file, instr, &srcs, instr.dest(), &mut FaultInjector::none());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_isa::instr::{AluImmOp, AluOp, Cond, MemSize};
    use argus_isa::reg::r;

    fn add(rd: u8, ra: u8, rb: u8) -> Instr {
        Instr::Alu { op: AluOp::Add, rd: r(rd), ra: r(ra), rb: r(rb) }
    }

    #[test]
    fn initial_values_unique_per_register_at_width_5() {
        let f = ShsFile::new(5);
        let mut seen = std::collections::HashSet::new();
        for reg in Reg::all() {
            assert!(seen.insert(f.reg(reg)), "duplicate init for {reg}");
        }
    }

    #[test]
    fn reset_restores_initials() {
        let e = ShsEngine::new(5);
        let mut f = ShsFile::new(5);
        e.apply_static(&mut f, &add(1, 2, 3));
        assert_ne!(f.reg(r(1)), 1);
        f.reset();
        assert_eq!(f.reg(r(1)), 1);
        assert_eq!(f.all().len(), 35);
    }

    #[test]
    fn update_depends_on_operation_not_values() {
        // Same dataflow, different op → different signature.
        let e = ShsEngine::new(5);
        let mut fa = ShsFile::new(5);
        let mut fb = ShsFile::new(5);
        e.apply_static(&mut fa, &add(1, 2, 3));
        e.apply_static(&mut fb, &Instr::Alu { op: AluOp::Sub, rd: r(1), ra: r(2), rb: r(3) });
        assert_ne!(fa.reg(r(1)), fb.reg(r(1)));
    }

    #[test]
    fn update_depends_on_source_history() {
        let e = ShsEngine::new(5);
        let mut fa = ShsFile::new(5);
        let mut fb = ShsFile::new(5);
        e.apply_static(&mut fa, &add(1, 2, 3));
        e.apply_static(&mut fb, &add(1, 2, 4)); // different source register
        assert_ne!(fa.reg(r(1)), fb.reg(r(1)));
    }

    #[test]
    fn immediates_are_part_of_the_operation() {
        let e = ShsEngine::new(5);
        let mut fa = ShsFile::new(5);
        let mut fb = ShsFile::new(5);
        e.apply_static(&mut fa, &Instr::AluImm { op: AluImmOp::Addi, rd: r(1), ra: r(2), imm: 5 });
        e.apply_static(&mut fb, &Instr::AluImm { op: AluImmOp::Addi, rd: r(1), ra: r(2), imm: 6 });
        assert_ne!(fa.reg(r(1)), fb.reg(r(1)), "immediate corruption must perturb SHS");
    }

    #[test]
    fn store_history_accumulates() {
        // Two stores must leave a different SHS_mem than either alone, and
        // order must matter.
        let e = ShsEngine::new(5);
        let st1 = Instr::Store { size: MemSize::Word, ra: r(1), rb: r(2), off: 0 };
        let st2 = Instr::Store { size: MemSize::Word, ra: r(3), rb: r(4), off: 4 };
        let mut f12 = ShsFile::new(5);
        e.apply_static(&mut f12, &st1);
        let after_one = f12.mem();
        e.apply_static(&mut f12, &st2);
        let mut f21 = ShsFile::new(5);
        e.apply_static(&mut f21, &st2);
        e.apply_static(&mut f21, &st1);
        assert_ne!(f12.mem(), after_one, "second store must change SHS_mem");
        assert_ne!(f12.mem(), f21.mem(), "store order must matter");
    }

    #[test]
    fn branch_consumes_flag_history() {
        let e = ShsEngine::new(5);
        let mut fa = ShsFile::new(5);
        let mut fb = ShsFile::new(5);
        // Different compare conditions → different SHS_flag → different SHS_pc.
        e.apply_static(&mut fa, &Instr::SetFlag { cond: Cond::Eq, ra: r(1), rb: r(2) });
        e.apply_static(&mut fb, &Instr::SetFlag { cond: Cond::Ne, ra: r(1), rb: r(2) });
        let br = Instr::Branch { taken_if: true, off: 4 };
        e.apply_static(&mut fa, &br);
        e.apply_static(&mut fb, &br);
        assert_ne!(fa.pc(), fb.pc(), "a decode error on the compare must surface in SHS_pc");
    }

    #[test]
    fn link_and_pc_signatures_differ() {
        let e = ShsEngine::new(5);
        let mut f = ShsFile::new(5);
        e.apply_static(&mut f, &Instr::Jump { link: true, off: 16 });
        assert_ne!(f.pc(), f.reg(Reg::LR));
    }

    #[test]
    fn writes_to_r0_are_dropped() {
        let e = ShsEngine::new(5);
        let mut f = ShsFile::new(5);
        e.apply_static(&mut f, &add(0, 2, 3));
        assert_eq!(f.reg(Reg::ZERO), 0, "SHS of r0 must stay at its initial value");
    }

    #[test]
    fn effective_destination_overrides_canonical() {
        // A write-address fault steers the SHS to the register actually
        // written — the DCS then sees the wrong assignment.
        let e = ShsEngine::new(5);
        let mut f_ok = ShsFile::new(5);
        let mut f_bad = ShsFile::new(5);
        let i = add(1, 2, 3);
        let srcs = [Some(r(2)), Some(r(3))];
        e.apply(&mut f_ok, &i, &srcs, Some(r(1)), &mut FaultInjector::none());
        e.apply(&mut f_bad, &i, &srcs, Some(r(7)), &mut FaultInjector::none());
        assert_ne!(f_ok.all(), f_bad.all());
        assert_eq!(f_bad.reg(r(1)), 1, "r1 keeps its init value");
    }

    #[test]
    fn all_widths_work() {
        for w in 3..=8 {
            let e = ShsEngine::new(w);
            let mut f = ShsFile::new(w);
            e.apply_static(&mut f, &add(1, 2, 3));
            assert!(f.reg(r(1)) < (1 << w));
        }
    }
}
