//! The Dataflow and Control Signature (DCS) computation (§3.2.2).
//!
//! At the end of a basic block, all 35 SHSs (32 registers + PC + memory +
//! flag) are run through a hard-wired bit permutation and an XOR tree that
//! folds them into one `width`-bit DCS. The permutation makes the DCS
//! depend not only on the *set* of signatures present but also on the
//! *assignment* of signatures to registers, so a result written to the
//! wrong register still perturbs the DCS.

use crate::shs::ShsFile;
use argus_sim::rng::SplitMix64;

/// Fixed seed of the hard-wired permutation (a design constant of the
/// checker hardware, identical in the compiler and the runtime checker).
const PERMUTATION_SEED: u64 = 0xA56_0B17;

/// The DCS permutation + XOR-tree unit.
///
/// The permutation is block-structured: each of the 35 locations gets its
/// own fixed bijection from signature bits to XOR-tree output bits. This
/// gives two properties the checker needs: flipping any single stored
/// signature bit flips exactly one DCS bit (no cancellation inside one
/// location), and two locations have different bit-to-output wirings, so
/// the DCS depends on the *assignment* of signatures to registers, not
/// just on the set of signatures present.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DcsUnit {
    width: u32,
    /// `map[loc][bit]` = XOR-tree output bit for signature bit `bit` of
    /// location `loc`.
    map: Vec<Vec<u8>>,
    /// `tab[(loc << width) | sig]` = the permuted XOR-tree contribution of
    /// location `loc` holding signature `sig`. The bitwise permutation
    /// costs `width` branchy iterations per location and runs at every
    /// block end; a signature is at most 8 bits, so each location's whole
    /// bijection fits in a 2^width-entry table and the fold becomes 35
    /// loads XORed together.
    tab: Vec<u32>,
}

impl DcsUnit {
    /// Builds the unit for a signature width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside 3–8.
    pub fn new(width: u32) -> Self {
        assert!((3..=8).contains(&width), "DCS width {width} outside 3..=8");
        let mut rng = SplitMix64::new(PERMUTATION_SEED ^ width as u64);
        let map: Vec<Vec<u8>> = (0..35)
            .map(|_| {
                let mut bits: Vec<u8> = (0..width as u8).collect();
                rng.shuffle(&mut bits);
                bits
            })
            .collect();
        let n = 1usize << width;
        let mut tab = vec![0u32; 35 * n];
        for (loc, bits) in map.iter().enumerate() {
            for sig in 0..n {
                let mut out = 0u32;
                for (bit, &obit) in bits.iter().enumerate() {
                    if (sig >> bit) & 1 == 1 {
                        out ^= 1 << obit;
                    }
                }
                tab[(loc << width) | sig] = out;
            }
        }
        Self { width, map, tab }
    }

    /// Signature width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Folds a signature file into its DCS.
    ///
    /// # Panics
    ///
    /// Panics if the file's width differs from the unit's.
    pub fn compute(&self, file: &ShsFile) -> u32 {
        assert_eq!(file.width(), self.width, "SHS/DCS width mismatch");
        let width = self.width;
        let mask = (1u32 << width) - 1;
        let sigs = file.all();
        let mut out = 0u32;
        for (loc, &sig) in sigs.iter().enumerate() {
            out ^= self.tab[(loc << width) | (sig & mask) as usize];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shs::ShsEngine;
    use argus_isa::instr::{AluOp, Instr};
    use argus_isa::reg::r;
    use argus_sim::fault::FaultInjector;

    fn add(rd: u8, ra: u8, rb: u8) -> Instr {
        Instr::Alu { op: AluOp::Add, rd: r(rd), ra: r(ra), rb: r(rb) }
    }

    #[test]
    fn deterministic_and_in_range() {
        let u = DcsUnit::new(5);
        let f = ShsFile::new(5);
        let d = u.compute(&f);
        assert_eq!(d, u.compute(&f));
        assert!(d < 32);
    }

    #[test]
    fn same_sequence_same_dcs() {
        let u = DcsUnit::new(5);
        let e = ShsEngine::new(5);
        let mut fa = ShsFile::new(5);
        let mut fb = ShsFile::new(5);
        for i in [add(1, 2, 3), add(4, 1, 1), add(5, 4, 2)] {
            e.apply_static(&mut fa, &i);
            e.apply_static(&mut fb, &i);
        }
        assert_eq!(u.compute(&fa), u.compute(&fb));
    }

    #[test]
    fn dcs_depends_on_register_assignment() {
        // The key property the permutation provides: writing a signature to
        // the wrong register must (almost always — 5-bit aliasing exists by
        // design) change the DCS.
        let u = DcsUnit::new(5);
        let e = ShsEngine::new(5);
        let i = add(1, 2, 3);
        let srcs = [Some(r(2)), Some(r(3))];
        let mut base = ShsFile::new(5);
        e.apply(&mut base, &i, &srcs, Some(r(1)), &mut FaultInjector::none());
        let base_dcs = u.compute(&base);
        let mut differing = 0;
        let mut total = 0;
        for wrong in 2..32u8 {
            let mut f = ShsFile::new(5);
            e.apply(&mut f, &i, &srcs, Some(r(wrong)), &mut FaultInjector::none());
            total += 1;
            if u.compute(&f) != base_dcs {
                differing += 1;
            }
        }
        assert!(
            differing as f64 / total as f64 > 0.85,
            "wrong-destination writes aliased too often: {differing}/{total}"
        );
    }

    #[test]
    fn dcs_distinguishes_most_single_instruction_changes() {
        // Aliasing exists by design (5-bit signature) but must be rare:
        // across many single-op perturbations of a block, the overwhelming
        // majority must produce a different DCS.
        let u = DcsUnit::new(5);
        let e = ShsEngine::new(5);
        let mut base = ShsFile::new(5);
        for i in [add(1, 2, 3), add(4, 1, 5), add(6, 4, 1)] {
            e.apply_static(&mut base, &i);
        }
        let base_dcs = u.compute(&base);
        let mut alias = 0;
        let mut total = 0;
        for rd in 1..16u8 {
            for rb in 1..16u8 {
                if (rd, rb) == (6, 1) {
                    continue;
                }
                let mut f = ShsFile::new(5);
                e.apply_static(&mut f, &add(1, 2, 3));
                e.apply_static(&mut f, &add(4, 1, 5));
                e.apply_static(&mut f, &add(rd, 4, rb));
                total += 1;
                if u.compute(&f) == base_dcs {
                    alias += 1;
                }
            }
        }
        let rate = alias as f64 / total as f64;
        assert!(rate < 0.10, "alias rate {rate} too high for a 5-bit DCS");
    }

    #[test]
    fn wider_signatures_alias_less() {
        // The ablation claim: increasing signature width reduces aliasing.
        let alias_rate = |w: u32| {
            let u = DcsUnit::new(w);
            let e = ShsEngine::new(w);
            let mut base = ShsFile::new(w);
            e.apply_static(&mut base, &add(1, 2, 3));
            let base_dcs = u.compute(&base);
            let mut alias = 0;
            let mut total = 0;
            for rd in 1..32u8 {
                for ra in 0..32u8 {
                    if (rd, ra) == (1, 2) {
                        continue;
                    }
                    let mut f = ShsFile::new(w);
                    e.apply_static(&mut f, &add(rd, ra, 3));
                    total += 1;
                    if u.compute(&f) == base_dcs {
                        alias += 1;
                    }
                }
            }
            alias as f64 / total as f64
        };
        assert!(alias_rate(8) < alias_rate(3) + 0.02);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        DcsUnit::new(5).compute(&ShsFile::new(6));
    }

    #[test]
    fn every_signature_bit_influences_dcs() {
        // The guaranteed property of the permutation + XOR tree: flipping
        // any single stored signature bit flips exactly one DCS bit.
        let u = DcsUnit::new(5);
        let base = ShsFile::new(5);
        let base_dcs = u.compute(&base);
        for reg in 1..32u8 {
            for bit in 0..5 {
                let mut f = ShsFile::new(5);
                f.set_reg(r(reg), f.reg(r(reg)) ^ (1 << bit));
                let d = u.compute(&f);
                assert_ne!(d, base_dcs, "bit {bit} of r{reg} invisible to DCS");
                assert_eq!((d ^ base_dcs).count_ones(), 1, "single source bit → single DCS bit");
            }
        }
    }
}
