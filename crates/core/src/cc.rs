//! Computation sub-checkers (§3.3).
//!
//! One sub-checker per functional unit, each performing a redundant
//! computation from the *same operand signals the functional unit consumed*
//! and comparing against the observed result:
//!
//! * [`adder`] — the carry-check adder checker (also emulates the bitwise
//!   logic operations, e.g. a full adder acts as XOR with carry-in tied
//!   to 0), and checks compares, branch targets and load/store addresses.
//! * [`rsse`] — the right-shift + sign-extend unit checking all shifts,
//!   extensions, and the alignment of sub-word loads.
//! * [`modm`] — the Mersenne mod-M residue checker for the multiplier and
//!   divider (`[(A mod M)·(B mod M)] mod M = Product mod M`; division is
//!   checked as `B·Q ≡ A − R (mod M)` with the same hardware).
//!
//! Because operand buses fan out to both the FU and its sub-checker, a
//! single operand-bus fault corrupts both consistently and is *not* caught
//! here — that is parity's job. What the sub-checkers catch is corruption
//! *inside* the functional units.

pub mod adder {
    //! Adder/logic/compare/address sub-checker.

    use crate::sites;
    use argus_isa::instr::{AluOp, Cond};
    use argus_sim::fault::FaultInjector;

    /// Recomputes an adder/logic-unit operation and compares with the
    /// observed result. Returns `true` when the observed result is accepted.
    pub fn check_alu(op: AluOp, a: u32, b: u32, observed: u32, inj: &mut FaultInjector) -> bool {
        // Shifts are the RSSE's responsibility; accept here. (Logic ops
        // are emulated on the adder's full-adder cells in hardware; the
        // fault independence of this redundant computation is modeled by
        // the CC_ADDER_OUT tap, so the reference semantics are shared.)
        if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
            return true;
        }
        let recomputed = argus_machine::exec::alu(op, a, b);
        inj.tap32(sites::CC_ADDER_OUT, recomputed) == observed
    }

    /// Checks a flag-setting compare (a subtract on the same checker).
    pub fn check_compare(
        cond: Cond,
        a: u32,
        b: u32,
        observed: bool,
        inj: &mut FaultInjector,
    ) -> bool {
        inj.tap1(sites::CC_CMP_OUT, cond.eval(a, b)) == observed
    }

    /// Checks an effective-address computation (`base + offset`).
    pub fn check_addr(base: u32, off: i16, observed: u32, inj: &mut FaultInjector) -> bool {
        let recomputed = base.wrapping_add(off as i32 as u32);
        inj.tap32(sites::CC_ADDER_OUT, recomputed) == observed
    }

    /// Checks a PC-relative branch/jump target (`pc + 4·off`).
    pub fn check_target(pc: u32, off: i32, observed: u32, inj: &mut FaultInjector) -> bool {
        let recomputed = pc.wrapping_add((off as u32) << 2);
        inj.tap32(sites::CC_ADDER_OUT, recomputed) == observed
    }
}

pub mod rsse {
    //! Right-Shift + Sign-Extend checker (§3.3.1).

    use crate::sites;
    use argus_isa::instr::{ExtKind, MemSize, ShiftOp};
    use argus_sim::fault::FaultInjector;

    /// Checks a shift of `a` by `sh` that produced `observed`.
    ///
    /// Right shifts are replayed directly. A left shift is checked by
    /// shifting the *result* back to the right and comparing against the
    /// input bits that were not shifted off the end, plus verifying the
    /// vacated low bits are zero.
    pub fn check_shift(
        op: ShiftOp,
        a: u32,
        sh: u32,
        observed: u32,
        inj: &mut FaultInjector,
    ) -> bool {
        let sh = sh & 31;
        match op {
            ShiftOp::Srl => inj.tap32(sites::CC_RSSE_OUT, a.wrapping_shr(sh)) == observed,
            ShiftOp::Sra => {
                inj.tap32(sites::CC_RSSE_OUT, ((a as i32).wrapping_shr(sh)) as u32) == observed
            }
            ShiftOp::Sll => {
                let back = inj.tap32(sites::CC_RSSE_OUT, observed.wrapping_shr(sh));
                let mask = if sh == 0 { u32::MAX } else { u32::MAX >> sh };
                let low_ok = sh == 0 || observed & ((1u32 << sh) - 1) == 0;
                back == (a & mask) && low_ok
            }
        }
    }

    /// Checks a sign/zero extension (a zero-bit right shift followed by the
    /// sign extender).
    pub fn check_ext(kind: ExtKind, a: u32, observed: u32, inj: &mut FaultInjector) -> bool {
        let recomputed = argus_machine::exec::extend(kind, a);
        inj.tap32(sites::CC_RSSE_OUT, recomputed) == observed
    }

    /// Checks the re-alignment of a sub-word store: replays the
    /// read-modify-write merge from the old memory word and the store data
    /// (as delivered on the checker's operand bus) and compares against the
    /// word actually written.
    pub fn check_merge(
        old_word: u32,
        byte_off: u32,
        size: MemSize,
        data: u32,
        observed_merged: u32,
        inj: &mut FaultInjector,
    ) -> bool {
        let recomputed = argus_machine::exec::merge_store(old_word, byte_off, size, data);
        inj.tap32(sites::CC_RSSE_OUT, recomputed) == observed_merged
    }

    /// Checks the alignment + extension of a sub-word load: replays the
    /// shift/extend from the raw memory word and compares.
    pub fn check_align(
        raw_word: u32,
        byte_off: u32,
        size: MemSize,
        signed: bool,
        observed: u32,
        inj: &mut FaultInjector,
    ) -> bool {
        let recomputed = argus_machine::exec::align_load(raw_word, byte_off, size, signed);
        inj.tap32(sites::CC_RSSE_OUT, recomputed) == observed
    }
}

pub mod modm {
    //! Mod-M residue checker for multiply/divide (§3.3.2, Figure 4).

    use crate::sites;
    use argus_sim::fault::FaultInjector;

    fn residue(x: i128, m: u32) -> u32 {
        x.rem_euclid(m as i128) as u32
    }

    /// Checks a multiplication: `[(A mod M)·(B mod M)] mod M` must equal
    /// the residue of the full 64-bit product observed on the datapath
    /// (`hi:lo`). `signed` selects the operand interpretation.
    ///
    /// Faults that change the product by a multiple of `M` alias — the
    /// small, quantifiable escape probability the paper accepts.
    pub fn check_mul(
        m: u32,
        signed: bool,
        a: u32,
        b: u32,
        lo: u32,
        hi: u32,
        inj: &mut FaultInjector,
    ) -> bool {
        let (ra, rb) = if signed {
            (residue(a as i32 as i128, m), residue(b as i32 as i128, m))
        } else {
            (residue(a as i128, m), residue(b as i128, m))
        };
        let lhs = inj.tap32(sites::CC_MOD_OUT, (ra as u64 * rb as u64 % m as u64) as u32);
        let full = ((hi as u64) << 32) | lo as u64;
        let rhs = if signed { residue(full as i64 as i128, m) } else { residue(full as i128, m) };
        lhs == inj.tap32(sites::CC_MOD_OUT, rhs)
    }

    /// Checks a division via `B·Q ≡ A − R (mod M)` on the same hardware
    /// (inputs muxed, remainder negated).
    ///
    /// The product is formed in the datapath's wrapping 32-bit arithmetic:
    /// for every legal division `B·Q = A − R` exactly (no overflow), and
    /// the one wrapping case — the divider's defined `i32::MIN / −1 =
    /// i32::MIN` result — then satisfies the congruence instead of raising
    /// a false positive.
    pub fn check_div(
        m: u32,
        signed: bool,
        a: u32,
        b: u32,
        q: u32,
        r: u32,
        inj: &mut FaultInjector,
    ) -> bool {
        let prod = b.wrapping_mul(q);
        let diff = a.wrapping_sub(r);
        let (sp, sd) = if signed {
            (prod as i32 as i128, diff as i32 as i128)
        } else {
            (prod as i128, diff as i128)
        };
        let lhs = inj.tap32(sites::CC_MOD_OUT, residue(sp, m));
        let rhs = inj.tap32(sites::CC_MOD_OUT, residue(sd, m));
        lhs == rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_isa::instr::{AluOp, Cond, ExtKind, MemSize, ShiftOp};
    use argus_sim::fault::FaultInjector;
    use proptest::prelude::*;

    fn inj() -> FaultInjector {
        FaultInjector::none()
    }

    #[test]
    fn adder_accepts_correct_and_rejects_corrupt() {
        for op in [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor] {
            let good = crate::cc::test_support::alu_ref(op, 0x1234, 0x5678);
            assert!(adder::check_alu(op, 0x1234, 0x5678, good, &mut inj()));
            for b in [0, 7, 31] {
                assert!(
                    !adder::check_alu(op, 0x1234, 0x5678, good ^ (1 << b), &mut inj()),
                    "{op:?} bit {b}"
                );
            }
        }
    }

    #[test]
    fn adder_delegates_shifts() {
        assert!(adder::check_alu(AluOp::Sll, 1, 1, 0xDEAD, &mut inj()));
    }

    #[test]
    fn compare_checker() {
        assert!(adder::check_compare(Cond::Lts, 1, 2, true, &mut inj()));
        assert!(!adder::check_compare(Cond::Lts, 1, 2, false, &mut inj()));
    }

    #[test]
    fn address_and_target_checkers() {
        assert!(adder::check_addr(0x100, -4, 0xFC, &mut inj()));
        assert!(!adder::check_addr(0x100, -4, 0x100, &mut inj()));
        assert!(adder::check_target(0x40, 3, 0x4C, &mut inj()));
        assert!(!adder::check_target(0x40, 3, 0x50, &mut inj()));
    }

    #[test]
    fn rsse_right_shifts_and_extensions() {
        assert!(rsse::check_shift(ShiftOp::Srl, 0xF0, 4, 0x0F, &mut inj()));
        assert!(!rsse::check_shift(ShiftOp::Srl, 0xF0, 4, 0x1F, &mut inj()));
        assert!(rsse::check_shift(ShiftOp::Sra, 0x8000_0000, 4, 0xF800_0000, &mut inj()));
        assert!(rsse::check_ext(ExtKind::Bs, 0x80, 0xFFFF_FF80, &mut inj()));
        assert!(!rsse::check_ext(ExtKind::Bs, 0x80, 0x80, &mut inj()));
    }

    #[test]
    fn rsse_left_shift_check_catches_both_sides() {
        let a = 0x8001_0003u32;
        let good = a << 8;
        assert!(rsse::check_shift(ShiftOp::Sll, a, 8, good, &mut inj()));
        // corruption in the surviving bits
        assert!(!rsse::check_shift(ShiftOp::Sll, a, 8, good ^ (1 << 20), &mut inj()));
        // corruption in the vacated low bits
        assert!(!rsse::check_shift(ShiftOp::Sll, a, 8, good | 1, &mut inj()));
        // zero-amount shift
        assert!(rsse::check_shift(ShiftOp::Sll, a, 0, a, &mut inj()));
    }

    #[test]
    fn rsse_merge_checker() {
        let old = 0x4433_2211u32;
        let data = 0xFFFF_FFAAu32;
        // Correct merges are accepted.
        assert!(rsse::check_merge(old, 1, MemSize::Byte, data, 0x4433_AA11, &mut inj()));
        assert!(rsse::check_merge(old, 2, MemSize::Half, data, 0xFFAA_2211, &mut inj()));
        assert!(rsse::check_merge(old, 0, MemSize::Word, data, data, &mut inj()));
        // A corrupted merged word is rejected, whether the corruption is in
        // the inserted bytes or in the preserved neighbours.
        assert!(!rsse::check_merge(old, 1, MemSize::Byte, data, 0x4433_AB11, &mut inj()));
        assert!(!rsse::check_merge(old, 1, MemSize::Byte, data, 0x4432_AA11, &mut inj()));
        // Corrupted *store data* (bus fault downstream of the checker's
        // operand copy) is also rejected.
        assert!(!rsse::check_merge(old, 1, MemSize::Byte, data ^ 0x10, 0x4433_AA11, &mut inj()));
    }

    #[test]
    fn rsse_align_checker() {
        let w = 0x4433_2211u32;
        assert!(rsse::check_align(w, 1, MemSize::Byte, false, 0x22, &mut inj()));
        assert!(!rsse::check_align(w, 1, MemSize::Byte, false, 0x11, &mut inj()));
        assert!(rsse::check_align(w, 2, MemSize::Half, true, 0x4433, &mut inj()));
        assert!(rsse::check_align(w, 0, MemSize::Word, false, w, &mut inj()));
    }

    #[test]
    fn modm_accepts_correct_products() {
        let (a, b) = (123_456u32, 789u32);
        let full = a as u64 * b as u64;
        assert!(modm::check_mul(31, false, a, b, full as u32, (full >> 32) as u32, &mut inj()));
        let (sa, sb) = (-5i32 as u32, 7u32);
        let sfull = (-35i64) as u64;
        assert!(modm::check_mul(31, true, sa, sb, sfull as u32, (sfull >> 32) as u32, &mut inj()));
    }

    #[test]
    fn modm_rejects_most_corruptions_but_aliases_multiples_of_m() {
        let (a, b) = (1000u32, 77u32);
        let full = a as u64 * b as u64;
        // +1 is detected
        let bad = full + 1;
        assert!(!modm::check_mul(31, false, a, b, bad as u32, (bad >> 32) as u32, &mut inj()));
        // +31 aliases (the documented escape)
        let alias = full + 31;
        assert!(modm::check_mul(31, false, a, b, alias as u32, (alias >> 32) as u32, &mut inj()));
    }

    #[test]
    fn modm_div_identity_and_rejection() {
        assert!(modm::check_div(31, false, 100, 7, 14, 2, &mut inj()));
        assert!(!modm::check_div(31, false, 100, 7, 15, 2, &mut inj()));
        // signed: -100 / 7 = -14 rem -2
        assert!(modm::check_div(
            31,
            true,
            -100i32 as u32,
            7,
            -14i32 as u32,
            -2i32 as u32,
            &mut inj()
        ));
        // div-by-zero convention: q = !0, r = a  →  b·q = 0 = a − r.
        assert!(modm::check_div(31, false, 55, 0, u32::MAX, 55, &mut inj()));
        // The divider's wrapping corner: i32::MIN / −1 = i32::MIN rem 0
        // must not raise a false positive.
        assert!(modm::check_div(31, true, 0x8000_0000, u32::MAX, 0x8000_0000, 0, &mut inj()));
    }

    proptest! {
        #[test]
        fn modm_never_rejects_correct_mul(a in any::<u32>(), b in any::<u32>(), signed in any::<bool>()) {
            let full = if signed {
                ((a as i32 as i64) * (b as i32 as i64)) as u64
            } else {
                a as u64 * b as u64
            };
            prop_assert!(modm::check_mul(31, signed, a, b, full as u32, (full >> 32) as u32, &mut inj()));
        }

        #[test]
        fn modm_never_rejects_correct_div(a in any::<u32>(), b in 1u32..) {
            prop_assert!(modm::check_div(31, false, a, b, a / b, a % b, &mut inj()));
        }

        #[test]
        fn rsse_never_rejects_correct_shifts(a in any::<u32>(), sh in 0u32..32) {
            prop_assert!(rsse::check_shift(ShiftOp::Sll, a, sh, a.wrapping_shl(sh), &mut inj()));
            prop_assert!(rsse::check_shift(ShiftOp::Srl, a, sh, a.wrapping_shr(sh), &mut inj()));
            prop_assert!(rsse::check_shift(ShiftOp::Sra, a, sh, ((a as i32).wrapping_shr(sh)) as u32, &mut inj()));
        }

        #[test]
        fn adder_detects_any_single_bit_result_error(a in any::<u32>(), b in any::<u32>(), bit in 0u32..32) {
            let good = a.wrapping_add(b);
            prop_assert!(!adder::check_alu(AluOp::Add, a, b, good ^ (1 << bit), &mut inj()));
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use argus_isa::instr::AluOp;

    pub fn alu_ref(op: AluOp, a: u32, b: u32) -> u32 {
        argus_machine::exec::alu(op, a, b)
    }
}
