//! Checkpoint/rollback recovery (§1, §4.4).
//!
//! Argus only *detects*; the paper assumes a backward-error-recovery
//! substrate (it cites SafetyNet) that restores a pre-error checkpoint
//! once a checker fires — which is also why Argus-1 never needs to stall
//! the pipeline. This module supplies that substrate for the simulator:
//! a [`CheckpointedRun`] snapshots the whole machine every N committed
//! instructions and, on detection, rolls back to the last checkpoint and
//! re-executes. A transient fault has expired by then and the replay
//! succeeds; a permanent fault trips the checker again and again until the
//! retry budget is exhausted, which a real system would escalate to
//! reconfiguration or decommissioning.

use crate::argus::Argus;
use crate::config::{ArgusConfig, DetectionEvent};
use argus_machine::{Machine, StepOutcome};
use argus_sim::fault::FaultInjector;

/// Outcome of a checkpointed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// The program completed; `recoveries` rollbacks were needed.
    Completed {
        /// Number of rollbacks performed.
        recoveries: u32,
    },
    /// Detections kept recurring — a permanent fault this substrate cannot
    /// outrun.
    Unrecoverable {
        /// Rollbacks attempted before giving up.
        attempts: u32,
        /// The last detection.
        last: DetectionEvent,
    },
    /// The cycle budget ran out without `halt`.
    Timeout,
}

/// Configuration for [`CheckpointedRun`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Commit interval between checkpoints.
    pub checkpoint_interval: u64,
    /// Rollbacks before declaring the fault unrecoverable.
    pub max_recoveries: u32,
    /// Total cycle budget across all attempts.
    pub max_cycles: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self { checkpoint_interval: 256, max_recoveries: 8, max_cycles: 50_000_000 }
    }
}

/// Runs a machine under the checker with checkpoint/rollback recovery.
///
/// The caller provides the loaded machine, the checker configuration and
/// the entry DCS; the injector carries whatever fault is being studied.
pub fn run_with_recovery(
    machine: Machine,
    acfg: ArgusConfig,
    entry_dcs: u32,
    inj: &mut FaultInjector,
    rcfg: RecoveryConfig,
) -> (Machine, RecoveryOutcome) {
    let fresh_checker = |dcs: u32| {
        let mut a = Argus::new(acfg);
        a.expect_entry(dcs);
        a
    };
    // The checkpoint captures machine AND checker state (the checker's
    // expectations are block-aligned, so both must roll back together).
    let mut checkpoint = (machine.clone(), fresh_checker(entry_dcs));
    let mut m = machine;
    let mut argus = fresh_checker(entry_dcs);
    let mut since_checkpoint = 0u64;
    let mut recoveries = 0u32;
    let mut budget_used = 0u64;

    loop {
        let before = m.cycle();
        let outcome = m.step(inj);
        budget_used += m.cycle() - before;
        if budget_used > rcfg.max_cycles {
            return (m, RecoveryOutcome::Timeout);
        }
        let detection = match outcome {
            StepOutcome::Committed(rec) => {
                since_checkpoint += 1;
                let evs = argus.on_commit(&rec, inj);
                let first = evs.into_iter().next();
                // Checkpoints are taken at block boundaries so the rolled-
                // back checker restarts with consistent expectations.
                if first.is_none() && rec.block_end && since_checkpoint >= rcfg.checkpoint_interval
                {
                    checkpoint = (m.clone(), argus.clone());
                    since_checkpoint = 0;
                }
                first
            }
            StepOutcome::Stalled => argus.on_stall(1, inj),
            StepOutcome::Halted => {
                return (m, RecoveryOutcome::Completed { recoveries });
            }
        };
        if let Some(ev) = detection {
            recoveries += 1;
            if recoveries > rcfg.max_recoveries {
                return (m, RecoveryOutcome::Unrecoverable { attempts: recoveries - 1, last: ev });
            }
            let (cm, ca) = checkpoint.clone();
            m = cm;
            argus = ca;
            since_checkpoint = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_machine::MachineConfig;
    use argus_sim::fault::{Fault, FaultKind, SiteFlavor};

    /// A loop-heavy raw program (no compiler dependency in this crate's
    /// unit tests): sum 1..=200 with signatures hand-omitted — so we run
    /// with DCS checking disabled and rely on the computation checker,
    /// which is exactly what the ALU-fault scenarios below exercise.
    fn machine() -> (Machine, u32) {
        use argus_isa::encode::encode;
        use argus_isa::instr::{AluImmOp, AluOp, Cond, Instr};
        use argus_isa::reg::{r, Reg};
        let prog: Vec<u32> = [
            Instr::AluImm { op: AluImmOp::Ori, rd: r(3), ra: Reg::ZERO, imm: 0 },
            Instr::AluImm { op: AluImmOp::Ori, rd: r(4), ra: Reg::ZERO, imm: 1 },
            Instr::AluImm { op: AluImmOp::Ori, rd: r(5), ra: Reg::ZERO, imm: 200 },
            Instr::Alu { op: AluOp::Add, rd: r(3), ra: r(3), rb: r(4) },
            Instr::AluImm { op: AluImmOp::Addi, rd: r(4), ra: r(4), imm: 1 },
            Instr::SetFlag { cond: Cond::Leu, ra: r(4), rb: r(5) },
            Instr::Branch { taken_if: true, off: -3 },
            Instr::Nop,
            Instr::Halt,
        ]
        .iter()
        .map(encode)
        .collect();
        let mut m = Machine::new(MachineConfig::default());
        m.load_code(0, &prog);
        (m, 0)
    }

    fn cc_only() -> ArgusConfig {
        ArgusConfig { enable_dcs: false, ..Default::default() }
    }

    #[test]
    fn clean_run_completes_without_recovery() {
        let (m, dcs) = machine();
        let (m, out) = run_with_recovery(
            m,
            cc_only(),
            dcs,
            &mut FaultInjector::none(),
            RecoveryConfig::default(),
        );
        assert_eq!(out, RecoveryOutcome::Completed { recoveries: 0 });
        assert_eq!(m.reg(argus_isa::Reg::new(3)), 20100);
    }

    #[test]
    fn transient_alu_fault_is_outrun_by_rollback() {
        let (m, dcs) = machine();
        let mut inj = FaultInjector::with_fault(Fault {
            site: argus_machine::sites::ALU_ADDER_OUT,
            bit: 6,
            kind: FaultKind::Transient,
            arm_cycle: 150,
            flavor: SiteFlavor::Single,
            width: 32,
            sensitization: 1.0,
        });
        let (m, out) = run_with_recovery(
            m,
            cc_only(),
            dcs,
            &mut inj,
            RecoveryConfig { checkpoint_interval: 16, ..Default::default() },
        );
        match out {
            RecoveryOutcome::Completed { recoveries } => {
                assert!(recoveries >= 1, "the fault must have forced a rollback");
            }
            other => panic!("expected completion, got {other:?}"),
        }
        assert_eq!(
            m.reg(argus_isa::Reg::new(3)),
            20100,
            "recovered execution must produce the correct result"
        );
    }

    #[test]
    fn permanent_alu_fault_is_unrecoverable() {
        let (m, dcs) = machine();
        let mut inj = FaultInjector::with_fault(Fault {
            site: argus_machine::sites::ALU_ADDER_OUT,
            bit: 6,
            kind: FaultKind::Permanent,
            arm_cycle: 150,
            flavor: SiteFlavor::Single,
            width: 32,
            sensitization: 1.0,
        });
        let (_, out) = run_with_recovery(
            m,
            cc_only(),
            dcs,
            &mut inj,
            RecoveryConfig { checkpoint_interval: 16, max_recoveries: 4, ..Default::default() },
        );
        match out {
            RecoveryOutcome::Unrecoverable { attempts, .. } => assert_eq!(attempts, 4),
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }
}
