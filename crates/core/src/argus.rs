//! The assembled Argus-1 checker.
//!
//! [`Argus`] consumes the commit stream of an `argus_machine::Machine` and
//! runs all four invariant checkers over it, raising [`DetectionEvent`]s.
//! The intended wiring is:
//!
//! ```text
//! loop {
//!     match machine.step(&mut inj) {
//!         Committed(rec) => for ev in argus.on_commit(&rec, &mut inj) { ... },
//!         Stalled        => if let Some(ev) = argus.on_stall(1, &mut inj) { ... },
//!         Halted         => break,
//!     }
//! }
//! ```

use crate::cc;
use crate::cfc::Cfc;
use crate::config::{ArgusConfig, CheckerKind, DetectionEvent};
use crate::dcs::DcsUnit;
use crate::shs::{ShsEngine, ShsFile};
use crate::sites;
use crate::watchdog::Watchdog;
use argus_isa::instr::Instr;
use argus_isa::split_indirect_target;
use argus_isa::INDIRECT_ADDR_MASK;
use argus_machine::commit::CommitRecord;
use argus_machine::exec;
use argus_machine::{BlockCommit, BlockGate, BlockPlan};
use argus_sim::bits::{parity32, sign_extend};
use argus_sim::bitstream::BitStream;
use argus_sim::fault::FaultInjector;

/// The Argus-1 runtime checker.
#[derive(Debug, Clone)]
pub struct Argus {
    cfg: ArgusConfig,
    engine: ShsEngine,
    file: ShsFile,
    dcs: DcsUnit,
    cfc: Cfc,
    watchdog: Watchdog,
    events: Vec<DetectionEvent>,
    /// Direct-mapped memo for [`ShsEngine::op_sym`], keyed by pc and
    /// validated against the exact committed instruction. `op_sym` folds
    /// the instruction's re-encoded semantic token through the CRC —
    /// too expensive to redo on every trip around a hot loop, and a pure
    /// function of the instruction, so a hit validated by `Instr` equality
    /// is bit-exact even when a fault corrupts decode. Not part of
    /// [`ArgusState`]: a stale entry can only miss, never lie.
    op_memo: Vec<OpMemoEntry>,
    /// Direct-mapped memo of per-block static facts for the batched
    /// checking path ([`Argus::on_block`]), keyed by (block address, plan
    /// words hash): the block's static DCS and its parsed successor slots.
    /// Pure functions of the block's program words, so — like `op_memo` —
    /// not part of [`ArgusState`], and a stale entry can only miss.
    block_memo: Vec<BlockMemoEntry>,
}

#[derive(Debug, Clone, Copy)]
struct OpMemoEntry {
    pc: u32,
    instr: Instr,
    sym: u32,
}

#[derive(Debug, Clone, Copy)]
struct BlockMemoEntry {
    addr: u32,
    words_hash: u64,
    /// `DcsUnit::compute` over the block's statically-replayed SHS file
    /// (unmasked; the caller taps and masks at use).
    static_dcs: u32,
    /// Embedded slot 0 / slot 1 as parsed at the block's CTI (the bit
    /// stream accumulated through the CTI, zero-padded).
    slot_taken: u32,
    slot_fall: u32,
    /// Embedded slot 0 as parsed at block end (fall-through successor).
    slot0_full: u32,
}

/// Size of the direct-mapped `op_sym` memo (slots; must be a power of two).
/// 512 four-byte-aligned pcs cover the hot loops of every bundled workload.
const OP_MEMO_SLOTS: usize = 512;

/// Size of the direct-mapped block memo (slots; must be a power of two).
const BLOCK_MEMO_SLOTS: usize = 256;

/// The checker's mutable state, captured for snapshot/restore.
///
/// The SHS engine (CRC + sbox tables) and the DCS unit (permutation map)
/// are pure functions of [`ArgusConfig`] and never change after
/// construction, so they are not captured: restore targets an `Argus`
/// built with the same configuration and only overwrites what evolves
/// during a run — the signature file, the control-flow checker, the
/// watchdog counter, and the detection log.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgusState {
    /// The live per-location signature file.
    pub file: ShsFile,
    /// Control-flow checker state (expected DCS, block bits, flag shadow).
    pub cfc: Cfc,
    /// Watchdog counter state.
    pub watchdog: Watchdog,
    /// Detections raised so far, in order.
    pub events: Vec<DetectionEvent>,
}

impl argus_machine::SnapshotState for Argus {
    type State = ArgusState;

    fn capture_state(&self) -> ArgusState {
        ArgusState {
            file: self.file.clone(),
            cfc: self.cfc.clone(),
            watchdog: self.watchdog.clone(),
            events: self.events.clone(),
        }
    }

    /// # Panics
    ///
    /// Panics if the state was captured under a different signature width
    /// (the immutable engine/DCS tables would disagree with the restored
    /// file).
    fn restore_state(&mut self, state: &ArgusState) {
        assert_eq!(
            state.file.width(),
            self.cfg.sig_width,
            "checker state captured under a different signature width"
        );
        self.file = state.file.clone();
        self.cfc = state.cfc.clone();
        self.watchdog = state.watchdog.clone();
        self.events = state.events.clone();
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = argus_machine::snapshot::Fnv64::new();
        let mut mix = |v: u64| h.mix(v);
        self.file.fold_state(&mut mix);
        self.cfc.fold_state(&mut mix);
        self.watchdog.fold_state(&mut mix);
        mix(self.events.len() as u64);
        for ev in &self.events {
            mix(match ev.checker {
                CheckerKind::Computation => 0,
                CheckerKind::Parity => 1,
                CheckerKind::Dcs => 2,
                CheckerKind::Watchdog => 3,
            });
            for b in ev.reason.bytes() {
                mix(b as u64);
            }
            mix(ev.cycle);
            mix(ev.pc as u64);
        }
        h.finish()
    }
}

impl Argus {
    /// Builds the checker.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ArgusConfig::validate`]).
    pub fn new(cfg: ArgusConfig) -> Self {
        cfg.validate();
        let engine = ShsEngine::new(cfg.sig_width);
        // Seed slots satisfy the memo invariant (`sym == op_sym(instr)`)
        // from the start, so a lookup never needs a validity flag: the pc
        // sentinel is unmatchable (instruction fetch is word-aligned) and
        // even a pathological match would return the correct symbol.
        let seed = Instr::Movhi { rd: argus_isa::reg::Reg::ZERO, imm: 0 };
        let seed = OpMemoEntry { pc: u32::MAX, instr: seed, sym: engine.op_sym(&seed) };
        Self {
            cfg,
            engine,
            file: ShsFile::new(cfg.sig_width),
            dcs: DcsUnit::new(cfg.sig_width),
            cfc: Cfc::new(cfg.max_block_len),
            watchdog: Watchdog::new(cfg.watchdog_bits),
            events: Vec::new(),
            op_memo: vec![seed; OP_MEMO_SLOTS],
            // The address sentinel is unmatchable (block entries are
            // word-aligned), so no validity flag is needed.
            block_memo: vec![
                BlockMemoEntry {
                    addr: u32::MAX,
                    words_hash: 0,
                    static_dcs: 0,
                    slot_taken: 0,
                    slot_fall: 0,
                    slot0_full: 0,
                };
                BLOCK_MEMO_SLOTS
            ],
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> ArgusConfig {
        self.cfg
    }

    /// All detections so far, in order.
    pub fn events(&self) -> &[DetectionEvent] {
        &self.events
    }

    /// The live SHS file (introspection for tests and tools).
    pub fn shs_file(&self) -> &crate::shs::ShsFile {
        &self.file
    }

    /// The control-flow checker state (invariant auditing).
    pub fn cfc(&self) -> &Cfc {
        &self.cfc
    }

    /// The liveness watchdog state (invariant auditing).
    pub fn watchdog(&self) -> &Watchdog {
        &self.watchdog
    }

    /// The DCS fold over the live SHS file (pure; invariant auditing).
    pub fn current_dcs(&self) -> u32 {
        self.dcs.compute(&self.file)
    }

    /// Verifies the fused SHS lookup tables against a from-scratch
    /// recomputation (see [`ShsEngine::verify_tables`]).
    pub fn verify_shs_tables(&self) -> Result<(), String> {
        self.engine.verify_tables()
    }

    /// Audits the operation-symbol memo: every cached entry must satisfy
    /// `sym == op_sym(instr)`, the property the memo fast path assumes.
    pub fn audit_op_memo(&self) -> Result<(), String> {
        for (slot, e) in self.op_memo.iter().enumerate() {
            let want = self.engine.op_sym(&e.instr);
            if e.sym != want {
                return Err(format!(
                    "op memo slot {slot} (pc {:#x}) caches symbol {} but op_sym gives {want}",
                    e.pc, e.sym
                ));
            }
        }
        Ok(())
    }

    /// Audits one compiled block: if its static facts are memoized, they
    /// must equal a fresh per-instruction SHS fold over the plan — the
    /// batched checking path must stay ≡ the per-step fold it replaced.
    pub fn audit_block_plan(&self, plan: &BlockPlan) -> Result<(), String> {
        let slot = ((plan.addr() >> 2) as usize) & (BLOCK_MEMO_SLOTS - 1);
        let hit = self.block_memo[slot];
        if hit.addr != plan.addr() || hit.words_hash != plan.words_hash() {
            return Ok(()); // not memoized: nothing to cross-check
        }
        let fresh = self.compute_block_facts(plan);
        if (fresh.static_dcs, fresh.slot_taken, fresh.slot_fall, fresh.slot0_full)
            != (hit.static_dcs, hit.slot_taken, hit.slot_fall, hit.slot0_full)
        {
            return Err(format!(
                "block memo for {:#x} diverges from per-step fold: memoized dcs {:#x} \
                 slots ({}, {}, {}) vs recomputed dcs {:#x} slots ({}, {}, {})",
                plan.addr(),
                hit.static_dcs,
                hit.slot_taken,
                hit.slot_fall,
                hit.slot0_full,
                fresh.static_dcs,
                fresh.slot_taken,
                fresh.slot_fall,
                fresh.slot0_full
            ));
        }
        Ok(())
    }

    /// Arms the checker with the entry block's DCS (carried by the loader's
    /// indirect jump into the binary), so the first basic block is verified
    /// like every other.
    pub fn expect_entry(&mut self, dcs: u32) {
        self.cfc.expect_entry(dcs);
    }

    /// Memory scrub (§4.2): sweeps the data region's words, verifying each
    /// word's parity over its address-decoded value. Bounds the otherwise
    /// arbitrary detection latency of EDC-protected memory. (Never-written
    /// words carry factory-valid EDC contents — see `Machine::new` — so
    /// the whole region is checkable.)
    ///
    /// Returns a Parity detection on the first corrupt word.
    pub fn scrub_memory(
        &mut self,
        m: &argus_machine::Machine,
        from_addr: u32,
        inj: &mut FaultInjector,
    ) -> Option<DetectionEvent> {
        if !self.cfg.enable_parity {
            return None;
        }
        let mem = m.mem().memory();
        let mut addr = from_addr & !3;
        while let Ok((payload, tag)) = mem.read(addr) {
            {
                let d = payload ^ addr;
                let ok = inj.tap1(sites::MFC_PARITY_CHECK, parity32(d) == tag);
                if !ok {
                    let ev = DetectionEvent {
                        checker: CheckerKind::Parity,
                        reason: "scrub_parity",
                        cycle: inj.cycle(),
                        pc: addr,
                    };
                    self.events.push(ev.clone());
                    return Some(ev);
                }
            }
            match addr.checked_add(4) {
                Some(a) => addr = a,
                None => break,
            }
        }
        None
    }

    /// [`Argus::scrub_memory`] restricted to pages written at or after
    /// generation `since_gen` (the fork point of a delta-restored
    /// workspace). Observationally identical to the full scrub: pages
    /// untouched since the fork still hold golden-run content, which
    /// carries valid EDC by construction, so skipping their checks can
    /// neither miss a detection nor change which word detects first. The
    /// one exception is a fault on the scrub's own parity comparator —
    /// its masking draws are per-exposure, so the tap count is observable
    /// — and that case falls back to the full sweep.
    pub fn scrub_memory_dirty(
        &mut self,
        m: &argus_machine::Machine,
        from_addr: u32,
        inj: &mut FaultInjector,
        since_gen: u64,
    ) -> Option<DetectionEvent> {
        if !self.cfg.enable_parity {
            return None;
        }
        if inj.targets_live_site(sites::MFC_PARITY_CHECK) {
            return self.scrub_memory(m, from_addr, inj);
        }
        let mem = m.mem().memory();
        let page_bytes = 4 * argus_mem::DIRTY_PAGE_WORDS as u32;
        for page in 0..mem.page_count() {
            if !mem.page_dirty_since(page, since_gen) {
                continue;
            }
            let mut addr = (page as u32 * page_bytes).max(from_addr & !3);
            let page_end = (page as u32 + 1) * page_bytes;
            while addr < page_end {
                let Ok((payload, tag)) = mem.read(addr) else { break };
                let d = payload ^ addr;
                let ok = inj.tap1(sites::MFC_PARITY_CHECK, parity32(d) == tag);
                if !ok {
                    let ev = DetectionEvent {
                        checker: CheckerKind::Parity,
                        reason: "scrub_parity",
                        cycle: inj.cycle(),
                        pc: addr,
                    };
                    self.events.push(ev.clone());
                    return Some(ev);
                }
                match addr.checked_add(4) {
                    Some(a) => addr = a,
                    None => return None,
                }
            }
        }
        None
    }

    /// The first detection, if any.
    pub fn first_detection(&self) -> Option<&DetectionEvent> {
        self.events.first()
    }

    /// Feeds `n` stalled cycles (no instruction committed).
    pub fn on_stall(&mut self, n: u32, inj: &mut FaultInjector) -> Option<DetectionEvent> {
        if !self.cfg.enable_watchdog {
            return None;
        }
        if self.watchdog.stall(n, inj) {
            let ev = DetectionEvent {
                checker: CheckerKind::Watchdog,
                reason: "liveness_timeout",
                cycle: inj.cycle(),
                pc: 0,
            };
            self.events.push(ev.clone());
            return Some(ev);
        }
        None
    }

    /// Runs all checkers over one committed instruction. Returns the events
    /// raised by this commit (also accumulated in [`Self::events`]).
    pub fn on_commit(
        &mut self,
        rec: &CommitRecord,
        inj: &mut FaultInjector,
    ) -> Vec<DetectionEvent> {
        let mut evs: Vec<DetectionEvent> = Vec::new();
        let push = |checker, reason: &'static str, evs: &mut Vec<DetectionEvent>| {
            evs.push(DetectionEvent { checker, reason, cycle: rec.cycle, pc: rec.pc });
        };

        // Liveness: stall cycles accumulated by this instruction, then the
        // commit itself counts as progress.
        if self.cfg.enable_watchdog {
            if rec.stall_cycles() > 0 && self.watchdog.stall(rec.stall_cycles(), inj) {
                push(CheckerKind::Watchdog, "liveness_timeout", &mut evs);
            }
            self.watchdog.progress();
        }

        // Computation sub-checkers (they also verify the compare result the
        // CFC's flag shadow depends on).
        if self.cfg.enable_cc {
            for reason in self.check_computation(rec, inj) {
                push(CheckerKind::Computation, reason, &mut evs);
            }
        }

        // Parity on operands read from the register file.
        if self.cfg.enable_parity {
            for op in &rec.operands {
                if op.reg.is_some() {
                    let tag = inj.tap1(sites::PARITY_RF_TAG, op.parity);
                    let ok = inj.tap1(sites::PARITY_CHECK, parity32(op.value) == tag);
                    if !ok {
                        push(CheckerKind::Parity, "operand_parity", &mut evs);
                    }
                }
            }
            // Memory checker: per-word parity over address-embedded data.
            if let Some(m) = &rec.mem {
                if !m.is_store
                    && !inj.tap1(sites::MFC_PARITY_CHECK, m.parity_ok)
                    && !argus_sim::canary::enabled("canary-parity-skip-loads")
                {
                    push(CheckerKind::Parity, "load_parity", &mut evs);
                }
            }
        }

        // Dataflow + control flow. The SHS write shares the register file's
        // write port: if the datapath performed no writeback, no signature
        // is written either — a dropped architectural write then leaves the
        // destination's SHS at odds with the static DCS, which is exactly
        // how the checker sees it.
        if self.cfg.enable_dcs {
            let mut srcs = [None; 2];
            for (s, o) in srcs.iter_mut().zip(rec.operands.iter()) {
                *s = o.reg;
            }
            let dest = rec.wb.map(|(r, _, _)| r);
            let slot = ((rec.pc >> 2) as usize) & (OP_MEMO_SLOTS - 1);
            let hit = self.op_memo[slot];
            let sym = if hit.pc == rec.pc && hit.instr == rec.op_shs {
                hit.sym
            } else {
                let s = self.engine.op_sym(&rec.op_shs);
                self.op_memo[slot] = OpMemoEntry { pc: rec.pc, instr: rec.op_shs, sym: s };
                s
            };
            self.engine.apply_with_sym(
                &mut self.file,
                sym,
                &rec.op_shs,
                &srcs[..rec.operands.len()],
                dest,
                inj,
            );

            if let Some(reason) = self.cfc.note_instr(rec.embedded_bits) {
                push(CheckerKind::Dcs, reason, &mut evs);
            }
            if let Some(v) = rec.flag_write {
                self.cfc.on_flag_write(v);
            }
            if let Some(b) = &rec.branch {
                self.cfc.on_cti(&rec.op_shs, b, inj);
            }
            if rec.block_end {
                let computed =
                    inj.tap32(sites::DCS_XOR_OUT, self.dcs.compute(&self.file)) & self.sig_mask();
                trace_dcs(rec.cycle, rec.pc, computed, self.cfc.expected());
                if let Some(exp) = self.cfc.finish_block(rec.in_delay_slot, inj) {
                    let exp = inj.tap32(sites::DCS_EXPECTED, exp) & self.sig_mask();
                    // Seeded bug: the halt-terminated final block's DCS
                    // comparison is dropped, so faults whose only witness
                    // is the last block go unreported.
                    let skip = argus_sim::canary::enabled("canary-dcs-skip-last-block")
                        && matches!(rec.op_shs, Instr::Halt);
                    if exp != computed && !skip {
                        push(CheckerKind::Dcs, "dcs_mismatch", &mut evs);
                    }
                }
                self.file.reset();
            }
        }

        self.events.extend(evs.iter().cloned());
        evs
    }

    /// Whether a planned block may be checked in one batched step
    /// ([`Argus::on_block`]) instead of per-commit. All of these must hold,
    /// or the caller has to drive the block through the one-step
    /// interpreter + [`Argus::on_commit`]:
    ///
    /// * no fault has ever flipped state (`inj` pristine): the machine is
    ///   on its golden trajectory, so every per-op computation and operand
    ///   parity check is provably silent and only the block-level checks
    ///   (static DCS, successor hand-off, out-of-range load parity) carry
    ///   information;
    /// * the plan is canonical (`argus_simple`: one CTI right before the
    ///   delay slot, or none) and store-free, so its execution is
    ///   guaranteed complete and the slot-parse order is static;
    /// * the block respects the CFC length bound (a longer block must
    ///   raise `block_length_exceeded` per-op);
    /// * the watchdog is idle and no single op can stall it to saturation;
    /// * the CFC sits exactly at a block boundary.
    pub fn block_ready(&self, gate: &BlockGate, inj: &FaultInjector) -> bool {
        if inj.first_flip_cycle().is_some() {
            return false;
        }
        if !gate.argus_simple || gate.has_store || gate.len > self.cfg.max_block_len {
            return false;
        }
        if self.cfg.enable_watchdog
            && (self.watchdog.count() != 0
                || self.watchdog.tripped()
                || gate.max_op_stall >= self.watchdog.threshold())
        {
            return false;
        }
        if self.cfg.enable_dcs && !self.cfc.at_block_boundary() {
            return false;
        }
        true
    }

    /// Batched equivalent of [`Argus::on_commit`] over one whole compiled
    /// block, valid only under [`Argus::block_ready`]'s preconditions. On a
    /// pristine trajectory the per-op checks are silent by construction, so
    /// only the block-granular work remains: the static-DCS comparison
    /// against the inherited expectation, the successor-DCS selection, the
    /// flag-shadow and watchdog hand-off, and parity on any out-of-range
    /// load — bit-identical, events included, to feeding every commit
    /// record one at a time.
    pub fn on_block(
        &mut self,
        plan: &BlockPlan,
        commit: &BlockCommit,
        inj: &mut FaultInjector,
    ) -> Vec<DetectionEvent> {
        debug_assert!(commit.complete, "on_block requires a complete block execution");
        let mut evs: Vec<DetectionEvent> = Vec::new();

        // Per-op: stall(n) then progress() on every commit; from an idle
        // counter with every op's stall below threshold, the net effect is
        // exactly one reset.
        if self.cfg.enable_watchdog {
            self.watchdog.progress();
        }

        // The only parity check that can carry information on a golden
        // trajectory: a load outside main memory observes the fallback
        // word, whose clear tag may mismatch.
        if self.cfg.enable_parity {
            for o in &commit.oob_loads {
                if !inj.tap1(sites::MFC_PARITY_CHECK, o.parity_ok) {
                    evs.push(DetectionEvent {
                        checker: CheckerKind::Parity,
                        reason: "load_parity",
                        cycle: o.end_cycle,
                        pc: o.pc,
                    });
                }
            }
        }

        if self.cfg.enable_dcs {
            let memo = self.block_memo(plan);
            // Successor selection, exactly as Cfc::on_cti/finish_block
            // would: the CFC parses only the slot it selects.
            let next = if commit.ended_by_cti {
                match plan.instr(plan.len().saturating_sub(2)) {
                    Instr::Branch { taken_if, .. } => {
                        // On a pristine run the CFC's flag shadow equals the
                        // machine flag the branch observed.
                        let shadow =
                            inj.tap1(sites::CFC_FLAG_SHADOW, commit.cti_flag.unwrap_or(false));
                        let slot =
                            if shadow == taken_if { memo.slot_taken } else { memo.slot_fall };
                        inj.tap32(sites::CFC_SLOT_PARSE, slot) & 31
                    }
                    Instr::Jump { .. } => inj.tap32(sites::CFC_SLOT_PARSE, memo.slot_taken) & 31,
                    Instr::JumpReg { .. } => commit.indirect_dcs.unwrap_or(0),
                    other => unreachable!("argus_simple block ends in a CTI, got {other:?}"),
                }
            } else {
                inj.tap32(sites::CFC_SLOT_PARSE, memo.slot0_full) & 31
            };
            let computed = inj.tap32(sites::DCS_XOR_OUT, memo.static_dcs) & self.sig_mask();
            trace_dcs(commit.end_cycle, commit.last_pc, computed, self.cfc.expected());
            if let Some(exp) = self.cfc.batch_block(next, commit.flag_after) {
                let exp = inj.tap32(sites::DCS_EXPECTED, exp) & self.sig_mask();
                if exp != computed {
                    evs.push(DetectionEvent {
                        checker: CheckerKind::Dcs,
                        reason: "dcs_mismatch",
                        cycle: commit.end_cycle,
                        pc: commit.last_pc,
                    });
                }
            }
            self.file.reset();
        }

        self.events.extend(evs.iter().cloned());
        evs
    }

    /// The memoized static facts of a compiled block: its static DCS (the
    /// per-op SHS applications replayed over a reset file — identical to
    /// the live application on a pristine run) and the successor slots as
    /// the CFC would parse them.
    fn block_memo(&mut self, plan: &BlockPlan) -> BlockMemoEntry {
        let slot = ((plan.addr() >> 2) as usize) & (BLOCK_MEMO_SLOTS - 1);
        let hit = self.block_memo[slot];
        if hit.addr == plan.addr() && hit.words_hash == plan.words_hash() {
            return hit;
        }
        let entry = self.compute_block_facts(plan);
        self.block_memo[slot] = entry;
        entry
    }

    /// The uncached per-step fold behind [`Argus::block_memo`]: replays the
    /// plan's instructions over a reset SHS file and parses the embedded
    /// slots. Pure, so the invariant registry can recompute and compare
    /// against the memoized entry ([`Argus::audit_block_plan`]).
    fn compute_block_facts(&self, plan: &BlockPlan) -> BlockMemoEntry {
        let mut file = ShsFile::new(self.cfg.sig_width);
        let mut bits = BitStream::new();
        let (mut slot_taken, mut slot_fall) = (0, 0);
        for i in 0..plan.len() {
            let instr = plan.instr(i);
            self.engine.apply_static(&mut file, &instr);
            bits.push_packed(plan.embedded(i));
            if instr.is_cti() {
                // Slots as visible when the CTI commits (bits collected so
                // far, zero-padded) — later ops may append more bits.
                slot_taken = bits.extract(0, 5) & 31;
                slot_fall = bits.extract(5, 5) & 31;
            }
        }
        BlockMemoEntry {
            addr: plan.addr(),
            words_hash: plan.words_hash(),
            static_dcs: self.dcs.compute(&file),
            slot_taken,
            slot_fall,
            slot0_full: bits.extract(0, 5) & 31,
        }
    }

    fn sig_mask(&self) -> u32 {
        (1 << self.cfg.sig_width.min(5)) - 1
    }

    fn check_computation(
        &mut self,
        rec: &CommitRecord,
        inj: &mut FaultInjector,
    ) -> Vec<&'static str> {
        let mut out = Vec::new();
        let opv = |k: usize| rec.operands.get(k).map(|o| o.value).unwrap_or(0);
        let result = rec.result.unwrap_or(0);
        let m = self.cfg.modulus;

        match rec.op_subchk {
            Instr::Alu { op, .. } => {
                use argus_isa::instr::{AluOp, ShiftOp};
                match op {
                    AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                        let sop = match op {
                            AluOp::Sll => ShiftOp::Sll,
                            AluOp::Srl => ShiftOp::Srl,
                            _ => ShiftOp::Sra,
                        };
                        if !cc::rsse::check_shift(sop, opv(0), opv(1) & 31, result, inj) {
                            out.push("rsse_shift_mismatch");
                        }
                    }
                    _ => {
                        if !cc::adder::check_alu(op, opv(0), opv(1), result, inj) {
                            out.push("adder_mismatch");
                        }
                    }
                }
            }
            Instr::AluImm { op, imm, .. } => {
                let b_eff = exec::alu_imm_operand(op, imm);
                if !cc::adder::check_alu(exec::alu_imm_base(op), opv(0), b_eff, result, inj) {
                    out.push("adder_mismatch");
                }
            }
            Instr::ShiftImm { op, sh, .. } => {
                if !cc::rsse::check_shift(op, opv(0), sh as u32, result, inj) {
                    out.push("rsse_shift_mismatch");
                }
            }
            Instr::Ext { kind, .. } => {
                if !cc::rsse::check_ext(kind, opv(0), result, inj) {
                    out.push("rsse_ext_mismatch");
                }
            }
            Instr::Movhi { imm, .. } => {
                if inj.tap32(sites::CC_ADDER_OUT, (imm as u32) << 16) != result {
                    out.push("movhi_mismatch");
                }
            }
            Instr::MulDiv { op, .. } => {
                use argus_isa::instr::MulDivOp;
                let aux = rec.aux_result.unwrap_or(0);
                let ok = match op {
                    MulDivOp::Mul => cc::modm::check_mul(m, true, opv(0), opv(1), result, aux, inj),
                    MulDivOp::Mulu => {
                        cc::modm::check_mul(m, false, opv(0), opv(1), result, aux, inj)
                    }
                    MulDivOp::Div => cc::modm::check_div(m, true, opv(0), opv(1), result, aux, inj),
                    MulDivOp::Divu => {
                        cc::modm::check_div(m, false, opv(0), opv(1), result, aux, inj)
                    }
                };
                if !ok {
                    out.push("modm_mismatch");
                }
            }
            Instr::SetFlag { cond, .. } => {
                if !cc::adder::check_compare(
                    cond,
                    opv(0),
                    opv(1),
                    rec.flag_write.unwrap_or(false),
                    inj,
                ) {
                    out.push("compare_mismatch");
                }
            }
            Instr::SetFlagImm { cond, imm, .. } => {
                let b = sign_extend(imm as u32, 16);
                if !cc::adder::check_compare(cond, opv(0), b, rec.flag_write.unwrap_or(false), inj)
                {
                    out.push("compare_mismatch");
                }
            }
            Instr::Branch { off, .. } => {
                if let Some(b) = &rec.branch {
                    if b.taken {
                        if let Some(t) = b.target {
                            if !cc::adder::check_target(rec.pc, off, t, inj) {
                                out.push("target_mismatch");
                            }
                        }
                    }
                }
            }
            Instr::Jump { off, link } => {
                if let Some(t) = rec.branch.as_ref().and_then(|b| b.target) {
                    if !cc::adder::check_target(rec.pc, off, t, inj) {
                        out.push("target_mismatch");
                    }
                }
                if link {
                    let ret = rec.pc.wrapping_add(8) & INDIRECT_ADDR_MASK;
                    let observed = result & INDIRECT_ADDR_MASK;
                    if inj.tap32(sites::CC_ADDER_OUT, ret) != observed {
                        out.push("link_mismatch");
                    }
                }
            }
            Instr::JumpReg { link, .. } => {
                if let Some(t) = rec.branch.as_ref().and_then(|b| b.target) {
                    let (addr, _) = split_indirect_target(opv(0));
                    if inj.tap32(sites::CC_ADDER_OUT, addr) != t {
                        out.push("target_mismatch");
                    }
                }
                if link {
                    let ret = rec.pc.wrapping_add(8) & INDIRECT_ADDR_MASK;
                    if inj.tap32(sites::CC_ADDER_OUT, ret) != result & INDIRECT_ADDR_MASK {
                        out.push("link_mismatch");
                    }
                }
            }
            Instr::Load { .. } | Instr::Store { .. } => {}
            Instr::Nop | Instr::Sig { .. } | Instr::Halt => {}
        }

        // Memory-side computation checks: effective address (adder) and
        // sub-word alignment (RSSE).
        if let Some(mm) = &rec.mem {
            if !cc::adder::check_addr(mm.base, mm.offset, mm.addr, inj) {
                out.push("addr_mismatch");
            }
            if !mm.is_store {
                let byte_off = exec::align_addr(mm.addr, mm.size) & 3;
                if !cc::rsse::check_align(mm.raw_word, byte_off, mm.size, mm.signed, mm.value, inj)
                {
                    out.push("align_mismatch");
                }
            } else if let Some(merged) = mm.store_merged {
                // Sub-word store re-alignment is the RSSE's job too (§3.4);
                // the store data is taken from the checker's copy of the
                // operand bus, upstream of the store-data bus.
                let byte_off = exec::align_addr(mm.addr, mm.size) & 3;
                let data = rec.operands.get(1).map(|o| o.value).unwrap_or(0);
                if !cc::rsse::check_merge(mm.raw_word, byte_off, mm.size, data, merged, inj) {
                    out.push("merge_mismatch");
                }
            }
        }
        out
    }
}

/// `ARGUS_TRACE_DCS=1` debug tracing of every block-boundary DCS compare
/// (shared by the per-commit and batched paths).
fn trace_dcs(cycle: u64, pc: u32, computed: u32, expected: Option<u32>) {
    static TRACE_DCS: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    if *TRACE_DCS.get_or_init(|| std::env::var_os("ARGUS_TRACE_DCS").is_some()) {
        eprintln!("[dcs] c{cycle} pc={pc:#x} computed={computed:#04x} expected={expected:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_isa::encode::encode;
    use argus_isa::instr::{AluImmOp, AluOp};
    use argus_isa::reg::{r, Reg};
    use argus_machine::{Machine, MachineConfig, StepOutcome};

    /// Computes the static DCS of a straight-line block (the compiler's
    /// side of the comparison), ending at a block boundary.
    fn static_dcs(block: &[Instr], cfg: &ArgusConfig) -> u32 {
        let engine = ShsEngine::new(cfg.sig_width);
        let dcs = DcsUnit::new(cfg.sig_width);
        let mut file = ShsFile::new(cfg.sig_width);
        for i in block {
            engine.apply_static(&mut file, i);
        }
        dcs.compute(&file)
    }

    /// Runs a program under Argus with no faults; returns events.
    fn run_clean(prog: &[Instr]) -> Vec<DetectionEvent> {
        let words: Vec<u32> = prog.iter().map(encode).collect();
        let mut m = Machine::new(MachineConfig::default());
        m.load_code(0, &words);
        let mut argus = Argus::new(ArgusConfig::default());
        let mut inj = FaultInjector::none();
        loop {
            match m.step(&mut inj) {
                StepOutcome::Committed(rec) => {
                    argus.on_commit(&rec, &mut inj);
                }
                StepOutcome::Stalled => {
                    argus.on_stall(1, &mut inj);
                }
                StepOutcome::Halted => break,
            }
            if m.cycle() > 100_000 {
                panic!("runaway test program");
            }
        }
        argus.events().to_vec()
    }

    fn two_block_program() -> Vec<Instr> {
        let cfg = ArgusConfig::default();
        // BB1: add + eob-Sig carrying DCS(BB1 body? no: slot0 = DCS of BB2).
        let bb2 = vec![Instr::Alu { op: AluOp::Add, rd: r(5), ra: r(3), rb: r(3) }, Instr::Halt];
        let d2 = static_dcs(&bb2, &cfg);
        let mut prog = vec![
            Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 21 },
            Instr::Sig { nslots: 1, eob: true, payload: d2 as u16 },
        ];
        prog.extend(bb2);
        prog
    }

    #[test]
    fn clean_two_block_run_has_no_false_positives() {
        let evs = run_clean(&two_block_program());
        assert!(evs.is_empty(), "false positives: {evs:?}");
    }

    #[test]
    fn wrong_embedded_dcs_is_detected() {
        let mut prog = two_block_program();
        // Corrupt the embedded successor DCS.
        if let Instr::Sig { payload, .. } = &mut prog[1] {
            *payload ^= 1;
        } else {
            panic!("expected Sig");
        }
        let evs = run_clean(&prog);
        assert!(
            evs.iter().any(|e| e.checker == CheckerKind::Dcs),
            "expected DCS mismatch, got {evs:?}"
        );
    }

    #[test]
    fn alu_internal_fault_detected_by_computation_checker() {
        use argus_machine::sites as msites;
        use argus_sim::fault::{Fault, FaultKind, SiteFlavor};
        let words: Vec<u32> = two_block_program().iter().map(encode).collect();
        let mut m = Machine::new(MachineConfig::default());
        m.load_code(0, &words);
        let mut argus = Argus::new(ArgusConfig::default());
        let mut inj = FaultInjector::with_fault(Fault {
            site: msites::ALU_ADDER_OUT,
            bit: 3,
            kind: FaultKind::Permanent,
            arm_cycle: 0,
            flavor: SiteFlavor::Single,
            width: 32,
            sensitization: 1.0,
        });
        loop {
            match m.step(&mut inj) {
                StepOutcome::Committed(rec) => {
                    argus.on_commit(&rec, &mut inj);
                }
                StepOutcome::Stalled => {
                    argus.on_stall(1, &mut inj);
                }
                StepOutcome::Halted => break,
            }
        }
        let first = argus.first_detection().expect("must detect");
        assert_eq!(first.checker, CheckerKind::Computation);
    }

    #[test]
    fn register_cell_fault_detected_by_parity() {
        use argus_machine::machine::RF_CELL_SITES;
        use argus_sim::fault::{Fault, FaultKind, SiteFlavor};
        let words: Vec<u32> = two_block_program().iter().map(encode).collect();
        let mut m = Machine::new(MachineConfig::default());
        m.load_code(0, &words);
        let mut argus = Argus::new(ArgusConfig::default());
        let mut inj = FaultInjector::with_fault(Fault {
            site: RF_CELL_SITES[3],
            bit: 7,
            kind: FaultKind::Permanent,
            arm_cycle: 0,
            flavor: SiteFlavor::Single,
            width: 32,
            sensitization: 1.0,
        });
        loop {
            match m.step(&mut inj) {
                StepOutcome::Committed(rec) => {
                    argus.on_commit(&rec, &mut inj);
                }
                StepOutcome::Stalled => {}
                StepOutcome::Halted => break,
            }
        }
        let first = argus.first_detection().expect("must detect");
        assert_eq!(first.checker, CheckerKind::Parity);
    }

    #[test]
    fn stall_fault_detected_by_watchdog() {
        use argus_machine::sites as msites;
        use argus_sim::fault::{Fault, FaultKind, SiteFlavor};
        let words: Vec<u32> = two_block_program().iter().map(encode).collect();
        let mut m = Machine::new(MachineConfig::default());
        m.load_code(0, &words);
        let mut argus = Argus::new(ArgusConfig::default());
        let mut inj = FaultInjector::with_fault(Fault {
            site: msites::CTL_STALL_RELEASE,
            bit: 0,
            kind: FaultKind::Permanent,
            arm_cycle: 2,
            flavor: SiteFlavor::Single,
            width: 1,
            sensitization: 1.0,
        });
        let mut detected = None;
        for _ in 0..1000 {
            match m.step(&mut inj) {
                StepOutcome::Committed(rec) => {
                    argus.on_commit(&rec, &mut inj);
                }
                StepOutcome::Stalled => {
                    if let Some(ev) = argus.on_stall(1, &mut inj) {
                        detected = Some(ev);
                        break;
                    }
                }
                StepOutcome::Halted => break,
            }
        }
        let ev = detected.expect("watchdog must fire");
        assert_eq!(ev.checker, CheckerKind::Watchdog);
    }

    /// Driving blocks through `exec_block` + `on_block` must leave machine
    /// AND checker bit-identical to pure per-op interpretation — events
    /// included — on a clean run.
    #[test]
    fn batched_block_checking_matches_per_op() {
        use argus_machine::SnapshotState;
        for entry_dcs in [None, Some(0u32)] {
            let words: Vec<u32> = two_block_program().iter().map(encode).collect();
            let mut m_blk = Machine::new(MachineConfig::default());
            let mut m_ref = Machine::new(MachineConfig { block_exec: false, ..Default::default() });
            m_blk.load_code(0, &words);
            m_ref.load_code(0, &words);
            let mut a_blk = Argus::new(ArgusConfig::default());
            let mut a_ref = Argus::new(ArgusConfig::default());
            if let Some(d) = entry_dcs {
                a_blk.expect_entry(d);
                a_ref.expect_entry(d);
            }
            let mut inj_blk = FaultInjector::none();
            let mut inj_ref = FaultInjector::none();
            let mut batched = 0;
            while !m_blk.halted() {
                let gate = m_blk.plan_block(&inj_blk, u64::MAX);
                if let Some(gate) = gate.filter(|g| a_blk.block_ready(g, &inj_blk)) {
                    let commit = m_blk.exec_block(&mut inj_blk, &gate).expect("gated");
                    assert!(commit.complete, "store-free plans always complete");
                    let plan = m_blk.plan_at(commit.addr).expect("hit plans survive");
                    a_blk.on_block(plan, &commit, &mut inj_blk);
                    batched += 1;
                    continue;
                }
                match m_blk.step(&mut inj_blk) {
                    StepOutcome::Committed(rec) => {
                        a_blk.on_commit(&rec, &mut inj_blk);
                    }
                    StepOutcome::Stalled => {
                        a_blk.on_stall(1, &mut inj_blk);
                    }
                    StepOutcome::Halted => break,
                }
            }
            while !m_ref.halted() {
                match m_ref.step(&mut inj_ref) {
                    StepOutcome::Committed(rec) => {
                        a_ref.on_commit(&rec, &mut inj_ref);
                    }
                    StepOutcome::Stalled => {
                        a_ref.on_stall(1, &mut inj_ref);
                    }
                    StepOutcome::Halted => break,
                }
            }
            assert!(batched >= 2, "both blocks must take the batched path");
            assert_eq!(m_blk.state_digest(), m_ref.state_digest());
            assert_eq!(m_blk.state_fingerprint(), m_ref.state_fingerprint());
            assert_eq!(a_blk.state_fingerprint(), a_ref.state_fingerprint());
            assert_eq!(a_blk.events(), a_ref.events());
        }
    }

    /// A wrong embedded successor DCS must be detected by the batched path
    /// with the exact same event the per-op path raises.
    #[test]
    fn batched_block_checking_detects_wrong_dcs() {
        let mut prog = two_block_program();
        if let Instr::Sig { payload, .. } = &mut prog[1] {
            *payload ^= 1;
        } else {
            panic!("expected Sig");
        }
        let words: Vec<u32> = prog.iter().map(encode).collect();
        let mut m = Machine::new(MachineConfig::default());
        m.load_code(0, &words);
        let mut a = Argus::new(ArgusConfig::default());
        let mut inj = FaultInjector::none();
        while !m.halted() {
            let gate = m.plan_block(&inj, u64::MAX);
            if let Some(gate) = gate.filter(|g| a.block_ready(g, &inj)) {
                let commit = m.exec_block(&mut inj, &gate).expect("gated");
                let plan = m.plan_at(commit.addr).expect("hit plans survive");
                a.on_block(plan, &commit, &mut inj);
                continue;
            }
            match m.step(&mut inj) {
                StepOutcome::Committed(rec) => {
                    a.on_commit(&rec, &mut inj);
                }
                StepOutcome::Stalled => {}
                StepOutcome::Halted => break,
            }
        }
        let ref_events = run_clean(&prog);
        assert!(!ref_events.is_empty(), "per-op path must flag the bad DCS");
        assert_eq!(a.events(), &ref_events[..], "batched events must match per-op exactly");
    }

    #[test]
    fn checker_capture_restore_roundtrips() {
        use argus_machine::SnapshotState;
        let words: Vec<u32> = two_block_program().iter().map(encode).collect();
        let mut m = Machine::new(MachineConfig::default());
        m.load_code(0, &words);
        let mut a = Argus::new(ArgusConfig::default());
        let mut inj = FaultInjector::none();
        // Run two instructions so the SHS file and CFC hold mid-block state.
        for _ in 0..2 {
            if let StepOutcome::Committed(rec) = m.step(&mut inj) {
                a.on_commit(&rec, &mut inj);
            }
        }
        let st = a.capture_state();
        let mut b = Argus::new(ArgusConfig::default());
        assert_ne!(a.state_fingerprint(), b.state_fingerprint(), "mid-run state is not initial");
        b.restore_state(&st);
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        assert_eq!(b.capture_state(), st);
    }

    #[test]
    #[should_panic(expected = "different signature width")]
    fn checker_restore_rejects_width_mismatch() {
        use argus_machine::SnapshotState;
        let a = Argus::new(ArgusConfig { sig_width: 4, ..ArgusConfig::default() });
        let st = a.capture_state();
        let mut b = Argus::new(ArgusConfig::default());
        b.restore_state(&st);
    }

    #[test]
    fn disabled_checkers_stay_silent() {
        use argus_machine::sites as msites;
        use argus_sim::fault::{Fault, FaultKind, SiteFlavor};
        let words: Vec<u32> = two_block_program().iter().map(encode).collect();
        let mut m = Machine::new(MachineConfig::default());
        m.load_code(0, &words);
        let cfg = ArgusConfig {
            enable_cc: false,
            enable_parity: false,
            enable_dcs: false,
            enable_watchdog: false,
            ..ArgusConfig::default()
        };
        let mut argus = Argus::new(cfg);
        let mut inj = FaultInjector::with_fault(Fault {
            site: msites::ALU_ADDER_OUT,
            bit: 3,
            kind: FaultKind::Permanent,
            arm_cycle: 0,
            flavor: SiteFlavor::Single,
            width: 32,
            sensitization: 1.0,
        });
        loop {
            match m.step(&mut inj) {
                StepOutcome::Committed(rec) => {
                    argus.on_commit(&rec, &mut inj);
                }
                StepOutcome::Stalled => {}
                StepOutcome::Halted => break,
            }
        }
        assert!(argus.events().is_empty());
    }
}
