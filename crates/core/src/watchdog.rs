//! The liveness watchdog (§3.2.2, "Checking Liveness").
//!
//! A small saturating counter: reset whenever the pipeline makes progress
//! (an instruction commits), incremented for every stalled cycle. When it
//! saturates — 63 consecutive stall cycles for the paper's 6-bit counter —
//! the core is declared hung.

use crate::sites;
use argus_sim::fault::FaultInjector;

/// The stall-counting watchdog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Watchdog {
    bits: u32,
    count: u32,
    tripped: bool,
}

impl Watchdog {
    /// Creates a watchdog with a `bits`-wide counter (saturation at
    /// `2^bits − 1`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside 2–16.
    pub fn new(bits: u32) -> Self {
        assert!((2..=16).contains(&bits), "watchdog width {bits} outside 2..=16");
        Self { bits, count: 0, tripped: false }
    }

    /// Saturation threshold.
    pub fn threshold(&self) -> u32 {
        (1 << self.bits) - 1
    }

    /// Flattens the watchdog into state words (external serialization; the
    /// inverse of [`Watchdog::from_state_words`]).
    pub fn state_words(&self) -> Vec<u64> {
        vec![self.bits as u64, self.count as u64, self.tripped as u64]
    }

    /// Rebuilds a watchdog from [`Watchdog::state_words`] output; `None`
    /// when the words are malformed.
    pub fn from_state_words(ws: &[u64]) -> Option<Self> {
        let [bits, count, tripped] = ws else { return None };
        let bits = u32::try_from(*bits).ok()?;
        if !(2..=16).contains(&bits) {
            return None;
        }
        Some(Self { bits, count: u32::try_from(*count).ok()?, tripped: *tripped != 0 })
    }

    /// Folds the counter state into `mix` (state fingerprints).
    pub fn fold_state(&self, mix: &mut dyn FnMut(u64)) {
        mix(self.bits as u64);
        mix(self.count as u64);
        mix(self.tripped as u64);
    }

    /// Feeds `n` consecutive stall cycles. Returns `true` if the counter
    /// saturates (liveness violation).
    pub fn stall(&mut self, n: u32, inj: &mut FaultInjector) -> bool {
        let next = self.count.saturating_add(n).min(self.threshold());
        self.count = inj.tap32(sites::WD_COUNT, next) & self.threshold();
        if self.count >= self.threshold()
            && !argus_sim::canary::enabled("canary-watchdog-never-fires")
        {
            self.tripped = true;
        }
        self.tripped
    }

    /// Pipeline made progress: reset the counter (and re-arm after a trip —
    /// the recovery substrate restores a checkpoint and execution resumes).
    pub fn progress(&mut self) {
        self.count = 0;
        self.tripped = false;
    }

    /// Whether the watchdog has ever fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// The live stall count (0 right after any progress).
    pub fn count(&self) -> u32 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_saturation_only() {
        let mut w = Watchdog::new(6);
        let mut inj = FaultInjector::none();
        assert_eq!(w.threshold(), 63);
        assert!(!w.stall(62, &mut inj));
        assert!(w.stall(1, &mut inj));
        assert!(w.tripped());
    }

    #[test]
    fn progress_resets() {
        let mut w = Watchdog::new(6);
        let mut inj = FaultInjector::none();
        for _ in 0..100 {
            assert!(!w.stall(50, &mut inj));
            w.progress();
        }
        assert!(!w.tripped());
    }

    #[test]
    fn legitimate_stalls_never_fire() {
        // Worst legitimate stall: I-miss (20) + D-miss (20) can't co-occur
        // on one instruction with a divide, but even 20+31 stays under 63.
        let mut w = Watchdog::new(6);
        let mut inj = FaultInjector::none();
        assert!(!w.stall(51, &mut inj));
    }

    #[test]
    #[should_panic(expected = "outside 2..=16")]
    fn rejects_bad_width() {
        Watchdog::new(1);
    }

    #[test]
    fn counter_fault_can_false_fire() {
        use argus_sim::fault::{Fault, FaultKind, SiteFlavor};
        let mut w = Watchdog::new(6);
        let mut inj = FaultInjector::with_fault(Fault {
            site: sites::WD_COUNT,
            bit: 5,
            kind: FaultKind::Permanent,
            arm_cycle: 0,
            flavor: SiteFlavor::Single,
            width: 8,
            sensitization: 1.0,
        });
        inj.set_cycle(0);
        // One stall cycle becomes 1 | 32 = 33; repeated stalls reach the
        // threshold far too early — a detected masked error.
        let mut fired = false;
        for _ in 0..40 {
            fired |= w.stall(1, &mut inj);
        }
        assert!(fired);
    }
}
