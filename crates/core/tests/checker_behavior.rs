//! Behavioural tests of the assembled checker on compiled programs:
//! memory scrubbing, sub-word store coverage, indirect control flow,
//! block-length enforcement, and detection attribution edge cases.

use argus_compiler::{compile, EmbedConfig, Mode, Program, ProgramBuilder};
use argus_core::{Argus, ArgusConfig, CheckerKind};
use argus_isa::instr::{Cond, MemSize};
use argus_isa::reg::{r, Reg};
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_sim::fault::{Fault, FaultInjector, FaultKind, SiteFlavor};

fn fault(site: &'static str, bit: u8, width: u8, arm: u64) -> Fault {
    Fault {
        site,
        bit,
        kind: FaultKind::Permanent,
        arm_cycle: arm,
        flavor: SiteFlavor::Single,
        width,
        sensitization: 1.0,
    }
}

struct Ran {
    machine: Machine,
    argus: Argus,
}

fn run_with(prog: &Program, f: Option<Fault>, acfg: ArgusConfig) -> Ran {
    let mut m = Machine::new(MachineConfig::default());
    prog.load(&mut m);
    let mut argus = Argus::new(acfg);
    argus.expect_entry(prog.entry_dcs.unwrap());
    let mut inj = match f {
        Some(f) => FaultInjector::with_fault(f),
        None => FaultInjector::none(),
    };
    loop {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                argus.on_commit(&rec, &mut inj);
            }
            StepOutcome::Stalled => {
                argus.on_stall(1, &mut inj);
            }
            StepOutcome::Halted => break,
        }
        if m.cycle() > 5_000_000 {
            break;
        }
    }
    if argus.first_detection().is_none() {
        argus.scrub_memory(&m, prog.data_base, &mut inj);
    }
    Ran { machine: m, argus }
}

fn store_heavy_program() -> Program {
    // Stores a buffer of words that is never loaded back — only the scrub
    // can see corruption parked there.
    let mut b = ProgramBuilder::new();
    b.li(r(2), 0x8_0000);
    b.li(r(3), 0x1234);
    b.li(r(4), 0);
    b.li(r(5), 32);
    b.label("loop");
    b.add(r(3), r(3), r(3));
    b.xori(r(3), r(3), 0x2F);
    b.sw(r(2), r(3), 0);
    b.addi(r(2), r(2), 4);
    b.addi(r(4), r(4), 1);
    b.sf(Cond::Ltu, r(4), r(5));
    b.bf("loop");
    b.nop();
    b.halt();
    compile(&b.unit(), Mode::Argus, &EmbedConfig::default()).unwrap()
}

#[test]
fn scrub_catches_store_bus_corruption_parked_in_memory() {
    let prog = store_heavy_program();
    let ran = run_with(
        &prog,
        Some(fault(argus_machine::sites::LSU_ST_BUS, 7, 32, 100)),
        ArgusConfig::default(),
    );
    let ev = ran.argus.first_detection().expect("scrub must catch it");
    assert_eq!(ev.checker, CheckerKind::Parity);
    assert_eq!(ev.reason, "scrub_parity");
}

#[test]
fn scrub_catches_wrong_row_stores() {
    let prog = store_heavy_program();
    let ran = run_with(
        &prog,
        Some(fault(argus_machine::sites::DMEM_ROW_ADDR, 5, 14, 120)),
        ArgusConfig::default(),
    );
    let ev = ran.argus.first_detection().expect("wrong-row store detected");
    assert_eq!(ev.checker, CheckerKind::Parity);
}

fn subword_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.li(r(2), 0x8_0000);
    b.li(r(3), 0xAB);
    b.li(r(4), 0);
    b.li(r(5), 24);
    b.label("loop");
    b.store(MemSize::Byte, r(2), r(3), 1);
    b.load(MemSize::Byte, false, r(6), r(2), 1);
    b.add(r(3), r(3), r(6));
    b.addi(r(2), r(2), 4);
    b.addi(r(4), r(4), 1);
    b.sf(Cond::Ltu, r(4), r(5));
    b.bf("loop");
    b.nop();
    b.halt();
    compile(&b.unit(), Mode::Argus, &EmbedConfig::default()).unwrap()
}

#[test]
fn store_merge_faults_are_caught_by_the_rsse_checker() {
    let prog = subword_program();
    let ran = run_with(
        &prog,
        Some(fault(argus_machine::sites::LSU_ST_MERGE, 11, 32, 100)),
        ArgusConfig::default(),
    );
    let ev = ran.argus.first_detection().expect("merge corruption detected");
    assert_eq!(ev.checker, CheckerKind::Computation);
    assert_eq!(ev.reason, "merge_mismatch");
}

#[test]
fn indirect_jump_register_corruption_is_detected() {
    // Corrupt the DCS bits of a function pointer: the CFC must flag the
    // return/jump mismatch at the target block's end.
    let mut b = ProgramBuilder::new();
    b.li(r(3), 1);
    b.jal("callee");
    b.nop();
    b.halt();
    b.label("callee");
    b.addi(r(3), r(3), 10);
    b.jr(Reg::LR);
    b.nop();
    let prog = compile(&b.unit(), Mode::Argus, &EmbedConfig::default()).unwrap();
    // r9's top bits carry the link DCS; flip one persistently.
    let ran = run_with(
        &prog,
        Some(Fault {
            site: argus_machine::machine::RF_CELL_SITES[9],
            bit: 29, // inside the DCS field [31:27]
            kind: FaultKind::Permanent,
            arm_cycle: 0,
            flavor: SiteFlavor::Single,
            width: 32,
            sensitization: 1.0,
        }),
        ArgusConfig::default(),
    );
    let ev = ran.argus.first_detection().expect("link-DCS corruption detected");
    // Either the register parity check or the DCS comparison gets it.
    assert!(matches!(ev.checker, CheckerKind::Parity | CheckerKind::Dcs));
}

#[test]
fn block_length_cap_fires_when_halt_decays_to_nop() {
    // A fault that turns `halt` into a NOP lets execution run into the
    // zero-filled memory beyond the program; the block-length bound is the
    // checker's backstop.
    let mut b = ProgramBuilder::new();
    b.li(r(3), 5);
    b.halt();
    let prog = compile(&b.unit(), Mode::Argus, &EmbedConfig::default()).unwrap();
    let halt_idx = prog.code.len() - 1;
    let mut bad = prog.clone();
    bad.code[halt_idx] ^= 1 << 29; // opcode 0x08 → 0x28 (invalid → NOP)
    let ran = run_with(&bad, None, ArgusConfig::default());
    let ev = ran.argus.first_detection().expect("runaway execution detected");
    assert_eq!(ev.checker, CheckerKind::Dcs);
    // The dropped `halt` perturbs the current block's DCS first; if that
    // ever aliased, the block-length bound is the backstop.
    assert!(
        ["dcs_mismatch", "block_length_exceeded"].contains(&ev.reason),
        "unexpected reason {}",
        ev.reason
    );
    assert!(!ran.machine.halted());
}

#[test]
fn attribution_reasons_are_stable_names() {
    // The reason strings are part of the reporting interface; pin them.
    let prog = store_heavy_program();
    let ran = run_with(
        &prog,
        Some(fault(argus_machine::sites::ALU_ADDER_OUT, 3, 32, 50)),
        ArgusConfig::default(),
    );
    let ev = ran.argus.first_detection().unwrap();
    assert!(
        ["adder_mismatch", "addr_mismatch"].contains(&ev.reason),
        "unexpected reason {}",
        ev.reason
    );
}

#[test]
fn masked_checker_fault_is_detected_but_harmless() {
    let prog = store_heavy_program();
    // Golden digest.
    let clean = run_with(&prog, None, ArgusConfig::default());
    assert!(clean.argus.events().is_empty());
    let golden = clean.machine.state_digest();

    let ran = run_with(
        &prog,
        Some(fault(argus_core::sites::DCS_XOR_OUT, 2, 8, 80)),
        ArgusConfig::default(),
    );
    assert!(ran.argus.first_detection().is_some(), "broken DCS tree must false-alarm");
    assert_eq!(ran.machine.state_digest(), golden, "checker faults never corrupt the core");
}

#[test]
fn scrub_respects_enable_parity() {
    let prog = store_heavy_program();
    let acfg = ArgusConfig { enable_parity: false, ..Default::default() };
    let ran = run_with(&prog, Some(fault(argus_machine::sites::LSU_ST_BUS, 7, 32, 100)), acfg);
    assert!(
        ran.argus.events().iter().all(|e| e.checker != CheckerKind::Parity),
        "parity disabled but parity events raised"
    );
}
