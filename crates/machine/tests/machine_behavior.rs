//! Behavioural tests of the core model: protection semantics, fault
//! persistence, addressing edge cases, and timing invariants.

use argus_isa::encode::encode;
use argus_isa::instr::{AluImmOp, AluOp, Cond, Instr, MemSize, MulDivOp};
use argus_isa::reg::{r, Reg};
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_sim::fault::{Fault, FaultInjector, FaultKind, SiteFlavor};
use proptest::prelude::*;

fn machine_with(prog: &[Instr], argus_mode: bool) -> Machine {
    let words: Vec<u32> = prog.iter().map(encode).collect();
    let mut m = Machine::new(MachineConfig { argus_mode, ..Default::default() });
    m.load_code(0, &words);
    m
}

fn run(prog: &[Instr], argus_mode: bool) -> Machine {
    let mut m = machine_with(prog, argus_mode);
    let res = m.run_to_halt(&mut FaultInjector::none(), 10_000_000);
    assert!(res.halted);
    m
}

#[test]
fn subword_rmw_preserves_neighbours_under_protection() {
    let m = run(
        &[
            Instr::Movhi { rd: r(2), imm: 0x0008 }, // 0x80000
            Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 0x7788 },
            Instr::Movhi { rd: r(4), imm: 0x1122 },
            Instr::AluImm { op: AluImmOp::Ori, rd: r(4), ra: r(4), imm: 0x3344 },
            Instr::Store { size: MemSize::Word, ra: r(2), rb: r(4), off: 0 },
            Instr::Store { size: MemSize::Byte, ra: r(2), rb: r(3), off: 2 },
            Instr::Store { size: MemSize::Half, ra: r(2), rb: r(3), off: 0 },
            Instr::Load { size: MemSize::Word, signed: false, rd: r(5), ra: r(2), off: 0 },
            Instr::Halt,
        ],
        true,
    );
    // word = 0x11223344; byte@2 := 0x88 → 0x11883344; half@0 := 0x7788.
    assert_eq!(m.reg(r(5)), 0x1188_7788);
    assert_eq!(m.read_data_word(0x80000), 0x1188_7788);
}

#[test]
fn wild_load_address_yields_garbage_without_crashing() {
    let m = run(
        &[
            Instr::Movhi { rd: r(2), imm: 0x7FFF }, // far outside memory
            Instr::Load { size: MemSize::Word, signed: false, rd: r(3), ra: r(2), off: 0 },
            Instr::Halt,
        ],
        true,
    );
    assert!(m.halted());
}

#[test]
fn wild_store_is_dropped() {
    let m = run(
        &[
            Instr::Movhi { rd: r(2), imm: 0x7FFF },
            Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 42 },
            Instr::Store { size: MemSize::Word, ra: r(2), rb: r(3), off: 0 },
            Instr::Halt,
        ],
        true,
    );
    assert!(m.halted(), "a wild store must not abort the simulation");
}

#[test]
fn transient_register_cell_corruption_persists_until_overwritten() {
    let prog = [
        Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 0x50 },
        // Two consecutive reads of r3: the transient flips the first read
        // and the corruption must stick for the second.
        Instr::Alu { op: AluOp::Add, rd: r(4), ra: r(3), rb: Reg::ZERO },
        Instr::Alu { op: AluOp::Add, rd: r(5), ra: r(3), rb: Reg::ZERO },
        Instr::Halt,
    ];
    let mut m = machine_with(&prog, false);
    let mut inj = FaultInjector::with_fault(Fault {
        site: argus_machine::machine::RF_CELL_SITES[3],
        bit: 0,
        kind: FaultKind::Transient,
        arm_cycle: 0,
        flavor: SiteFlavor::Single,
        width: 32,
        sensitization: 1.0,
    });
    m.run_to_halt(&mut inj, 100_000);
    assert_eq!(m.reg(r(4)), 0x51, "first read corrupted");
    assert_eq!(m.reg(r(5)), 0x51, "cell upset persists");
    assert_eq!(m.reg(r(3)), 0x51);
}

#[test]
fn r0_writes_are_dropped_in_all_writeback_paths() {
    let m = run(
        &[
            Instr::AluImm { op: AluImmOp::Addi, rd: Reg::ZERO, ra: Reg::ZERO, imm: 7 },
            Instr::Movhi { rd: Reg::ZERO, imm: 0xFFFF },
            Instr::MulDiv { op: MulDivOp::Mul, rd: Reg::ZERO, ra: r(1), rb: r(1) },
            Instr::Store { size: MemSize::Word, ra: Reg::ZERO, rb: Reg::ZERO, off: 0x100 },
            Instr::Load {
                size: MemSize::Word,
                signed: false,
                rd: Reg::ZERO,
                ra: Reg::ZERO,
                off: 0x100,
            },
            Instr::Halt,
        ],
        true,
    );
    assert_eq!(m.reg(Reg::ZERO), 0);
}

#[test]
fn branch_not_taken_executes_delay_slot_then_falls_through() {
    let m = run(
        &[
            Instr::SetFlagImm { cond: Cond::Eq, ra: Reg::ZERO, imm: 1 }, // false
            Instr::Branch { taken_if: true, off: 4 },
            Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 1 }, // delay
            Instr::AluImm { op: AluImmOp::Addi, rd: r(4), ra: Reg::ZERO, imm: 2 }, // fallthrough
            Instr::Halt,
        ],
        false,
    );
    assert_eq!(m.reg(r(3)), 1);
    assert_eq!(m.reg(r(4)), 2);
}

#[test]
fn timing_load_hit_costs_one_extra_cycle() {
    // Warm both lines, then measure a hit-load's cost: fetch 1 + mem 1 = 2.
    let prog = [
        Instr::AluImm { op: AluImmOp::Addi, rd: r(2), ra: Reg::ZERO, imm: 0x100 },
        Instr::Load { size: MemSize::Word, signed: false, rd: r(3), ra: r(2), off: 0 },
        Instr::Load { size: MemSize::Word, signed: false, rd: r(4), ra: r(2), off: 0 },
        Instr::Halt,
    ];
    let mut m = machine_with(&prog, false);
    let mut inj = FaultInjector::none();
    // addi (cold fetch): 21; first load: 1 fetch + 21 mem − 1 = 21... run
    // and compare the two loads' individual costs via commit records.
    let mut costs = vec![];
    loop {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                if matches!(rec.instr, Instr::Load { .. }) {
                    costs.push(rec.cycles);
                }
            }
            StepOutcome::Stalled => {}
            StepOutcome::Halted => break,
        }
    }
    assert_eq!(costs.len(), 2);
    assert!(costs[0] > costs[1], "first load misses, second hits");
    // "Hits take 1 cycle" (§4.4): a hitting load does not stall the pipe.
    assert_eq!(costs[1], 1);
}

#[test]
fn commit_records_expose_memory_signals() {
    let prog = [
        Instr::AluImm { op: AluImmOp::Addi, rd: r(2), ra: Reg::ZERO, imm: 0x40 },
        Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 0x5A },
        Instr::Store { size: MemSize::Word, ra: r(2), rb: r(3), off: 4 },
        Instr::Load { size: MemSize::Word, signed: false, rd: r(4), ra: r(2), off: 4 },
        Instr::Halt,
    ];
    let mut m = machine_with(&prog, true);
    let mut inj = FaultInjector::none();
    let mut mems = vec![];
    loop {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                if let Some(mm) = rec.mem {
                    mems.push(mm);
                }
            }
            StepOutcome::Stalled => {}
            StepOutcome::Halted => break,
        }
    }
    assert_eq!(mems.len(), 2);
    let (st, ld) = (&mems[0], &mems[1]);
    assert!(st.is_store && !ld.is_store);
    assert_eq!(st.addr, 0x44);
    assert_eq!(ld.addr, 0x44);
    assert_eq!(st.base, 0x40);
    assert_eq!(st.offset, 4);
    assert_eq!(ld.value, 0x5A);
    assert!(ld.parity_ok);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn straightline_alu_matches_host_mirror(
        seeds in prop::collection::vec(any::<u16>(), 4),
        ops in prop::collection::vec((0u8..8, 3u8..8, 3u8..8, 3u8..8), 1..30)
    ) {
        // Build: seed r3..r6, run random reg-reg ops over r3..r7, halt.
        let mut prog = Vec::new();
        let mut host = [0u32; 8];
        for (k, &s) in seeds.iter().enumerate() {
            let rd = 3 + k as u8;
            prog.push(Instr::AluImm { op: AluImmOp::Ori, rd: r(rd), ra: Reg::ZERO, imm: s });
            host[rd as usize] = s as u32;
        }
        for &(opk, d, a, b) in &ops {
            let op = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or,
                      AluOp::Xor, AluOp::Sll, AluOp::Srl, AluOp::Sra][opk as usize];
            prog.push(Instr::Alu { op, rd: r(d), ra: r(a), rb: r(b) });
            host[d as usize] = argus_machine::exec::alu(op, host[a as usize], host[b as usize]);
        }
        prog.push(Instr::Halt);
        let m = run(&prog, false);
        for k in 3u8..8 {
            prop_assert_eq!(m.reg(r(k)), host[k as usize], "r{}", k);
        }
    }

    #[test]
    fn word_memory_roundtrip_any_value(v in any::<u32>(), slot in 0u32..64) {
        let addr_imm = (0x100 + slot * 4) as i16;
        for mode in [false, true] {
            let mut prog = vec![
                Instr::Movhi { rd: r(3), imm: (v >> 16) as u16 },
                Instr::AluImm { op: AluImmOp::Ori, rd: r(3), ra: r(3), imm: v as u16 },
                Instr::Store { size: MemSize::Word, ra: Reg::ZERO, rb: r(3), off: addr_imm },
                Instr::Load { size: MemSize::Word, signed: false, rd: r(4), ra: Reg::ZERO, off: addr_imm },
            ];
            prog.push(Instr::Halt);
            let m = run(&prog, mode);
            prop_assert_eq!(m.reg(r(4)), v);
        }
    }
}
