//! Full-fidelity state capture and restore for the core.
//!
//! A campaign's golden run is deterministic, so everything a faulty run
//! does before its fault arms is identical across all injections. The
//! snapshot engine (`argus-snapshot`) exploits that by checkpointing the
//! simulator mid-run and forking injections from the checkpoint; this
//! module defines the contract the machine side of that exchange obeys.
//!
//! [`SnapshotState`] is the trait: capture to an owned state value,
//! restore from one, and fingerprint the live state without cloning it.
//! The guarantee implementors must provide — and the property tests in
//! `argus-snapshot` enforce — is:
//!
//! > `restore_state(capture_state())` followed by `k` steps is
//! > indistinguishable, bit for bit, from running those `k` steps without
//! > the capture/restore in between.
//!
//! For [`Machine`](crate::Machine) that means capturing *everything* that
//! influences future behaviour: architectural state (registers, flag, PC,
//! memory), pipeline latches (pending branch, delay-slot marker, the
//! signature-bit accumulator), timing state (cycle, retired, cache tags /
//! dirty bits / LRU clocks), and the parity tags the checker reads.
//! Snapshots are taken at step boundaries only — mid-instruction
//! microarchitectural state (e.g. a divider mid-iteration) never needs to
//! be materialized because [`Machine::step`](crate::Machine::step) charges
//! multi-cycle instructions atomically.

use crate::machine::MachineConfig;
use argus_mem::CachesState;
use argus_sim::bitstream::BitStream;

/// State capture/restore with identity fingerprints.
///
/// `State` is an owned, thread-shareable value: snapshot stores hand
/// `&State` to worker threads restoring in parallel.
pub trait SnapshotState {
    /// The owned state value.
    type State: Clone + Send + Sync + 'static;

    /// Captures everything that influences future behaviour.
    fn capture_state(&self) -> Self::State;

    /// Restores state captured by [`SnapshotState::capture_state`].
    fn restore_state(&mut self, state: &Self::State);

    /// A digest over the *full* captured state (not just the architectural
    /// subset `Machine::state_digest` covers), without cloning it. Two
    /// states with different fingerprints will diverge; equal fingerprints
    /// identify states for snapshot bookkeeping and divergence triage.
    fn state_fingerprint(&self) -> u64;
}

/// The core-private part of a machine snapshot: everything except main
/// memory, which the snapshot engine stores separately as content-addressed
/// pages (consecutive snapshots share unchanged pages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreState {
    /// Configuration the machine was built with (restore validates it).
    pub cfg: MachineConfig,
    /// Architectural registers.
    pub regs: [u32; 32],
    /// Register-file parity tags.
    pub parity: [bool; 32],
    /// Compare flag.
    pub flag: bool,
    /// Program counter.
    pub pc: u32,
    /// Cycles elapsed.
    pub cycle: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Branch target awaiting its delay slot.
    pub pending_branch: Option<u32>,
    /// Next instruction is a delay slot.
    pub delay_slot: bool,
    /// Signature bits accumulated for the current basic block.
    pub block_bits: BitStream,
    /// Machine has executed `halt`.
    pub halted: bool,
    /// Both cache arrays (tags, valid/dirty, LRU).
    pub caches: CachesState,
}

/// A complete machine snapshot: core state plus materialized main memory.
///
/// This is the value [`SnapshotState::capture_state`] returns for
/// `Machine`. The snapshot engine immediately splits `mem_words`/`mem_tags`
/// into deduplicated pages; tools that want a standalone state file (the
/// `argus snapshot` CLI) keep it materialized.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineState {
    /// Everything but main memory.
    pub core: CoreState,
    /// All main-memory payload words.
    pub mem_words: Vec<u32>,
    /// All main-memory parity tags (parallel to `mem_words`).
    pub mem_tags: Vec<bool>,
}

/// FNV-1a accumulator shared by the state fingerprints in this workspace.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Starts from the FNV-1a offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Mixes one value.
    pub fn mix(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    /// The accumulated digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}
