//! Block-compiled golden execution (JIT-lite).
//!
//! The interpreter dispatches one instruction per [`Machine::step`] even on
//! quiescent golden runs, where every fault tap is an identity function and
//! every per-step fault hook is dead weight. This module lowers basic
//! blocks — the unit the Argus checker already works in — into pre-decoded
//! straight-line *plans* and executes a whole plan per dispatch whenever it
//! is provably safe to do so.
//!
//! # Plans are a pure function of program bytes
//!
//! A [`BlockPlan`] is built by scanning main memory forward from a block
//! entry address with the same delay-slot-aware termination rule the
//! machine and the compiler's `binver` segmentation use: a block ends after
//! a CTI's delay slot, an end-of-block `Sig` marker, or `halt`. Each plan
//! op records the raw word, its decode, its embedded signature bits, and —
//! for linking jumps — the link-register value, which the interpreter
//! derives from the live signature bit stream but a plan knows statically.
//!
//! Plans live in a direct-mapped [`PlanCache`] keyed on the entry address.
//! Like the predecode memo, the cache is excluded from snapshots and
//! fingerprints: a stale entry can never produce wrong execution because it
//! is *validated against program bytes* before and during use:
//!
//! - on lookup, the entry's first word is compared against main memory; a
//!   mismatch rebuilds the plan (entry-level staleness);
//! - during execution, every op's fetched word is compared against the
//!   plan's word; a mismatch — only possible when an earlier op of the same
//!   block stored over upcoming code — executes the *freshly fetched* word
//!   through the generic path and hands control back to the interpreter
//!   (mid-block staleness, see [`BlockCommit::complete`]).
//!
//! # Fallback rules
//!
//! [`Machine::plan_block`] declines (and the caller falls back to the
//! one-step interpreter) unless all of these hold:
//!
//! - [`MachineConfig`](crate::machine::MachineConfig)`::block_exec` is on,
//!   the machine is not halted, not in a delay slot, has no pending branch,
//!   and its signature-bit accumulator is empty (i.e. it sits at a block
//!   boundary);
//! - the current PC begins a plannable block (a terminator within the scan
//!   cap, all words in range);
//! - `cycle + plan.worst_cycles` stays within both the caller's cycle
//!   bound and [`FaultInjector::quiescent_horizon`] — so every fault tap
//!   the interpreter would have evaluated inside the block is provably an
//!   identity function, and the run stops at the exact same cycle under
//!   either engine.
//!
//! Under those gates a complete plan execution is bit-identical to the
//! interpreter by construction — same registers, parity, flag, memory,
//! cache timing state, cycle count and PC — which the equivalence suite
//! (`argus-faults/tests/block_equiv.rs`) checks property-style over every
//! suite workload.

use crate::exec;
use crate::machine::Machine;
use argus_isa::decode::decode;
use argus_isa::encode::embedded_bits_packed;
use argus_isa::instr::{Instr, MemSize, MulDivOp};
use argus_isa::reg::Reg;
use argus_isa::{pack_indirect_target, split_indirect_target, INDIRECT_ADDR_MASK};
use argus_mem::MemorySystem;
use argus_sim::bits::parity32;
use argus_sim::bitstream::{BitStream, PackedBits};
use argus_sim::fault::FaultInjector;

/// Scan cap per plan, in instructions. The compiler's `max_block_len` is 64
/// plus a delay slot; anything longer is left to the interpreter.
const MAX_PLAN_OPS: usize = 96;

/// Direct-mapped plan cache slots (covers 2KB of block entry points per
/// conflict-free residency; collisions just rebuild).
const PLAN_SLOTS: usize = 512;

/// One pre-decoded instruction of a block plan.
#[derive(Debug, Clone, Copy)]
struct PlanOp {
    /// The raw program word the decode came from (validated against every
    /// fetch; see the module docs on mid-block staleness).
    word: u32,
    instr: Instr,
    /// Embedded signature bits of `word` (batched checking + bit-stream
    /// reconstruction on a mid-block bail).
    embedded: PackedBits,
    /// Precomputed link-register value for linking jumps: the interpreter
    /// reads the DCS slot from the live signature bit stream, which a plan
    /// knows statically. Zero for non-linking ops.
    link_value: u32,
}

/// A compiled straight-line plan for one basic block.
///
/// Pure function of the machine configuration and the program words at
/// `[addr, addr + 4 * len)`; holds no machine state.
#[derive(Debug, Clone)]
pub struct BlockPlan {
    addr: u32,
    first_word: u32,
    /// Empty for a *negative* plan: an address where no well-formed block
    /// terminator exists within the scan cap (cached so unplannable
    /// addresses don't rescan every visit).
    ops: Vec<PlanOp>,
    /// FNV-1a over the plan's words: checker-side memo key.
    words_hash: u64,
    /// Worst-case cycles a full execution can charge (every fetch and data
    /// access missing, dirty writebacks, div latency). Overestimates only:
    /// used to gate against cycle bounds and the quiescent horizon.
    worst_cycles: u64,
    /// Worst-case stall (cycles − 1) of any single op, for the checker's
    /// watchdog gate.
    max_op_stall: u32,
    has_store: bool,
    /// The block ends in a CTI's delay slot (vs an `eob` Sig / `halt`
    /// fallthrough) — the distinction `Cfc::finish_block` keys on.
    ends_with_cti: bool,
    /// Canonical shape the batched checker accepts: exactly one CTI sitting
    /// immediately before the final (delay-slot) op, or no CTI at all.
    argus_simple: bool,
}

impl BlockPlan {
    /// Scans program bytes forward from `addr` and compiles a plan.
    /// Returns a negative (empty) plan when no terminator is found within
    /// [`MAX_PLAN_OPS`] or the scan walks out of memory.
    fn build(cfg: &crate::machine::MachineConfig, mem: &MemorySystem, addr: u32) -> BlockPlan {
        let addr = addr & !3;
        let first_word = mem.memory().read(addr).map(|(w, _)| w).unwrap_or(0);
        let argus = cfg.argus_mode;
        // Worst-case latencies; `fetch` never writes back, data ops might.
        let fetch_worst = cfg.mem.hit_cycles + cfg.mem.miss_penalty;
        let data_worst = fetch_worst + cfg.mem.writeback_penalty;

        let mut ops: Vec<PlanOp> = Vec::new();
        let mut bits = BitStream::new();
        let mut delay = false;
        let mut worst_cycles = 0u64;
        let mut max_op_cycles = 0u32;
        let mut has_store = false;
        let mut ends_with_cti = false;
        let mut cti_count = 0u32;
        let mut cti_at = None;
        let mut hash = crate::snapshot::Fnv64::new();
        let mut complete = false;

        for k in 0..MAX_PLAN_OPS {
            let pc = addr.wrapping_add(4 * k as u32);
            let Ok((word, _tag)) = mem.memory().read(pc) else {
                break;
            };
            let instr = decode(word);
            let embedded = embedded_bits_packed(word);
            bits.push_packed(embedded);
            let in_delay = delay;
            delay = false;
            let mut block_end = in_delay;
            let mut op_cycles = fetch_worst;
            let mut link_value = 0u32;
            match instr {
                Instr::MulDiv { op, .. } => {
                    op_cycles += if matches!(op, MulDivOp::Div | MulDivOp::Divu) {
                        cfg.div_cycles.saturating_sub(1)
                    } else {
                        cfg.mul_cycles.saturating_sub(1)
                    };
                }
                Instr::Load { .. } => op_cycles += data_worst.saturating_sub(1),
                Instr::Store { .. } => {
                    has_store = true;
                    op_cycles += data_worst.saturating_sub(1);
                }
                Instr::Jump { link: true, .. } => {
                    link_value = static_link_value(argus, pc, &bits, 1);
                }
                Instr::JumpReg { link: true, .. } => {
                    link_value = static_link_value(argus, pc, &bits, 0);
                }
                Instr::Sig { eob: true, .. } | Instr::Halt => block_end = true,
                _ => {}
            }
            if instr.is_cti() {
                delay = true;
                cti_count += 1;
                if cti_at.is_none() {
                    cti_at = Some(k);
                }
            }
            ops.push(PlanOp { word, instr, embedded, link_value });
            worst_cycles += op_cycles as u64;
            max_op_cycles = max_op_cycles.max(op_cycles);
            hash.mix(word as u64);
            if block_end {
                ends_with_cti = in_delay;
                complete = true;
                break;
            }
        }
        if !complete {
            ops.clear();
            worst_cycles = 0;
            max_op_cycles = 0;
            has_store = false;
        }
        let argus_simple = complete
            && match (ends_with_cti, cti_count) {
                (true, 1) => cti_at == Some(ops.len().saturating_sub(2)),
                (false, 0) => true,
                _ => false,
            };
        BlockPlan {
            addr,
            first_word,
            ops,
            words_hash: hash.finish(),
            worst_cycles,
            max_op_stall: max_op_cycles.saturating_sub(1),
            has_store,
            ends_with_cti,
            argus_simple,
        }
    }

    /// Block entry address.
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// Instructions in the plan (0 for a negative plan).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether this is a negative (unplannable-address) plan.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// FNV-1a over the plan's raw words (checker-side memo key).
    pub fn words_hash(&self) -> u64 {
        self.words_hash
    }

    /// The raw program word of op `i`.
    pub fn word(&self, i: usize) -> u32 {
        self.ops[i].word
    }

    /// The decoded instruction of op `i`.
    pub fn instr(&self, i: usize) -> Instr {
        self.ops[i].instr
    }

    /// The embedded signature bits of op `i`.
    pub fn embedded(&self, i: usize) -> PackedBits {
        self.ops[i].embedded
    }

    /// Whether the block ends in a CTI's delay slot.
    pub fn ends_with_cti(&self) -> bool {
        self.ends_with_cti
    }

    /// Whether the batched checker accepts this shape (see field docs).
    pub fn argus_simple(&self) -> bool {
        self.argus_simple
    }

    /// Whether any op is a store (a store-free plan can never go stale
    /// mid-block, so its execution is guaranteed complete).
    pub fn has_store(&self) -> bool {
        self.has_store
    }

    /// Worst-case stall (cycles − 1) of any single op.
    pub fn max_op_stall(&self) -> u32 {
        self.max_op_stall
    }

    /// Worst-case cycles a full execution can charge.
    pub fn worst_cycles(&self) -> u64 {
        self.worst_cycles
    }
}

/// What the interpreter's link-value computation would produce given the
/// signature bits accumulated through this op.
fn static_link_value(argus: bool, pc: u32, bits: &BitStream, slot: usize) -> u32 {
    let ret = pc.wrapping_add(8);
    if argus {
        let dcs = bits.extract(5 * slot, 5) & 31;
        pack_indirect_target(ret & INDIRECT_ADDR_MASK, dcs)
    } else {
        ret
    }
}

/// Pre-flight summary of the plan gating decision, returned by
/// [`Machine::plan_block`]. Carrying this (Copy) value instead of a plan
/// borrow lets callers consult the checker between planning and execution.
#[derive(Debug, Clone, Copy)]
pub struct BlockGate {
    /// Block entry address (the machine's current PC).
    pub addr: u32,
    /// Instructions in the plan.
    pub len: u32,
    /// The plan contains a store; a store-free plan cannot bail mid-block.
    pub has_store: bool,
    /// The block ends in a CTI's delay slot.
    pub ends_with_cti: bool,
    /// Canonical single-CTI/no-CTI shape the batched checker accepts.
    pub argus_simple: bool,
    /// Worst-case stall (cycles − 1) of any single op.
    pub max_op_stall: u32,
    /// Checker-side memo key (with `addr`).
    pub words_hash: u64,
}

/// A load whose word address fell outside main memory during a block
/// execution. The interpreter substitutes an all-ones payload with a clear
/// tag, which the checker's memory parity check may flag — a batched
/// checker needs the exact (pc, cycle, observed word) triple to raise the
/// identical event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OobLoad {
    /// PC of the load.
    pub pc: u32,
    /// Machine cycle after the load committed.
    pub end_cycle: u64,
    /// Whether the fallback word's parity checks out against its (clear)
    /// tag — exactly the `parity_ok` the interpreter's commit record would
    /// carry for this load.
    pub parity_ok: bool,
}

/// What one block execution did, returned by [`Machine::exec_block`].
#[derive(Debug, Clone)]
pub struct BlockCommit {
    /// Block entry address.
    pub addr: u32,
    /// Instructions actually retired (== plan length when `complete`).
    pub executed: u32,
    /// Whether the whole plan ran. `false` means an in-block store rewrote
    /// an upcoming word: the fresh word was executed generically and the
    /// machine is mid-block — the caller must resume the interpreter.
    pub complete: bool,
    /// PC of the last retired instruction.
    pub last_pc: u32,
    /// Machine cycle after the block.
    pub end_cycle: u64,
    /// The block ended in a CTI's delay slot (always false when not
    /// `complete`; the interpreter finishes the block).
    pub ended_by_cti: bool,
    /// Flag value a conditional branch in the block observed.
    pub cti_flag: Option<bool>,
    /// DCS bits split from an indirect jump's target (argus mode).
    pub indirect_dcs: Option<u32>,
    /// The block executed `halt`.
    pub halted: bool,
    /// The machine's compare flag after the block.
    pub flag_after: bool,
    /// Loads that fell outside main memory, in commit order (almost always
    /// empty — an empty `Vec` does not allocate).
    pub oob_loads: Vec<OobLoad>,
}

/// Plan/predecode cache counters drained by [`Machine::take_exec_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Predecode memo lookups that found their word.
    pub predecode_hits: u64,
    /// Predecode memo lookups that recomputed a slot.
    pub predecode_misses: u64,
    /// Block plans executed to completion.
    pub plan_hits: u64,
    /// Block plans (re)built.
    pub plan_misses: u64,
    /// Plan cache slots whose previous occupant was replaced or dropped.
    pub plan_evictions: u64,
    /// Block executions that bailed mid-plan back to the interpreter.
    pub plan_fallbacks: u64,
}

impl ExecStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &ExecStats) {
        self.predecode_hits += other.predecode_hits;
        self.predecode_misses += other.predecode_misses;
        self.plan_hits += other.plan_hits;
        self.plan_misses += other.plan_misses;
        self.plan_evictions += other.plan_evictions;
        self.plan_fallbacks += other.plan_fallbacks;
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == ExecStats::default()
    }
}

/// Direct-mapped plan cache. Excluded from snapshots and fingerprints:
/// entries are validated against program bytes before and during use, so a
/// stale entry is rebuilt (or bailed out of), never wrong.
#[derive(Debug, Clone)]
pub(crate) struct PlanCache {
    slots: Box<[Option<Box<BlockPlan>>]>,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
    pub(crate) evictions: u64,
    pub(crate) fallbacks: u64,
}

impl PlanCache {
    pub(crate) fn new() -> Self {
        Self {
            slots: vec![None; PLAN_SLOTS].into_boxed_slice(),
            hits: 0,
            misses: 0,
            evictions: 0,
            fallbacks: 0,
        }
    }

    #[inline]
    fn index(addr: u32) -> usize {
        ((addr >> 2) as usize) & (PLAN_SLOTS - 1)
    }
}

impl Machine {
    /// Ensures the cache slot for `addr` holds a fresh plan (rebuilding on
    /// entry-word mismatch). Returns the slot index if `addr` begins a
    /// plannable block.
    fn ensure_plan(&mut self, addr: u32) -> Option<usize> {
        let addr = addr & !3;
        let idx = PlanCache::index(addr);
        let first = self.mem.memory().read(addr).ok()?.0;
        let fresh = matches!(&self.plans.slots[idx],
            Some(p) if p.addr == addr && p.first_word == first);
        if !fresh {
            let plan = BlockPlan::build(&self.cfg, &self.mem, addr);
            if self.plans.slots[idx].is_some() {
                self.plans.evictions += 1;
            }
            self.plans.misses += 1;
            self.plans.slots[idx] = Some(Box::new(plan));
        }
        let plannable = !self.plans.slots[idx].as_ref().expect("slot just filled").is_empty();
        plannable.then_some(idx)
    }

    /// Warms the plan cache for the block at `addr` (compiler lowering
    /// pass). Returns whether `addr` begins a plannable block.
    pub fn prepare_plan(&mut self, addr: u32) -> bool {
        self.ensure_plan(addr).is_some()
    }

    /// The cached plan at `addr`, if fresh enough to have just executed
    /// (checker-side introspection after [`Machine::exec_block`]).
    pub fn plan_at(&self, addr: u32) -> Option<&BlockPlan> {
        let idx = PlanCache::index(addr & !3);
        self.plans.slots[idx].as_deref().filter(|p| p.addr == addr & !3 && !p.is_empty())
    }

    /// Decides whether the block at the current PC may run as one compiled
    /// plan, applying every fallback rule in the module docs. `cycle_bound`
    /// is the caller's stopping bound (e.g. `max_cycles`): the block is
    /// declined unless it provably finishes within it, so both engines stop
    /// at the identical cycle.
    pub fn plan_block(&mut self, inj: &FaultInjector, cycle_bound: u64) -> Option<BlockGate> {
        if !self.cfg.block_exec
            || self.halted
            || self.delay_slot
            || self.pending_branch.is_some()
            || !self.block_bits.is_empty()
        {
            return None;
        }
        let idx = self.ensure_plan(self.pc)?;
        let plan = self.plans.slots[idx].as_deref().expect("ensured");
        let end = self.cycle.checked_add(plan.worst_cycles)?;
        if end > cycle_bound || end > inj.quiescent_horizon() {
            return None;
        }
        Some(BlockGate {
            addr: plan.addr,
            len: plan.ops.len() as u32,
            has_store: plan.has_store,
            ends_with_cti: plan.ends_with_cti,
            argus_simple: plan.argus_simple,
            max_op_stall: plan.max_op_stall,
            words_hash: plan.words_hash,
        })
    }

    /// Executes the plan approved by [`Machine::plan_block`]. Returns
    /// `None` (machine untouched) if the machine moved since the gate was
    /// issued; otherwise retires the block's instructions with semantics
    /// bit-identical to the same number of interpreter steps.
    pub fn exec_block(&mut self, inj: &mut FaultInjector, gate: &BlockGate) -> Option<BlockCommit> {
        if self.halted || self.pc != gate.addr || self.delay_slot || self.pending_branch.is_some() {
            return None;
        }
        let idx = PlanCache::index(gate.addr);
        // Take the plan out of its slot so executing (which borrows the
        // machine mutably) cannot alias it.
        let plan = self.plans.slots[idx].take()?;
        if plan.addr != gate.addr || plan.is_empty() {
            self.plans.slots[idx] = Some(plan);
            return None;
        }
        let commit = self.exec_plan_ops(&plan);
        if commit.complete {
            self.plans.hits += 1;
            self.plans.slots[idx] = Some(plan);
        } else {
            // The block stored over its own upcoming words; drop the stale
            // plan so the next visit rebuilds from the new program bytes.
            self.plans.fallbacks += 1;
            self.plans.evictions += 1;
        }
        inj.set_cycle(self.cycle);
        Some(commit)
    }

    /// One-call fast path: plan the block at PC and execute it if every
    /// gate passes. `None` means "interpret at least one step".
    pub fn try_block_exec(
        &mut self,
        inj: &mut FaultInjector,
        cycle_bound: u64,
    ) -> Option<BlockCommit> {
        let gate = self.plan_block(inj, cycle_bound)?;
        self.exec_block(inj, &gate)
    }

    /// Drains the predecode and plan-cache counters accumulated since the
    /// last call (campaign `run` accounting).
    pub fn take_exec_stats(&mut self) -> ExecStats {
        let (predecode_hits, predecode_misses) = self.predecode.take_counters();
        ExecStats {
            predecode_hits,
            predecode_misses,
            plan_hits: std::mem::take(&mut self.plans.hits),
            plan_misses: std::mem::take(&mut self.plans.misses),
            plan_evictions: std::mem::take(&mut self.plans.evictions),
            plan_fallbacks: std::mem::take(&mut self.plans.fallbacks),
        }
    }

    /// The straight-line executor: an unrolled, tap-free rendition of
    /// [`Machine::step`]'s quiescent path. Every per-op fetch revalidates
    /// the plan's word; see the module docs for the mid-block bail.
    fn exec_plan_ops(&mut self, plan: &BlockPlan) -> BlockCommit {
        let mut pc = self.pc;
        let mut last_pc = pc;
        let mut cti_flag = None;
        let mut indirect_dcs = None;
        let mut oob_loads: Vec<OobLoad> = Vec::new();
        for (k, op) in plan.ops.iter().enumerate() {
            let (raw, fetch_cycles) = self.mem.fetch(pc);
            if raw != op.word {
                self.exec_stale_op(
                    plan,
                    k,
                    pc,
                    raw,
                    fetch_cycles,
                    &mut cti_flag,
                    &mut indirect_dcs,
                    &mut oob_loads,
                );
                return BlockCommit {
                    addr: plan.addr,
                    executed: k as u32 + 1,
                    complete: false,
                    last_pc: pc,
                    end_cycle: self.cycle,
                    ended_by_cti: false,
                    cti_flag,
                    indirect_dcs,
                    halted: self.halted,
                    flag_after: self.flag,
                    oob_loads,
                };
            }
            let in_delay = self.delay_slot;
            self.delay_slot = false;
            let oob_before = oob_loads.len();
            let (mem_cycles, extra_cycles, new_pending) = self.exec_op_quiescent(
                op.instr,
                pc,
                Some(op.link_value),
                &mut cti_flag,
                &mut indirect_dcs,
                &mut oob_loads,
            );
            let seq = pc.wrapping_add(4);
            let next = if in_delay { self.pending_branch.take().unwrap_or(seq) } else { seq };
            if op.instr.is_cti() {
                self.pending_branch = new_pending;
                self.delay_slot = true;
            }
            last_pc = pc;
            pc = next & !3;
            self.cycle += (fetch_cycles + mem_cycles + extra_cycles) as u64;
            self.retired += 1;
            for e in &mut oob_loads[oob_before..] {
                e.end_cycle = self.cycle;
            }
        }
        self.pc = pc;
        // The interpreter pushes each op's signature bits and clears them at
        // block end; the net effect on an empty accumulator is empty, so the
        // clean path never touches `block_bits` at all.
        BlockCommit {
            addr: plan.addr,
            executed: plan.ops.len() as u32,
            complete: true,
            last_pc,
            end_cycle: self.cycle,
            ended_by_cti: plan.ends_with_cti,
            cti_flag,
            indirect_dcs,
            halted: self.halted,
            flag_after: self.flag,
            oob_loads,
        }
    }

    /// Mid-block staleness: an earlier op of this very block stored over
    /// the word the plan expected at `pc`. The fetch already happened (and
    /// advanced cache state), so the freshly fetched word is executed here
    /// through the generic quiescent path after reconstructing the
    /// signature bit stream the interpreter would hold — leaving the
    /// machine exactly where `k + 1` interpreter steps would.
    #[allow(clippy::too_many_arguments)]
    fn exec_stale_op(
        &mut self,
        plan: &BlockPlan,
        k: usize,
        pc: u32,
        raw: u32,
        fetch_cycles: u32,
        cti_flag: &mut Option<bool>,
        indirect_dcs: &mut Option<u32>,
        oob_loads: &mut Vec<OobLoad>,
    ) {
        for op in &plan.ops[..k] {
            self.block_bits.push_packed(op.embedded);
        }
        let instr = decode(raw);
        self.block_bits.push_packed(embedded_bits_packed(raw));
        let in_delay = self.delay_slot;
        self.delay_slot = false;
        let mut block_end = in_delay;
        if matches!(instr, Instr::Sig { eob: true, .. } | Instr::Halt) {
            block_end = true;
        }
        let oob_before = oob_loads.len();
        let (mem_cycles, extra_cycles, new_pending) =
            self.exec_op_quiescent(instr, pc, None, cti_flag, indirect_dcs, oob_loads);
        let seq = pc.wrapping_add(4);
        let next = if in_delay { self.pending_branch.take().unwrap_or(seq) } else { seq };
        if instr.is_cti() {
            self.pending_branch = new_pending;
            self.delay_slot = true;
        }
        self.pc = next & !3;
        self.cycle += (fetch_cycles + mem_cycles + extra_cycles) as u64;
        self.retired += 1;
        for e in &mut oob_loads[oob_before..] {
            e.end_cycle = self.cycle;
        }
        if block_end {
            self.block_bits.clear();
        }
    }

    /// Executes one decoded instruction with quiescent (identity-tap)
    /// semantics: the exact state updates of [`Machine::step`] minus the
    /// fault taps, commit-record plumbing and fetch (already done by the
    /// caller). Returns `(mem_cycles, extra_cycles, new_pending_branch)`.
    ///
    /// `link_value`: `Some` uses the plan's precomputed value (the clean
    /// path never materializes signature bits); `None` derives it from the
    /// live bit stream (the stale-op path, where the bits are real).
    fn exec_op_quiescent(
        &mut self,
        instr: Instr,
        pc: u32,
        link_value: Option<u32>,
        cti_flag: &mut Option<bool>,
        indirect_dcs: &mut Option<u32>,
        oob_loads: &mut Vec<OobLoad>,
    ) -> (u32, u32, Option<u32>) {
        let argus = self.cfg.argus_mode;
        let mut mem_cycles = 0u32;
        let mut extra_cycles = 0u32;
        let mut new_pending: Option<u32> = None;
        match instr {
            Instr::Alu { op, rd, ra, rb } => {
                let r = exec::alu(op, self.regs[usize::from(ra)], self.regs[usize::from(rb)]);
                self.set_reg(rd, r);
            }
            Instr::AluImm { op, rd, ra, imm } => {
                let r = exec::alu(
                    exec::alu_imm_base(op),
                    self.regs[usize::from(ra)],
                    exec::alu_imm_operand(op, imm),
                );
                self.set_reg(rd, r);
            }
            Instr::ShiftImm { op, rd, ra, sh } => {
                let r = exec::shift_imm(op, self.regs[usize::from(ra)], sh);
                self.set_reg(rd, r);
            }
            Instr::Ext { kind, rd, ra } => {
                let r = exec::extend(kind, self.regs[usize::from(ra)]);
                self.set_reg(rd, r);
            }
            Instr::Movhi { rd, imm } => {
                self.set_reg(rd, (imm as u32) << 16);
            }
            Instr::MulDiv { op, rd, ra, rb } => {
                let a = self.regs[usize::from(ra)];
                let b = self.regs[usize::from(rb)];
                let v = match op {
                    MulDivOp::Mul | MulDivOp::Mulu => {
                        extra_cycles = self.cfg.mul_cycles.saturating_sub(1);
                        exec::multiply(op, a, b).0
                    }
                    MulDivOp::Div | MulDivOp::Divu => {
                        extra_cycles = self.cfg.div_cycles.saturating_sub(1);
                        exec::divide(op, a, b).0
                    }
                };
                self.set_reg(rd, v);
            }
            Instr::SetFlag { cond, ra, rb } => {
                self.flag = cond.eval(self.regs[usize::from(ra)], self.regs[usize::from(rb)]);
            }
            Instr::SetFlagImm { cond, ra, imm } => {
                let b = argus_sim::bits::sign_extend(imm as u32, 16);
                self.flag = cond.eval(self.regs[usize::from(ra)], b);
            }
            Instr::Branch { taken_if, off } => {
                let f = self.flag;
                *cti_flag = Some(f);
                new_pending = (f == taken_if).then(|| pc.wrapping_add((off as u32) << 2));
            }
            Instr::Jump { link, off } => {
                new_pending = Some(pc.wrapping_add((off as u32) << 2));
                if link {
                    let v = link_value.unwrap_or_else(|| self.link_value_quiescent(pc, 1));
                    self.set_reg(Reg::LR, v);
                }
            }
            Instr::JumpReg { link, rb } => {
                let v = self.regs[usize::from(rb)];
                let (addr, dcs) = if argus { split_indirect_target(v) } else { (v, 0) };
                new_pending = Some(addr);
                if link {
                    let lv = link_value.unwrap_or_else(|| self.link_value_quiescent(pc, 0));
                    self.set_reg(Reg::LR, lv);
                }
                *indirect_dcs = argus.then_some(dcs);
            }
            Instr::Load { size, signed, off, rd, ra } => {
                let base = self.regs[usize::from(ra)];
                let addr = base.wrapping_add(off as i32 as u32);
                let ali = exec::align_addr(addr, size);
                let word_addr = ali & !3;
                let fallback = self.cfg.mem.hit_cycles + self.cfg.mem.miss_penalty;
                let loaded = self.mem.load_word(word_addr);
                let oob = loaded.is_err();
                let (payload, _tag, lat) = loaded.unwrap_or((u32::MAX, false, fallback));
                let d = if argus { payload ^ word_addr } else { payload };
                if oob {
                    // end_cycle is patched by the caller once the op's
                    // cycles are charged. The fallback tag is clear.
                    let parity_ok = !argus || !parity32(d);
                    oob_loads.push(OobLoad { pc, end_cycle: 0, parity_ok });
                }
                let v = exec::align_load(d, ali & 3, size, signed);
                mem_cycles = lat.saturating_sub(1);
                self.set_reg(rd, v);
            }
            Instr::Store { size, off, ra, rb } => {
                let base = self.regs[usize::from(ra)];
                let data = self.regs[usize::from(rb)];
                let addr = base.wrapping_add(off as i32 as u32);
                let ali = exec::align_addr(addr, size);
                let word_addr = ali & !3;
                let (payload, tag) = if matches!(size, MemSize::Word) {
                    let payload = if argus { data ^ word_addr } else { data };
                    // Word stores carry the operand's parity tag through
                    // (the paper's end-to-end register→memory protection).
                    let tag = if argus { self.parity[usize::from(rb)] } else { parity32(data) };
                    (payload, tag)
                } else {
                    let (oldp, _t) = self.mem.memory().read(word_addr).unwrap_or((0, false));
                    let old_d = if argus { oldp ^ word_addr } else { oldp };
                    let merged = exec::merge_store(old_d, ali & 3, size, data);
                    let payload = if argus { merged ^ word_addr } else { merged };
                    (payload, parity32(merged))
                };
                let fallback = self.cfg.mem.hit_cycles + self.cfg.mem.miss_penalty;
                let lat = self.mem.store_word_tagged(word_addr, payload, tag).unwrap_or(fallback);
                mem_cycles = lat.saturating_sub(1);
            }
            Instr::Nop | Instr::Sig { .. } => {}
            Instr::Halt => {
                self.halted = true;
            }
        }
        (mem_cycles, extra_cycles, new_pending)
    }

    /// Quiescent rendition of the interpreter's link-value computation,
    /// reading the live signature bit stream (stale-op path only).
    fn link_value_quiescent(&self, pc: u32, slot: usize) -> u32 {
        let ret = pc.wrapping_add(8);
        if self.cfg.argus_mode {
            let dcs = self.block_bits.extract(5 * slot, 5) & 31;
            pack_indirect_target(ret & INDIRECT_ADDR_MASK, dcs)
        } else {
            ret
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MachineConfig, StepOutcome};
    use argus_isa::encode::encode;
    use argus_isa::instr::{AluImmOp, AluOp, Cond};
    use argus_isa::reg::r;

    fn machine(block_exec: bool, argus_mode: bool, words: &[u32]) -> Machine {
        let mut m = Machine::new(MachineConfig { block_exec, argus_mode, ..Default::default() });
        m.load_code(0, words);
        m
    }

    fn demo_program() -> Vec<u32> {
        // Two blocks: a loop body ending in a conditional branch + delay
        // slot, then a fallthrough block ending in halt.
        [
            Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 5 },
            // loop: r4 += r3; r3 -= 1; if r3 != 0 goto loop (delay: nop)
            Instr::Alu { op: AluOp::Add, rd: r(4), ra: r(4), rb: r(3) },
            Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: r(3), imm: 0xFFFF },
            Instr::SetFlagImm { cond: Cond::Ne, ra: r(3), imm: 0 },
            Instr::Branch { taken_if: true, off: -3 },
            Instr::Nop,
            Instr::Store { size: MemSize::Word, ra: Reg::ZERO, rb: r(4), off: 0x400 },
            Instr::Load { size: MemSize::Word, signed: false, rd: r(5), ra: Reg::ZERO, off: 0x400 },
            Instr::MulDiv { op: MulDivOp::Mul, rd: r(6), ra: r(5), rb: r(5) },
            Instr::Halt,
        ]
        .iter()
        .map(encode)
        .collect()
    }

    /// The contract in one test: block exec on vs off is bit-identical —
    /// digest, full fingerprint, cycles, retired.
    #[test]
    fn block_exec_is_bit_identical_to_interpreter() {
        use crate::snapshot::SnapshotState;
        for argus_mode in [false, true] {
            let words = demo_program();
            let mut on = machine(true, argus_mode, &words);
            let mut off = machine(false, argus_mode, &words);
            let ra = on.run_to_halt(&mut FaultInjector::none(), 100_000);
            let rb = off.run_to_halt(&mut FaultInjector::none(), 100_000);
            assert_eq!(ra, rb, "argus={argus_mode}: run results diverged");
            assert_eq!(on.state_digest(), off.state_digest(), "argus={argus_mode}");
            assert_eq!(on.state_fingerprint(), off.state_fingerprint(), "argus={argus_mode}");
            let stats = on.take_exec_stats();
            assert!(stats.plan_hits > 0, "fast path must actually run: {stats:?}");
        }
    }

    /// Cycle bounds stop both engines at the identical cycle, even when the
    /// bound falls mid-block (the plan is declined, the interpreter steps).
    #[test]
    fn cycle_bound_stops_identically() {
        let words = demo_program();
        for bound in [1u64, 5, 23, 24, 25, 40, 60, 200] {
            let mut on = machine(true, true, &words);
            let mut off = machine(false, true, &words);
            let ra = on.run_to_halt(&mut FaultInjector::none(), bound);
            let rb = off.run_to_halt(&mut FaultInjector::none(), bound);
            assert_eq!(ra, rb, "bound={bound}");
            assert_eq!(on.state_digest(), off.state_digest(), "bound={bound}");
        }
    }

    /// An in-block store over an upcoming word of the same block must bail
    /// to the generic path and still match the interpreter bit for bit.
    #[test]
    fn self_modifying_block_bails_and_stays_identical() {
        use crate::snapshot::SnapshotState;
        // r3 := encoding of "addi r5, r0, 7"; store it over the word the
        // nop at index 4 occupies — then fall into it within the block.
        let patch = encode(&Instr::AluImm { op: AluImmOp::Addi, rd: r(5), ra: Reg::ZERO, imm: 7 });
        let words: Vec<u32> = [
            Instr::Movhi { rd: r(3), imm: (patch >> 16) as u16 },
            Instr::AluImm { op: AluImmOp::Ori, rd: r(3), ra: r(3), imm: (patch & 0xFFFF) as u16 },
            Instr::Store { size: MemSize::Word, ra: Reg::ZERO, rb: r(3), off: 16 },
            Instr::Nop,
            Instr::Nop, // word 4 (byte 16): patched to "addi r5, r0, 7"
            Instr::Halt,
        ]
        .iter()
        .map(encode)
        .collect();
        let mut on = machine(true, false, &words);
        let mut off = machine(false, false, &words);
        let ra = on.run_to_halt(&mut FaultInjector::none(), 100_000);
        let rb = off.run_to_halt(&mut FaultInjector::none(), 100_000);
        assert_eq!(ra, rb);
        assert_eq!(on.reg(r(5)), 7, "patched instruction must have executed");
        assert_eq!(on.state_digest(), off.state_digest());
        assert_eq!(on.state_fingerprint(), off.state_fingerprint());
        let stats = on.take_exec_stats();
        assert!(stats.plan_fallbacks > 0, "the stale word must trigger a bail: {stats:?}");
    }

    /// With a fault armed inside a block's cycle span, the plan must be
    /// declined (quiescent horizon) and the armed path must match the
    /// always-interpreted machine exactly.
    #[test]
    fn armed_fault_mid_block_falls_back_identically() {
        use argus_sim::fault::{Fault, FaultKind, SiteFlavor};
        let words = demo_program();
        for arm_cycle in [0u64, 10, 25, 26, 27, 40, 80] {
            let fault = Fault {
                site: crate::sites::EX_RESULT_BUS,
                bit: 1,
                kind: FaultKind::Transient,
                arm_cycle,
                flavor: SiteFlavor::Single,
                width: 32,
                sensitization: 1.0,
            };
            let mut on = machine(true, true, &words);
            let mut off = machine(false, true, &words);
            let mut inj_on = FaultInjector::with_fault(fault.clone());
            let mut inj_off = FaultInjector::with_fault(fault);
            let ra = on.run_to_halt(&mut inj_on, 100_000);
            let rb = off.run_to_halt(&mut inj_off, 100_000);
            assert_eq!(ra, rb, "arm={arm_cycle}");
            assert_eq!(on.state_digest(), off.state_digest(), "arm={arm_cycle}");
            assert_eq!(inj_on.flip_count(), inj_off.flip_count(), "arm={arm_cycle}");
        }
    }

    /// Interleaving block execution with single stepping (the campaign's
    /// mixed driving pattern) also stays bit-identical.
    #[test]
    fn mixed_stepping_and_blocks_match_pure_interpretation() {
        let words = demo_program();
        let mut mixed = machine(true, true, &words);
        let mut pure = machine(false, true, &words);
        let mut inj_a = FaultInjector::none();
        let mut inj_b = FaultInjector::none();
        let mut toggle = false;
        while !mixed.halted() {
            toggle = !toggle;
            let did_block = toggle && mixed.try_block_exec(&mut inj_a, u64::MAX).is_some();
            let steps = if did_block {
                // Catch the interpreter up to the block's end cycle.
                let mut n = 0u32;
                while pure.cycle() < mixed.cycle() {
                    pure.step(&mut inj_b);
                    n += 1;
                }
                n
            } else {
                if mixed.step(&mut inj_a) == StepOutcome::Halted {
                    break;
                }
                pure.step(&mut inj_b);
                1
            };
            assert!(steps > 0 || mixed.halted());
            assert_eq!(mixed.cycle(), pure.cycle());
            assert_eq!(mixed.pc(), pure.pc());
            assert_eq!(mixed.state_digest(), pure.state_digest());
        }
        while !pure.halted() {
            pure.step(&mut inj_b);
        }
        assert_eq!(mixed.state_digest(), pure.state_digest());
    }

    /// Plan gating refuses mid-block machine states (delay slot / pending
    /// branch / partial signature stream).
    #[test]
    fn gate_refuses_non_boundary_states() {
        let words = demo_program();
        let mut m = machine(true, true, &words);
        let mut inj = FaultInjector::none();
        // Step to land exactly on the CTI (index 4); the following state is
        // a delay slot with a pending branch.
        for _ in 0..5 {
            m.step(&mut inj);
        }
        assert!(m.plan_block(&inj, u64::MAX).is_none(), "delay-slot state must be refused");
    }

    /// Negative plans (no terminator within the cap) are cached and the
    /// address is simply interpreted.
    #[test]
    fn unplannable_address_is_refused_but_cached() {
        // A long run of nops with no terminator anywhere within the cap.
        let words = vec![encode(&Instr::Nop); MAX_PLAN_OPS + 8];
        let mut m = machine(true, false, &words);
        assert!(!m.prepare_plan(0));
        assert!(!m.prepare_plan(0), "second probe hits the cached negative plan");
        let stats = m.take_exec_stats();
        assert_eq!(stats.plan_misses, 1, "negative plan built once: {stats:?}");
        assert!(m.plan_at(0).is_none());
    }

    /// `prepare_plan` + `plan_at` expose a plan whose static metadata
    /// matches the program.
    #[test]
    fn plan_metadata_reflects_block_shape() {
        let words = demo_program();
        let mut m = machine(true, true, &words);
        // Block at 4: add, addi, setflag, branch, nop(delay) = 5 ops.
        assert!(m.prepare_plan(4));
        let plan = m.plan_at(4).expect("plannable");
        assert_eq!(plan.len(), 5);
        assert!(plan.ends_with_cti());
        assert!(plan.argus_simple());
        assert!(!plan.has_store());
        // Block at 24: store, load, mul, halt = 4 ops, fallthrough end.
        assert!(m.prepare_plan(24));
        let plan = m.plan_at(24).expect("plannable");
        assert_eq!(plan.len(), 4);
        assert!(!plan.ends_with_cti());
        assert!(plan.argus_simple());
        assert!(plan.has_store());
    }

    /// The worst-case cycle estimate dominates the real cost (the gate's
    /// safety depends on it overestimating only).
    #[test]
    fn worst_cycles_bounds_actual_cost() {
        let words = demo_program();
        let mut m = machine(true, true, &words);
        let mut inj = FaultInjector::none();
        loop {
            let before = m.cycle();
            match m.try_block_exec(&mut inj, u64::MAX) {
                Some(commit) => {
                    let plan = m.plan_at(commit.addr).expect("plan survives a hit");
                    assert!(
                        commit.end_cycle - before <= plan.worst_cycles(),
                        "worst_cycles must dominate"
                    );
                    if commit.halted {
                        break;
                    }
                }
                None => {
                    if m.step(&mut inj) == StepOutcome::Halted {
                        break;
                    }
                }
            }
        }
        assert!(m.halted());
    }

    /// Link values are precomputed per plan and must equal the interpreter's
    /// bit-stream-derived values (jal inside a signed block).
    #[test]
    fn link_values_match_interpreter_in_argus_mode() {
        let sig = Instr::Sig { nslots: 2, eob: false, payload: (0b10101 << 5) | 0b00111 };
        let words: Vec<u32> = [
            sig,
            Instr::Jump { link: true, off: 3 }, // to word 4
            Instr::Nop,                         // delay slot
            Instr::Halt,
            Instr::Halt, // jal target
        ]
        .iter()
        .map(encode)
        .collect();
        let mut on = machine(true, true, &words);
        let mut off = machine(false, true, &words);
        on.run_to_halt(&mut FaultInjector::none(), 10_000);
        off.run_to_halt(&mut FaultInjector::none(), 10_000);
        assert_eq!(on.reg(Reg::LR), off.reg(Reg::LR));
        let (addr, dcs) = split_indirect_target(on.reg(Reg::LR));
        assert_eq!((addr, dcs), (12, 0b10101));
    }
}
