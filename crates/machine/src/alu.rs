//! Structural ALU model: the pure semantics of [`crate::exec`] with fault
//! taps at the internal unit outputs, so injected faults distinguish
//! "error inside the functional unit" (caught by the computation checker)
//! from "error on the operand/result buses" (caught by parity).

use crate::exec;
use crate::sites;
use argus_isa::instr::{AluOp, ExtKind, ShiftOp};
use argus_sim::fault::FaultInjector;

/// Executes a register-register ALU op, tapping the owning sub-unit's
/// output signal.
pub fn execute(op: AluOp, a: u32, b: u32, inj: &mut FaultInjector) -> u32 {
    let raw = exec::alu(op, a, b);
    match op {
        AluOp::Add | AluOp::Sub => inj.tap32(sites::ALU_ADDER_OUT, raw),
        AluOp::And | AluOp::Or | AluOp::Xor => inj.tap32(sites::ALU_LOGIC_OUT, raw),
        AluOp::Sll | AluOp::Srl | AluOp::Sra => inj.tap32(sites::ALU_SHIFT_OUT, raw),
    }
}

/// Executes a shift-by-immediate through the shifter.
pub fn execute_shift_imm(op: ShiftOp, a: u32, sh: u8, inj: &mut FaultInjector) -> u32 {
    inj.tap32(sites::ALU_SHIFT_OUT, exec::shift_imm(op, a, sh))
}

/// Executes a sign/zero extension through the shifter/extension unit.
pub fn execute_ext(kind: ExtKind, a: u32, inj: &mut FaultInjector) -> u32 {
    inj.tap32(sites::ALU_SHIFT_OUT, exec::extend(kind, a))
}

/// Computes a load/store effective address on the shared ALU adder.
pub fn execute_addr(base: u32, off: i16, inj: &mut FaultInjector) -> u32 {
    let sum = base.wrapping_add(off as i32 as u32);
    let adder_out = inj.tap32(sites::ALU_ADDER_OUT, sum);
    inj.tap32(sites::LSU_ADDR, adder_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_sim::fault::{Fault, FaultKind, SiteFlavor};

    fn adder_fault() -> FaultInjector {
        let mut inj = FaultInjector::with_fault(Fault {
            site: sites::ALU_ADDER_OUT,
            bit: 0,
            kind: FaultKind::Permanent,
            arm_cycle: 0,
            flavor: SiteFlavor::Single,
            width: 32,
            sensitization: 1.0,
        });
        inj.set_cycle(0);
        inj
    }

    #[test]
    fn fault_free_matches_pure_semantics() {
        let mut inj = FaultInjector::none();
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sra,
        ] {
            assert_eq!(execute(op, 0xF0F0, 5, &mut inj), exec::alu(op, 0xF0F0, 5));
        }
    }

    #[test]
    fn adder_fault_hits_add_but_not_logic() {
        let mut inj = adder_fault();
        assert_eq!(execute(AluOp::Add, 2, 2, &mut inj), 5);
        let mut inj = adder_fault();
        assert_eq!(execute(AluOp::Xor, 2, 2, &mut inj), 0, "logic unit unaffected");
    }

    #[test]
    fn address_adder_shares_the_alu_adder() {
        let mut inj = adder_fault();
        assert_eq!(execute_addr(0x100, 4, &mut inj), 0x105);
    }

    #[test]
    fn ext_uses_shift_unit() {
        let mut inj = FaultInjector::with_fault(Fault {
            site: sites::ALU_SHIFT_OUT,
            bit: 31,
            kind: FaultKind::Permanent,
            arm_cycle: 0,
            flavor: SiteFlavor::Single,
            width: 32,
            sensitization: 1.0,
        });
        inj.set_cycle(0);
        assert_eq!(execute_ext(ExtKind::Bz, 0xFF, &mut inj), 0x8000_00FF);
        assert_eq!(execute_shift_imm(ShiftOp::Srl, 0x8000_0000, 1, &mut inj), 0xC000_0000);
    }
}
