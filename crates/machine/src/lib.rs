//! # argus-machine — the OR1200-like core simulator
//!
//! A 32-bit, scalar, in-order core modeled on the OpenRISC OR1200 that the
//! paper instruments: 4-stage pipeline timing (1 instruction per cycle when
//! nothing stalls), one branch delay slot with no branch penalty, a
//! non-pipelined multi-cycle multiplier/divider, a load/store unit that
//! reuses the ALU adder for address computation, and blocking 8KB caches
//! (from `argus-mem`).
//!
//! The simulator executes one instruction per [`Machine::step`] and charges
//! it the cycles the pipeline would take. Every microarchitectural signal a
//! fault could corrupt is *tapped* through an `argus_sim::fault::FaultInjector`
//! (see [`sites`] for the inventory), and each retired instruction emits a
//! [`CommitRecord`] carrying exactly the signal values the Argus-1 checker
//! hardware observes.
//!
//! # Examples
//!
//! ```
//! use argus_machine::{Machine, MachineConfig, StepOutcome};
//! use argus_isa::{Instr, AluOp, Reg, encode::encode};
//! use argus_sim::fault::FaultInjector;
//!
//! let prog = [
//!     encode(&Instr::AluImm { op: argus_isa::instr::AluImmOp::Addi,
//!                             rd: Reg::new(3), ra: Reg::ZERO, imm: 7 }),
//!     encode(&Instr::Alu { op: AluOp::Add, rd: Reg::new(4),
//!                          ra: Reg::new(3), rb: Reg::new(3) }),
//!     encode(&Instr::Halt),
//! ];
//! let mut m = Machine::new(MachineConfig::default());
//! m.load_code(0, &prog);
//! let mut inj = FaultInjector::none();
//! while !matches!(m.step(&mut inj), StepOutcome::Halted) {}
//! assert_eq!(m.reg(Reg::new(4)), 14);
//! ```

pub mod alu;
pub mod block;
pub mod commit;
pub mod exec;
pub mod machine;
pub mod muldiv;
pub mod predecode;
pub mod sites;
pub mod snapshot;

pub use block::{BlockCommit, BlockGate, BlockPlan, ExecStats, OobLoad};
pub use commit::{BranchInfo, CommitRecord, MemAccess, Operand, Operands};
pub use machine::{Machine, MachineConfig, RunResult, StepOutcome};
pub use snapshot::{CoreState, MachineState, SnapshotState};
