//! Fault-site inventory of the core datapath and control.
//!
//! Site weights approximate each unit's share of the synthesized gate count
//! (the paper samples 5,000 of ~40,000 gate outputs). `Double`-flavor
//! entries model gates that drive two adjacent datapath bits — the
//! even-bit-flip population that single-bit parity cannot see, which the
//! paper identifies as the dominant source of its residual silent
//! corruptions.
//!
//! The Argus-1 checker hardware adds its own sites in `argus-core`; the
//! few listed here with `Argus*` units are assist logic that physically
//! lives in the fetch/LSU paths (signature extraction, link-DCS muxing,
//! the store-address XOR) but exists only because of Argus-1.

use argus_sim::fault::{SiteDesc, Unit};

// --- Fetch ---------------------------------------------------------------
/// Instruction fetch bus (I-cache to decode).
pub const IF_IBUS: &str = "if_ibus";
/// Next-PC mux output.
pub const IF_PC_NEXT: &str = "if_pc_next";

// --- Decode / opcode distribution (§3.3, Figure 3) -----------------------
/// Shared opcode trunk feeding FU, sub-checker and SHS unit alike.
pub const ID_OPC_TRUNK: &str = "id_opc_trunk";
/// Private opcode branch to the functional unit only.
pub const ID_OPC_FU: &str = "id_opc_fu";
/// Private opcode branch to the computation sub-checker only (Argus HW).
pub const ID_OPC_SUBCHK: &str = "id_opc_subchk";
/// Private opcode branch to the SHS computation unit only (Argus HW).
pub const ID_OPC_SHS: &str = "id_opc_shs";

// --- Register file --------------------------------------------------------
/// Read-port A address decoder.
pub const RF_RADDR_A: &str = "rf_raddr_a";
/// Read-port B address decoder.
pub const RF_RADDR_B: &str = "rf_raddr_b";
/// Write-port address decoder.
pub const RF_WADDR: &str = "rf_waddr";

// --- Execute --------------------------------------------------------------
/// Operand A bus into EX (feeds FU and sub-checker identically).
pub const EX_OPA_BUS: &str = "ex_opa_bus";
/// Operand B bus into EX.
pub const EX_OPB_BUS: &str = "ex_opb_bus";
/// Adder output inside the ALU.
pub const ALU_ADDER_OUT: &str = "alu_adder_out";
/// Bitwise-logic unit output inside the ALU.
pub const ALU_LOGIC_OUT: &str = "alu_logic_out";
/// Shifter / extension unit output inside the ALU.
pub const ALU_SHIFT_OUT: &str = "alu_shift_out";
/// Result bus from EX to writeback (after result-parity generation).
pub const EX_RESULT_BUS: &str = "ex_result_bus";

// --- Multiplier / divider --------------------------------------------------
/// Low word of the multiplier array output.
pub const MUL_LO: &str = "mul_lo";
/// High word of the multiplier array (reachable only via multiply-
/// accumulate, which this core lacks — errors here are always masked).
pub const MUL_HI: &str = "mul_hi";
/// Divider quotient output.
pub const DIV_Q: &str = "div_q";
/// Divider remainder output (consumed only by the mod-M sub-checker).
pub const DIV_R: &str = "div_r";

// --- Load/store unit --------------------------------------------------------
/// Effective-address adder output.
pub const LSU_ADDR: &str = "lsu_addr";
/// Store-data bus (after the LSU-input parity check point).
pub const LSU_ST_BUS: &str = "lsu_st_bus";
/// Sub-word read-modify-write merge network.
pub const LSU_ST_MERGE: &str = "lsu_st_merge";
/// Load aligner / sign-extension output.
pub const LSU_ALIGN_OUT: &str = "lsu_align_out";
/// Load-data bus to writeback (after load-parity generation).
pub const LSU_LD_BUS: &str = "lsu_ld_bus";

// --- Control ----------------------------------------------------------------
/// Pipeline stall-release signal; a stuck value hangs the core (watchdog
/// territory).
pub const CTL_STALL_RELEASE: &str = "ctl_stall_release";
/// Branch-taken mux select.
pub const BR_TAKEN: &str = "br_taken";
/// Branch/jump target adder output.
pub const BR_TARGET: &str = "br_target";
/// Compare (set-flag) unit output.
pub const CMP_FLAG_OUT: &str = "cmp_flag_out";
/// Flag read port feeding the branch unit.
pub const FLAG_READ: &str = "flag_read";

// --- Memory interface ---------------------------------------------------------
/// Row/word-select address as seen by the D-side memory arrays.
pub const DMEM_ROW_ADDR: &str = "dmem_row_addr";

// --- Argus assist logic in the core (accounted as Argus hardware) -------------
/// Address input of the store/load D⊕A XOR unit (§3.4).
pub const LSU_ADDR_XOR: &str = "lsu_addr_xor";
/// Link-DCS mux writing the target-block DCS into the link register.
pub const LNK_DCS_MUX: &str = "lnk_dcs_mux";
/// Signature-extraction shift register collecting embedded DCS bits.
pub const SIG_EXTRACT: &str = "sig_extract";

/// The complete fault-site inventory of the core (excluding checker-internal
/// sites owned by `argus-core`).
pub fn core_sites() -> Vec<SiteDesc> {
    use argus_sim::fault::SiteFlavor::Double;
    let mut sites = per_register_cell_sites();
    sites.extend(vec![
        // Fetch/decode cones: moderate logic depth between a faulted gate
        // and these signals.
        SiteDesc::new(IF_IBUS, 32, Unit::Fetch, 3.0).sensitized(0.7),
        SiteDesc::new(IF_PC_NEXT, 32, Unit::Fetch, 2.0).sensitized(0.6),
        SiteDesc::new(ID_OPC_TRUNK, 32, Unit::Decode, 2.0).sensitized(0.5),
        SiteDesc::new(ID_OPC_FU, 32, Unit::Decode, 1.5).sensitized(0.5),
        SiteDesc::new(ID_OPC_SUBCHK, 32, Unit::ArgusCc, 0.8).sensitized(0.5),
        SiteDesc::new(ID_OPC_SHS, 32, Unit::ArgusShs, 0.8).sensitized(0.5),
        // Port address decoders are a few dozen gates each — a sliver of
        // the ~40k-gate design.
        SiteDesc::new(RF_RADDR_A, 5, Unit::RegFile, 0.08),
        SiteDesc::new(RF_RADDR_B, 5, Unit::RegFile, 0.08),
        SiteDesc::new(RF_WADDR, 5, Unit::RegFile, 0.08),
        SiteDesc::new(EX_OPA_BUS, 32, Unit::Alu, 1.5).sensitized(0.9),
        SiteDesc { flavor: Double, ..SiteDesc::new(EX_OPA_BUS, 32, Unit::Alu, 0.12) },
        SiteDesc::new(EX_OPB_BUS, 32, Unit::Alu, 1.5).sensitized(0.9),
        SiteDesc { flavor: Double, ..SiteDesc::new(EX_OPB_BUS, 32, Unit::Alu, 0.12) },
        // Deep combinational cones: a random internal gate fault rarely
        // sensitizes a path to the unit output on a given operand pair.
        SiteDesc::new(ALU_ADDER_OUT, 32, Unit::Alu, 3.0).sensitized(0.4),
        SiteDesc::new(ALU_LOGIC_OUT, 32, Unit::Alu, 1.0).sensitized(0.5),
        SiteDesc::new(ALU_SHIFT_OUT, 32, Unit::Alu, 2.0).sensitized(0.4),
        SiteDesc::new(EX_RESULT_BUS, 32, Unit::Alu, 1.5).sensitized(0.9),
        SiteDesc { flavor: Double, ..SiteDesc::new(EX_RESULT_BUS, 32, Unit::Alu, 0.15) },
        SiteDesc::new(MUL_LO, 32, Unit::MulDiv, 4.0).sensitized(0.35),
        SiteDesc::new(MUL_HI, 32, Unit::MulDiv, 4.0).sensitized(0.35),
        SiteDesc::new(DIV_Q, 32, Unit::MulDiv, 2.0).sensitized(0.35),
        SiteDesc::new(DIV_R, 32, Unit::MulDiv, 1.0).sensitized(0.35),
        SiteDesc::new(LSU_ADDR, 32, Unit::Lsu, 1.5).sensitized(0.5),
        SiteDesc::new(LSU_ST_BUS, 32, Unit::Lsu, 0.6).sensitized(0.9),
        SiteDesc { flavor: Double, ..SiteDesc::new(LSU_ST_BUS, 32, Unit::Lsu, 0.06) },
        SiteDesc::new(LSU_ST_MERGE, 32, Unit::Lsu, 0.15).sensitized(0.6),
        SiteDesc::new(LSU_ALIGN_OUT, 32, Unit::Lsu, 1.0).sensitized(0.6),
        SiteDesc::new(LSU_LD_BUS, 32, Unit::Lsu, 1.0).sensitized(0.9),
        SiteDesc { flavor: Double, ..SiteDesc::new(LSU_LD_BUS, 32, Unit::Lsu, 0.1) },
        SiteDesc::new(CTL_STALL_RELEASE, 1, Unit::Control, 0.8).sensitized(0.5),
        SiteDesc::new(BR_TAKEN, 1, Unit::Control, 0.4).sensitized(0.5),
        SiteDesc::new(BR_TARGET, 32, Unit::Control, 1.0).sensitized(0.5),
        SiteDesc::new(CMP_FLAG_OUT, 1, Unit::Control, 0.4).sensitized(0.5),
        SiteDesc::new(FLAG_READ, 1, Unit::Control, 0.2).sensitized(0.8),
        // Row selection spans the word-offset + index bits of the 8KB
        // arrays; faults in higher address bits surface as tag mismatches
        // (clean misses), which redundant tag compare covers.
        SiteDesc::new(DMEM_ROW_ADDR, 14, Unit::MemIface, 1.2).sensitized(0.7),
        SiteDesc::new(LSU_ADDR_XOR, 32, Unit::ArgusParity, 0.5).sensitized(0.7),
        SiteDesc::new(LNK_DCS_MUX, 5, Unit::ArgusDcs, 0.2),
        SiteDesc::new(SIG_EXTRACT, 5, Unit::ArgusDcs, 0.4),
    ]);
    sites
}

/// One storage site per architectural register, so a permanent cell fault
/// is pinned to a single register (total register-file weight 8.0 for the
/// single-bit population plus a small double-bit population).
fn per_register_cell_sites() -> Vec<SiteDesc> {
    use argus_sim::fault::SiteFlavor::Double;
    let mut v = Vec::with_capacity(64);
    for name in crate::machine::RF_CELL_SITES {
        v.push(SiteDesc::new(name, 32, Unit::RegFile, 10.5 / 32.0));
        v.push(SiteDesc { flavor: Double, ..SiteDesc::new(name, 32, Unit::RegFile, 0.25 / 32.0) });
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_is_nonempty_and_weighted() {
        let sites = core_sites();
        assert!(sites.len() > 30);
        assert!(sites.iter().all(|s| s.weight > 0.0 && s.width >= 1));
    }

    #[test]
    fn duplicate_names_only_differ_in_flavor() {
        use std::collections::HashMap;
        let mut seen: HashMap<&str, Vec<argus_sim::fault::SiteFlavor>> = HashMap::new();
        for s in core_sites() {
            seen.entry(s.name).or_default().push(s.flavor);
        }
        for (name, flavors) in seen {
            let singles = flavors
                .iter()
                .filter(|f| matches!(f, argus_sim::fault::SiteFlavor::Single))
                .count();
            assert!(singles <= 1, "site {name} listed twice with Single flavor");
        }
    }

    #[test]
    fn argus_assist_sites_classified_as_argus() {
        let sites = core_sites();
        for name in [LSU_ADDR_XOR, LNK_DCS_MUX, SIG_EXTRACT, ID_OPC_SHS, ID_OPC_SUBCHK] {
            let s = sites.iter().find(|s| s.name == name).unwrap();
            assert!(s.unit.is_argus_hardware(), "{name} must be Argus hardware");
        }
    }
}
