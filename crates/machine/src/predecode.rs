//! Direct-mapped predecode memo: raw instruction word → decoded forms.
//!
//! The step loop needs the decoded instruction three times per commit —
//! once for the functional-unit path and once each for the computation
//! sub-checker and SHS taps — plus the word's embedded signature bits.
//! During quiescent execution (no armed fault; see
//! [`argus_sim::fault::FaultInjector::is_quiescent`]) all three decode taps
//! are identity functions, so the three decodes and the embedded-bit
//! extraction collapse to one memoized lookup keyed on the raw word.
//!
//! The memo is a pure function of the word: a direct-mapped table indexed
//! by a multiplicative hash, where every entry is always a *valid*
//! (word, decode) pair — entries are pre-filled with word 0's decode, and a
//! mismatching probe recomputes and replaces. Stale entries are therefore
//! still correct, which is why the memo needs no invalidation, is excluded
//! from snapshots and fingerprints, and cannot change architectural or
//! checker-visible state. When any fault is armed, the machine bypasses the
//! memo entirely and runs the original tap + triple-decode path, so
//! `ID_OPC_*` injection behaves bit-identically with the memo on or off.

use argus_isa::decode::decode;
use argus_isa::encode::embedded_bits_of;
use argus_isa::instr::Instr;
use argus_sim::bitstream::PackedBits;

/// Entries in the direct-mapped table. 512 covers every workload in the
/// suite (at 4 bytes/instruction that is 2KB of code per conflict-free
/// residency) while keeping the table itself small enough to stay cached.
const ENTRIES: usize = 512;

#[derive(Debug, Clone, Copy)]
struct Entry {
    word: u32,
    instr: Instr,
    embedded: PackedBits,
}

/// The memo table. See the module docs for the invariants.
#[derive(Debug, Clone)]
pub struct Predecode {
    entries: Box<[Entry; ENTRIES]>,
}

impl Default for Predecode {
    fn default() -> Self {
        Self::new()
    }
}

impl Predecode {
    /// A memo with every entry holding word 0's true decode (so no entry
    /// is ever invalid and lookups need no validity check).
    pub fn new() -> Self {
        let instr = decode(0);
        let entry = Entry { word: 0, instr, embedded: embedded_bits_of(&instr, 0) };
        Self { entries: Box::new([entry; ENTRIES]) }
    }

    #[inline]
    fn index(word: u32) -> usize {
        // Fibonacci hashing spreads the opcode/register bits across the
        // index; low bits alone would collide on same-opcode runs.
        (word.wrapping_mul(0x9E37_79B9) >> (32 - ENTRIES.trailing_zeros())) as usize
    }

    /// The decoded instruction and embedded signature bits of `word`,
    /// memoized. Always equals `(decode(word), embedded_bits_packed(word))`.
    #[inline]
    pub fn lookup(&mut self, word: u32) -> (Instr, PackedBits) {
        let e = &mut self.entries[Self::index(word)];
        if e.word != word {
            let instr = decode(word);
            *e = Entry { word, instr, embedded: embedded_bits_of(&instr, word) };
        }
        (e.instr, e.embedded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_isa::encode::embedded_bits_packed;
    use argus_sim::rng::SplitMix64;

    /// Satellite property test: the memo is bit-identical to direct decode
    /// (instruction and embedded bits) over 10k random words — including
    /// hash-colliding repeats, invalid encodings, and re-probes of every
    /// word a second time to exercise both hit and replace paths.
    #[test]
    fn memo_matches_direct_decode_for_10k_random_words() {
        let mut memo = Predecode::new();
        let mut rng = SplitMix64::new(0x9E37_C0DE);
        let mut words: Vec<u32> = (0..10_000).map(|_| rng.next_u64() as u32).collect();
        // Force revisits so hits, evictions and re-fills all occur.
        let firsts: Vec<u32> = words.iter().take(500).copied().collect();
        words.extend(firsts);
        for w in words {
            let (instr, embedded) = memo.lookup(w);
            assert_eq!(instr, decode(w), "memo decode mismatch for {w:#010x}");
            assert_eq!(
                embedded,
                embedded_bits_packed(w),
                "memo embedded-bits mismatch for {w:#010x}"
            );
        }
    }

    #[test]
    fn colliding_words_replace_cleanly() {
        let mut memo = Predecode::new();
        // Two words with the same table index.
        let a = 0u32;
        let mut b = 1u32;
        while Predecode::index(b) != Predecode::index(a) {
            b += 1;
        }
        assert_ne!(a, b);
        for w in [a, b, a, b] {
            assert_eq!(memo.lookup(w).0, decode(w));
        }
    }
}
