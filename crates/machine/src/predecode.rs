//! Direct-mapped predecode memo: raw instruction word → decoded forms.
//!
//! The step loop needs the decoded instruction three times per commit —
//! once for the functional-unit path and once each for the computation
//! sub-checker and SHS taps — plus the word's embedded signature bits.
//! During quiescent execution (no armed fault; see
//! [`argus_sim::fault::FaultInjector::is_quiescent`]) all three decode taps
//! are identity functions, so the three decodes and the embedded-bit
//! extraction collapse to one memoized lookup keyed on the raw word.
//!
//! The memo is a pure function of the word: a direct-mapped table indexed
//! by a multiplicative hash, where every entry is always a *valid*
//! (word, decode) pair — entries are pre-filled with word 0's decode, and a
//! mismatching probe recomputes and replaces. Stale entries are therefore
//! still correct, which is why the memo needs no invalidation, is excluded
//! from snapshots and fingerprints, and cannot change architectural or
//! checker-visible state. When any fault is armed, the machine bypasses the
//! memo entirely and runs the original tap + triple-decode path, so
//! `ID_OPC_*` injection behaves bit-identically with the memo on or off.
//!
//! The table size is a [`crate::machine::MachineConfig::predecode_entries`]
//! knob (default [`DEFAULT_ENTRIES`]); hit/miss counters make cache sizing
//! observable in campaign reports instead of guessed.

use argus_isa::decode::decode;
use argus_isa::encode::embedded_bits_of;
use argus_isa::instr::Instr;
use argus_sim::bitstream::PackedBits;

/// Default entry count for the direct-mapped table. 512 covers every
/// workload in the suite (at 4 bytes/instruction that is 2KB of code per
/// conflict-free residency) while keeping the table itself small enough to
/// stay cached.
pub const DEFAULT_ENTRIES: usize = 512;

#[derive(Debug, Clone, Copy)]
struct Entry {
    word: u32,
    instr: Instr,
    embedded: PackedBits,
}

/// The memo table. See the module docs for the invariants.
#[derive(Debug, Clone)]
pub struct Predecode {
    entries: Box<[Entry]>,
    /// `entries.len() - 1`; the table length is a power of two.
    mask: u32,
    shift: u32,
    hits: u64,
    misses: u64,
}

impl Default for Predecode {
    fn default() -> Self {
        Self::new()
    }
}

impl Predecode {
    /// A memo of [`DEFAULT_ENTRIES`] slots.
    pub fn new() -> Self {
        Self::with_entries(DEFAULT_ENTRIES)
    }

    /// A memo with `entries` slots, every one holding word 0's true decode
    /// (so no entry is ever invalid and lookups need no validity check).
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two (the index is a masked
    /// multiplicative hash).
    pub fn with_entries(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && (2..=1 << 30).contains(&entries),
            "predecode_entries must be a power of two in [2, 2^30] (got {entries})"
        );
        let instr = decode(0);
        let entry = Entry { word: 0, instr, embedded: embedded_bits_of(&instr, 0) };
        Self {
            entries: vec![entry; entries].into_boxed_slice(),
            mask: (entries - 1) as u32,
            shift: 32 - entries.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    /// Slots in the table.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Lookups that found their word already decoded.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that recomputed and replaced a slot.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resets the hit/miss counters (the table itself is untouched),
    /// returning the counts accumulated so far.
    pub fn take_counters(&mut self) -> (u64, u64) {
        (std::mem::take(&mut self.hits), std::mem::take(&mut self.misses))
    }

    #[inline]
    fn index(&self, word: u32) -> usize {
        // Fibonacci hashing spreads the opcode/register bits across the
        // index; low bits alone would collide on same-opcode runs.
        ((word.wrapping_mul(0x9E37_79B9) >> self.shift) & self.mask) as usize
    }

    /// The decoded instruction and embedded signature bits of `word`,
    /// memoized. Always equals `(decode(word), embedded_bits_packed(word))`.
    #[inline]
    pub fn lookup(&mut self, word: u32) -> (Instr, PackedBits) {
        let idx = self.index(word);
        let e = &mut self.entries[idx];
        if e.word != word {
            let instr = decode(word);
            *e = Entry { word, instr, embedded: embedded_bits_of(&instr, word) };
            self.misses += 1;
        } else {
            self.hits += 1;
        }
        (e.instr, e.embedded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_isa::encode::embedded_bits_packed;
    use argus_sim::rng::SplitMix64;

    /// Satellite property test: the memo is bit-identical to direct decode
    /// (instruction and embedded bits) over 10k random words — including
    /// hash-colliding repeats, invalid encodings, and re-probes of every
    /// word a second time to exercise both hit and replace paths.
    #[test]
    fn memo_matches_direct_decode_for_10k_random_words() {
        let mut memo = Predecode::new();
        let mut rng = SplitMix64::new(0x9E37_C0DE);
        let words: Vec<u32> = (0..10_000).map(|_| rng.next_u64() as u32).collect();
        for w in words {
            // Probe twice: the first may replace a slot, the second must hit
            // it, so both paths run for every word.
            for _ in 0..2 {
                let (instr, embedded) = memo.lookup(w);
                assert_eq!(instr, decode(w), "memo decode mismatch for {w:#010x}");
                assert_eq!(
                    embedded,
                    embedded_bits_packed(w),
                    "memo embedded-bits mismatch for {w:#010x}"
                );
            }
        }
        assert!(memo.hits() > 0 && memo.misses() > 0);
    }

    #[test]
    fn colliding_words_replace_cleanly() {
        let mut memo = Predecode::new();
        // Two words with the same table index.
        let a = 0u32;
        let mut b = 1u32;
        while memo.index(b) != memo.index(a) {
            b += 1;
        }
        assert_ne!(a, b);
        for w in [a, b, a, b] {
            assert_eq!(memo.lookup(w).0, decode(w));
        }
    }

    /// Satellite regression test: collision-heavy thrash. Alternating
    /// probes of two words pinned to one slot must replace cleanly on every
    /// probe, stay bit-identical to direct decode throughout, and account
    /// every probe as a miss (the pathological hit rate is the observable
    /// that motivates the sizing knob).
    #[test]
    fn collision_thrash_alternating_probes_stay_correct() {
        for entries in [8usize, 64, DEFAULT_ENTRIES] {
            let mut memo = Predecode::with_entries(entries);
            // Find two *distinct valid-looking* words sharing a slot.
            let a = 0x1532_07B1u32; // arbitrary
            let mut b = a + 1;
            while memo.index(b) != memo.index(a) {
                b += 1;
            }
            assert_ne!(a, b);
            let (h0, m0) = (memo.hits(), memo.misses());
            for k in 0..1_000u32 {
                let w = if k % 2 == 0 { a } else { b };
                let (instr, embedded) = memo.lookup(w);
                assert_eq!(instr, decode(w), "thrash decode mismatch at probe {k}");
                assert_eq!(embedded, embedded_bits_packed(w), "thrash bits mismatch at {k}");
            }
            // Every alternating probe evicts the other word: all misses.
            assert_eq!(memo.misses() - m0, 1_000, "{entries}-entry table");
            assert_eq!(memo.hits() - h0, 0, "{entries}-entry table");
        }
    }

    #[test]
    fn entries_knob_sizes_table() {
        for n in [2usize, 16, 1024] {
            let memo = Predecode::with_entries(n);
            assert_eq!(memo.entries(), n);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn entries_must_be_power_of_two() {
        let _ = Predecode::with_entries(300);
    }

    #[test]
    fn take_counters_resets() {
        let mut memo = Predecode::new();
        memo.lookup(0); // hit (pre-filled word 0)
        memo.lookup(0x1234_5678); // miss
        assert_eq!(memo.take_counters(), (1, 1));
        assert_eq!(memo.take_counters(), (0, 0));
    }
}
