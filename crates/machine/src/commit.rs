//! The commit record: everything the Argus-1 checker hardware taps.
//!
//! One [`CommitRecord`] is emitted per retired instruction. Its fields are
//! the values *as they appeared on the corresponding signals* — i.e. after
//! any injected fault — so a fault is seen consistently by the architectural
//! datapath and by the checkers, exactly as a gate-level fault would be.

use argus_isa::instr::{Instr, MemSize};
use argus_isa::reg::Reg;
use argus_sim::bitstream::PackedBits;

/// One source operand as delivered to the execute stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Operand {
    /// Effective source register (after any read-address fault), or `None`
    /// for non-register operands.
    pub reg: Option<Reg>,
    /// The value on the operand bus.
    pub value: u32,
    /// The parity tag that travelled with the value from the register file.
    pub parity: bool,
}

/// The source operands of one committed instruction: at most two, stored
/// inline so building a [`CommitRecord`] never allocates. Dereferences to
/// `[Operand]`, so slice methods (`len`, `get`, `iter`, indexing) apply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Operands {
    ops: [Operand; 2],
    len: u8,
}

impl Operands {
    /// An empty operand list.
    pub const fn none() -> Self {
        Self { ops: [Operand { reg: None, value: 0, parity: false }; 2], len: 0 }
    }

    /// Appends an operand.
    ///
    /// # Panics
    ///
    /// Panics when already holding two operands (no instruction reads
    /// more).
    pub fn push(&mut self, op: Operand) {
        assert!(self.len < 2, "an instruction reads at most two operands");
        self.ops[self.len as usize] = op;
        self.len += 1;
    }

    /// The operands as a slice, in operand order.
    pub fn as_slice(&self) -> &[Operand] {
        &self.ops[..self.len as usize]
    }
}

impl std::ops::Deref for Operands {
    type Target = [Operand];
    fn deref(&self) -> &[Operand] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a Operands {
    type Item = &'a Operand;
    type IntoIter = std::slice::Iter<'a, Operand>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Control-transfer outcome of a committed CTI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// True for conditional branches (`bf`/`bnf`).
    pub conditional: bool,
    /// Whether the transfer was actually taken by the datapath.
    pub taken: bool,
    /// The flag value the branch unit read (conditional branches only).
    pub flag_used: Option<bool>,
    /// The resolved target (when taken).
    pub target: Option<u32>,
    /// For indirect jumps in Argus mode: the DCS carried in the target
    /// register's top bits.
    pub indirect_dcs: Option<u32>,
}

/// A committed memory access as seen at the LSU / memory interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Store (true) or load (false).
    pub is_store: bool,
    /// Access width.
    pub size: MemSize,
    /// Sign-extend on load.
    pub signed: bool,
    /// Base register value fed to the address adder.
    pub base: u32,
    /// Immediate offset fed to the address adder.
    pub offset: i16,
    /// Effective address produced by the LSU adder (post-fault).
    pub addr: u32,
    /// Word address used by the D⊕A XOR unit.
    pub word_addr_xor: u32,
    /// Word address used for row selection in the memory arrays.
    pub word_addr_row: u32,
    /// The recovered memory word (`payload ⊕ A`): loaded word, or the old
    /// word read for a sub-word read-modify-write store.
    pub raw_word: u32,
    /// Memory-checker parity verdict for loads (`true` when clean or when
    /// protection is disabled).
    pub parity_ok: bool,
    /// Load: aligned/extended value before the load-data bus.
    /// Store: the data value sent on the store bus.
    pub value: u32,
    /// For sub-word stores: the merged word actually written.
    pub store_merged: Option<u32>,
}

/// Everything observable about one retired instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// PC of the instruction.
    pub pc: u32,
    /// Raw instruction bits as fetched (post fetch-bus fault).
    pub raw: u32,
    /// Decoded view executed by the datapath.
    pub instr: Instr,
    /// Decoded view delivered to the computation sub-checker.
    pub op_subchk: Instr,
    /// Decoded view delivered to the SHS computation unit.
    pub op_shs: Instr,
    /// Source operands in operand order.
    pub operands: Operands,
    /// Functional-unit output (post internal fault, before the result bus).
    pub result: Option<u32>,
    /// Auxiliary FU output: product high word or division remainder.
    pub aux_result: Option<u32>,
    /// Writeback performed: `(effective rd, value, parity)` as stored.
    pub wb: Option<(Reg, u32, bool)>,
    /// Memory access, if any.
    pub mem: Option<MemAccess>,
    /// Control transfer, if any.
    pub branch: Option<BranchInfo>,
    /// Compare result written to the flag, if any.
    pub flag_write: Option<bool>,
    /// PC the machine will fetch next.
    pub next_pc: u32,
    /// This instruction sat in the delay slot of the previous CTI.
    pub in_delay_slot: bool,
    /// Committing this instruction ends the current basic block (it is a
    /// delay-slot instruction, or an end-of-block Signature marker).
    pub block_end: bool,
    /// The DCS-carrying bits this instruction contributed to the block's
    /// embedded signature stream (unused-field bits or Sig payload).
    pub embedded_bits: PackedBits,
    /// Cycles this instruction occupied the pipeline (1 = no stall).
    pub cycles: u32,
    /// Global cycle count at commit.
    pub cycle: u64,
}

impl CommitRecord {
    /// Stall cycles this instruction contributed (feeds the watchdog).
    pub fn stall_cycles(&self) -> u32 {
        self.cycles.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_cycles() {
        let rec = CommitRecord {
            pc: 0,
            raw: 0,
            instr: Instr::Nop,
            op_subchk: Instr::Nop,
            op_shs: Instr::Nop,
            operands: Operands::none(),
            result: None,
            aux_result: None,
            wb: None,
            mem: None,
            branch: None,
            flag_write: None,
            next_pc: 4,
            in_delay_slot: false,
            block_end: false,
            embedded_bits: PackedBits::EMPTY,
            cycles: 21,
            cycle: 21,
        };
        assert_eq!(rec.stall_cycles(), 20);
    }
}
