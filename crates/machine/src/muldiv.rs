//! Structural multiplier/divider model (non-pipelined, multi-cycle, as in
//! the OR1200) with fault taps on the array outputs.

use crate::exec;
use crate::sites;
use argus_isa::instr::MulDivOp;
use argus_sim::fault::FaultInjector;

/// Result of one multiplier/divider operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulDivResult {
    /// Architecturally visible result (product low word or quotient).
    pub value: u32,
    /// Auxiliary datapath value: product high word, or division remainder
    /// (consumed only by the mod-M sub-checker).
    pub aux: u32,
}

/// Executes a multiply or divide, tapping the array outputs.
pub fn execute(op: MulDivOp, a: u32, b: u32, inj: &mut FaultInjector) -> MulDivResult {
    match op {
        MulDivOp::Mul | MulDivOp::Mulu => {
            let (lo, hi) = exec::multiply(op, a, b);
            MulDivResult { value: inj.tap32(sites::MUL_LO, lo), aux: inj.tap32(sites::MUL_HI, hi) }
        }
        MulDivOp::Div | MulDivOp::Divu => {
            let (q, r) = exec::divide(op, a, b);
            MulDivResult { value: inj.tap32(sites::DIV_Q, q), aux: inj.tap32(sites::DIV_R, r) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_sim::fault::{Fault, FaultKind, SiteFlavor};

    fn inj_at(site: &'static str) -> FaultInjector {
        let mut inj = FaultInjector::with_fault(Fault {
            site,
            bit: 1,
            kind: FaultKind::Permanent,
            arm_cycle: 0,
            flavor: SiteFlavor::Single,
            width: 32,
            sensitization: 1.0,
        });
        inj.set_cycle(0);
        inj
    }

    #[test]
    fn fault_free() {
        let mut inj = FaultInjector::none();
        assert_eq!(execute(MulDivOp::Mul, 6, 7, &mut inj), MulDivResult { value: 42, aux: 0 });
        assert_eq!(execute(MulDivOp::Divu, 43, 6, &mut inj), MulDivResult { value: 7, aux: 1 });
    }

    #[test]
    fn mul_hi_fault_leaves_visible_result_intact() {
        let mut inj = inj_at(sites::MUL_HI);
        let r = execute(MulDivOp::Mulu, 3, 4, &mut inj);
        assert_eq!(r.value, 12, "low word untouched");
        assert_eq!(r.aux, 2, "high word corrupted (architecturally invisible)");
    }

    #[test]
    fn quotient_fault_corrupts_value() {
        let mut inj = inj_at(sites::DIV_Q);
        let r = execute(MulDivOp::Divu, 10, 2, &mut inj);
        assert_eq!(r.value, 7, "5 with bit 1 flipped");
        assert_eq!(r.aux, 0);
    }
}
