//! The cycle-level core model.

use crate::alu;
use crate::commit::{BranchInfo, CommitRecord, MemAccess, Operand};
use crate::exec;
use crate::muldiv;
use crate::sites;
use argus_isa::decode::decode;
use argus_isa::instr::Instr;
use argus_isa::reg::Reg;
use argus_isa::{pack_indirect_target, split_indirect_target, INDIRECT_ADDR_MASK};
use argus_mem::{MemConfig, MemorySystem};
use argus_sim::bits::parity32;
use argus_sim::bitstream::BitStream;
use argus_sim::fault::FaultInjector;

use crate::commit::Operands;
use crate::predecode::Predecode;

/// Per-register fault-site names for the register file cells (one site per
/// architectural register, so a permanent fault is pinned to one cell).
pub const RF_CELL_SITES: [&str; 32] = [
    "rf_cell_r0",
    "rf_cell_r1",
    "rf_cell_r2",
    "rf_cell_r3",
    "rf_cell_r4",
    "rf_cell_r5",
    "rf_cell_r6",
    "rf_cell_r7",
    "rf_cell_r8",
    "rf_cell_r9",
    "rf_cell_r10",
    "rf_cell_r11",
    "rf_cell_r12",
    "rf_cell_r13",
    "rf_cell_r14",
    "rf_cell_r15",
    "rf_cell_r16",
    "rf_cell_r17",
    "rf_cell_r18",
    "rf_cell_r19",
    "rf_cell_r20",
    "rf_cell_r21",
    "rf_cell_r22",
    "rf_cell_r23",
    "rf_cell_r24",
    "rf_cell_r25",
    "rf_cell_r26",
    "rf_cell_r27",
    "rf_cell_r28",
    "rf_cell_r29",
    "rf_cell_r30",
    "rf_cell_r31",
];

/// Core configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Memory hierarchy configuration.
    pub mem: MemConfig,
    /// Argus mode: run a signature-embedded binary with protected memory,
    /// link-DCS packing and masked indirect targets. Baseline binaries run
    /// with this off.
    pub argus_mode: bool,
    /// Total cycles of a multiply (paper's OR1200: non-pipelined, 3).
    pub mul_cycles: u32,
    /// Total cycles of a divide (serial divider, 32).
    pub div_cycles: u32,
    /// Use the predecode memo on the quiescent fast path. Semantically
    /// inert (the memo always equals direct decode); exposed so identity
    /// tests can compare campaigns with it on and off.
    pub predecode: bool,
    /// Slots in the predecode memo (power of two; see
    /// [`crate::predecode::DEFAULT_ENTRIES`]). Purely a perf knob: the memo
    /// is bit-identical to direct decode at every size.
    pub predecode_entries: usize,
    /// Execute whole pre-compiled blocks on the quiescent fast path (see
    /// [`crate::block`]). Semantically inert like `predecode`: block plans
    /// replay the interpreter bit for bit, and any armed fault falls back
    /// to one-step interpretation before its arm cycle.
    pub block_exec: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            mem: MemConfig::default(),
            argus_mode: true,
            mul_cycles: 3,
            div_cycles: 32,
            predecode: true,
            predecode_entries: crate::predecode::DEFAULT_ENTRIES,
            block_exec: true,
        }
    }
}

/// Result of one [`Machine::step`].
// The commit record rides inline: it is all-POD since the operand/signature
// lists moved into fixed-size fields, and boxing it would put a heap
// allocation back on every step of the hot loop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// An instruction retired.
    Committed(CommitRecord),
    /// The pipeline spent a cycle stalled without retiring (only happens
    /// under an injected stall-control fault).
    Stalled,
    /// The machine has halted; no further progress.
    Halted,
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Total cycles consumed.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Whether the program reached `halt` (vs. hitting the cycle bound).
    pub halted: bool,
}

/// The OR1200-like core.
#[derive(Debug, Clone)]
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) regs: [u32; 32],
    pub(crate) parity: [bool; 32],
    pub(crate) flag: bool,
    pub(crate) pc: u32,
    pub(crate) mem: MemorySystem,
    pub(crate) cycle: u64,
    pub(crate) retired: u64,
    pub(crate) pending_branch: Option<u32>,
    pub(crate) delay_slot: bool,
    pub(crate) block_bits: BitStream,
    pub(crate) halted: bool,
    /// Pure decode memo — deliberately excluded from snapshots and
    /// fingerprints (a stale entry is re-derived, never wrong).
    pub(crate) predecode: Predecode,
    /// Pure block-plan cache (see [`crate::block`]) — excluded from
    /// snapshots and fingerprints for the same reason as `predecode`:
    /// every entry is validated against program bytes before use, so a
    /// stale entry is rebuilt, never wrong.
    pub(crate) plans: crate::block::PlanCache,
}

impl Machine {
    /// Creates a machine with zeroed architectural state and PC 0.
    ///
    /// In Argus mode, main memory is initialized with the protected
    /// encoding of zero (`payload = 0 ⊕ A = A`, even parity), the way real
    /// EDC memory ships with valid check bits — so reading a never-written
    /// word returns 0 with clean parity in both modes.
    pub fn new(cfg: MachineConfig) -> Self {
        let mut mem = MemorySystem::new(cfg.mem);
        if cfg.argus_mode {
            mem.memory_mut().fill_protected_zero();
        }
        Self {
            cfg,
            regs: [0; 32],
            parity: [false; 32],
            flag: false,
            pc: 0,
            mem,
            cycle: 0,
            retired: 0,
            pending_branch: None,
            delay_slot: false,
            block_bits: BitStream::new(),
            halted: false,
            predecode: Predecode::with_entries(cfg.predecode_entries),
            plans: crate::block::PlanCache::new(),
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> MachineConfig {
        self.cfg
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter (entry point).
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[usize::from(r)]
    }

    /// Writes an architectural register directly (setup code). Parity is
    /// kept consistent. Writes to `r0` are ignored.
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[usize::from(r)] = v;
            self.parity[usize::from(r)] = parity32(v);
        }
    }

    /// The compare flag.
    pub fn flag(&self) -> bool {
        self.flag
    }

    /// Total cycles elapsed.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Instructions retired.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether the machine has executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The memory system (stats, golden snapshots).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable memory system access.
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Loads instruction words at `base` (plain, never address-embedded).
    pub fn load_code(&mut self, base: u32, words: &[u32]) {
        self.mem.memory_mut().load_image(base, words);
    }

    /// Loads initial data words at `base`, using the protected encoding
    /// when the machine runs in Argus mode.
    pub fn load_data(&mut self, base: u32, words: &[u32]) {
        for (k, &w) in words.iter().enumerate() {
            let addr = base + 4 * k as u32;
            self.write_data_word(addr, w);
        }
    }

    /// Host-side data read that undoes the protection encoding.
    pub fn read_data_word(&self, addr: u32) -> u32 {
        let a = addr & !3;
        let (p, _t) = self.mem.memory().read(a).unwrap_or((0, false));
        if self.cfg.argus_mode {
            p ^ a
        } else {
            p
        }
    }

    /// Host-side data write using the protection encoding of this machine.
    pub fn write_data_word(&mut self, addr: u32, value: u32) {
        let a = addr & !3;
        let (payload, tag) = if self.cfg.argus_mode {
            (value ^ a, parity32(value))
        } else {
            argus_mem::protect::encode_plain(value)
        };
        self.mem
            .memory_mut()
            .write(a, payload, tag)
            .unwrap_or_else(|e| panic!("data write out of range: {e}"));
    }

    /// A digest of the architectural state (registers, flag, memory, PC).
    ///
    /// This is the workspace's one definition of "architecturally
    /// identical": the campaign engine compares it against the golden run
    /// for masked/unmasked classification, and the snapshot engine folds it
    /// into [`SnapshotState::state_fingerprint`]. It deliberately excludes
    /// microarchitectural state (cycle counts, cache arrays, parity tags) —
    /// two runs that differ only there are architecturally the same.
    ///
    /// Memory enters as `MainMemory::words_digest` — a page-combinable sum
    /// of per-page hashes — so [`Machine::state_digest_cached`] can serve
    /// the same value from the dirty-page stamps instead of walking the
    /// whole image. Both entry points agree bit for bit.
    pub fn state_digest(&self) -> u64 {
        self.state_digest_of(self.mem.memory().words_digest())
    }

    /// [`Machine::state_digest`] with the memory term served from the
    /// per-page hash cache: only pages written since their hash was last
    /// taken are rehashed. This is the campaign engine's per-injection
    /// path — on large machines the end-of-run digest would otherwise walk
    /// the full image for every fork.
    pub fn state_digest_cached(&mut self) -> u64 {
        let mem = self.mem.memory_mut().words_digest_cached();
        self.state_digest_of(mem)
    }

    fn state_digest_of(&self, mem_digest: u64) -> u64 {
        let mut h = crate::snapshot::Fnv64::new();
        for &r in &self.regs {
            h.mix(r as u64);
        }
        h.mix(self.flag as u64);
        h.mix(self.pc as u64);
        h.mix(mem_digest);
        h.finish()
    }

    /// Captures everything except main memory (the snapshot engine pages
    /// memory separately; see [`crate::snapshot::CoreState`]).
    pub fn capture_core(&self) -> crate::snapshot::CoreState {
        crate::snapshot::CoreState {
            cfg: self.cfg,
            regs: self.regs,
            parity: self.parity,
            flag: self.flag,
            pc: self.pc,
            cycle: self.cycle,
            retired: self.retired,
            pending_branch: self.pending_branch,
            delay_slot: self.delay_slot,
            block_bits: self.block_bits.clone(),
            halted: self.halted,
            caches: self.mem.capture_caches(),
        }
    }

    /// Restores state captured by [`Machine::capture_core`]. Main memory is
    /// untouched; the caller restores it through
    /// [`Machine::mem_mut`] (page-wise) or [`SnapshotState::restore_state`]
    /// (materialized).
    ///
    /// # Panics
    ///
    /// Panics if the state was captured from a machine with a different
    /// configuration.
    pub fn restore_core(&mut self, st: &crate::snapshot::CoreState) {
        assert_eq!(st.cfg, self.cfg, "snapshot captured under a different machine config");
        self.regs = st.regs;
        self.parity = st.parity;
        self.flag = st.flag;
        self.pc = st.pc;
        self.cycle = st.cycle;
        self.retired = st.retired;
        self.pending_branch = st.pending_branch;
        self.delay_slot = st.delay_slot;
        self.block_bits.clone_from(&st.block_bits);
        self.halted = st.halted;
        self.mem.restore_caches(&st.caches);
    }

    fn parse_block_slot(&self, k: usize) -> u32 {
        self.block_bits.extract(5 * k, 5)
    }

    fn wb_store(
        &mut self,
        bus_site: &'static str,
        rd: Reg,
        val: u32,
        inj: &mut FaultInjector,
    ) -> (Reg, u32, bool) {
        let par = parity32(val);
        let v = inj.tap32(bus_site, val);
        let rd_eff = Reg::from_field(inj.tap32(sites::RF_WADDR, rd.index() as u32));
        if rd_eff != Reg::ZERO {
            self.regs[usize::from(rd_eff)] = v;
            self.parity[usize::from(rd_eff)] = par;
        }
        (rd_eff, v, par)
    }

    fn read_operand(&mut self, port: usize, r: Reg, inj: &mut FaultInjector) -> Operand {
        let raddr_site = if port == 0 { sites::RF_RADDR_A } else { sites::RF_RADDR_B };
        let idx = Reg::from_field(inj.tap32(raddr_site, r.index() as u32));
        let stored = self.regs[usize::from(idx)];
        let cell_site = RF_CELL_SITES[usize::from(idx)];
        let was_transient = inj.has_transient_on(cell_site);
        let v0 = inj.tap32(cell_site, stored);
        if v0 != stored && was_transient && idx != Reg::ZERO {
            // A transient upset of a storage cell persists until overwritten.
            self.regs[usize::from(idx)] = v0;
        }
        let par = self.parity[usize::from(idx)];
        let bus_site = if port == 0 { sites::EX_OPA_BUS } else { sites::EX_OPB_BUS };
        let v1 = inj.tap32(bus_site, v0);
        Operand { reg: Some(idx), value: v1, parity: par }
    }

    /// Executes one instruction (or one stalled cycle) and returns what
    /// happened. Repeated calls after `halt` return [`StepOutcome::Halted`].
    pub fn step(&mut self, inj: &mut FaultInjector) -> StepOutcome {
        if self.halted {
            return StepOutcome::Halted;
        }
        inj.set_cycle(self.cycle);
        if !inj.tap1(sites::CTL_STALL_RELEASE, true) {
            self.cycle += 1;
            return StepOutcome::Stalled;
        }

        let pc = self.pc;
        let (raw0, fetch_cycles) = self.mem.fetch(pc);
        let raw = inj.tap32(sites::IF_IBUS, raw0);
        // Quiescent fast path: with no armed fault every ID_OPC_* tap is an
        // identity function, so the three decode taps (FU, sub-checker,
        // SHS) and the embedded-bit extraction collapse to one memoized
        // lookup. Any armed fault takes the exact original tap sequence.
        let (instr, op_subchk, op_shs, embedded_bits);
        if self.cfg.predecode && inj.is_quiescent() {
            let (i, e) = self.predecode.lookup(raw);
            (instr, op_subchk, op_shs, embedded_bits) = (i, i, i, e);
        } else {
            let trunk = inj.tap32(sites::ID_OPC_TRUNK, raw);
            instr = decode(inj.tap32(sites::ID_OPC_FU, trunk));
            op_subchk = decode(inj.tap32(sites::ID_OPC_SUBCHK, trunk));
            op_shs = decode(inj.tap32(sites::ID_OPC_SHS, trunk));
            // Signature extraction (Argus assist logic on the fetch path)
            // works from the raw fetched word, not the faulted decode trunk.
            embedded_bits = argus_isa::encode::embedded_bits_packed(raw);
        }
        self.block_bits.push_packed(embedded_bits);

        let in_delay_slot = self.delay_slot;
        self.delay_slot = false;
        let mut block_end = in_delay_slot;

        let srcs = instr.sources();
        let mut operands = Operands::none();
        for (k, &r) in srcs.iter().enumerate() {
            let op = self.read_operand(k.min(1), r, inj);
            operands.push(op);
        }
        let opv = |k: usize| operands.get(k).map(|o| o.value).unwrap_or(0);

        let mut result = None;
        let mut aux_result = None;
        let mut wb = None;
        let mut memacc = None;
        let mut branch = None;
        let mut flag_write = None;
        let mut extra_cycles = 0u32;
        let mut mem_cycles = 0u32;
        let mut new_pending: Option<u32> = None;
        let argus = self.cfg.argus_mode;

        match instr {
            Instr::Alu { op, rd, .. } => {
                let r = alu::execute(op, opv(0), opv(1), inj);
                result = Some(r);
                wb = Some(self.wb_store(sites::EX_RESULT_BUS, rd, r, inj));
            }
            Instr::AluImm { op, rd, imm, .. } => {
                let b_eff = exec::alu_imm_operand(op, imm);
                let r = alu::execute(exec::alu_imm_base(op), opv(0), b_eff, inj);
                result = Some(r);
                wb = Some(self.wb_store(sites::EX_RESULT_BUS, rd, r, inj));
            }
            Instr::ShiftImm { op, rd, sh, .. } => {
                let r = alu::execute_shift_imm(op, opv(0), sh, inj);
                result = Some(r);
                wb = Some(self.wb_store(sites::EX_RESULT_BUS, rd, r, inj));
            }
            Instr::Ext { kind, rd, .. } => {
                let r = alu::execute_ext(kind, opv(0), inj);
                result = Some(r);
                wb = Some(self.wb_store(sites::EX_RESULT_BUS, rd, r, inj));
            }
            Instr::Movhi { rd, imm } => {
                let r = (imm as u32) << 16;
                result = Some(r);
                wb = Some(self.wb_store(sites::EX_RESULT_BUS, rd, r, inj));
            }
            Instr::MulDiv { op, rd, .. } => {
                let r = muldiv::execute(op, opv(0), opv(1), inj);
                result = Some(r.value);
                aux_result = Some(r.aux);
                extra_cycles = if op.is_div() {
                    self.cfg.div_cycles.saturating_sub(1)
                } else {
                    self.cfg.mul_cycles.saturating_sub(1)
                };
                wb = Some(self.wb_store(sites::EX_RESULT_BUS, rd, r.value, inj));
            }
            Instr::SetFlag { cond, .. } => {
                let c = inj.tap1(sites::CMP_FLAG_OUT, cond.eval(opv(0), opv(1)));
                self.flag = c;
                flag_write = Some(c);
            }
            Instr::SetFlagImm { cond, imm, .. } => {
                let b = argus_sim::bits::sign_extend(imm as u32, 16);
                let c = inj.tap1(sites::CMP_FLAG_OUT, cond.eval(opv(0), b));
                self.flag = c;
                flag_write = Some(c);
            }
            Instr::Branch { taken_if, off } => {
                let f = inj.tap1(sites::FLAG_READ, self.flag);
                let taken = inj.tap1(sites::BR_TAKEN, f == taken_if);
                let target =
                    taken.then(|| inj.tap32(sites::BR_TARGET, pc.wrapping_add((off as u32) << 2)));
                new_pending = target;
                branch = Some(BranchInfo {
                    conditional: true,
                    taken,
                    flag_used: Some(f),
                    target,
                    indirect_dcs: None,
                });
            }
            Instr::Jump { link, off } => {
                let target = inj.tap32(sites::BR_TARGET, pc.wrapping_add((off as u32) << 2));
                new_pending = Some(target);
                if link {
                    let v = self.link_value(pc, 1, inj);
                    result = Some(v);
                    wb = Some(self.wb_store(sites::EX_RESULT_BUS, Reg::LR, v, inj));
                }
                branch = Some(BranchInfo {
                    conditional: false,
                    taken: true,
                    flag_used: None,
                    target: Some(target),
                    indirect_dcs: None,
                });
            }
            Instr::JumpReg { link, .. } => {
                let v = opv(0);
                let (addr, dcs) = if argus { split_indirect_target(v) } else { (v, 0) };
                let target = inj.tap32(sites::BR_TARGET, addr);
                new_pending = Some(target);
                if link {
                    let lv = self.link_value(pc, 0, inj);
                    result = Some(lv);
                    wb = Some(self.wb_store(sites::EX_RESULT_BUS, Reg::LR, lv, inj));
                }
                branch = Some(BranchInfo {
                    conditional: false,
                    taken: true,
                    flag_used: None,
                    target: Some(target),
                    indirect_dcs: argus.then_some(dcs),
                });
            }
            Instr::Load { size, signed, off, rd, .. } => {
                let base = opv(0);
                let addr = alu::execute_addr(base, off, inj);
                let ali = exec::align_addr(addr, size);
                let word_addr = ali & !3;
                let a_xor =
                    if argus { inj.tap32(sites::LSU_ADDR_XOR, word_addr) } else { word_addr };
                let a_row = inj.tap32(sites::DMEM_ROW_ADDR, word_addr);
                let fallback = self.cfg.mem.hit_cycles + self.cfg.mem.miss_penalty;
                let (payload, tag, lat) =
                    self.mem.load_word(a_row).unwrap_or((u32::MAX, false, fallback));
                let d = if argus { payload ^ a_xor } else { payload };
                let parity_ok = !argus || parity32(d) == tag;
                let v0 = exec::align_load(d, ali & 3, size, signed);
                let v1 = inj.tap32(sites::LSU_ALIGN_OUT, v0);
                mem_cycles = lat.saturating_sub(1);
                wb = Some(self.wb_store(sites::LSU_LD_BUS, rd, v1, inj));
                memacc = Some(MemAccess {
                    is_store: false,
                    size,
                    signed,
                    base,
                    offset: off,
                    addr,
                    word_addr_xor: a_xor,
                    word_addr_row: a_row,
                    raw_word: d,
                    parity_ok,
                    value: v1,
                    store_merged: None,
                });
            }
            Instr::Store { size, off, .. } => {
                let base = opv(0);
                let data0 = opv(1);
                let carried_par = operands.get(1).map(|o| o.parity).unwrap_or(false);
                let addr = alu::execute_addr(base, off, inj);
                let ali = exec::align_addr(addr, size);
                let word_addr = ali & !3;
                let a_xor =
                    if argus { inj.tap32(sites::LSU_ADDR_XOR, word_addr) } else { word_addr };
                let a_row = inj.tap32(sites::DMEM_ROW_ADDR, word_addr);
                let data1 = inj.tap32(sites::LSU_ST_BUS, data0);
                let (payload, tag, merged_opt, raw_word) =
                    if matches!(size, argus_isa::instr::MemSize::Word) {
                        let payload = if argus { data1 ^ a_xor } else { data1 };
                        let tag = if argus { carried_par } else { parity32(data1) };
                        (payload, tag, None, 0)
                    } else {
                        // Read-modify-write: recover the old word, merge the
                        // sub-word, regenerate parity locally (the paper's
                        // residual sub-word store vulnerability).
                        let (oldp, _oldt) = self.mem.memory().read(a_row).unwrap_or((0, false));
                        let old_d = if argus { oldp ^ a_xor } else { oldp };
                        let merged = exec::merge_store(old_d, ali & 3, size, data1);
                        let m = inj.tap32(sites::LSU_ST_MERGE, merged);
                        let payload = if argus { m ^ a_xor } else { m };
                        (payload, parity32(m), Some(m), old_d)
                    };
                let fallback = self.cfg.mem.hit_cycles + self.cfg.mem.miss_penalty;
                let lat = self.mem.store_word_tagged(a_row, payload, tag).unwrap_or(fallback);
                mem_cycles = lat.saturating_sub(1);
                memacc = Some(MemAccess {
                    is_store: true,
                    size,
                    signed: false,
                    base,
                    offset: off,
                    addr,
                    word_addr_xor: a_xor,
                    word_addr_row: a_row,
                    raw_word,
                    parity_ok: true,
                    value: data1,
                    store_merged: merged_opt,
                });
            }
            Instr::Nop => {}
            Instr::Sig { eob, .. } => {
                if eob {
                    block_end = true;
                }
            }
            Instr::Halt => {
                self.halted = true;
                block_end = true;
            }
        }

        // Resolve the next PC: a pending branch applies after its delay slot.
        let seq = pc.wrapping_add(4);
        let next = if in_delay_slot { self.pending_branch.take().unwrap_or(seq) } else { seq };
        if instr.is_cti() {
            self.pending_branch = new_pending;
            self.delay_slot = true;
        }
        // The PC register has no bits [1:0]; mask after the tap so faults
        // on nonexistent low wires are naturally masked.
        let next_pc = inj.tap32(sites::IF_PC_NEXT, next) & !3;
        self.pc = next_pc;

        let cycles = fetch_cycles + mem_cycles + extra_cycles;
        self.cycle += cycles as u64;
        self.retired += 1;

        let rec = CommitRecord {
            pc,
            raw,
            instr,
            op_subchk,
            op_shs,
            operands,
            result,
            aux_result,
            wb,
            mem: memacc,
            branch,
            flag_write,
            next_pc,
            in_delay_slot,
            block_end,
            embedded_bits,
            cycles,
            cycle: self.cycle,
        };
        if block_end {
            self.block_bits.clear();
        }
        StepOutcome::Committed(rec)
    }

    fn link_value(&mut self, pc: u32, slot: usize, inj: &mut FaultInjector) -> u32 {
        let ret = pc.wrapping_add(8);
        if self.cfg.argus_mode {
            let dcs = inj.tap32(sites::LNK_DCS_MUX, self.parse_block_slot(slot)) & 31;
            let dcs = inj.tap32(sites::SIG_EXTRACT, dcs) & 31;
            pack_indirect_target(ret & INDIRECT_ADDR_MASK, dcs)
        } else {
            ret
        }
    }

    /// Runs until `halt` or until `max_cycles` elapse, discarding commit
    /// records (baseline timing runs).
    ///
    /// When [`MachineConfig::block_exec`] is on, quiescent stretches run
    /// whole pre-compiled blocks at a time (see [`crate::block`]); the
    /// one-step interpreter handles everything else. The two paths are
    /// bit-identical, including the exact cycle the run stops at.
    pub fn run_to_halt(&mut self, inj: &mut FaultInjector, max_cycles: u64) -> RunResult {
        while !self.halted && self.cycle < max_cycles {
            if self.try_block_exec(inj, max_cycles).is_some() {
                continue;
            }
            match self.step(inj) {
                StepOutcome::Halted => break,
                StepOutcome::Committed(_) | StepOutcome::Stalled => {}
            }
        }
        RunResult { cycles: self.cycle, retired: self.retired, halted: self.halted }
    }

    /// Summarizes the machine's current run state without stepping it.
    ///
    /// Callers that drive [`Machine::step`] themselves use this to classify
    /// how the run ended (`halted` distinguishes a clean `halt` from a
    /// cycle-budget timeout) with the same semantics as
    /// [`Machine::run_to_halt`].
    pub fn run_result(&self) -> RunResult {
        RunResult { cycles: self.cycle, retired: self.retired, halted: self.halted }
    }
}

impl crate::snapshot::SnapshotState for Machine {
    type State = crate::snapshot::MachineState;

    fn capture_state(&self) -> Self::State {
        crate::snapshot::MachineState {
            core: self.capture_core(),
            mem_words: self.mem.memory().words().to_vec(),
            mem_tags: self.mem.memory().tags().to_vec(),
        }
    }

    fn restore_state(&mut self, state: &Self::State) {
        self.restore_core(&state.core);
        self.mem.memory_mut().restore_words(0, &state.mem_words, &state.mem_tags);
    }

    fn state_fingerprint(&self) -> u64 {
        // Architectural digest first (the campaign's masking definition),
        // then every microarchitectural bit a fork must reproduce.
        let mut h = crate::snapshot::Fnv64::new();
        h.mix(self.state_digest());
        for &p in &self.parity {
            h.mix(p as u64);
        }
        h.mix(self.cycle);
        h.mix(self.retired);
        h.mix(match self.pending_branch {
            Some(t) => 0x100_0000_0000 | t as u64,
            None => 0,
        });
        h.mix(self.delay_slot as u64);
        // Signature buffer: length plus packed 64-bit words (tail bits are
        // zero by construction, so equal streams mix equal values).
        h.mix(self.block_bits.len() as u64);
        for &w in self.block_bits.words() {
            h.mix(w);
        }
        h.mix(self.halted as u64);
        for &t in self.mem.memory().tags() {
            h.mix(t as u64);
        }
        let mut mix = |v: u64| h.mix(v);
        self.mem.fold_cache_state(&mut mix);
        h.finish()
    }
}

/// Extension trait used internally to classify mul/div ops.
trait MulDivExt {
    fn is_div(&self) -> bool;
}

impl MulDivExt for argus_isa::instr::MulDivOp {
    fn is_div(&self) -> bool {
        matches!(self, argus_isa::instr::MulDivOp::Div | argus_isa::instr::MulDivOp::Divu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_isa::encode::encode;
    use argus_isa::instr::{AluImmOp, AluOp, Cond, MemSize, MulDivOp};
    use argus_isa::reg::r;

    fn run_program(prog: &[Instr], argus_mode: bool) -> Machine {
        let words: Vec<u32> = prog.iter().map(encode).collect();
        let mut m = Machine::new(MachineConfig { argus_mode, ..MachineConfig::default() });
        m.load_code(0, &words);
        let mut inj = FaultInjector::none();
        let res = m.run_to_halt(&mut inj, 1_000_000);
        assert!(res.halted, "program must halt");
        m
    }

    #[test]
    fn arithmetic_program() {
        let m = run_program(
            &[
                Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 7 },
                Instr::AluImm { op: AluImmOp::Addi, rd: r(4), ra: Reg::ZERO, imm: 5 },
                Instr::Alu { op: AluOp::Add, rd: r(5), ra: r(3), rb: r(4) },
                Instr::MulDiv { op: MulDivOp::Mul, rd: r(6), ra: r(5), rb: r(4) },
                Instr::Halt,
            ],
            false,
        );
        assert_eq!(m.reg(r(5)), 12);
        assert_eq!(m.reg(r(6)), 60);
        assert_eq!(m.retired(), 5);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let m = run_program(
            &[
                Instr::AluImm { op: AluImmOp::Addi, rd: Reg::ZERO, ra: Reg::ZERO, imm: 9 },
                Instr::Halt,
            ],
            false,
        );
        assert_eq!(m.reg(Reg::ZERO), 0);
    }

    #[test]
    fn branch_with_delay_slot() {
        // r3 = 1; if flag (1==1) branch over the poison; delay slot still runs.
        let m = run_program(
            &[
                Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 1 },
                Instr::SetFlagImm { cond: Cond::Eq, ra: r(3), imm: 1 },
                Instr::Branch { taken_if: true, off: 3 }, // to pc+12 = halt
                Instr::AluImm { op: AluImmOp::Addi, rd: r(4), ra: Reg::ZERO, imm: 42 }, // delay slot
                Instr::AluImm { op: AluImmOp::Addi, rd: r(5), ra: Reg::ZERO, imm: 99 }, // skipped
                Instr::Halt,
            ],
            false,
        );
        assert_eq!(m.reg(r(4)), 42, "delay slot must execute");
        assert_eq!(m.reg(r(5)), 0, "branch target skips this");
    }

    #[test]
    fn untaken_branch_falls_through() {
        let m = run_program(
            &[
                Instr::SetFlagImm { cond: Cond::Eq, ra: Reg::ZERO, imm: 5 }, // false
                Instr::Branch { taken_if: true, off: 3 },
                Instr::Nop,
                Instr::AluImm { op: AluImmOp::Addi, rd: r(5), ra: Reg::ZERO, imm: 7 },
                Instr::Halt,
            ],
            false,
        );
        assert_eq!(m.reg(r(5)), 7);
    }

    #[test]
    fn jal_and_return_baseline() {
        // jal to a function at word 4 that adds and returns via jr r9.
        let m = run_program(
            &[
                Instr::Jump { link: true, off: 4 }, // to word 4
                Instr::Nop,                         // delay slot
                Instr::AluImm { op: AluImmOp::Addi, rd: r(6), ra: r(5), imm: 1 },
                Instr::Halt,
                // fn:
                Instr::AluImm { op: AluImmOp::Addi, rd: r(5), ra: Reg::ZERO, imm: 10 },
                Instr::JumpReg { link: false, rb: Reg::LR },
                Instr::Nop, // delay slot
            ],
            false,
        );
        assert_eq!(m.reg(r(5)), 10);
        assert_eq!(m.reg(r(6)), 11, "returned to pc+8 and continued");
        assert_eq!(m.reg(Reg::LR), 8);
    }

    #[test]
    fn memory_roundtrip_word_and_subword() {
        let m = run_program(
            &[
                Instr::Movhi { rd: r(2), imm: 0x0001 }, // base 0x10000
                Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 0x1234 },
                Instr::Store { size: MemSize::Word, ra: r(2), rb: r(3), off: 0 },
                Instr::Store { size: MemSize::Byte, ra: r(2), rb: r(3), off: 1 },
                Instr::Load { size: MemSize::Word, signed: false, rd: r(4), ra: r(2), off: 0 },
                Instr::Load { size: MemSize::Byte, signed: false, rd: r(5), ra: r(2), off: 1 },
                Instr::Load { size: MemSize::Half, signed: true, rd: r(6), ra: r(2), off: 0 },
                Instr::Halt,
            ],
            true,
        );
        assert_eq!(m.reg(r(4)), 0x0000_3434, "byte store merged into word");
        assert_eq!(m.reg(r(5)), 0x34);
        assert_eq!(m.reg(r(6)), 0x3434);
    }

    #[test]
    fn protected_and_plain_memory_agree_architecturally() {
        for mode in [false, true] {
            let m = run_program(
                &[
                    Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 0x77 },
                    Instr::Store { size: MemSize::Word, ra: Reg::ZERO, rb: r(3), off: 0x100 },
                    Instr::Load {
                        size: MemSize::Word,
                        signed: false,
                        rd: r(4),
                        ra: Reg::ZERO,
                        off: 0x100,
                    },
                    Instr::Halt,
                ],
                mode,
            );
            assert_eq!(m.reg(r(4)), 0x77, "mode {mode}");
        }
    }

    #[test]
    fn timing_charges_cache_misses_and_muldiv() {
        let mut m = Machine::new(MachineConfig::default());
        m.load_code(
            0,
            &[
                encode(&Instr::Nop),
                encode(&Instr::Nop),
                encode(&Instr::MulDiv { op: MulDivOp::Div, rd: r(3), ra: r(1), rb: r(2) }),
                encode(&Instr::Halt),
            ],
        );
        let mut inj = FaultInjector::none();
        let res = m.run_to_halt(&mut inj, 10_000);
        // First fetch misses (21), nop 1, div fetch hit 1 + 31 extra, halt 1.
        assert_eq!(res.cycles, 21 + 1 + 32 + 1);
        assert_eq!(res.retired, 4);
    }

    #[test]
    fn div_by_zero_defined() {
        let m = run_program(
            &[
                Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 9 },
                Instr::MulDiv { op: MulDivOp::Divu, rd: r(4), ra: r(3), rb: Reg::ZERO },
                Instr::Halt,
            ],
            false,
        );
        assert_eq!(m.reg(r(4)), u32::MAX);
    }

    #[test]
    fn state_digest_distinguishes_states() {
        let a = run_program(
            &[Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 1 }, Instr::Halt],
            false,
        );
        let b = run_program(
            &[Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 2 }, Instr::Halt],
            false,
        );
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn capture_restore_resumes_bit_identically() {
        use crate::snapshot::SnapshotState;
        let words: Vec<u32> = [
            Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 40 },
            Instr::AluImm { op: AluImmOp::Addi, rd: r(4), ra: Reg::ZERO, imm: 7 },
            Instr::MulDiv { op: MulDivOp::Div, rd: r(5), ra: r(3), rb: r(4) },
            Instr::Store { size: MemSize::Word, ra: Reg::ZERO, rb: r(5), off: 0x200 },
            Instr::Load { size: MemSize::Word, signed: false, rd: r(6), ra: Reg::ZERO, off: 0x200 },
            Instr::Halt,
        ]
        .iter()
        .map(encode)
        .collect();

        let mut a = Machine::new(MachineConfig::default());
        a.load_code(0, &words);
        let mut inj = FaultInjector::none();
        for _ in 0..2 {
            a.step(&mut inj);
        }
        let st = a.capture_state();

        let mut b = Machine::new(MachineConfig::default());
        b.restore_state(&st);
        assert_eq!(a.state_fingerprint(), b.state_fingerprint(), "restore reproduces the state");
        assert_eq!(a.state_digest(), b.state_digest(), "digest stable across save/restore");

        // Step both to completion; they must stay in lockstep.
        loop {
            let ra = a.step(&mut FaultInjector::none());
            let rb = b.step(&mut FaultInjector::none());
            assert_eq!(ra, rb, "forked run diverged");
            assert_eq!(a.state_fingerprint(), b.state_fingerprint());
            if ra == StepOutcome::Halted {
                break;
            }
        }
        assert_eq!(a.cycle(), b.cycle());
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    #[should_panic(expected = "different machine config")]
    fn restore_rejects_config_mismatch() {
        let a = Machine::new(MachineConfig::default());
        let st = a.capture_core();
        let mut b = Machine::new(MachineConfig { argus_mode: false, ..MachineConfig::default() });
        b.restore_core(&st);
    }

    #[test]
    fn run_bound_stops_infinite_loop() {
        let mut m = Machine::new(MachineConfig::default());
        // j 0 (self-loop) with nop in delay slot.
        m.load_code(0, &[encode(&Instr::Jump { link: false, off: 0 }), encode(&Instr::Nop)]);
        let mut inj = FaultInjector::none();
        let res = m.run_to_halt(&mut inj, 5_000);
        assert!(!res.halted);
        assert!(res.cycles >= 5_000);
    }

    #[test]
    fn stall_fault_produces_stalled_outcomes() {
        use argus_sim::fault::{Fault, FaultKind, SiteFlavor};
        let mut m = Machine::new(MachineConfig::default());
        m.load_code(0, &[encode(&Instr::Halt)]);
        let mut inj = FaultInjector::with_fault(Fault {
            site: sites::CTL_STALL_RELEASE,
            bit: 0,
            kind: FaultKind::Permanent,
            arm_cycle: 0,
            flavor: SiteFlavor::Single,
            width: 1,
            sensitization: 1.0,
        });
        for _ in 0..100 {
            assert_eq!(m.step(&mut inj), StepOutcome::Stalled);
        }
        assert!(!m.halted());
    }

    #[test]
    fn link_register_carries_dcs_in_argus_mode() {
        // Block: sig with two slots (callee DCS=0b00111, link DCS=0b10101),
        // then jal. The link register must carry 0b10101 in its top bits.
        let sig = Instr::Sig { nslots: 2, eob: false, payload: (0b10101 << 5) | 0b00111 };
        let m = run_program(
            &[
                sig,
                Instr::Jump { link: true, off: 3 }, // to word 4
                Instr::Nop,                         // delay slot
                Instr::Halt,                        // (skipped: jal target is halt below)
                Instr::Halt,
            ],
            true,
        );
        let (addr, dcs) = split_indirect_target(m.reg(Reg::LR));
        assert_eq!(addr, 12, "return address = jal pc + 8");
        assert_eq!(dcs, 0b10101);
    }

    #[test]
    fn commit_record_carries_embedded_bits() {
        let mut m = Machine::new(MachineConfig::default());
        let add = Instr::Alu { op: AluOp::Add, rd: r(1), ra: r(2), rb: r(3) };
        let mut w = encode(&add);
        // Hand-embed 0b1010101 into the 7 unused bits.
        for (i, pos) in argus_isa::encode::unused_bit_positions(w).into_iter().enumerate() {
            if i % 2 == 0 {
                w |= 1 << pos;
            }
        }
        m.load_code(0, &[w, encode(&Instr::Halt)]);
        let mut inj = FaultInjector::none();
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                assert_eq!(rec.embedded_bits.len(), 7);
                assert_eq!(
                    rec.embedded_bits.to_vec(),
                    vec![true, false, true, false, true, false, true]
                );
            }
            other => panic!("expected commit, got {other:?}"),
        }
    }

    /// The predecode memo must be invisible under decode-unit injection:
    /// with a fault armed on any `ID_OPC_*` site, every commit record and
    /// the final architectural digest must match between a machine running
    /// with the memo enabled and one with it disabled, because both must
    /// take the exact tapped triple-decode path once the fault arms (and
    /// the identical fast path before it arms).
    #[test]
    fn predecode_is_identical_under_id_opc_injection() {
        use argus_sim::fault::{Fault, FaultKind, SiteFlavor};
        let words: Vec<u32> = [
            Instr::AluImm { op: AluImmOp::Addi, rd: r(3), ra: Reg::ZERO, imm: 7 },
            Instr::AluImm { op: AluImmOp::Addi, rd: r(4), ra: Reg::ZERO, imm: 5 },
            Instr::Alu { op: AluOp::Add, rd: r(5), ra: r(3), rb: r(4) },
            Instr::SetFlag { cond: Cond::Eq, ra: r(5), rb: r(5) },
            Instr::Branch { taken_if: true, off: 2 },
            Instr::Store { size: MemSize::Word, ra: Reg::ZERO, rb: r(5), off: 0x100 },
            Instr::Halt,
        ]
        .iter()
        .map(encode)
        .collect();

        for site in [sites::ID_OPC_TRUNK, sites::ID_OPC_FU, sites::ID_OPC_SUBCHK, sites::ID_OPC_SHS]
        {
            for kind in [FaultKind::Transient, FaultKind::Permanent] {
                for arm_cycle in [0, 2, 4] {
                    let fault = Fault {
                        site,
                        bit: 3,
                        kind,
                        arm_cycle,
                        flavor: SiteFlavor::Single,
                        width: 32,
                        sensitization: 1.0,
                    };
                    let mut on = Machine::new(MachineConfig::default());
                    let mut off = Machine::new(MachineConfig {
                        predecode: false,
                        ..MachineConfig::default()
                    });
                    on.load_code(0, &words);
                    off.load_code(0, &words);
                    let mut inj_on = FaultInjector::with_fault(fault.clone());
                    let mut inj_off = FaultInjector::with_fault(fault);
                    for _ in 0..64 {
                        let a = on.step(&mut inj_on);
                        let b = off.step(&mut inj_off);
                        assert_eq!(a, b, "{site} {kind:?} arm={arm_cycle}: records diverged");
                        if a == StepOutcome::Halted {
                            break;
                        }
                    }
                    assert_eq!(
                        on.state_digest(),
                        off.state_digest(),
                        "{site} {kind:?} arm={arm_cycle}: digests diverged"
                    );
                    assert_eq!(inj_on.flip_count(), inj_off.flip_count());
                }
            }
        }
    }

    #[test]
    fn block_end_flags() {
        let mut m = Machine::new(MachineConfig::default());
        m.load_code(
            0,
            &[
                encode(&Instr::Sig { nslots: 0, eob: true, payload: 0 }),
                encode(&Instr::Jump { link: false, off: 2 }),
                encode(&Instr::Nop), // delay slot → block end
                encode(&Instr::Halt),
            ],
        );
        let mut inj = FaultInjector::none();
        let recs: Vec<_> = std::iter::from_fn(|| match m.step(&mut inj) {
            StepOutcome::Committed(r) => Some(r),
            _ => None,
        })
        .collect();
        assert!(recs[0].block_end, "eob Sig ends a block");
        assert!(!recs[1].block_end, "CTI itself does not end the block");
        assert!(recs[2].block_end, "delay slot ends the block");
        assert!(recs[2].in_delay_slot);
    }
}
