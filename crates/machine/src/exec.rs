//! Pure (structural-fault-free) instruction semantics.
//!
//! These functions define the reference behaviour of each functional unit.
//! The structural models in [`crate::alu`] and [`crate::muldiv`] wrap them
//! with fault taps; the Argus computation sub-checkers and the ideal
//! checker recompute through them.

use argus_isa::instr::{AluImmOp, AluOp, ExtKind, MemSize, MulDivOp, ShiftOp};
use argus_sim::bits::{sign_extend, zero_extend};

/// Result of a register-register ALU operation.
pub fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
    }
}

/// Result of an immediate ALU operation, including the operation-specific
/// immediate extension.
pub fn alu_imm(op: AluImmOp, a: u32, imm: u16) -> u32 {
    match op {
        AluImmOp::Addi => a.wrapping_add(sign_extend(imm as u32, 16)),
        AluImmOp::Andi => a & imm as u32,
        AluImmOp::Ori => a | imm as u32,
        AluImmOp::Xori => a ^ sign_extend(imm as u32, 16),
    }
}

/// The effective second operand an immediate ALU op feeds into the adder /
/// logic unit (what the computation checker sees as input B).
pub fn alu_imm_operand(op: AluImmOp, imm: u16) -> u32 {
    match op {
        AluImmOp::Addi | AluImmOp::Xori => sign_extend(imm as u32, 16),
        AluImmOp::Andi | AluImmOp::Ori => imm as u32,
    }
}

/// Maps an immediate ALU op onto the underlying register-register op.
pub fn alu_imm_base(op: AluImmOp) -> AluOp {
    match op {
        AluImmOp::Addi => AluOp::Add,
        AluImmOp::Andi => AluOp::And,
        AluImmOp::Ori => AluOp::Or,
        AluImmOp::Xori => AluOp::Xor,
    }
}

/// Result of a shift-by-immediate.
pub fn shift_imm(op: ShiftOp, a: u32, sh: u8) -> u32 {
    match op {
        ShiftOp::Sll => a.wrapping_shl(sh as u32 & 31),
        ShiftOp::Srl => a.wrapping_shr(sh as u32 & 31),
        ShiftOp::Sra => ((a as i32).wrapping_shr(sh as u32 & 31)) as u32,
    }
}

/// Result of a sign/zero extension.
pub fn extend(kind: ExtKind, a: u32) -> u32 {
    match kind {
        ExtKind::Bs => sign_extend(a, 8),
        ExtKind::Bz => zero_extend(a, 8),
        ExtKind::Hs => sign_extend(a, 16),
        ExtKind::Hz => zero_extend(a, 16),
    }
}

/// Full 64-bit multiply result (the core architecturally exposes only the
/// low word; the high word models the datapath bits only reachable through
/// multiply-accumulate, which this core lacks — the paper's masked class).
pub fn multiply(op: MulDivOp, a: u32, b: u32) -> (u32, u32) {
    let full = match op {
        MulDivOp::Mul => (a as i32 as i64).wrapping_mul(b as i32 as i64) as u64,
        MulDivOp::Mulu => (a as u64).wrapping_mul(b as u64),
        _ => panic!("multiply called with a divide op"),
    };
    (full as u32, (full >> 32) as u32)
}

/// Divide producing `(quotient, remainder)`. Division by zero yields an
/// all-ones quotient and the dividend as remainder (no traps in this core).
pub fn divide(op: MulDivOp, a: u32, b: u32) -> (u32, u32) {
    match op {
        MulDivOp::Div => {
            if b == 0 {
                (u32::MAX, a)
            } else if a == 0x8000_0000 && b == u32::MAX {
                // i32::MIN / -1 overflows; define it as wrapping.
                (0x8000_0000, 0)
            } else {
                (((a as i32) / (b as i32)) as u32, ((a as i32) % (b as i32)) as u32)
            }
        }
        MulDivOp::Divu => match (a.checked_div(b), a.checked_rem(b)) {
            (Some(q), Some(r)) => (q, r),
            _ => (u32::MAX, a),
        },
        _ => panic!("divide called with a multiply op"),
    }
}

/// Extracts and extends a sub-word value from an aligned word, as the
/// load-aligner does. `byte_off` is the little-endian byte offset of the
/// access inside the word (already masked to natural alignment).
pub fn align_load(word: u32, byte_off: u32, size: MemSize, signed: bool) -> u32 {
    match size {
        MemSize::Word => word,
        MemSize::Half => {
            let half = (word >> (8 * (byte_off & 2))) & 0xFFFF;
            if signed {
                sign_extend(half, 16)
            } else {
                half
            }
        }
        MemSize::Byte => {
            let byte = (word >> (8 * byte_off)) & 0xFF;
            if signed {
                sign_extend(byte, 8)
            } else {
                byte
            }
        }
    }
}

/// Merges a sub-word store value into an existing word (read-modify-write
/// in the write-back cache). Returns the new word.
pub fn merge_store(old_word: u32, byte_off: u32, size: MemSize, data: u32) -> u32 {
    match size {
        MemSize::Word => data,
        MemSize::Half => {
            let sh = 8 * (byte_off & 2);
            (old_word & !(0xFFFFu32 << sh)) | ((data & 0xFFFF) << sh)
        }
        MemSize::Byte => {
            let sh = 8 * byte_off;
            (old_word & !(0xFFu32 << sh)) | ((data & 0xFF) << sh)
        }
    }
}

/// Natural alignment mask for an access size.
pub fn align_addr(addr: u32, size: MemSize) -> u32 {
    addr & !(size.bytes() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alu_ops() {
        assert_eq!(alu(AluOp::Add, 3, u32::MAX), 2);
        assert_eq!(alu(AluOp::Sub, 3, 5), -2i32 as u32);
        assert_eq!(alu(AluOp::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(alu(AluOp::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(alu(AluOp::Xor, 0b1100, 0b1010), 0b0110);
        assert_eq!(alu(AluOp::Sll, 1, 31), 0x8000_0000);
        assert_eq!(alu(AluOp::Srl, 0x8000_0000, 31), 1);
        assert_eq!(alu(AluOp::Sra, 0x8000_0000, 31), u32::MAX);
        assert_eq!(alu(AluOp::Sll, 1, 32), 1, "shift amount masked to 5 bits");
    }

    #[test]
    fn imm_extension_rules() {
        assert_eq!(alu_imm(AluImmOp::Addi, 10, 0xFFFF), 9, "addi sign-extends");
        assert_eq!(alu_imm(AluImmOp::Andi, u32::MAX, 0xFFFF), 0xFFFF, "andi zero-extends");
        assert_eq!(alu_imm(AluImmOp::Ori, 0, 0x8000), 0x8000);
        assert_eq!(alu_imm(AluImmOp::Xori, 0, 0xFFFF), u32::MAX, "xori sign-extends");
    }

    #[test]
    fn shift_imm_ops() {
        assert_eq!(shift_imm(ShiftOp::Sll, 1, 4), 16);
        assert_eq!(shift_imm(ShiftOp::Srl, 0x80, 4), 8);
        assert_eq!(shift_imm(ShiftOp::Sra, 0x8000_0000, 4), 0xF800_0000);
    }

    #[test]
    fn extend_ops() {
        assert_eq!(extend(ExtKind::Bs, 0x1FF), 0xFFFF_FFFF);
        assert_eq!(extend(ExtKind::Bz, 0x1FF), 0xFF);
        assert_eq!(extend(ExtKind::Hs, 0x1_8000), 0xFFFF_8000);
        assert_eq!(extend(ExtKind::Hz, 0x1_8000), 0x8000);
    }

    #[test]
    fn multiply_signedness() {
        assert_eq!(multiply(MulDivOp::Mul, -2i32 as u32, 3), (-6i32 as u32, u32::MAX));
        assert_eq!(multiply(MulDivOp::Mulu, u32::MAX, 2), (u32::MAX - 1, 1));
    }

    #[test]
    fn divide_cases() {
        assert_eq!(divide(MulDivOp::Div, -7i32 as u32, 2), (-3i32 as u32, -1i32 as u32));
        assert_eq!(divide(MulDivOp::Divu, 7, 2), (3, 1));
        assert_eq!(divide(MulDivOp::Div, 5, 0), (u32::MAX, 5));
        assert_eq!(divide(MulDivOp::Div, 0x8000_0000, u32::MAX), (0x8000_0000, 0));
    }

    #[test]
    #[should_panic(expected = "divide op")]
    fn multiply_rejects_div() {
        multiply(MulDivOp::Div, 1, 1);
    }

    #[test]
    fn align_and_merge_are_inverse() {
        let word = 0x4433_2211u32;
        assert_eq!(align_load(word, 0, MemSize::Byte, false), 0x11);
        assert_eq!(align_load(word, 3, MemSize::Byte, false), 0x44);
        assert_eq!(align_load(word, 2, MemSize::Half, false), 0x4433);
        assert_eq!(align_load(word, 0, MemSize::Half, true), 0x2211);
        assert_eq!(merge_store(word, 1, MemSize::Byte, 0xAA), 0x4433_AA11);
        assert_eq!(merge_store(word, 2, MemSize::Half, 0xBEEF), 0xBEEF_2211);
        assert_eq!(merge_store(word, 0, MemSize::Word, 5), 5);
    }

    #[test]
    fn align_addr_masks() {
        assert_eq!(align_addr(0x103, MemSize::Word), 0x100);
        assert_eq!(align_addr(0x103, MemSize::Half), 0x102);
        assert_eq!(align_addr(0x103, MemSize::Byte), 0x103);
    }

    proptest! {
        #[test]
        fn div_identity(a in any::<u32>(), b in 1u32..) {
            let (q, r) = divide(MulDivOp::Divu, a, b);
            prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
            prop_assert!(r < b);
        }

        #[test]
        fn signed_div_identity(a in any::<i32>(), b in any::<i32>()) {
            prop_assume!(b != 0 && !(a == i32::MIN && b == -1));
            let (q, r) = divide(MulDivOp::Div, a as u32, b as u32);
            let lhs = (q as i32).wrapping_mul(b).wrapping_add(r as i32);
            prop_assert_eq!(lhs, a);
        }

        #[test]
        fn merge_then_load_roundtrip(word in any::<u32>(), data in any::<u32>(), off in 0u32..4) {
            let merged = merge_store(word, off, MemSize::Byte, data);
            prop_assert_eq!(align_load(merged, off, MemSize::Byte, false), data & 0xFF);
        }
    }
}
