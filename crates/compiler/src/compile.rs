//! The three-phase DCS embedding pipeline (§3.2.2).

use crate::builder::{DataItem, ProgramUnit, Stmt};
use crate::error::CompileError;
use crate::program::{EmbedStats, Program};
use argus_core::dcs::DcsUnit;
use argus_core::shs::{ShsEngine, ShsFile};
use argus_isa::encode::{encode, unused_bit_positions, SIG_MAX_SLOTS};
use argus_isa::instr::Instr;
use argus_isa::pack_indirect_target;
use argus_isa::reg::Reg;
use argus_isa::INDIRECT_ADDR_MASK;
use std::collections::HashMap;

/// Compilation target: a plain binary or a signature-embedded one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No signatures — the binary the paper's overhead figures compare
    /// against (run with `argus_mode: false` machines).
    Baseline,
    /// Full Argus-1 embedding.
    Argus,
}

/// Embedding parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmbedConfig {
    /// Signature width (must match the runtime checker's).
    pub sig_width: u32,
    /// The runtime checker's block-length bound (hard upper limit).
    pub max_block_len: u32,
    /// Where the compiler splits straight-line runs. Short blocks bound the
    /// window in which a small-signature divergence can alias away before
    /// the next DCS comparison, at the cost of more end-of-block markers.
    pub split_limit: u32,
    /// Code section base address.
    pub code_base: u32,
    /// Data section base address.
    pub data_base: u32,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        Self { sig_width: 5, max_block_len: 64, split_limit: 16, code_base: 0, data_base: 0x8_0000 }
    }
}

/// One instruction-position in the flattened program.
#[derive(Debug, Clone, PartialEq)]
struct Item {
    labels: Vec<String>,
    stmt: Stmt,
}

impl Item {
    fn is_cti(&self) -> bool {
        self.stmt.is_cti()
    }

    fn is_halt(&self) -> bool {
        matches!(self.stmt, Stmt::Op(Instr::Halt))
    }

    fn plain_unused_bits(&self) -> u32 {
        match &self.stmt {
            Stmt::Op(i) => match i {
                // Sig payload capacity is counted explicitly.
                Instr::Sig { nslots, .. } => *nslots as u32 * 5,
                _ => unused_bit_positions(encode(i)).len() as u32,
            },
            // Branches and direct jumps have no unused bits; register-
            // indirect jumps have 21.
            Stmt::BranchTo { .. } | Stmt::JumpTo { .. } => 0,
            Stmt::JumpReg { .. } => 21,
            Stmt::Label(_) => 0,
        }
    }
}

/// How a basic block ends.
#[derive(Debug, Clone, PartialEq)]
enum Term {
    /// Conditional branch: successors are (taken target, fall-through).
    Cond { label: String },
    /// Direct jump or call.
    Jump { label: String, link: bool },
    /// Register-indirect jump or call.
    JumpReg { link: bool },
    /// Falls through over an end-of-block Signature marker.
    FallThrough,
    /// Ends the program.
    Halt,
}

#[derive(Debug, Clone)]
struct Block {
    /// Item index range `[start, end]`, inclusive (includes the delay slot
    /// for CTI-terminated blocks).
    start: usize,
    end: usize,
    /// Items `[start, embed_end)` may carry embedded DCS bits (the delay
    /// slot is excluded: its bits arrive after the CTI already consumed
    /// the slots).
    embed_end: usize,
    term: Term,
}

fn flatten(unit: &ProgramUnit) -> Result<Vec<Item>, CompileError> {
    let mut items: Vec<Item> = Vec::new();
    let mut pending_labels: Vec<String> = Vec::new();
    let mut seen: HashMap<String, ()> = HashMap::new();
    for stmt in &unit.stmts {
        match stmt {
            Stmt::Label(l) => {
                if seen.insert(l.clone(), ()).is_some() {
                    return Err(CompileError::DuplicateLabel(l.clone()));
                }
                pending_labels.push(l.clone());
            }
            s => items.push(Item { labels: std::mem::take(&mut pending_labels), stmt: s.clone() }),
        }
    }
    if let Some(l) = pending_labels.into_iter().next() {
        return Err(CompileError::TrailingLabel(l));
    }
    if items.is_empty() {
        return Err(CompileError::EmptyProgram);
    }
    for (i, item) in items.iter().enumerate() {
        // Pre-resolved control transfers pushed as raw `Stmt::Op` bypass
        // label resolution and block analysis; require the symbolic forms.
        if matches!(&item.stmt, Stmt::Op(instr) if instr.is_cti()) {
            return Err(CompileError::RawControlTransfer { at: i });
        }
        // Delay-slot discipline: every CTI must be followed by a plain,
        // label-free instruction.
        if item.is_cti() {
            match items.get(i + 1) {
                Some(next) if !next.is_cti() && next.labels.is_empty() && !next.is_halt() => {}
                _ => return Err(CompileError::DelaySlotViolation { at: i }),
            }
        }
    }
    // The program must not run off the end: it has to end with `halt` or
    // an *unconditional* transfer (a trailing conditional branch still
    // falls through into nothing on the not-taken path).
    let last_ok = items.last().map(|it| it.is_halt()).unwrap_or(false)
        || items.len() >= 2
            && matches!(items[items.len() - 2].stmt, Stmt::JumpTo { .. } | Stmt::JumpReg { .. });
    if !last_ok {
        return Err(CompileError::NoTerminator);
    }
    Ok(items)
}

/// Phase 1: insert Signature instructions (carriers before CTIs whose
/// blocks lack unused bits, end-of-block markers at fall-through
/// boundaries) and split blocks exceeding the length cap.
fn phase1_insert(items: Vec<Item>, cfg: &EmbedConfig) -> Vec<Item> {
    let cap_limit = cfg.split_limit.min(cfg.max_block_len.saturating_sub(12)).clamp(4, 48);
    let marker = |nslots: u8| Item {
        labels: vec![],
        stmt: Stmt::Op(Instr::Sig { nslots, eob: true, payload: 0 }),
    };
    let carrier = |nslots: u8| Item {
        labels: vec![],
        stmt: Stmt::Op(Instr::Sig { nslots, eob: false, payload: 0 }),
    };

    let mut out: Vec<Item> = Vec::with_capacity(items.len() + items.len() / 4);
    let mut cap_bits = 0u32;
    let mut blk_len = 0u32;
    let mut i = 0;
    while i < items.len() {
        let item = &items[i];
        if !item.labels.is_empty() && blk_len > 0 {
            // Fall-through into a labeled block: close with a marker.
            let nslots = u8::from(cap_bits < 5);
            out.push(marker(nslots));
            blk_len = 0;
            cap_bits = 0;
        }
        if item.is_cti() {
            let need = match &item.stmt {
                Stmt::BranchTo { .. } | Stmt::JumpTo { link: true, .. } => 10,
                Stmt::JumpTo { link: false, .. } | Stmt::JumpReg { link: true, .. } => 5,
                _ => 0,
            };
            let total = cap_bits + item.plain_unused_bits();
            let mut item = item.clone();
            if total < need {
                let deficit = need - total;
                let nslots = deficit.div_ceil(5).min(SIG_MAX_SLOTS as u32) as u8;
                let mut c = carrier(nslots);
                // A labeled CTI stays a branch target only if the carrier
                // inserted in front of it takes over the label (the block —
                // and therefore the embedded slots — must start there).
                c.labels = std::mem::take(&mut item.labels);
                out.push(c);
            }
            out.push(item);
            out.push(items[i + 1].clone()); // delay slot (validated)
            i += 2;
            blk_len = 0;
            cap_bits = 0;
            continue;
        }
        if item.is_halt() {
            out.push(item.clone());
            i += 1;
            blk_len = 0;
            cap_bits = 0;
            continue;
        }
        out.push(item.clone());
        blk_len += 1;
        cap_bits += item.plain_unused_bits();
        i += 1;
        // Length cap: split long straight-line runs.
        let next_is_boundary =
            items.get(i).map(|n| !n.labels.is_empty() || n.is_cti() || n.is_halt()).unwrap_or(true);
        if blk_len >= cap_limit && !next_is_boundary {
            let nslots = u8::from(cap_bits < 5);
            out.push(marker(nslots));
            blk_len = 0;
            cap_bits = 0;
        }
    }
    out
}

/// Segments the (post-insertion) item list into basic blocks.
fn segment(items: &[Item]) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < items.len() {
        let item = &items[i];
        if item.is_cti() {
            // CTI + delay slot end the block.
            let end = i + 1;
            let term = match &item.stmt {
                Stmt::BranchTo { label, .. } => Term::Cond { label: label.clone() },
                Stmt::JumpTo { label, link } => Term::Jump { label: label.clone(), link: *link },
                Stmt::JumpReg { link, .. } => Term::JumpReg { link: *link },
                _ => unreachable!("is_cti"),
            };
            blocks.push(Block { start, end, embed_end: i + 1, term });
            start = end + 1;
            i = end + 1;
        } else if matches!(item.stmt, Stmt::Op(Instr::Sig { eob: true, .. })) {
            blocks.push(Block { start, end: i, embed_end: i + 1, term: Term::FallThrough });
            start = i + 1;
            i += 1;
        } else if item.is_halt() {
            blocks.push(Block { start, end: i, embed_end: i + 1, term: Term::Halt });
            start = i + 1;
            i += 1;
        } else {
            i += 1;
        }
    }
    blocks
}

fn concrete_instr(
    item: &Item,
    addr: u32,
    labels: &HashMap<String, u32>,
) -> Result<Instr, CompileError> {
    let resolve =
        |l: &String| labels.get(l).copied().ok_or_else(|| CompileError::UnknownLabel(l.clone()));
    let word_off = |target: u32, label: &String| -> Result<i32, CompileError> {
        let diff = (target as i64 - addr as i64) / 4;
        if (-(1 << 25)..(1 << 25)).contains(&diff) {
            Ok(diff as i32)
        } else {
            Err(CompileError::OffsetOutOfRange { label: label.clone() })
        }
    };
    Ok(match &item.stmt {
        Stmt::Op(i) => *i,
        Stmt::BranchTo { taken_if, label } => {
            Instr::Branch { taken_if: *taken_if, off: word_off(resolve(label)?, label)? }
        }
        Stmt::JumpTo { link, label } => {
            Instr::Jump { link: *link, off: word_off(resolve(label)?, label)? }
        }
        Stmt::JumpReg { link, rb } => Instr::JumpReg { link: *link, rb: *rb },
        Stmt::Label(_) => unreachable!("labels were flattened away"),
    })
}

/// Compiles a source unit into a loadable image.
///
/// # Errors
///
/// Returns a [`CompileError`] for malformed sources: unknown or duplicate
/// labels, delay-slot violations, out-of-range branches, or code that does
/// not end in `halt`/a jump.
pub fn compile(unit: &ProgramUnit, mode: Mode, cfg: &EmbedConfig) -> Result<Program, CompileError> {
    if cfg.max_block_len < 16 {
        // The split limit needs headroom for a carrier Sig + CTI + delay
        // slot + marker below the runtime's hard bound.
        return Err(CompileError::BadConfig("max_block_len must be at least 16"));
    }
    if cfg.split_limit < 4 {
        return Err(CompileError::BadConfig("split_limit must be at least 4"));
    }
    let items = flatten(unit)?;
    let items = if mode == Mode::Argus { phase1_insert(items, cfg) } else { items };

    // Layout: one word per item.
    let mut labels: HashMap<String, u32> = HashMap::new();
    for (k, item) in items.iter().enumerate() {
        let addr = cfg.code_base + 4 * k as u32;
        for l in &item.labels {
            labels.insert(l.clone(), addr);
        }
    }
    let mut instrs: Vec<Instr> = Vec::with_capacity(items.len());
    for (k, item) in items.iter().enumerate() {
        instrs.push(concrete_instr(item, cfg.code_base + 4 * k as u32, &labels)?);
    }

    let mut stats = EmbedStats {
        blocks: 0,
        sig_instrs: instrs.iter().filter(|i| matches!(i, Instr::Sig { .. })).count(),
        static_instrs: instrs.len(),
    };

    let mut code: Vec<u32> = instrs.iter().map(encode).collect();
    let mut block_dcs_by_addr: HashMap<u32, u32> = HashMap::new();
    let mut entry_dcs = None;

    if mode == Mode::Argus {
        let blocks = segment(&items);
        stats.blocks = blocks.len();
        let engine = ShsEngine::new(cfg.sig_width);
        let dcs_unit = DcsUnit::new(cfg.sig_width);
        let slot_mask = (1u32 << cfg.sig_width.min(5)) - 1;

        // Phase 2: compute every block's DCS.
        let mut dcs: Vec<u32> = Vec::with_capacity(blocks.len());
        for b in &blocks {
            let mut file = ShsFile::new(cfg.sig_width);
            for instr in &instrs[b.start..=b.end] {
                engine.apply_static(&mut file, instr);
            }
            dcs.push(dcs_unit.compute(&file) & slot_mask);
        }
        for (bi, b) in blocks.iter().enumerate() {
            block_dcs_by_addr.insert(cfg.code_base + 4 * b.start as u32, dcs[bi]);
        }
        entry_dcs = dcs.first().copied();

        // Map label → block index (labels always sit at block starts).
        let mut block_at_item: HashMap<usize, usize> = HashMap::new();
        for (bi, b) in blocks.iter().enumerate() {
            block_at_item.insert(b.start, bi);
        }
        let block_of_label = |l: &String| -> Result<usize, CompileError> {
            let addr = labels.get(l).ok_or_else(|| CompileError::UnknownLabel(l.clone()))?;
            let idx = ((addr - cfg.code_base) / 4) as usize;
            block_at_item.get(&idx).copied().ok_or_else(|| CompileError::UnknownLabel(l.clone()))
        };

        // Phase 3: embed the successor DCS slots.
        for (bi, b) in blocks.iter().enumerate() {
            let next_dcs = || dcs.get(bi + 1).copied().unwrap_or(0);
            let slots: Vec<u32> = match &b.term {
                Term::Cond { label } => vec![dcs[block_of_label(label)?], next_dcs()],
                Term::Jump { label, link: false } => vec![dcs[block_of_label(label)?]],
                Term::Jump { label, link: true } => {
                    vec![dcs[block_of_label(label)?], next_dcs()]
                }
                Term::JumpReg { link: true } => vec![next_dcs()],
                Term::JumpReg { link: false } => vec![],
                Term::FallThrough => vec![next_dcs()],
                Term::Halt => vec![],
            };
            let mut bits: Vec<bool> = Vec::with_capacity(slots.len() * 5);
            for s in &slots {
                for i in 0..5 {
                    bits.push((s >> i) & 1 == 1);
                }
            }
            let mut cursor = 0usize;
            for k in b.start..b.embed_end {
                if cursor >= bits.len() {
                    break;
                }
                match instrs[k] {
                    Instr::Sig { nslots, eob, .. } => {
                        let mut payload = 0u16;
                        for i in 0..(nslots as usize * 5) {
                            if cursor < bits.len() && bits[cursor] {
                                payload |= 1 << i;
                            }
                            cursor += 1;
                        }
                        code[k] = encode(&Instr::Sig { nslots, eob, payload });
                    }
                    ref instr => {
                        let mut w = code[k];
                        for pos in unused_bit_positions(encode(instr)) {
                            if cursor >= bits.len() {
                                break;
                            }
                            if bits[cursor] {
                                w |= 1 << pos;
                            }
                            cursor += 1;
                        }
                        code[k] = w;
                    }
                }
            }
            assert!(
                cursor >= bits.len(),
                "phase 1 under-allocated embedding capacity in block {bi}"
            );
        }
    }

    // Data section: pack code pointers.
    let mut data = Vec::with_capacity(unit.data.len());
    for item in &unit.data {
        match item {
            DataItem::Word(w) => data.push(*w),
            DataItem::CodePtr(l) => {
                let addr = *labels.get(l).ok_or_else(|| CompileError::UnknownLabel(l.clone()))?;
                if mode == Mode::Argus {
                    if addr > INDIRECT_ADDR_MASK {
                        return Err(CompileError::AddressTooLarge(addr));
                    }
                    // Labels always sit at block starts after phase 1, so a
                    // miss here is a compiler invariant violation, not a
                    // user error worth a silent zero.
                    let d = *block_dcs_by_addr
                        .get(&addr)
                        .unwrap_or_else(|| panic!("label `{l}` not at a block start"));
                    data.push(pack_indirect_target(addr, d));
                } else {
                    data.push(addr);
                }
            }
        }
    }

    Ok(Program {
        mode,
        code_base: cfg.code_base,
        code,
        data_base: cfg.data_base,
        data,
        entry: cfg.code_base,
        entry_dcs,
        stats,
    })
}

/// Convenience: the register conventionally used as the stack pointer when
/// workloads need one.
pub const SP: Reg = Reg::SP;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use argus_isa::instr::Cond;
    use argus_isa::reg::r;

    fn simple_unit() -> ProgramUnit {
        let mut b = ProgramBuilder::new();
        b.addi(r(3), Reg::ZERO, 10);
        b.label("loop");
        b.addi(r(4), r(4), 1);
        b.sfi(Cond::Ltu, r(4), 10);
        b.bf("loop");
        b.nop();
        b.halt();
        b.unit()
    }

    #[test]
    fn baseline_compiles_without_sigs() {
        let p = compile(&simple_unit(), Mode::Baseline, &EmbedConfig::default()).unwrap();
        assert_eq!(p.stats.sig_instrs, 0);
        assert_eq!(p.code.len(), 6);
    }

    #[test]
    fn argus_inserts_marker_and_carrier_sigs() {
        let p = compile(&simple_unit(), Mode::Argus, &EmbedConfig::default()).unwrap();
        assert!(p.stats.sig_instrs >= 1, "branch block has few unused bits");
        assert!(p.code.len() > 6);
        assert!(p.stats.blocks >= 3);
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut b = ProgramBuilder::new();
        b.label("x").nop().label("x").halt();
        assert_eq!(
            compile(&b.unit(), Mode::Baseline, &EmbedConfig::default()),
            Err(CompileError::DuplicateLabel("x".into()))
        );
    }

    #[test]
    fn unknown_label_rejected() {
        let mut b = ProgramBuilder::new();
        b.j("nowhere").nop().halt();
        assert_eq!(
            compile(&b.unit(), Mode::Baseline, &EmbedConfig::default()),
            Err(CompileError::UnknownLabel("nowhere".into()))
        );
    }

    #[test]
    fn delay_slot_violations_rejected() {
        // CTI followed by a label.
        let mut b = ProgramBuilder::new();
        b.j("end").label("end").nop().halt();
        assert!(matches!(
            compile(&b.unit(), Mode::Baseline, &EmbedConfig::default()),
            Err(CompileError::DelaySlotViolation { .. })
        ));
        // CTI followed by another CTI.
        let mut b = ProgramBuilder::new();
        b.label("top").j("top").j("top").nop().halt();
        assert!(matches!(
            compile(&b.unit(), Mode::Baseline, &EmbedConfig::default()),
            Err(CompileError::DelaySlotViolation { .. })
        ));
    }

    #[test]
    fn trailing_label_rejected() {
        let mut b = ProgramBuilder::new();
        b.halt().label("end");
        assert_eq!(
            compile(&b.unit(), Mode::Baseline, &EmbedConfig::default()),
            Err(CompileError::TrailingLabel("end".into()))
        );
    }

    #[test]
    fn missing_terminator_rejected() {
        let mut b = ProgramBuilder::new();
        b.nop();
        assert_eq!(
            compile(&b.unit(), Mode::Baseline, &EmbedConfig::default()),
            Err(CompileError::NoTerminator)
        );
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(
            compile(&ProgramUnit::default(), Mode::Baseline, &EmbedConfig::default()),
            Err(CompileError::EmptyProgram)
        );
    }

    #[test]
    fn long_straight_line_blocks_are_split() {
        let mut b = ProgramBuilder::new();
        for _ in 0..200 {
            b.add(r(3), r(3), r(4));
        }
        b.halt();
        let p = compile(&b.unit(), Mode::Argus, &EmbedConfig::default()).unwrap();
        assert!(p.stats.blocks >= 4, "200-instruction run must be split, got {}", p.stats.blocks);
    }

    #[test]
    fn code_pointers_are_packed_in_argus_mode() {
        let mut b = ProgramBuilder::new();
        b.data_label("table").data_code_ptr("func");
        b.j("func").nop();
        b.label("func").halt();
        let p = compile(&b.unit(), Mode::Argus, &EmbedConfig::default()).unwrap();
        let packed = p.data[0];
        let (addr, _dcs) = argus_isa::split_indirect_target(packed);
        // The label must resolve inside the code section.
        assert!(addr >= p.code_base && addr < p.code_base + 4 * p.code.len() as u32);

        let pb = compile(&b.unit(), Mode::Baseline, &EmbedConfig::default()).unwrap();
        assert!(pb.data[0] < 4 * pb.code.len() as u32, "baseline pointer is a plain address");
    }

    #[test]
    fn embedded_slots_decode_back_from_the_image() {
        // Reconstruct the embedded stream of the first block and verify the
        // first slot equals the DCS the compiler computed for its successor.
        let cfg = EmbedConfig::default();
        let mut b = ProgramBuilder::new();
        b.addi(r(3), Reg::ZERO, 1);
        b.label("next");
        b.addi(r(4), Reg::ZERO, 2);
        b.halt();
        let p = compile(&b.unit(), Mode::Argus, &cfg).unwrap();

        // Block 0 = [addi, marker-sig]; block 1 = [addi, halt].
        let engine = ShsEngine::new(cfg.sig_width);
        let dcsu = DcsUnit::new(cfg.sig_width);
        let mut file = ShsFile::new(cfg.sig_width);
        engine.apply_static(&mut file, &argus_isa::decode::decode(p.code[2]));
        engine.apply_static(&mut file, &argus_isa::decode::decode(p.code[3]));
        let expected = dcsu.compute(&file) & 31;

        // Collect the embedded stream of block 0 the way the hardware does.
        let mut bits = Vec::new();
        for &w in &p.code[..2] {
            match argus_isa::decode::decode(w) {
                Instr::Sig { nslots, payload, .. } => {
                    for i in 0..(nslots as u32 * 5) {
                        bits.push((payload >> i) & 1 == 1);
                    }
                }
                _ => {
                    for pos in unused_bit_positions(w) {
                        bits.push((w >> pos) & 1 == 1);
                    }
                }
            }
        }
        let slot0 =
            bits.iter().take(5).enumerate().fold(0u32, |acc, (i, &bit)| acc | ((bit as u32) << i));
        assert_eq!(slot0, expected);
    }
}
