//! Static binary verifier.
//!
//! Re-derives the basic-block structure of a compiled Argus image straight
//! from its instruction words — the same segmentation rules the runtime
//! checker applies — recomputes each block's DCS, re-parses the embedded
//! successor slots, and confirms every slot names the DCS of the block it
//! points at. A loader (or a paranoid build system) can run this to prove
//! an image's signatures are self-consistent before execution; the test
//! suite uses it as an oracle that any bit of embedded signature state is
//! load-bearing.

use crate::compile::{EmbedConfig, Mode};
use crate::program::Program;
use argus_core::dcs::DcsUnit;
use argus_core::shs::{ShsEngine, ShsFile};
use argus_isa::decode::decode;
use argus_isa::instr::Instr;
use std::collections::HashMap;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The image was not compiled in Argus mode.
    NotArgusMode,
    /// A basic block exceeds the runtime checker's length bound.
    BlockTooLong {
        /// Address of the block's first instruction.
        block_addr: u32,
        /// Its length in instructions.
        len: u32,
    },
    /// An embedded successor slot disagrees with the successor's DCS.
    SlotMismatch {
        /// Address of the block carrying the slot.
        block_addr: u32,
        /// Slot index within the block.
        slot: usize,
        /// The embedded value.
        embedded: u32,
        /// The recomputed successor DCS.
        expected: u32,
    },
    /// A control transfer targets an address that is not a block start.
    TargetNotABlock {
        /// Address of the CTI.
        at: u32,
        /// The offending target.
        target: u32,
    },
    /// The recorded entry DCS disagrees with the first block's DCS.
    EntryDcsMismatch,
    /// Code runs off the end of the image without `halt` or a jump.
    MissingTerminator,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NotArgusMode => write!(f, "image is not an Argus-mode binary"),
            VerifyError::BlockTooLong { block_addr, len } => {
                write!(f, "block at {block_addr:#x} has {len} instructions (over the bound)")
            }
            VerifyError::SlotMismatch { block_addr, slot, embedded, expected } => write!(
                f,
                "block {block_addr:#x} slot {slot}: embedded {embedded:#04x} ≠ successor DCS {expected:#04x}"
            ),
            VerifyError::TargetNotABlock { at, target } => {
                write!(f, "CTI at {at:#x} targets {target:#x}, which is mid-block")
            }
            VerifyError::EntryDcsMismatch => write!(f, "entry DCS does not match the first block"),
            VerifyError::MissingTerminator => write!(f, "code runs off the end of the image"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verification statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Blocks found.
    pub blocks: usize,
    /// Embedded successor slots checked.
    pub slots_checked: usize,
}

#[derive(Debug)]
pub(crate) struct Block {
    pub(crate) addr: u32,
    /// Word indices `[start, end]` inclusive.
    start: usize,
    end: usize,
    /// Indices whose bits feed the embedded stream (excludes the delay slot).
    embed_end: usize,
    term: Term,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Term {
    Cond { target: u32 },
    Jump { target: u32, link: bool },
    JumpReg { link: bool },
    FallThrough,
    Halt,
}

pub(crate) fn segment(code: &[u32], base: u32) -> Result<Vec<Block>, VerifyError> {
    let mut blocks = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < code.len() {
        let instr = decode(code[i]);
        let addr = base + 4 * i as u32;
        if instr.is_cti() {
            if i + 1 >= code.len() {
                return Err(VerifyError::MissingTerminator);
            }
            let term = match instr {
                Instr::Branch { off, .. } => {
                    Term::Cond { target: addr.wrapping_add((off as u32) << 2) }
                }
                Instr::Jump { off, link } => {
                    Term::Jump { target: addr.wrapping_add((off as u32) << 2), link }
                }
                Instr::JumpReg { link, .. } => Term::JumpReg { link },
                _ => unreachable!("is_cti"),
            };
            blocks.push(Block {
                addr: base + 4 * start as u32,
                start,
                end: i + 1,
                embed_end: i + 1,
                term,
            });
            start = i + 2;
            i += 2;
        } else if matches!(instr, Instr::Sig { eob: true, .. }) {
            blocks.push(Block {
                addr: base + 4 * start as u32,
                start,
                end: i,
                embed_end: i + 1,
                term: Term::FallThrough,
            });
            start = i + 1;
            i += 1;
        } else if matches!(instr, Instr::Halt) {
            blocks.push(Block {
                addr: base + 4 * start as u32,
                start,
                end: i,
                embed_end: i + 1,
                term: Term::Halt,
            });
            start = i + 1;
            i += 1;
        } else {
            i += 1;
        }
    }
    Ok(blocks)
}

fn embedded_stream(code: &[u32], b: &Block) -> Vec<bool> {
    code[b.start..b.embed_end].iter().flat_map(|&w| argus_isa::encode::embedded_bits(w)).collect()
}

fn slot(bits: &[bool], k: usize) -> u32 {
    let mut v = 0;
    for i in 0..5 {
        if bits.get(5 * k + i).copied().unwrap_or(false) {
            v |= 1 << i;
        }
    }
    v
}

/// Verifies a compiled Argus image.
///
/// # Errors
///
/// Returns the first inconsistency found (see [`VerifyError`]).
pub fn verify_image(prog: &Program, cfg: &EmbedConfig) -> Result<VerifyReport, VerifyError> {
    if prog.mode != Mode::Argus {
        return Err(VerifyError::NotArgusMode);
    }
    let blocks = segment(&prog.code, prog.code_base)?;
    let engine = ShsEngine::new(cfg.sig_width);
    let dcs_unit = DcsUnit::new(cfg.sig_width);
    let slot_mask = (1u32 << cfg.sig_width.min(5)) - 1;

    let mut dcs = Vec::with_capacity(blocks.len());
    let mut by_addr: HashMap<u32, usize> = HashMap::new();
    for (bi, b) in blocks.iter().enumerate() {
        let len = (b.end - b.start + 1) as u32;
        if len > cfg.max_block_len {
            return Err(VerifyError::BlockTooLong { block_addr: b.addr, len });
        }
        let mut file = ShsFile::new(cfg.sig_width);
        for &w in &prog.code[b.start..=b.end] {
            engine.apply_static(&mut file, &decode(w));
        }
        dcs.push(dcs_unit.compute(&file) & slot_mask);
        by_addr.insert(b.addr, bi);
    }

    if prog.entry_dcs != Some(dcs[0]) {
        return Err(VerifyError::EntryDcsMismatch);
    }

    let block_at = |addr: u32, at: u32| -> Result<usize, VerifyError> {
        by_addr.get(&addr).copied().ok_or(VerifyError::TargetNotABlock { at, target: addr })
    };

    let mut report = VerifyReport { blocks: blocks.len(), slots_checked: 0 };
    for (bi, b) in blocks.iter().enumerate() {
        let cti_addr = prog.code_base + 4 * (b.embed_end as u32 - 1);
        let expected_slots: Vec<u32> = match b.term {
            Term::Cond { target } => {
                vec![dcs[block_at(target, cti_addr)?], *dcs.get(bi + 1).unwrap_or(&0)]
            }
            Term::Jump { target, link: false } => vec![dcs[block_at(target, cti_addr)?]],
            Term::Jump { target, link: true } => {
                vec![dcs[block_at(target, cti_addr)?], *dcs.get(bi + 1).unwrap_or(&0)]
            }
            Term::JumpReg { link: true } => vec![*dcs.get(bi + 1).unwrap_or(&0)],
            Term::JumpReg { link: false } => vec![],
            Term::FallThrough => vec![*dcs.get(bi + 1).unwrap_or(&0)],
            Term::Halt => vec![],
        };
        let bits = embedded_stream(&prog.code, b);
        for (k, &want) in expected_slots.iter().enumerate() {
            let got = slot(&bits, k);
            if got != want {
                return Err(VerifyError::SlotMismatch {
                    block_addr: b.addr,
                    slot: k,
                    embedded: got,
                    expected: want,
                });
            }
            report.slots_checked += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::compile::compile;
    use argus_isa::instr::Cond;
    use argus_isa::reg::{r, Reg};

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.li(r(3), 0);
        b.li(r(4), 1);
        b.label("loop");
        b.add(r(3), r(3), r(4));
        b.addi(r(4), r(4), 1);
        b.sfi(Cond::Leu, r(4), 10);
        b.bf("loop");
        b.nop();
        b.jal("fn");
        b.nop();
        b.halt();
        b.label("fn");
        b.add(r(5), r(3), r(3));
        b.jr(Reg::LR);
        b.nop();
        compile(&b.unit(), Mode::Argus, &EmbedConfig::default()).unwrap()
    }

    #[test]
    fn compiled_images_verify() {
        let prog = sample_program();
        let rep = verify_image(&prog, &EmbedConfig::default()).expect("image verifies");
        assert!(rep.blocks >= 4);
        assert!(rep.slots_checked >= 4);
    }

    #[test]
    fn all_workload_style_programs_verify() {
        // A larger program with a split straight-line run.
        let mut b = ProgramBuilder::new();
        for i in 0..120 {
            b.addi(r(3), r(3), (i % 5) as i16);
        }
        b.halt();
        let prog = compile(&b.unit(), Mode::Argus, &EmbedConfig::default()).unwrap();
        let rep = verify_image(&prog, &EmbedConfig::default()).unwrap();
        assert!(rep.blocks > 4, "split blocks expected");
    }

    #[test]
    fn baseline_images_are_rejected() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let prog = compile(&b.unit(), Mode::Baseline, &EmbedConfig::default()).unwrap();
        assert_eq!(verify_image(&prog, &EmbedConfig::default()), Err(VerifyError::NotArgusMode));
    }

    #[test]
    fn corrupting_an_embedded_slot_fails_verification() {
        let mut prog = sample_program();
        // Find a Sig with payload slots and flip a payload bit.
        let idx = prog
            .code
            .iter()
            .position(|&w| matches!(decode(w), Instr::Sig { nslots, .. } if nslots > 0))
            .expect("program has a slot-carrying Sig");
        prog.code[idx] ^= 1; // payload bit 0
        let err = verify_image(&prog, &EmbedConfig::default()).unwrap_err();
        assert!(
            matches!(err, VerifyError::SlotMismatch { .. } | VerifyError::EntryDcsMismatch),
            "got {err}"
        );
    }

    #[test]
    fn corrupting_an_instruction_fails_verification() {
        let mut prog = sample_program();
        // Flip a semantic bit of the first add (its rd field).
        let idx = prog.code.iter().position(|&w| matches!(decode(w), Instr::Alu { .. })).unwrap();
        prog.code[idx] ^= 1 << 21;
        let err = verify_image(&prog, &EmbedConfig::default()).unwrap_err();
        assert!(
            matches!(err, VerifyError::SlotMismatch { .. } | VerifyError::EntryDcsMismatch),
            "got {err}"
        );
    }

    #[test]
    fn entry_dcs_is_checked() {
        let mut prog = sample_program();
        prog.entry_dcs = Some(prog.entry_dcs.unwrap() ^ 1);
        assert_eq!(
            verify_image(&prog, &EmbedConfig::default()),
            Err(VerifyError::EntryDcsMismatch)
        );
    }

    #[test]
    fn error_display() {
        let e = VerifyError::SlotMismatch { block_addr: 0x40, slot: 1, embedded: 3, expected: 9 };
        assert!(e.to_string().contains("0x40"));
    }
}
