//! Compilation errors.

use std::fmt;

/// Errors raised while assembling or embedding a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A control transfer references an unknown label.
    UnknownLabel(String),
    /// A control-transfer instruction is not followed by a plain delay-slot
    /// instruction (labels and CTIs are illegal in delay slots).
    DelaySlotViolation {
        /// Index of the offending statement.
        at: usize,
    },
    /// A branch target is out of encodable range.
    OffsetOutOfRange {
        /// The label that is too far away.
        label: String,
    },
    /// The program is empty.
    EmptyProgram,
    /// A code address does not fit the indirect-target address field.
    AddressTooLarge(u32),
    /// A label is defined after the last instruction.
    TrailingLabel(String),
    /// A control transfer was pushed as a raw instruction (`Stmt::Op`)
    /// instead of the symbolic `bf`/`j`/`jr` forms the block analysis
    /// needs.
    RawControlTransfer {
        /// Index of the offending statement.
        at: usize,
    },
    /// The program does not end with `halt` or a control transfer.
    NoTerminator,
    /// The embedding configuration is unusable (e.g. a block-length bound
    /// too small for the compiler's insertion headroom).
    BadConfig(&'static str),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            CompileError::UnknownLabel(l) => write!(f, "unknown label `{l}`"),
            CompileError::DelaySlotViolation { at } => {
                write!(f, "statement {at}: control transfer needs a plain delay-slot instruction")
            }
            CompileError::OffsetOutOfRange { label } => {
                write!(f, "branch to `{label}` exceeds the 26-bit offset range")
            }
            CompileError::EmptyProgram => write!(f, "program has no instructions"),
            CompileError::AddressTooLarge(a) => {
                write!(f, "code address {a:#x} exceeds the 27-bit indirect-target range")
            }
            CompileError::TrailingLabel(l) => write!(f, "label `{l}` after the last instruction"),
            CompileError::RawControlTransfer { at } => write!(
                f,
                "statement {at}: use the symbolic branch/jump builder forms, not a raw instruction"
            ),
            CompileError::NoTerminator => {
                write!(f, "program must end with `halt` or a control transfer")
            }
            CompileError::BadConfig(msg) => write!(f, "bad embedding configuration: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CompileError::UnknownLabel("loop".into()).to_string().contains("loop"));
        assert!(CompileError::DelaySlotViolation { at: 7 }.to_string().contains('7'));
        assert!(CompileError::AddressTooLarge(1 << 28).to_string().contains("27-bit"));
    }
}
