//! Compiled program images.

use crate::compile::Mode;
use argus_machine::Machine;

/// Statistics from the signature-embedding phases (feed Figure 5's static
/// instruction-count overhead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmbedStats {
    /// Number of basic blocks formed.
    pub blocks: usize,
    /// Signature instructions inserted (carriers + end-of-block markers).
    pub sig_instrs: usize,
    /// Total static instructions in the final binary.
    pub static_instrs: usize,
}

/// A fully linked program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Compilation mode this image was produced for.
    pub mode: Mode,
    /// Base address of the code section.
    pub code_base: u32,
    /// Encoded instruction words.
    pub code: Vec<u32>,
    /// Base address of the data section.
    pub data_base: u32,
    /// Initialized data words (code pointers already packed).
    pub data: Vec<u32>,
    /// Entry point.
    pub entry: u32,
    /// DCS of the entry block (Argus builds only). A real system's loader
    /// enters a protected binary through an indirect jump whose target
    /// register carries this value; the runtime checker is armed with it so
    /// the first basic block is verified like every other.
    pub entry_dcs: Option<u32>,
    /// Embedding statistics (zeroed for baseline builds except
    /// `static_instrs`).
    pub stats: EmbedStats,
}

impl Program {
    /// Loads the image into a machine and sets the entry point.
    ///
    /// # Panics
    ///
    /// Panics if the machine's Argus mode does not match the image's
    /// compilation mode (running a signature-embedded binary on a baseline
    /// core, or vice versa, is a configuration bug).
    pub fn load(&self, m: &mut Machine) {
        let want_argus = self.mode == Mode::Argus;
        assert_eq!(
            m.config().argus_mode,
            want_argus,
            "machine mode does not match program mode {:?}",
            self.mode
        );
        m.load_code(self.code_base, &self.code);
        m.load_data(self.data_base, &self.data);
        m.set_pc(self.entry);
    }

    /// Address of the data word at `offset` bytes into the data section.
    pub fn data_addr(&self, offset: u32) -> u32 {
        self.data_base + offset
    }
}
