//! # argus-compiler — the signature-embedding tool chain
//!
//! The paper adds Dataflow and Control Signatures (DCSs) to basic blocks
//! "in three distinct phases as part of program compilation and linking"
//! (§3.2.2). This crate is that tool chain:
//!
//! 1. **Phase 1** — basic-block formation (delay-slot aware), block-length
//!    capping, and insertion of Signature instructions where a block's
//!    unused instruction bits cannot hold the DCSs it must carry (plus the
//!    end-of-block markers fall-through blocks need, as in Figure 2).
//! 2. **Phase 2** — computing every block's DCS by symbolically executing
//!    the same SHS update rules the runtime checker applies.
//! 3. **Phase 3** — embedding each block's legal-successor DCSs into its
//!    unused bits / Signature payloads, packing function-pointer and
//!    jump-table entries as `(address, DCS)` pairs, and wiring the link
//!    DCS for returns.
//!
//! The same source can be compiled in [`Mode::Baseline`] (no signatures —
//! the binary the paper's overhead figures compare against) or
//! [`Mode::Argus`].
//!
//! # Examples
//!
//! ```
//! use argus_compiler::{ProgramBuilder, Mode, compile};
//! use argus_isa::{Reg, instr::AluImmOp};
//!
//! let mut b = ProgramBuilder::new();
//! b.addi(Reg::new(3), Reg::ZERO, 41);
//! b.addi(Reg::new(3), Reg::new(3), 1);
//! b.halt();
//! let prog = compile(&b.unit(), Mode::Argus, &Default::default())?;
//! assert!(!prog.code.is_empty());
//! # Ok::<(), argus_compiler::CompileError>(())
//! ```

pub mod asm;
pub mod binver;
pub mod builder;
pub mod compile;
pub mod error;
pub mod lower;
pub mod program;
pub mod verify;

pub use builder::{DataItem, ProgramBuilder, ProgramUnit, Stmt};
pub use compile::{compile, EmbedConfig, Mode};
pub use error::CompileError;
pub use lower::{preplan, LowerReport};
pub use program::{EmbedStats, Program};
