//! Text assembler: parses human-written assembly into a [`ProgramUnit`].
//!
//! The syntax follows the disassembly produced by `argus_isa::Instr`'s
//! `Display` impl, plus labels, comments, a data section and a few
//! pseudo-instructions:
//!
//! ```text
//! ; sum the numbers 1..=100
//!         li   r3, 0          ; pseudo: expands to movhi/ori as needed
//!         li   r4, 1
//!         li   r5, 100
//! loop:   add  r3, r3, r4
//!         addi r4, r4, 1
//!         sfleu r4, r5
//!         bf   loop
//!         nop
//!         halt
//!
//! .data
//! .label table
//! .word 42
//! .ptr  loop               ; packed (address, DCS) code pointer
//! ```

use crate::builder::{DataItem, ProgramUnit, Stmt};
use argus_isa::instr::{AluImmOp, AluOp, Cond, ExtKind, Instr, MemSize, MulDivOp, ShiftOp};
use argus_isa::reg::Reg;
use std::fmt;

/// A parse error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError { line, message: message.into() }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let t = tok.trim();
    let idx: u8 = t
        .strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| err(line, format!("expected register, found `{t}`")))?;
    if idx < 32 {
        Ok(Reg::new(idx))
    } else {
        Err(err(line, format!("register r{idx} out of range")))
    }
}

fn parse_int(tok: &str, line: usize) -> Result<i64, AsmError> {
    let t = tok.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse()
    }
    .map_err(|_| err(line, format!("expected number, found `{t}`")))?;
    Ok(if neg { -v } else { v })
}

fn parse_imm16(tok: &str, line: usize) -> Result<u16, AsmError> {
    let v = parse_int(tok, line)?;
    if (-(1 << 15)..(1 << 16)).contains(&v) {
        Ok(v as u16)
    } else {
        Err(err(line, format!("immediate {v} does not fit in 16 bits")))
    }
}

/// Parses `off(rB)`.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i16, Reg), AsmError> {
    let t = tok.trim();
    let open = t.find('(').ok_or_else(|| err(line, format!("expected off(reg), found `{t}`")))?;
    let close =
        t.rfind(')').filter(|&c| c > open).ok_or_else(|| err(line, "missing `)`".to_string()))?;
    let off = parse_int(&t[..open], line)?;
    if !(-(1i64 << 15)..(1 << 15)).contains(&off) {
        return Err(err(line, format!("offset {off} does not fit in 16 bits")));
    }
    Ok((off as i16, parse_reg(&t[open + 1..close], line)?))
}

fn cond_from_suffix(s: &str) -> Option<Cond> {
    Some(match s {
        "eq" => Cond::Eq,
        "ne" => Cond::Ne,
        "gtu" => Cond::Gtu,
        "geu" => Cond::Geu,
        "ltu" => Cond::Ltu,
        "leu" => Cond::Leu,
        "gts" => Cond::Gts,
        "ges" => Cond::Ges,
        "lts" => Cond::Lts,
        "les" => Cond::Les,
        _ => return None,
    })
}

/// Parses a whole source file into a [`ProgramUnit`].
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, with its line number.
pub fn assemble(source: &str) -> Result<ProgramUnit, AsmError> {
    let mut unit = ProgramUnit::default();
    let mut in_data = false;
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        // Strip comments.
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }

        if let Some(rest) = text.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            let directive = parts.next().unwrap_or("");
            let arg = parts.next();
            match directive {
                "data" => in_data = true,
                "text" => in_data = false,
                "word" => {
                    let v = parse_int(arg.ok_or_else(|| err(line, ".word needs a value"))?, line)?;
                    unit.data.push(DataItem::Word(v as u32));
                }
                "zeros" => {
                    let n = parse_int(arg.ok_or_else(|| err(line, ".zeros needs a count"))?, line)?;
                    for _ in 0..n {
                        unit.data.push(DataItem::Word(0));
                    }
                }
                "ptr" => {
                    let l = arg.ok_or_else(|| err(line, ".ptr needs a label"))?;
                    unit.data.push(DataItem::CodePtr(l.to_owned()));
                }
                "label" => {
                    let l = arg.ok_or_else(|| err(line, ".label needs a name"))?;
                    let off = unit.data.len() as u32 * 4;
                    unit.data_labels.push((l.to_owned(), off));
                }
                other => return Err(err(line, format!("unknown directive `.{other}`"))),
            }
            continue;
        }

        if in_data {
            return Err(err(line, "instructions are not allowed in the data section"));
        }

        // Leading label(s): `name:`.
        let mut text = text;
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line, format!("malformed label `{label}`")));
            }
            unit.stmts.push(Stmt::Label(label.to_owned()));
            text = rest[1..].trim();
            if text.is_empty() {
                break;
            }
        }
        if text.is_empty() {
            continue;
        }

        let (mnemonic, operands) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> =
            if operands.is_empty() { vec![] } else { operands.split(',').map(str::trim).collect() };
        let nops = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(line, format!("`{mnemonic}` expects {n} operand(s), found {}", ops.len())))
            }
        };

        let stmt: Stmt = match mnemonic {
            "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" => {
                nops(3)?;
                let op = match mnemonic {
                    "add" => AluOp::Add,
                    "sub" => AluOp::Sub,
                    "and" => AluOp::And,
                    "or" => AluOp::Or,
                    "xor" => AluOp::Xor,
                    "sll" => AluOp::Sll,
                    "srl" => AluOp::Srl,
                    _ => AluOp::Sra,
                };
                Stmt::Op(Instr::Alu {
                    op,
                    rd: parse_reg(ops[0], line)?,
                    ra: parse_reg(ops[1], line)?,
                    rb: parse_reg(ops[2], line)?,
                })
            }
            "mul" | "mulu" | "div" | "divu" => {
                nops(3)?;
                let op = match mnemonic {
                    "mul" => MulDivOp::Mul,
                    "mulu" => MulDivOp::Mulu,
                    "div" => MulDivOp::Div,
                    _ => MulDivOp::Divu,
                };
                Stmt::Op(Instr::MulDiv {
                    op,
                    rd: parse_reg(ops[0], line)?,
                    ra: parse_reg(ops[1], line)?,
                    rb: parse_reg(ops[2], line)?,
                })
            }
            "addi" | "andi" | "ori" | "xori" => {
                nops(3)?;
                let op = match mnemonic {
                    "addi" => AluImmOp::Addi,
                    "andi" => AluImmOp::Andi,
                    "ori" => AluImmOp::Ori,
                    _ => AluImmOp::Xori,
                };
                Stmt::Op(Instr::AluImm {
                    op,
                    rd: parse_reg(ops[0], line)?,
                    ra: parse_reg(ops[1], line)?,
                    imm: parse_imm16(ops[2], line)?,
                })
            }
            "slli" | "srli" | "srai" => {
                nops(3)?;
                let op = match mnemonic {
                    "slli" => ShiftOp::Sll,
                    "srli" => ShiftOp::Srl,
                    _ => ShiftOp::Sra,
                };
                let sh = parse_int(ops[2], line)?;
                if !(0..32).contains(&sh) {
                    return Err(err(line, format!("shift amount {sh} out of range")));
                }
                Stmt::Op(Instr::ShiftImm {
                    op,
                    rd: parse_reg(ops[0], line)?,
                    ra: parse_reg(ops[1], line)?,
                    sh: sh as u8,
                })
            }
            "movhi" => {
                nops(2)?;
                Stmt::Op(Instr::Movhi {
                    rd: parse_reg(ops[0], line)?,
                    imm: parse_imm16(ops[1], line)?,
                })
            }
            "extbs" | "extbz" | "exths" | "exthz" => {
                nops(2)?;
                let kind = match mnemonic {
                    "extbs" => ExtKind::Bs,
                    "extbz" => ExtKind::Bz,
                    "exths" => ExtKind::Hs,
                    _ => ExtKind::Hz,
                };
                Stmt::Op(Instr::Ext {
                    kind,
                    rd: parse_reg(ops[0], line)?,
                    ra: parse_reg(ops[1], line)?,
                })
            }
            "lw" | "lh" | "lhu" | "lb" | "lbu" => {
                nops(2)?;
                let (size, signed) = match mnemonic {
                    "lw" => (MemSize::Word, false),
                    "lh" => (MemSize::Half, true),
                    "lhu" => (MemSize::Half, false),
                    "lb" => (MemSize::Byte, true),
                    _ => (MemSize::Byte, false),
                };
                let (off, ra) = parse_mem_operand(ops[1], line)?;
                Stmt::Op(Instr::Load { size, signed, rd: parse_reg(ops[0], line)?, ra, off })
            }
            "sw" | "sh" | "sb" => {
                nops(2)?;
                let size = match mnemonic {
                    "sw" => MemSize::Word,
                    "sh" => MemSize::Half,
                    _ => MemSize::Byte,
                };
                let (off, ra) = parse_mem_operand(ops[1], line)?;
                Stmt::Op(Instr::Store { size, ra, rb: parse_reg(ops[0], line)?, off })
            }
            "bf" => {
                nops(1)?;
                Stmt::BranchTo { taken_if: true, label: ops[0].to_owned() }
            }
            "bnf" => {
                nops(1)?;
                Stmt::BranchTo { taken_if: false, label: ops[0].to_owned() }
            }
            "j" => {
                nops(1)?;
                Stmt::JumpTo { link: false, label: ops[0].to_owned() }
            }
            "jal" => {
                nops(1)?;
                Stmt::JumpTo { link: true, label: ops[0].to_owned() }
            }
            "jr" => {
                nops(1)?;
                Stmt::JumpReg { link: false, rb: parse_reg(ops[0], line)? }
            }
            "jalr" => {
                nops(1)?;
                Stmt::JumpReg { link: true, rb: parse_reg(ops[0], line)? }
            }
            "nop" => {
                nops(0)?;
                Stmt::Op(Instr::Nop)
            }
            "halt" => {
                nops(0)?;
                Stmt::Op(Instr::Halt)
            }
            // Pseudo: li rd, imm32 → movhi/ori pair (or single ori/movhi).
            "li" => {
                nops(2)?;
                let rd = parse_reg(ops[0], line)?;
                let v = parse_int(ops[1], line)? as u32;
                if v <= 0xFFFF {
                    Stmt::Op(Instr::AluImm { op: AluImmOp::Ori, rd, ra: Reg::ZERO, imm: v as u16 })
                } else {
                    unit.stmts.push(Stmt::Op(Instr::Movhi { rd, imm: (v >> 16) as u16 }));
                    if v & 0xFFFF == 0 {
                        continue;
                    }
                    Stmt::Op(Instr::AluImm { op: AluImmOp::Ori, rd, ra: rd, imm: v as u16 })
                }
            }
            m if m.starts_with("sf") => {
                nops(2)?;
                let rest = &m[2..];
                // `sfXXi ra, imm` vs `sfXX ra, rb`
                if let Some(cond) = cond_from_suffix(rest) {
                    Stmt::Op(Instr::SetFlag {
                        cond,
                        ra: parse_reg(ops[0], line)?,
                        rb: parse_reg(ops[1], line)?,
                    })
                } else if let Some(cond) = rest.strip_suffix('i').and_then(cond_from_suffix) {
                    Stmt::Op(Instr::SetFlagImm {
                        cond,
                        ra: parse_reg(ops[0], line)?,
                        imm: parse_imm16(ops[1], line)?,
                    })
                } else {
                    return Err(err(line, format!("unknown compare `{m}`")));
                }
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        };
        unit.stmts.push(stmt);
    }
    Ok(unit)
}

/// Disassembles a compiled code image back to text (one instruction per
/// line, with addresses), the inverse presentation of [`assemble`].
pub fn disassemble(code: &[u32], base: u32) -> String {
    let mut out = String::new();
    for (k, &w) in code.iter().enumerate() {
        let i = argus_isa::decode::decode(w);
        out.push_str(&format!("{:#06x}: {:#010x}  {}\n", base + 4 * k as u32, w, i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, EmbedConfig, Mode};
    use argus_machine::{Machine, MachineConfig};
    use argus_sim::fault::FaultInjector;

    const SUM_PROGRAM: &str = r"
; sum 1..=100 into r3
        li   r3, 0
        li   r4, 1
        li   r5, 100
loop:   add  r3, r3, r4
        addi r4, r4, 1
        sfleu r4, r5
        bf   loop
        nop
        halt
";

    fn run(src: &str) -> Machine {
        let unit = assemble(src).expect("assembles");
        let prog = compile(&unit, Mode::Baseline, &EmbedConfig::default()).expect("compiles");
        let mut m = Machine::new(MachineConfig { argus_mode: false, ..Default::default() });
        prog.load(&mut m);
        let res = m.run_to_halt(&mut FaultInjector::none(), 10_000_000);
        assert!(res.halted);
        m
    }

    #[test]
    fn sum_program_assembles_and_runs() {
        let m = run(SUM_PROGRAM);
        assert_eq!(m.reg(Reg::new(3)), 5050);
    }

    #[test]
    fn memory_and_subword_syntax() {
        let m = run(r"
        li  r2, 0x80100
        li  r3, 0xdeadbeef
        sw  r3, 0(r2)
        sb  r3, 5(r2)
        lw  r4, 0(r2)
        lbu r5, 5(r2)
        lh  r6, 0(r2)
        halt
");
        assert_eq!(m.reg(Reg::new(4)), 0xDEAD_BEEF);
        assert_eq!(m.reg(Reg::new(5)), 0xEF);
        assert_eq!(m.reg(Reg::new(6)), 0xFFFF_BEEF);
    }

    #[test]
    fn calls_and_data_section() {
        let unit = assemble(
            r"
        li   r2, 0x80000
        lw   r3, 0(r2)       ; load 42 from data
        jal  double
        nop
        halt
double: add  r3, r3, r3
        jr   r9
        nop
.data
.label answer
.word 42
.ptr double
",
        )
        .expect("assembles");
        let prog = compile(&unit, Mode::Argus, &EmbedConfig::default()).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        prog.load(&mut m);
        m.run_to_halt(&mut FaultInjector::none(), 100_000);
        assert_eq!(m.reg(Reg::new(3)), 84);
        // .ptr packed a code pointer with a DCS in the top bits.
        let ptr = m.read_data_word(0x8_0004);
        let (addr, _dcs) = argus_isa::split_indirect_target(ptr);
        assert!(addr < 4 * prog.code.len() as u32);
    }

    #[test]
    fn every_mnemonic_parses() {
        let src = r"
        add r1, r2, r3
        sub r1, r2, r3
        and r1, r2, r3
        or r1, r2, r3
        xor r1, r2, r3
        sll r1, r2, r3
        srl r1, r2, r3
        sra r1, r2, r3
        mul r1, r2, r3
        mulu r1, r2, r3
        div r1, r2, r3
        divu r1, r2, r3
        addi r1, r2, -5
        andi r1, r2, 0xff
        ori r1, r2, 7
        xori r1, r2, 1
        slli r1, r2, 3
        srli r1, r2, 3
        srai r1, r2, 3
        movhi r1, 0x1234
        extbs r1, r2
        extbz r1, r2
        exths r1, r2
        exthz r1, r2
        sfeq r1, r2
        sfne r1, r2
        sfgtu r1, r2
        sfgeu r1, r2
        sfltu r1, r2
        sfleu r1, r2
        sfgts r1, r2
        sfges r1, r2
        sflts r1, r2
        sfles r1, r2
        sfeqi r1, 5
        sfltsi r1, -3
        lw r1, 0(r2)
        lh r1, 2(r2)
        lhu r1, 2(r2)
        lb r1, 1(r2)
        lbu r1, 1(r2)
        sw r1, 0(r2)
        sh r1, 2(r2)
        sb r1, 1(r2)
        nop
        halt
";
        let unit = assemble(src).expect("all mnemonics parse");
        assert_eq!(unit.stmts.iter().filter(|s| s.is_instr()).count(), 46);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));

        let e = assemble("add r1, r2\n").unwrap_err();
        assert!(e.message.contains("expects 3"));

        let e = assemble("addi r1, r2, 99999\n").unwrap_err();
        assert!(e.message.contains("16 bits"));

        let e = assemble("lw r1, r2\n").unwrap_err();
        assert!(e.message.contains("off(reg)"));

        let e = assemble(".data\nnop\n").unwrap_err();
        assert!(e.message.contains("data section"));

        let e = assemble("add r1, r2, r99\n").unwrap_err();
        assert!(e.message.contains("register"));
    }

    #[test]
    fn disassembly_roundtrips_through_the_assembler() {
        let unit = assemble(SUM_PROGRAM).unwrap();
        let prog = compile(&unit, Mode::Baseline, &EmbedConfig::default()).unwrap();
        let text = disassemble(&prog.code, prog.code_base);
        assert!(text.contains("add r3, r3, r4"));
        assert!(text.contains("halt"));
        assert_eq!(text.lines().count(), prog.code.len());
    }
}
