//! Block-plan lowering: warm a machine's plan cache from the static CFG.
//!
//! The runtime's block-compiled execution engine
//! (`argus_machine::block`) discovers blocks lazily — the first visit to a
//! block entry pays the plan-build scan. This pass front-loads that work
//! using the same delay-slot-aware segmentation the static binary verifier
//! applies ([`crate::binver`]), so a campaign's golden run starts with
//! every statically-reachable block already compiled.
//!
//! Lowering is purely an optimization: plans are a pure function of
//! program bytes, validated against memory on every use, so a machine that
//! skips this pass (or a program whose blocks outnumber the plan-cache
//! slots) executes bit-identically, just with plan-build misses spread
//! across the run instead of batched here.

use crate::binver::segment;
use crate::program::Program;
use argus_machine::Machine;

/// What [`preplan`] accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowerReport {
    /// Basic blocks the static segmentation found.
    pub blocks: usize,
    /// Blocks successfully lowered into the machine's plan cache. Can be
    /// lower than `blocks` under direct-mapped cache conflicts (a later
    /// block evicting an earlier one still counts as planned).
    pub planned: usize,
}

/// Lowers every statically-discovered basic block of `prog` into `m`'s
/// plan cache. The program's code must already be loaded into the machine
/// (see `Program::load`) — plans compile from the machine's memory, the
/// single source of truth the runtime validates against.
pub fn preplan(prog: &Program, m: &mut Machine) -> LowerReport {
    // An image that runs off its end without a terminator still gets its
    // well-formed prefix planned lazily at runtime; here we just skip.
    let Ok(blocks) = segment(&prog.code, prog.code_base) else {
        return LowerReport::default();
    };
    let mut planned = 0;
    for b in &blocks {
        if m.prepare_plan(b.addr) {
            planned += 1;
        }
    }
    LowerReport { blocks: blocks.len(), planned }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::compile::{compile, EmbedConfig, Mode};
    use argus_isa::instr::Cond;
    use argus_isa::reg::{r, Reg};
    use argus_machine::{Machine, MachineConfig};
    use argus_sim::fault::FaultInjector;

    /// A loop + a function call: several blocks, every terminator kind.
    fn demo_program() -> crate::program::Program {
        let mut b = ProgramBuilder::new();
        b.li(r(3), 0);
        b.li(r(4), 1);
        b.label("loop");
        b.add(r(3), r(3), r(4));
        b.addi(r(4), r(4), 1);
        b.sfi(Cond::Leu, r(4), 100);
        b.bf("loop");
        b.nop();
        b.jal("double");
        b.nop();
        b.halt();
        b.label("double");
        b.add(r(3), r(3), r(3));
        b.jr(Reg::LR);
        b.nop();
        compile(&b.unit(), Mode::Argus, &EmbedConfig::default()).expect("demo compiles")
    }

    #[test]
    fn preplan_compiles_every_static_block() {
        let prog = demo_program();
        let mut m = Machine::new(MachineConfig::default());
        prog.load(&mut m);
        let report = preplan(&prog, &mut m);
        assert!(report.blocks >= 4, "the demo has a real CFG: {report:?}");
        assert_eq!(report.planned, report.blocks, "every static block is plannable");
        // The warmed cache serves the run: no further builds needed.
        let mut inj = FaultInjector::none();
        m.take_exec_stats();
        m.run_to_halt(&mut inj, 1_000_000);
        assert!(m.halted());
        let stats = m.take_exec_stats();
        assert!(stats.plan_hits > 0, "warm plans must be hit: {stats:?}");
        assert_eq!(stats.plan_misses, 0, "no rebuild after warming: {stats:?}");
        assert_eq!(stats.plan_fallbacks, 0, "the demo never self-modifies: {stats:?}");
        assert_eq!(m.reg(r(3)), 5050 * 2);
    }

    #[test]
    fn preplan_is_semantically_inert() {
        use argus_machine::SnapshotState;
        let prog = demo_program();
        let mut warmed = Machine::new(MachineConfig::default());
        let mut cold = Machine::new(MachineConfig::default());
        prog.load(&mut warmed);
        prog.load(&mut cold);
        preplan(&prog, &mut warmed);
        let ra = warmed.run_to_halt(&mut FaultInjector::none(), 1_000_000);
        let rb = cold.run_to_halt(&mut FaultInjector::none(), 1_000_000);
        assert_eq!(ra, rb);
        assert_eq!(warmed.state_digest(), cold.state_digest());
        assert_eq!(warmed.state_fingerprint(), cold.state_fingerprint());
    }
}
