//! Whole-pipeline verification helpers: compile → load → run under the
//! full Argus-1 checker.
//!
//! These helpers are used by the test suites, the fault-injection campaign
//! and the benchmark harness, so they live in the library rather than in
//! test code.

use crate::compile::{compile, EmbedConfig, Mode};
use crate::error::CompileError;
use crate::{Program, ProgramUnit};
use argus_core::{Argus, ArgusConfig, DetectionEvent};
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_sim::fault::FaultInjector;

/// Outcome of running a program to completion under the checker.
#[derive(Debug, Clone)]
pub struct CheckedRun {
    /// The machine after the run (architectural state inspection).
    pub machine: Machine,
    /// All detections raised.
    pub events: Vec<DetectionEvent>,
    /// Whether the program reached `halt` within the cycle bound.
    pub halted: bool,
    /// Instructions retired.
    pub retired: u64,
    /// Cycles consumed.
    pub cycles: u64,
}

/// Compiles a unit in both modes with default configs.
///
/// # Errors
///
/// Propagates [`CompileError`] from either compilation.
pub fn compile_both(unit: &ProgramUnit) -> Result<(Program, Program), CompileError> {
    let cfg = EmbedConfig::default();
    Ok((compile(unit, Mode::Baseline, &cfg)?, compile(unit, Mode::Argus, &cfg)?))
}

/// Runs an Argus-mode program under the full checker with no injected
/// faults (or with the provided injector).
pub fn run_checked(
    prog: &Program,
    mcfg: MachineConfig,
    acfg: ArgusConfig,
    inj: &mut FaultInjector,
    max_cycles: u64,
) -> CheckedRun {
    let mut m = Machine::new(mcfg);
    prog.load(&mut m);
    let mut argus = Argus::new(acfg);
    if let Some(d) = prog.entry_dcs {
        argus.expect_entry(d);
    }
    // Same loop shape and timeout classification as `Machine::run_to_halt`:
    // `halted` distinguishes a clean `halt` from a cycle-budget timeout.
    while !m.halted() && m.cycle() < max_cycles {
        match m.step(inj) {
            StepOutcome::Committed(rec) => {
                argus.on_commit(&rec, inj);
            }
            StepOutcome::Stalled => {
                argus.on_stall(1, inj);
            }
            StepOutcome::Halted => break,
        }
    }
    let res = m.run_result();
    CheckedRun {
        halted: res.halted,
        retired: res.retired,
        cycles: res.cycles,
        events: argus.events().to_vec(),
        machine: m,
    }
}

/// Runs a baseline program (no checker).
pub fn run_baseline(prog: &Program, mcfg: MachineConfig, max_cycles: u64) -> CheckedRun {
    assert!(!mcfg.argus_mode, "baseline runs need argus_mode: false");
    let mut m = Machine::new(mcfg);
    prog.load(&mut m);
    let mut inj = FaultInjector::none();
    let res = m.run_to_halt(&mut inj, max_cycles);
    CheckedRun {
        halted: res.halted,
        retired: res.retired,
        cycles: res.cycles,
        events: vec![],
        machine: m,
    }
}

/// Compiles and runs a unit in both modes, asserting that the Argus run is
/// false-positive free and agrees with the baseline run on the given
/// result registers. (Registers holding *code addresses* — the link
/// register, function pointers — legitimately differ between modes because
/// the embedded Signature instructions shift the code layout, so the
/// caller names the registers that carry data results.) Returns
/// `(baseline, argus)` runs for further inspection.
///
/// # Panics
///
/// Panics on compilation failure, checker false positives, or divergence —
/// this is the workhorse assertion of the integration tests.
pub fn assert_modes_agree(
    unit: &ProgramUnit,
    max_cycles: u64,
    result_regs: &[argus_isa::Reg],
) -> (CheckedRun, CheckedRun) {
    let (base_prog, argus_prog) = compile_both(unit).expect("compilation failed");
    let base = run_baseline(
        &base_prog,
        MachineConfig { argus_mode: false, ..MachineConfig::default() },
        max_cycles,
    );
    let argus = run_checked(
        &argus_prog,
        MachineConfig::default(),
        ArgusConfig::default(),
        &mut FaultInjector::none(),
        max_cycles,
    );
    assert!(base.halted, "baseline run did not halt");
    assert!(argus.halted, "argus run did not halt");
    assert!(argus.events.is_empty(), "false positives in fault-free run: {:?}", argus.events);
    for &r in result_regs {
        assert_eq!(
            base.machine.reg(r),
            argus.machine.reg(r),
            "register {r} differs between baseline and argus runs"
        );
    }
    (base, argus)
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use argus_isa::instr::{Cond, ExtKind, MemSize};
    use argus_isa::reg::{r, Reg};

    use super::assert_modes_agree;

    #[test]
    fn loop_with_branches_runs_clean() {
        let mut b = ProgramBuilder::new();
        b.li(r(3), 0); // sum
        b.li(r(4), 1); // i
        b.label("loop");
        b.add(r(3), r(3), r(4));
        b.addi(r(4), r(4), 1);
        b.sfi(Cond::Leu, r(4), 100);
        b.bf("loop");
        b.nop();
        b.halt();
        let (base, argus) = assert_modes_agree(&b.unit(), 1_000_000, &[r(3)]);
        assert_eq!(argus.machine.reg(r(3)), 5050);
        assert!(argus.retired > base.retired, "signature overhead exists");
    }

    #[test]
    fn function_calls_and_returns_run_clean() {
        let mut b = ProgramBuilder::new();
        b.li(r(3), 7);
        b.jal("double");
        b.nop();
        b.jal("double");
        b.nop();
        b.halt();
        b.label("double");
        b.add(r(3), r(3), r(3));
        b.jr(Reg::LR);
        b.nop();
        let (_, argus) = assert_modes_agree(&b.unit(), 100_000, &[r(3)]);
        assert_eq!(argus.machine.reg(r(3)), 28);
    }

    #[test]
    fn nested_calls_preserve_link_dcs() {
        // outer() calls inner(); the link register is saved/restored on a
        // stack in memory, carrying its DCS with it.
        let mut b = ProgramBuilder::new();
        b.li(Reg::SP, 0x9_0000);
        b.li(r(3), 1);
        b.jal("outer");
        b.nop();
        b.halt();
        b.label("outer");
        b.addi(Reg::SP, Reg::SP, -4);
        b.sw(Reg::SP, Reg::LR, 0);
        b.jal("inner");
        b.nop();
        b.lw(Reg::LR, Reg::SP, 0);
        b.addi(Reg::SP, Reg::SP, 4);
        b.addi(r(3), r(3), 100);
        b.jr(Reg::LR);
        b.nop();
        b.label("inner");
        b.addi(r(3), r(3), 10);
        b.jr(Reg::LR);
        b.nop();
        let (_, argus) = assert_modes_agree(&b.unit(), 100_000, &[r(3)]);
        assert_eq!(argus.machine.reg(r(3)), 111);
    }

    #[test]
    fn jump_table_dispatch_runs_clean() {
        let mut b = ProgramBuilder::new();
        b.data_label("table");
        b.data_code_ptr("case0");
        b.data_code_ptr("case1");
        b.data_code_ptr("case2");
        // selector in r5
        b.li(r(5), 2);
        b.li(r(6), 0x8_0000); // table base (default data_base)
        b.slli(r(7), r(5), 2);
        b.add(r(6), r(6), r(7));
        b.lw(r(8), r(6), 0);
        b.jr(r(8));
        b.nop();
        b.label("case0");
        b.li(r(10), 100);
        b.j("end");
        b.nop();
        b.label("case1");
        b.li(r(10), 200);
        b.j("end");
        b.nop();
        b.label("case2");
        b.li(r(10), 300);
        b.j("end");
        b.nop();
        b.label("end");
        b.halt();
        let (_, argus) = assert_modes_agree(&b.unit(), 100_000, &[r(10)]);
        assert_eq!(argus.machine.reg(r(10)), 300);
    }

    #[test]
    fn memory_and_subword_traffic_runs_clean() {
        let mut b = ProgramBuilder::new();
        b.li(r(2), 0x8_1000);
        b.li(r(3), 0xDEAD_BEEF);
        b.sw(r(2), r(3), 0);
        b.store(MemSize::Byte, r(2), r(3), 5);
        b.store(MemSize::Half, r(2), r(3), 10);
        b.lw(r(4), r(2), 0);
        b.load(MemSize::Byte, true, r(5), r(2), 5);
        b.load(MemSize::Half, false, r(6), r(2), 10);
        b.ext(ExtKind::Hs, r(7), r(4));
        b.halt();
        let (_, argus) = assert_modes_agree(&b.unit(), 100_000, &[r(4), r(5), r(6), r(7)]);
        assert_eq!(argus.machine.reg(r(4)), 0xDEAD_BEEF);
        assert_eq!(argus.machine.reg(r(5)), 0xFFFF_FFEF);
        assert_eq!(argus.machine.reg(r(6)), 0xBEEF);
        assert_eq!(argus.machine.reg(r(7)), 0xFFFF_BEEF);
    }

    #[test]
    fn muldiv_heavy_code_runs_clean() {
        let mut b = ProgramBuilder::new();
        b.li(r(3), 12345);
        b.li(r(4), 97);
        b.mul(r(5), r(3), r(4));
        b.divu(r(6), r(5), r(4));
        b.li(r(7), 0xFFFF_FFFF);
        b.mulu(r(8), r(7), r(7));
        b.div(r(9), r(5), r(4));
        b.halt();
        let (_, argus) = assert_modes_agree(&b.unit(), 100_000, &[r(5), r(6), r(8), r(9)]);
        assert_eq!(argus.machine.reg(r(6)), 12345);
    }

    #[test]
    fn long_straight_line_code_with_split_blocks_runs_clean() {
        let mut b = ProgramBuilder::new();
        b.li(r(3), 0);
        for i in 0..150 {
            b.addi(r(3), r(3), (i % 7) as i16);
        }
        b.halt();
        let (_, argus) = assert_modes_agree(&b.unit(), 100_000, &[r(3)]);
        let expected: u32 = (0..150u32).map(|i| i % 7).sum();
        assert_eq!(argus.machine.reg(r(3)), expected);
    }
}
