//! The macro-assembler: a programmatic way to write workload sources.

use argus_isa::instr::{AluImmOp, AluOp, Cond, ExtKind, Instr, MemSize, MulDivOp, ShiftOp};
use argus_isa::reg::Reg;

/// One source statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// A label (attaches to the next instruction; starts a basic block).
    Label(String),
    /// A plain (non-control-transfer) instruction.
    Op(Instr),
    /// Conditional branch to a label (`bf`/`bnf`).
    BranchTo {
        /// Branch when the flag equals this.
        taken_if: bool,
        /// Target label.
        label: String,
    },
    /// Direct jump/call to a label (`j`/`jal`).
    JumpTo {
        /// Write the return address to `r9`.
        link: bool,
        /// Target label.
        label: String,
    },
    /// Register-indirect jump (`jr`/`jalr`).
    JumpReg {
        /// Write the return address to `r9`.
        link: bool,
        /// Register holding the packed target.
        rb: Reg,
    },
}

impl Stmt {
    /// True for statements that occupy one instruction word.
    pub fn is_instr(&self) -> bool {
        !matches!(self, Stmt::Label(_))
    }

    /// True for control transfers (which require a delay slot).
    pub fn is_cti(&self) -> bool {
        matches!(self, Stmt::BranchTo { .. } | Stmt::JumpTo { .. } | Stmt::JumpReg { .. })
            || matches!(self, Stmt::Op(i) if i.is_cti())
    }
}

/// A data-section item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataItem {
    /// A literal word.
    Word(u32),
    /// A pointer to a code label; in Argus mode the linker packs it as
    /// `(address, DCS)` for use by indirect jumps (jump tables, function
    /// pointers).
    CodePtr(String),
}

/// A complete source unit: statements plus an initialized data section.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramUnit {
    /// Code statements in program order.
    pub stmts: Vec<Stmt>,
    /// Data words in data-section order.
    pub data: Vec<DataItem>,
    /// Label → word offset into the data section.
    pub data_labels: Vec<(String, u32)>,
}

/// Fluent builder for [`ProgramUnit`]s.
///
/// Control transfers do **not** implicitly add a delay slot: the statement
/// after a CTI *is* its delay slot (push a [`ProgramBuilder::nop`] when
/// nothing useful fits, as a compiler's scheduler would).
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    unit: ProgramUnit,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes and returns the unit.
    pub fn unit(&self) -> ProgramUnit {
        self.unit.clone()
    }

    /// Consumes the builder, returning the unit without cloning.
    pub fn into_unit(self) -> ProgramUnit {
        self.unit
    }

    /// Defines a code label here.
    pub fn label(&mut self, name: &str) -> &mut Self {
        self.unit.stmts.push(Stmt::Label(name.to_owned()));
        self
    }

    /// Pushes any concrete instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.unit.stmts.push(Stmt::Op(i));
        self
    }

    // --- arithmetic / logic -------------------------------------------------

    /// `rd = ra + rb`.
    pub fn add(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.push(Instr::Alu { op: AluOp::Add, rd, ra, rb })
    }

    /// `rd = ra - rb`.
    pub fn sub(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.push(Instr::Alu { op: AluOp::Sub, rd, ra, rb })
    }

    /// `rd = ra & rb`.
    pub fn and(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.push(Instr::Alu { op: AluOp::And, rd, ra, rb })
    }

    /// `rd = ra | rb`.
    pub fn or(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.push(Instr::Alu { op: AluOp::Or, rd, ra, rb })
    }

    /// `rd = ra ^ rb`.
    pub fn xor(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.push(Instr::Alu { op: AluOp::Xor, rd, ra, rb })
    }

    /// `rd = ra << (rb & 31)`.
    pub fn sll(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.push(Instr::Alu { op: AluOp::Sll, rd, ra, rb })
    }

    /// `rd = ra >> (rb & 31)` (logical).
    pub fn srl(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.push(Instr::Alu { op: AluOp::Srl, rd, ra, rb })
    }

    /// `rd = ra >> (rb & 31)` (arithmetic).
    pub fn sra(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.push(Instr::Alu { op: AluOp::Sra, rd, ra, rb })
    }

    /// `rd = ra * rb` (signed, low word).
    pub fn mul(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.push(Instr::MulDiv { op: MulDivOp::Mul, rd, ra, rb })
    }

    /// `rd = ra * rb` (unsigned, low word).
    pub fn mulu(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.push(Instr::MulDiv { op: MulDivOp::Mulu, rd, ra, rb })
    }

    /// `rd = ra / rb` (signed).
    pub fn div(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.push(Instr::MulDiv { op: MulDivOp::Div, rd, ra, rb })
    }

    /// `rd = ra / rb` (unsigned).
    pub fn divu(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.push(Instr::MulDiv { op: MulDivOp::Divu, rd, ra, rb })
    }

    /// `rd = ra + sext(imm)`.
    pub fn addi(&mut self, rd: Reg, ra: Reg, imm: i16) -> &mut Self {
        self.push(Instr::AluImm { op: AluImmOp::Addi, rd, ra, imm: imm as u16 })
    }

    /// `rd = ra & zext(imm)`.
    pub fn andi(&mut self, rd: Reg, ra: Reg, imm: u16) -> &mut Self {
        self.push(Instr::AluImm { op: AluImmOp::Andi, rd, ra, imm })
    }

    /// `rd = ra | zext(imm)`.
    pub fn ori(&mut self, rd: Reg, ra: Reg, imm: u16) -> &mut Self {
        self.push(Instr::AluImm { op: AluImmOp::Ori, rd, ra, imm })
    }

    /// `rd = ra ^ sext(imm)`.
    pub fn xori(&mut self, rd: Reg, ra: Reg, imm: u16) -> &mut Self {
        self.push(Instr::AluImm { op: AluImmOp::Xori, rd, ra, imm })
    }

    /// `rd = ra << sh`.
    pub fn slli(&mut self, rd: Reg, ra: Reg, sh: u8) -> &mut Self {
        self.push(Instr::ShiftImm { op: ShiftOp::Sll, rd, ra, sh })
    }

    /// `rd = ra >> sh` (logical).
    pub fn srli(&mut self, rd: Reg, ra: Reg, sh: u8) -> &mut Self {
        self.push(Instr::ShiftImm { op: ShiftOp::Srl, rd, ra, sh })
    }

    /// `rd = ra >> sh` (arithmetic).
    pub fn srai(&mut self, rd: Reg, ra: Reg, sh: u8) -> &mut Self {
        self.push(Instr::ShiftImm { op: ShiftOp::Sra, rd, ra, sh })
    }

    /// `rd = imm << 16`.
    pub fn movhi(&mut self, rd: Reg, imm: u16) -> &mut Self {
        self.push(Instr::Movhi { rd, imm })
    }

    /// Sign/zero extension.
    pub fn ext(&mut self, kind: ExtKind, rd: Reg, ra: Reg) -> &mut Self {
        self.push(Instr::Ext { kind, rd, ra })
    }

    /// Loads a full 32-bit constant (`movhi` + `ori`; one `ori`/`addi` when
    /// it fits).
    pub fn li(&mut self, rd: Reg, value: u32) -> &mut Self {
        if value <= 0xFFFF {
            self.ori(rd, Reg::ZERO, value as u16)
        } else {
            self.movhi(rd, (value >> 16) as u16);
            if value & 0xFFFF != 0 {
                self.ori(rd, rd, value as u16);
            }
            self
        }
    }

    // --- compare / control --------------------------------------------------

    /// Flag-setting compare.
    pub fn sf(&mut self, cond: Cond, ra: Reg, rb: Reg) -> &mut Self {
        self.push(Instr::SetFlag { cond, ra, rb })
    }

    /// Flag-setting compare against a sign-extended immediate.
    pub fn sfi(&mut self, cond: Cond, ra: Reg, imm: i16) -> &mut Self {
        self.push(Instr::SetFlagImm { cond, ra, imm: imm as u16 })
    }

    /// Branch to `label` if the flag is set. The next statement is the
    /// delay slot.
    pub fn bf(&mut self, label: &str) -> &mut Self {
        self.unit.stmts.push(Stmt::BranchTo { taken_if: true, label: label.to_owned() });
        self
    }

    /// Branch to `label` if the flag is clear.
    pub fn bnf(&mut self, label: &str) -> &mut Self {
        self.unit.stmts.push(Stmt::BranchTo { taken_if: false, label: label.to_owned() });
        self
    }

    /// Unconditional jump.
    pub fn j(&mut self, label: &str) -> &mut Self {
        self.unit.stmts.push(Stmt::JumpTo { link: false, label: label.to_owned() });
        self
    }

    /// Call (jump and link).
    pub fn jal(&mut self, label: &str) -> &mut Self {
        self.unit.stmts.push(Stmt::JumpTo { link: true, label: label.to_owned() });
        self
    }

    /// Indirect jump through a register (function return: `jr r9`).
    pub fn jr(&mut self, rb: Reg) -> &mut Self {
        self.unit.stmts.push(Stmt::JumpReg { link: false, rb });
        self
    }

    /// Indirect call through a register.
    pub fn jalr(&mut self, rb: Reg) -> &mut Self {
        self.unit.stmts.push(Stmt::JumpReg { link: true, rb });
        self
    }

    /// `nop` (also the default delay-slot filler).
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// Stops the simulation.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    // --- memory ---------------------------------------------------------------

    /// `rd = mem32[ra + off]`.
    pub fn lw(&mut self, rd: Reg, ra: Reg, off: i16) -> &mut Self {
        self.push(Instr::Load { size: MemSize::Word, signed: false, rd, ra, off })
    }

    /// Sub-word loads.
    pub fn load(&mut self, size: MemSize, signed: bool, rd: Reg, ra: Reg, off: i16) -> &mut Self {
        self.push(Instr::Load { size, signed, rd, ra, off })
    }

    /// `mem32[ra + off] = rb`.
    pub fn sw(&mut self, ra: Reg, rb: Reg, off: i16) -> &mut Self {
        self.push(Instr::Store { size: MemSize::Word, ra, rb, off })
    }

    /// Sub-word stores.
    pub fn store(&mut self, size: MemSize, ra: Reg, rb: Reg, off: i16) -> &mut Self {
        self.push(Instr::Store { size, ra, rb, off })
    }

    // --- data section -----------------------------------------------------------

    /// Defines a data label at the current end of the data section.
    pub fn data_label(&mut self, name: &str) -> &mut Self {
        let off = self.unit.data.len() as u32 * 4;
        self.unit.data_labels.push((name.to_owned(), off));
        self
    }

    /// Appends a literal data word.
    pub fn data_word(&mut self, value: u32) -> &mut Self {
        self.unit.data.push(DataItem::Word(value));
        self
    }

    /// Appends `n` zero words.
    pub fn data_zeros(&mut self, n: u32) -> &mut Self {
        for _ in 0..n {
            self.unit.data.push(DataItem::Word(0));
        }
        self
    }

    /// Appends a code pointer (jump-table / function-pointer entry).
    pub fn data_code_ptr(&mut self, code_label: &str) -> &mut Self {
        self.unit.data.push(DataItem::CodePtr(code_label.to_owned()));
        self
    }

    /// Word offset of a data label, if defined.
    pub fn data_offset(&self, name: &str) -> Option<u32> {
        self.unit.data_labels.iter().find(|(n, _)| n == name).map(|&(_, off)| off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_isa::reg::r;

    #[test]
    fn builder_produces_statements_in_order() {
        let mut b = ProgramBuilder::new();
        b.label("start").addi(r(3), Reg::ZERO, 1).bf("start").nop().halt();
        let u = b.unit();
        assert_eq!(u.stmts.len(), 5);
        assert!(matches!(u.stmts[0], Stmt::Label(_)));
        assert!(u.stmts[2].is_cti());
        assert!(!u.stmts[1].is_cti());
    }

    #[test]
    fn li_expands_to_one_or_two_instructions() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x1234);
        assert_eq!(b.unit().stmts.len(), 1);
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0xDEAD_BEEF);
        assert_eq!(b.unit().stmts.len(), 2);
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x0005_0000);
        assert_eq!(b.unit().stmts.len(), 1, "no ori needed for low half zero");
    }

    #[test]
    fn data_section_offsets() {
        let mut b = ProgramBuilder::new();
        b.data_label("a").data_word(1).data_word(2);
        b.data_label("b").data_code_ptr("func");
        assert_eq!(b.data_offset("a"), Some(0));
        assert_eq!(b.data_offset("b"), Some(8));
        assert_eq!(b.data_offset("missing"), None);
        assert_eq!(b.unit().data.len(), 3);
    }
}
