//! # argus-suite — examples and cross-crate integration tests
//!
//! This crate hosts the repository-level `examples/` binaries and the
//! `tests/` integration suite, and re-exports the workspace's public
//! surface as a convenience prelude.
//!
//! # Examples
//!
//! ```
//! use argus_suite::prelude::*;
//! let mut b = ProgramBuilder::new();
//! b.addi(Reg::new(3), Reg::ZERO, 1).halt();
//! let prog = compile(&b.unit(), Mode::Argus, &EmbedConfig::default())?;
//! assert!(prog.entry_dcs.is_some());
//! # Ok::<(), CompileError>(())
//! ```

/// One-stop imports for examples and downstream experiments.
pub mod prelude {
    pub use argus_compiler::{compile, CompileError, EmbedConfig, Mode, Program, ProgramBuilder};
    pub use argus_core::{Argus, ArgusConfig, CheckerKind, DetectionEvent};
    pub use argus_faults::campaign::{run_campaign, CampaignConfig, Outcome};
    pub use argus_isa::{instr::Cond, AluOp, Instr, MemSize, Reg};
    pub use argus_machine::{Machine, MachineConfig, StepOutcome};
    pub use argus_sim::fault::{Fault, FaultInjector, FaultKind, SiteFlavor};
    pub use argus_workloads::{stress, suite, Workload};
}
