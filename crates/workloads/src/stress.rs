//! The §4.1 "stress-test" microbenchmark.
//!
//! The paper notes that benchmark inner loops touch only a handful of
//! registers and instructions, so fault-injection coverage is measured on a
//! microbenchmark that involves "a broad range of registers and
//! instruction types". This program touches every architectural register,
//! every instruction category (ALU, shifts, extensions, multiply/divide,
//! sub-word memory traffic, signed and unsigned compares, direct and
//! indirect calls, a jump-table dispatch), and folds everything into a
//! running checksum so that almost any architectural corruption reaches
//! the final state.

use crate::common::{Workload, DATA_BASE};
use argus_compiler::ProgramBuilder;
use argus_isa::instr::{Cond, ExtKind, MemSize};
use argus_isa::reg::{r, Reg};

/// Loop iterations.
const ITERS: u32 = 12;

/// Host-side mirror of the stress program, producing the per-iteration
/// checksums. Implemented directly from the same arithmetic the assembly
/// performs.
fn reference() -> Vec<u32> {
    let mut out = Vec::new();
    let mut csum: u32 = 0x1357_9BDF;
    let mut buf = [0u32; 16];
    for it in 0..ITERS {
        // Mixed ALU chain over "registers" seeded from the iteration.
        let mut regs = [0u32; 16];
        for (k, rk) in regs.iter_mut().enumerate() {
            *rk = (it.wrapping_mul(0x9E37) ^ (k as u32).wrapping_mul(0x85EB_CA6B))
                .rotate_left(k as u32 & 7);
        }
        let mut acc = csum;
        for k in 0..16 {
            acc = acc.wrapping_add(regs[k]);
            acc ^= acc << 5;
            acc = acc.wrapping_sub(regs[(k + 3) % 16]);
            acc ^= acc >> 7;
        }
        // Multiply/divide section.
        let a = (it + 3).wrapping_mul(0x0101_0101) | 1;
        let m = acc.wrapping_mul(a);
        let q = m / a;
        let rr = m % a;
        let sm = (acc as i32).wrapping_mul(-(a as i32) | 1) as u32;
        let sq = ((sm as i32) / ((a | 1) as i32)) as u32;
        acc = acc.wrapping_add(m ^ q ^ rr ^ sm ^ sq);
        // Shifts and extensions.
        let sh = it & 31;
        acc = acc.wrapping_add(acc.wrapping_shl(sh) ^ acc.wrapping_shr(31 - sh));
        acc = acc.wrapping_add(((acc as i8) as i32) as u32);
        acc = acc.wrapping_add((acc as u16) as u32);
        // Sub-word memory traffic on a small buffer.
        let idx = (it as usize) % 14;
        let bytes = acc.to_le_bytes();
        let word = buf[idx];
        buf[idx] = (word & !0xFF) | bytes[0] as u32;
        buf[idx + 1] = (buf[idx + 1] & !0xFFFF_0000) | ((acc & 0xFFFF) << 16);
        acc = acc.wrapping_add(buf[idx]).wrapping_add(buf[idx + 1] >> 16);
        // Compare ladder.
        if (acc as i32) < 0 {
            acc = acc.wrapping_add(0x55);
        }
        if acc > 0x8000_0000 {
            acc ^= 0x33;
        }
        // Function dispatch: op = it % 3 (add 17 / xor pattern / rotate).
        acc = match it % 3 {
            0 => acc.wrapping_add(17),
            1 => acc ^ 0x0F0F_0F0F,
            _ => acc.rotate_left(9),
        };
        csum = acc;
        out.push(csum);
    }
    out
}

/// Builds the stress workload.
pub fn stress() -> Workload {
    let expected = reference();

    let mut b = ProgramBuilder::new();
    b.data_label("buf");
    b.data_zeros(16);
    b.data_label("output");
    b.data_zeros(ITERS + 1); // one spare word for the register fold
    b.data_label("table");
    b.data_code_ptr("op_add");
    b.data_code_ptr("op_xor");
    b.data_code_ptr("op_rot");
    let buf_off = b.data_offset("buf").unwrap();
    let out_off = b.data_offset("output").unwrap();
    let tbl_off = b.data_offset("table").unwrap();

    // r30 = csum, r29 = iteration, r28 = &buf, r27 = &output, r26 = &table
    b.li(r(30), 0x1357_9BDF);
    b.li(r(29), 0);
    b.li(r(28), DATA_BASE + buf_off);
    b.li(r(27), DATA_BASE + out_off);
    b.li(r(26), DATA_BASE + tbl_off);

    b.label("iter");
    // Seed r10..r25 (16 registers) from the iteration counter.
    b.li(r(7), 0x9E37);
    b.mulu(r(8), r(29), r(7)); // it * 0x9E37
    b.li(r(6), 0x85EB_CA6B);
    for k in 0..16u8 {
        // regs[k] = (seed ^ k*0x85EBCA6B) rotl (k & 7)
        b.li(r(4), k as u32);
        b.mulu(r(5), r(4), r(6));
        b.xor(r(10 + k), r(8), r(5));
        let rot = (k & 7) as u32;
        if rot != 0 {
            b.slli(r(4), r(10 + k), rot as u8);
            b.srli(r(5), r(10 + k), (32 - rot) as u8);
            b.or(r(10 + k), r(4), r(5));
        }
    }
    // ALU chain: acc in r3.
    b.add(r(3), r(30), Reg::ZERO);
    for k in 0..16u8 {
        b.add(r(3), r(3), r(10 + k));
        b.slli(r(4), r(3), 5);
        b.xor(r(3), r(3), r(4));
        b.sub(r(3), r(3), r(10 + (k + 3) % 16));
        b.srli(r(4), r(3), 7);
        b.xor(r(3), r(3), r(4));
    }
    // Multiply/divide section: a = ((it+3)*0x01010101) | 1.
    b.addi(r(5), r(29), 3);
    b.li(r(6), 0x0101_0101);
    b.mulu(r(5), r(5), r(6));
    b.ori(r(5), r(5), 1); // a
    b.mulu(r(11), r(3), r(5)); // m
    b.divu(r(12), r(11), r(5)); // q
    b.mulu(r(13), r(12), r(5));
    b.sub(r(13), r(11), r(13)); // rr = m - q*a
                                // sm = acc * (-(a as i32) | 1), sq = sm / (a | 1) signed
    b.sub(r(14), Reg::ZERO, r(5));
    b.ori(r(14), r(14), 1);
    b.mul(r(15), r(3), r(14)); // sm
    b.ori(r(16), r(5), 1);
    b.div(r(17), r(15), r(16)); // sq
    b.xor(r(18), r(11), r(12));
    b.xor(r(18), r(18), r(13));
    b.xor(r(18), r(18), r(15));
    b.xor(r(18), r(18), r(17));
    b.add(r(3), r(3), r(18));
    // Shifts: sh = it & 31 (register-amount shifts).
    b.andi(r(5), r(29), 31);
    b.sll(r(6), r(3), r(5));
    b.li(r(7), 31);
    b.sub(r(7), r(7), r(5));
    b.srl(r(8), r(3), r(7));
    b.xor(r(6), r(6), r(8));
    b.add(r(3), r(3), r(6));
    // Extensions.
    b.ext(ExtKind::Bs, r(5), r(3));
    b.add(r(3), r(3), r(5));
    b.ext(ExtKind::Hz, r(5), r(3));
    b.add(r(3), r(3), r(5));
    // Sub-word memory: idx = it % 14.
    b.li(r(5), 14);
    b.divu(r(6), r(29), r(5));
    b.mulu(r(6), r(6), r(5));
    b.sub(r(6), r(29), r(6)); // idx
    b.slli(r(6), r(6), 2);
    b.add(r(6), r(28), r(6)); // &buf[idx]
    b.store(MemSize::Byte, r(6), r(3), 0); // low byte of acc
    b.store(MemSize::Half, r(6), r(3), 6); // acc[15:0] → buf[idx+1][31:16]
    b.lw(r(7), r(6), 0);
    b.add(r(3), r(3), r(7));
    b.load(MemSize::Half, false, r(7), r(6), 6);
    b.add(r(3), r(3), r(7));
    // Compare ladder.
    b.sfi(Cond::Lts, r(3), 0);
    b.bnf("not_neg");
    b.nop();
    b.addi(r(3), r(3), 0x55);
    b.label("not_neg");
    b.li(r(5), 0x8000_0000);
    b.sf(Cond::Gtu, r(3), r(5));
    b.bnf("not_big");
    b.nop();
    b.xori(r(3), r(3), 0x33);
    b.label("not_big");
    // Jump-table dispatch on it % 3 via an indirect call.
    b.li(r(5), 3);
    b.divu(r(6), r(29), r(5));
    b.mulu(r(6), r(6), r(5));
    b.sub(r(6), r(29), r(6)); // it % 3
    b.slli(r(6), r(6), 2);
    b.add(r(6), r(26), r(6));
    b.lw(r(7), r(6), 0);
    b.jalr(r(7));
    b.nop();
    // Store checksum, advance.
    b.add(r(30), r(3), Reg::ZERO);
    b.sw(r(27), r(30), 0);
    b.addi(r(27), r(27), 4);
    b.addi(r(29), r(29), 1);
    b.sfi(Cond::Ltu, r(29), ITERS as i16);
    b.bf("iter");
    b.nop();
    // Epilogue: read back every data-carrying register (lingering storage
    // corruption is caught by the operand parity check here) and park the
    // fold next to the checksums. Its value is covered by the golden-state
    // comparison rather than a host-side mirror.
    for k in [
        3u8, 4, 5, 6, 7, 8, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 29, 30,
        31,
    ] {
        b.add(r(31), r(31), r(k));
    }
    b.sw(r(27), r(31), 0);
    b.halt();

    // Dispatch targets (leaf functions, returning via jr r9).
    b.label("op_add");
    b.addi(r(3), r(3), 17);
    b.jr(Reg::LR);
    b.nop();
    b.label("op_xor");
    b.li(r(4), 0x0F0F_0F0F);
    b.xor(r(3), r(3), r(4));
    b.jr(Reg::LR);
    b.nop();
    b.label("op_rot");
    b.slli(r(4), r(3), 9);
    b.srli(r(5), r(3), 23);
    b.or(r(3), r(4), r(5));
    b.jr(Reg::LR);
    b.nop();

    let checks = expected.iter().enumerate().map(|(i, &v)| (out_off + 4 * i as u32, v)).collect();
    Workload { name: "stress", unit: b.into_unit(), checks, min_mem_bytes: 0 }
}

/// Main-memory size (bytes) the XL tier requires: 16 MiB, sixteen times
/// the default machine configuration.
pub const XL_MEM_BYTES: u32 = 1 << 24;

/// Base of the XL sweep region — above the code and data sections of the
/// default layout.
const XL_BASE: u32 = 0x10_0000;

/// Power-of-two span the sweep wraps over (8 MiB).
const XL_SPAN: u32 = 1 << 23;

/// Read-modify-write touches in the main sweep, roughly one per 4 KiB
/// page of the span.
const XL_TOUCHES: u32 = 2048;

/// Re-read touches in the verification pass.
const XL_RECHECK: u32 = 256;

/// Main-sweep stride: a multiple of 4 slightly past four pages, so
/// successive touches land on distinct pages at drifting offsets.
const XL_STRIDE: u32 = 16_644;

/// Verification-pass stride (`7 × XL_STRIDE`), revisiting a different
/// subset of the touched addresses.
const XL_RESTRIDE: u32 = 7 * XL_STRIDE;

/// One checkpoint word is emitted every this many touches.
const XL_CHECK_EVERY: u32 = 256;

/// Host-side mirror of the XL sweep. Untouched memory reads as zero in
/// both machine modes (the Argus-mode ramp fill is the address-embedded
/// encoding of zero), so a sparse map suffices.
fn xl_reference() -> Vec<u32> {
    let mut mem = std::collections::HashMap::new();
    let mut out = Vec::new();
    let mut acc: u32 = 0xA5F1_5EED;
    for k in 0..XL_TOUCHES {
        let addr = XL_BASE + (k.wrapping_mul(XL_STRIDE) & (XL_SPAN - 1));
        acc ^= mem.get(&addr).copied().unwrap_or(0);
        acc = acc.wrapping_add(k.wrapping_mul(0x9E37_79B9));
        acc = acc.rotate_left(5);
        mem.insert(addr, acc);
        if k & (XL_CHECK_EVERY - 1) == XL_CHECK_EVERY - 1 {
            out.push(acc);
        }
    }
    for k in 0..XL_RECHECK {
        let addr = XL_BASE + (k.wrapping_mul(XL_RESTRIDE) & (XL_SPAN - 1));
        acc = acc.wrapping_add(mem.get(&addr).copied().unwrap_or(0) ^ k);
        acc ^= acc >> 7;
    }
    out.push(acc);
    out
}

/// Builds the XL stress tier: a page-strided read-modify-write sweep over
/// an 8 MiB window of a 16 MiB machine. The sweep dirties ~2048 distinct
/// pages, so every snapshot interval materialises a fresh set of pages and
/// the golden store grows to tens of megabytes — the scale the out-of-core
/// snapshot store exists for — while the run itself stays short enough for
/// million-injection campaigns.
pub fn stress_xl() -> Workload {
    let expected = xl_reference();

    let mut b = ProgramBuilder::new();
    b.data_label("output");
    b.data_zeros(XL_TOUCHES / XL_CHECK_EVERY + 1);
    let out_off = b.data_offset("output").unwrap();

    // r29 = k, r28 = &output, r27 = XL_BASE, r26 = span mask,
    // r25 = stride, r24 = mix constant, r3 = acc.
    b.li(r(29), 0);
    b.li(r(28), DATA_BASE + out_off);
    b.li(r(27), XL_BASE);
    b.li(r(26), XL_SPAN - 1);
    b.li(r(25), XL_STRIDE);
    b.li(r(24), 0x9E37_79B9);
    b.li(r(3), 0xA5F1_5EED);

    b.label("xl_touch");
    b.mulu(r(5), r(29), r(25)); // k * stride (low 32 bits)
    b.and(r(5), r(5), r(26));
    b.add(r(5), r(5), r(27)); // sweep address
    b.lw(r(6), r(5), 0);
    b.xor(r(3), r(3), r(6));
    b.mulu(r(7), r(29), r(24));
    b.add(r(3), r(3), r(7));
    b.slli(r(4), r(3), 5); // rotl 5
    b.srli(r(6), r(3), 27);
    b.or(r(3), r(4), r(6));
    b.sw(r(5), r(3), 0);
    b.andi(r(7), r(29), (XL_CHECK_EVERY - 1) as u16);
    b.sfi(Cond::Eq, r(7), (XL_CHECK_EVERY - 1) as i16);
    b.bnf("xl_no_ckpt");
    b.nop();
    b.sw(r(28), r(3), 0);
    b.addi(r(28), r(28), 4);
    b.label("xl_no_ckpt");
    b.addi(r(29), r(29), 1);
    b.sfi(Cond::Ltu, r(29), XL_TOUCHES as i16);
    b.bf("xl_touch");
    b.nop();

    // Verification pass: re-read a different subset of the sweep and fold.
    b.li(r(29), 0);
    b.li(r(25), XL_RESTRIDE);
    b.label("xl_recheck");
    b.mulu(r(5), r(29), r(25));
    b.and(r(5), r(5), r(26));
    b.add(r(5), r(5), r(27));
    b.lw(r(6), r(5), 0);
    b.xor(r(6), r(6), r(29));
    b.add(r(3), r(3), r(6));
    b.srli(r(4), r(3), 7);
    b.xor(r(3), r(3), r(4));
    b.addi(r(29), r(29), 1);
    b.sfi(Cond::Ltu, r(29), XL_RECHECK as i16);
    b.bf("xl_recheck");
    b.nop();
    b.sw(r(28), r(3), 0);
    b.halt();

    let checks = expected.iter().enumerate().map(|(i, &v)| (out_off + 4 * i as u32, v)).collect();
    Workload { name: "stress_xl", unit: b.into_unit(), checks, min_mem_bytes: XL_MEM_BYTES }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    #[test]
    fn stress_runs_clean_in_both_modes() {
        let w = stress();
        let base = run_workload(&w, false, 10_000_000);
        let argus = run_workload(&w, true, 10_000_000);
        assert!(argus.retired >= base.retired);
    }

    #[test]
    fn stress_xl_runs_clean_in_both_modes() {
        let w = stress_xl();
        assert_eq!(w.min_mem_bytes, XL_MEM_BYTES);
        let base = run_workload(&w, false, 10_000_000);
        let argus = run_workload(&w, true, 10_000_000);
        assert!(argus.retired >= base.retired);
    }

    #[test]
    fn xl_reference_is_chaotic() {
        let out = xl_reference();
        assert_eq!(out.len() as u32, XL_TOUCHES / XL_CHECK_EVERY + 1);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), out.len(), "checkpoints must not repeat");
    }

    #[test]
    fn reference_is_chaotic() {
        let out = reference();
        assert_eq!(out.len() as u32, ITERS);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len() as u32, ITERS, "checksums must not repeat");
    }
}
