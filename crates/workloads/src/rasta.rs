//! RASTA-style speech-analysis kernel: a bank of FIR filters over a
//! sample window — the multiply-accumulate core of spectral analysis.

use crate::common::{input_samples, Workload, DATA_BASE};
use argus_compiler::ProgramBuilder;
use argus_isa::instr::Cond;
use argus_isa::reg::r;

/// Samples in the analysis window.
pub const SAMPLES: usize = 96;
/// Filter taps.
const TAPS: usize = 8;
/// Filter bands (each with its own coefficient set).
const BANDS: usize = 6;

fn coefficients() -> Vec<Vec<i32>> {
    // Deterministic small coefficient sets with band-dependent emphasis.
    (0..BANDS)
        .map(|b| {
            (0..TAPS)
                .map(|t| {
                    let phase = (b * TAPS + t) as i32;
                    ((phase * 37 + 11) % 63) - 31
                })
                .collect()
        })
        .collect()
}

fn reference(x: &[i32]) -> Vec<i32> {
    let coeffs = coefficients();
    let mut out = Vec::new();
    for c in &coeffs {
        for i in 0..SAMPLES - TAPS {
            let mut acc: i32 = 0;
            for (t, &ct) in c.iter().enumerate() {
                acc = acc.wrapping_add(ct.wrapping_mul(x[i + t]));
            }
            out.push(acc >> 6);
        }
    }
    out
}

/// The RASTA-style filterbank workload.
pub fn rasta() -> Workload {
    let x = input_samples(0x4A57A, SAMPLES, 12000);
    let expected = reference(&x);
    let coeffs = coefficients();

    let mut b = ProgramBuilder::new();
    b.data_label("input");
    for &v in &x {
        b.data_word(v as u32);
    }
    b.data_label("coeffs");
    for band in &coeffs {
        for &c in band {
            b.data_word(c as u32);
        }
    }
    b.data_label("output");
    b.data_zeros((BANDS * (SAMPLES - TAPS)) as u32);
    let coff = b.data_offset("coeffs").unwrap();
    let ooff = b.data_offset("output").unwrap();

    b.li(r(26), 2);
    b.label("outer");
    b.li(r(3), DATA_BASE + ooff); // output cursor
    for band in 0..BANDS {
        let lp = format!("b{band}_loop");
        // Hoist the 8 coefficients into registers (as an optimizing
        // compiler would) — r10..r17.
        b.li(r(6), DATA_BASE + coff + (band * TAPS * 4) as u32);
        for t in 0..TAPS as u8 {
            b.lw(r(10 + t), r(6), (t as i16) * 4);
        }
        b.li(r(2), DATA_BASE); // input cursor
        b.li(r(4), 0);
        b.li(r(5), (SAMPLES - TAPS) as u32);
        b.label(&lp);
        // Unrolled 8-tap MAC.
        b.lw(r(7), r(2), 0);
        b.mul(r(8), r(10), r(7));
        for t in 1..TAPS as u8 {
            b.lw(r(7), r(2), (t as i16) * 4);
            b.mul(r(20), r(10 + t), r(7));
            b.add(r(8), r(8), r(20));
        }
        b.srai(r(8), r(8), 6);
        b.sw(r(3), r(8), 0);
        b.addi(r(2), r(2), 4);
        b.addi(r(3), r(3), 4);
        b.addi(r(4), r(4), 1);
        b.sf(Cond::Ltu, r(4), r(5));
        b.bf(&lp);
        b.nop();
    }
    b.addi(r(26), r(26), -1);
    b.sfi(Cond::Gts, r(26), 0);
    b.bf("outer");
    b.nop();
    b.halt();

    let checks =
        expected.iter().enumerate().map(|(i, &v)| (ooff + 4 * i as u32, v as u32)).collect();
    Workload { name: "rasta", unit: b.into_unit(), checks, min_mem_bytes: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    #[test]
    fn coefficients_are_bounded_and_varied() {
        let cs = coefficients();
        assert_eq!(cs.len(), BANDS);
        assert!(cs.iter().flatten().all(|&c| (-32..32).contains(&c)));
        assert_ne!(cs[0], cs[1]);
    }

    #[test]
    fn rasta_runs_clean_in_both_modes() {
        let w = rasta();
        run_workload(&w, false, 20_000_000);
        run_workload(&w, true, 20_000_000);
    }
}
