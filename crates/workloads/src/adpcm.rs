//! ADPCM codec kernels (MediaBench `adpcm rawcaudio`/`rawdaudio`
//! equivalents): an adaptive-step-size differential codec with the classic
//! structure — predictor, quantizer, step adaptation — exercising signed
//! divide, multiply, shifts, compares and short branches.

use crate::common::{input_samples, Workload};
use argus_compiler::ProgramBuilder;
use argus_isa::instr::Cond;
use argus_isa::reg::{r, Reg};

/// Samples per processing pass.
const CHUNK: usize = 24;
/// Number of independent passes (inflates the code footprint the way a
/// real codec's many routines do).
const PASSES: usize = 8;

/// Total samples processed.
pub const N: usize = CHUNK * PASSES;

/// Host-side reference encoder. Returns (codes, final predictions).
fn reference_encode(input: &[i32]) -> (Vec<i32>, Vec<i32>) {
    let mut pred: i32 = 0;
    let mut step: i32 = 4;
    let mut codes = Vec::with_capacity(input.len());
    let mut preds = Vec::with_capacity(input.len());
    for &s in input {
        let diff = s.wrapping_sub(pred);
        let code = (diff / step).clamp(-8, 7);
        pred = pred.wrapping_add(code.wrapping_mul(step));
        let acode = code.abs();
        if acode >= 6 {
            step += step >> 1;
        } else if acode <= 1 {
            step -= step >> 2;
        }
        if step < 1 {
            step = 1;
        }
        codes.push(code);
        preds.push(pred);
    }
    (codes, preds)
}

/// Emits the shared per-sample codec body. Registers: `r6` holds the input
/// value for the step (sample for encode, code for decode); state in
/// `r10` (pred) and `r11` (step); encode leaves the code in `r8`.
fn emit_codec_step(b: &mut ProgramBuilder, tag: &str, encode: bool) {
    if encode {
        // diff = s - pred; code = clamp(diff / step, -8, 7) — branchless
        // saturation, as an optimized codec would compile it.
        b.sub(r(7), r(6), r(10));
        b.div(r(8), r(7), r(11));
        crate::common::emit_min_const(b, 8, 7, 16, 17);
        crate::common::emit_max_const(b, 8, -8, 16, 17);
    } else {
        // code arrives in r6
        b.add(r(8), r(6), Reg::ZERO);
    }
    // pred += code * step
    b.mul(r(12), r(8), r(11));
    b.add(r(10), r(10), r(12));
    // acode = |code|
    b.srai(r(13), r(8), 31);
    b.xor(r(14), r(8), r(13));
    b.sub(r(14), r(14), r(13));
    // step adaptation (thresholds held in registers: r18 = 6, r19 = 1)
    b.sf(Cond::Ges, r(14), r(18));
    b.bnf(&format!("{tag}_small"));
    b.nop();
    b.srai(r(15), r(11), 1);
    b.add(r(11), r(11), r(15));
    b.j(&format!("{tag}_adapted"));
    b.nop();
    b.label(&format!("{tag}_small"));
    b.sf(Cond::Leu, r(14), r(19));
    b.bnf(&format!("{tag}_adapted"));
    b.nop();
    b.srai(r(15), r(11), 2);
    b.sub(r(11), r(11), r(15));
    b.label(&format!("{tag}_adapted"));
    b.sf(Cond::Lts, r(11), r(19));
    b.bnf(&format!("{tag}_stepok"));
    b.nop();
    b.addi(r(11), Reg::ZERO, 1);
    b.label(&format!("{tag}_stepok"));
}

fn build(encode: bool) -> Workload {
    let input: Vec<i32> = if encode {
        input_samples(0xADCE, N, 4000)
    } else {
        reference_encode(&input_samples(0xADCE, N, 4000)).0
    };
    let (codes, preds) = if encode {
        reference_encode(&input)
    } else {
        // Decoding the encoder's codes reproduces the predictions.
        let orig = input_samples(0xADCE, N, 4000);
        reference_encode(&orig)
    };
    let expected: Vec<i32> = if encode { codes } else { preds };

    let mut b = ProgramBuilder::new();
    b.data_label("input");
    for &v in &input {
        b.data_word(v as u32);
    }
    b.data_label("output");
    b.data_zeros(N as u32);
    let out_off = b.data_offset("output").unwrap();

    // Outer passes re-run the whole codec over the same data (idempotent),
    // giving the instruction cache a realistic reuse pattern.
    b.li(r(26), 2);
    b.label("outer");
    // Prologue: typical pointer/immediate setup (few unused bits).
    b.li(r(2), crate::common::DATA_BASE);
    b.li(r(3), crate::common::DATA_BASE + out_off);
    b.li(r(10), 0); // pred
    b.li(r(11), 4); // step
    b.li(r(18), 6); // adaptation threshold
    b.li(r(19), 1); // adaptation threshold / step floor

    for pass in 0..PASSES {
        let lp = format!("p{pass}_loop");
        b.li(r(4), 0);
        b.li(r(5), CHUNK as u32);
        b.label(&lp);
        b.lw(r(6), r(2), 0);
        emit_codec_step(&mut b, &format!("p{pass}"), encode);
        if encode {
            b.sw(r(3), r(8), 0);
        } else {
            b.sw(r(3), r(10), 0);
        }
        b.addi(r(2), r(2), 4);
        b.addi(r(3), r(3), 4);
        b.addi(r(4), r(4), 1);
        b.sf(Cond::Ltu, r(4), r(5));
        b.bf(&lp);
        b.nop();
    }
    b.addi(r(26), r(26), -1);
    b.sfi(Cond::Gts, r(26), 0);
    b.bf("outer");
    b.nop();
    b.halt();

    let checks =
        expected.iter().enumerate().map(|(i, &v)| (out_off + 4 * i as u32, v as u32)).collect();
    Workload {
        name: if encode { "adpcm_enc" } else { "adpcm_dec" },
        unit: b.into_unit(),
        checks,
        min_mem_bytes: 0,
    }
}

/// The ADPCM encoder workload.
pub fn encode() -> Workload {
    build(true)
}

/// The ADPCM decoder workload.
pub fn decode() -> Workload {
    build(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    #[test]
    fn reference_encoder_is_stable() {
        let input = input_samples(0xADCE, N, 4000);
        let (codes, preds) = reference_encode(&input);
        assert_eq!(codes.len(), N);
        assert!(codes.iter().all(|&c| (-8..=7).contains(&c)));
        // Predictions track the input within the quantizer's error bound
        // after the adaptive warm-up.
        let tail_err: i64 = input[N - 8..]
            .iter()
            .zip(&preds[N - 8..])
            .map(|(&x, &p)| (x as i64 - p as i64).abs())
            .max()
            .unwrap();
        assert!(tail_err < 8000, "codec diverged: err {tail_err}");
    }

    #[test]
    fn encode_runs_and_checks_in_both_modes() {
        let w = encode();
        run_workload(&w, false, 5_000_000);
        run_workload(&w, true, 5_000_000);
    }

    #[test]
    fn decode_runs_and_checks_in_both_modes() {
        let w = decode();
        run_workload(&w, false, 5_000_000);
        run_workload(&w, true, 5_000_000);
    }
}
