//! JPEG-style transform-coding kernels: a separable 4×4 Walsh–Hadamard
//! transform (the butterfly structure of an integer DCT) with quantization
//! (`jpeg_enc`), and dequantization + inverse transform (`jpeg_dec`).

use crate::common::{input_samples, Workload, DATA_BASE};
use argus_compiler::ProgramBuilder;
use argus_isa::instr::Cond;
use argus_isa::reg::r;

/// Number of 4×4 blocks processed.
pub const BLOCKS: usize = 16;
const BLOCK_WORDS: usize = 16;

/// Quantizer divisors (one per coefficient position).
const QTABLE: [i32; 16] = [8, 11, 10, 16, 12, 12, 14, 19, 14, 13, 16, 24, 18, 22, 29, 40];

fn wht4(v: [i32; 4]) -> [i32; 4] {
    let a = v[0].wrapping_add(v[3]);
    let b = v[1].wrapping_add(v[2]);
    let c = v[1].wrapping_sub(v[2]);
    let d = v[0].wrapping_sub(v[3]);
    [a.wrapping_add(b), d.wrapping_add(c), a.wrapping_sub(b), d.wrapping_sub(c)]
}

fn transform_block(block: &[i32]) -> Vec<i32> {
    // Rows then columns.
    let mut t = [0i32; 16];
    for row in 0..4 {
        let o = wht4([block[4 * row], block[4 * row + 1], block[4 * row + 2], block[4 * row + 3]]);
        t[4 * row..4 * row + 4].copy_from_slice(&o);
    }
    let mut u = [0i32; 16];
    for col in 0..4 {
        let o = wht4([t[col], t[col + 4], t[col + 8], t[col + 12]]);
        for (k, &x) in o.iter().enumerate() {
            u[col + 4 * k] = x;
        }
    }
    u.to_vec()
}

fn encode_reference(input: &[i32]) -> Vec<i32> {
    let mut out = Vec::new();
    for blk in input.chunks(BLOCK_WORDS) {
        let t = transform_block(blk);
        for (i, &c) in t.iter().enumerate() {
            out.push(c / QTABLE[i]);
        }
    }
    out
}

fn decode_reference(coeffs: &[i32]) -> Vec<i32> {
    let mut out = Vec::new();
    for blk in coeffs.chunks(BLOCK_WORDS) {
        let deq: Vec<i32> =
            blk.iter().enumerate().map(|(i, &c)| c.wrapping_mul(QTABLE[i])).collect();
        // The WHT is (up to scale) its own inverse: WHT(WHT(x)) = 16·x.
        let t = transform_block(&deq);
        out.extend(t.iter().map(|&x| x >> 4));
    }
    out
}

/// Emits a 4-point butterfly on registers `[v0,v1,v2,v3]`, leaving results
/// in `[o0,o1,o2,o3]` (register numbers).
fn emit_wht4(b: &mut ProgramBuilder, v: [u8; 4], o: [u8; 4], t: [u8; 4]) {
    b.add(r(t[0]), r(v[0]), r(v[3])); // a
    b.add(r(t[1]), r(v[1]), r(v[2])); // b
    b.sub(r(t[2]), r(v[1]), r(v[2])); // c
    b.sub(r(t[3]), r(v[0]), r(v[3])); // d
    b.add(r(o[0]), r(t[0]), r(t[1]));
    b.add(r(o[1]), r(t[3]), r(t[2]));
    b.sub(r(o[2]), r(t[0]), r(t[1]));
    b.sub(r(o[3]), r(t[3]), r(t[2]));
}

/// Emits a full 4×4 transform of the block at `(r2)`, result left in the
/// scratch buffer at `(r3)`. Uses a row pass into the scratch, then a
/// column pass in place.
fn emit_transform(b: &mut ProgramBuilder, tag: &str) {
    // Row pass.
    for row in 0..4u8 {
        let base = (row as i16) * 16;
        for i in 0..4u8 {
            b.lw(r(10 + i), r(2), base + (i as i16) * 4);
        }
        emit_wht4(b, [10, 11, 12, 13], [14, 15, 16, 17], [18, 19, 20, 21]);
        for i in 0..4u8 {
            b.sw(r(3), r(14 + i), base + (i as i16) * 4);
        }
    }
    // Column pass.
    for col in 0..4u8 {
        let base = (col as i16) * 4;
        for i in 0..4u8 {
            b.lw(r(10 + i), r(3), base + (i as i16) * 16);
        }
        emit_wht4(b, [10, 11, 12, 13], [14, 15, 16, 17], [18, 19, 20, 21]);
        for i in 0..4u8 {
            b.sw(r(3), r(14 + i), base + (i as i16) * 16);
        }
    }
    let _ = tag;
}

/// The JPEG-style encoder workload (transform + quantize).
pub fn encode() -> Workload {
    let pixels = input_samples(0x17E6, BLOCKS * BLOCK_WORDS, 128);
    let expected = encode_reference(&pixels);

    let mut b = ProgramBuilder::new();
    b.data_label("input");
    for &v in &pixels {
        b.data_word(v as u32);
    }
    b.data_label("qtable");
    for &q in &QTABLE {
        b.data_word(q as u32);
    }
    b.data_label("scratch");
    b.data_zeros(BLOCK_WORDS as u32);
    b.data_label("output");
    b.data_zeros((BLOCKS * BLOCK_WORDS) as u32);
    let qoff = b.data_offset("qtable").unwrap();
    let soff = b.data_offset("scratch").unwrap();
    let ooff = b.data_offset("output").unwrap();

    b.li(r(26), 2);
    b.label("outer");
    b.li(r(3), DATA_BASE + soff);
    for blk in 0..BLOCKS {
        b.li(r(2), DATA_BASE + (blk * BLOCK_WORDS * 4) as u32);
        emit_transform(&mut b, &format!("e{blk}"));
        // Quantize: out[i] = scratch[i] / qtable[i].
        let lp = format!("e{blk}_q");
        b.li(r(5), DATA_BASE + qoff);
        b.li(r(6), DATA_BASE + ooff + (blk * BLOCK_WORDS * 4) as u32);
        b.li(r(4), 0);
        b.li(r(7), BLOCK_WORDS as u32);
        b.label(&lp);
        b.lw(r(10), r(3), 0);
        b.lw(r(11), r(5), 0);
        b.div(r(12), r(10), r(11));
        b.sw(r(6), r(12), 0);
        b.addi(r(3), r(3), 4);
        b.addi(r(5), r(5), 4);
        b.addi(r(6), r(6), 4);
        b.addi(r(4), r(4), 1);
        b.sf(Cond::Ltu, r(4), r(7));
        b.bf(&lp);
        b.nop();
        b.li(r(3), DATA_BASE + soff); // rewind scratch
    }
    b.addi(r(26), r(26), -1);
    b.sfi(Cond::Gts, r(26), 0);
    b.bf("outer");
    b.nop();
    b.halt();

    let checks =
        expected.iter().enumerate().map(|(i, &v)| (ooff + 4 * i as u32, v as u32)).collect();
    Workload { name: "jpeg_enc", unit: b.into_unit(), checks, min_mem_bytes: 0 }
}

/// The JPEG-style decoder workload (dequantize + inverse transform).
pub fn decode() -> Workload {
    let pixels = input_samples(0x17E6, BLOCKS * BLOCK_WORDS, 128);
    let coeffs = encode_reference(&pixels);
    let expected = decode_reference(&coeffs);

    let mut b = ProgramBuilder::new();
    b.data_label("input");
    for &v in &coeffs {
        b.data_word(v as u32);
    }
    b.data_label("qtable");
    for &q in &QTABLE {
        b.data_word(q as u32);
    }
    b.data_label("scratch");
    b.data_zeros(BLOCK_WORDS as u32);
    b.data_label("output");
    b.data_zeros((BLOCKS * BLOCK_WORDS) as u32);
    let qoff = b.data_offset("qtable").unwrap();
    let soff = b.data_offset("scratch").unwrap();
    let ooff = b.data_offset("output").unwrap();

    b.li(r(26), 2);
    b.label("outer");
    for blk in 0..BLOCKS {
        // Dequantize into the scratch buffer.
        let lp = format!("d{blk}_dq");
        b.li(r(2), DATA_BASE + (blk * BLOCK_WORDS * 4) as u32);
        b.li(r(5), DATA_BASE + qoff);
        b.li(r(3), DATA_BASE + soff);
        b.li(r(4), 0);
        b.li(r(7), BLOCK_WORDS as u32);
        b.label(&lp);
        b.lw(r(10), r(2), 0);
        b.lw(r(11), r(5), 0);
        b.mul(r(12), r(10), r(11));
        b.sw(r(3), r(12), 0);
        b.addi(r(2), r(2), 4);
        b.addi(r(5), r(5), 4);
        b.addi(r(3), r(3), 4);
        b.addi(r(4), r(4), 1);
        b.sf(Cond::Ltu, r(4), r(7));
        b.bf(&lp);
        b.nop();
        // Inverse transform in place on the scratch buffer.
        b.li(r(2), DATA_BASE + soff);
        b.li(r(3), DATA_BASE + soff);
        emit_transform(&mut b, &format!("d{blk}"));
        // Scale down and store.
        let sp = format!("d{blk}_s");
        b.li(r(6), DATA_BASE + ooff + (blk * BLOCK_WORDS * 4) as u32);
        b.li(r(4), 0);
        b.li(r(7), BLOCK_WORDS as u32);
        b.label(&sp);
        b.lw(r(10), r(3), 0);
        b.srai(r(10), r(10), 4);
        b.sw(r(6), r(10), 0);
        b.addi(r(3), r(3), 4);
        b.addi(r(6), r(6), 4);
        b.addi(r(4), r(4), 1);
        b.sf(Cond::Ltu, r(4), r(7));
        b.bf(&sp);
        b.nop();
    }
    b.addi(r(26), r(26), -1);
    b.sfi(Cond::Gts, r(26), 0);
    b.bf("outer");
    b.nop();
    b.halt();

    let checks =
        expected.iter().enumerate().map(|(i, &v)| (ooff + 4 * i as u32, v as u32)).collect();
    Workload { name: "jpeg_dec", unit: b.into_unit(), checks, min_mem_bytes: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    #[test]
    fn wht_is_self_inverse_up_to_scale() {
        let x = [3, -7, 11, 42];
        let y = wht4(wht4(x));
        for (a, b) in x.iter().zip(&y) {
            assert_eq!(*b, a * 4);
        }
    }

    #[test]
    fn decode_reference_approximates_input() {
        // Quantization loses information, but low-frequency content should
        // survive: the mean error must be far below the signal amplitude.
        let pixels = input_samples(0x17E6, BLOCKS * BLOCK_WORDS, 128);
        let rec = decode_reference(&encode_reference(&pixels));
        let err: i64 =
            pixels.iter().zip(&rec).map(|(&a, &b)| (a as i64 - b as i64).abs()).sum::<i64>()
                / (pixels.len() as i64);
        assert!(err < 64, "mean reconstruction error {err} too high");
    }

    #[test]
    fn jpeg_enc_runs_clean() {
        run_workload(&encode(), true, 10_000_000);
        run_workload(&encode(), false, 10_000_000);
    }

    #[test]
    fn jpeg_dec_runs_clean() {
        run_workload(&decode(), true, 10_000_000);
    }
}
