//! Mesa-style 3D kernel: fixed-point 4×4 matrix × vertex transform with a
//! perspective-ish divide and viewport clamp — the geometry stage of a
//! software rasterizer.

use crate::common::{emit_max_const, emit_min_const, input_samples, Workload, DATA_BASE};
use argus_compiler::ProgramBuilder;
use argus_isa::instr::Cond;
use argus_isa::reg::r;

/// Number of vertices.
pub const VERTS: usize = 40;
/// Fixed-point fraction bits.
const FRAC: u32 = 8;

/// The (row-major) transform matrix, in Q8 fixed point.
const MATRIX: [i32; 16] =
    [230, -40, 12, 1024, 64, 200, -96, -512, -16, 80, 240, 2048, 0, 0, 4, 256];

fn reference(verts: &[i32]) -> Vec<i32> {
    let mut out = Vec::new();
    for v in verts.chunks(4) {
        let mut t = [0i32; 4];
        for (row, tr) in t.iter_mut().enumerate() {
            let mut acc = 0i32;
            for col in 0..4 {
                acc = acc.wrapping_add(MATRIX[4 * row + col].wrapping_mul(v[col]));
            }
            *tr = acc >> FRAC;
        }
        // Perspective-ish divide by w (kept nonzero), then viewport clamp.
        let w = t[3] | 1;
        for &coord in t.iter().take(3) {
            let p = coord.wrapping_div(w);
            out.push(p.clamp(-1024, 1023));
        }
    }
    out
}

/// The mesa-style vertex-transform workload.
pub fn mesa() -> Workload {
    // Homogeneous vertices: xyz random, w = 256 (1.0 in Q8).
    let mut verts = Vec::with_capacity(VERTS * 4);
    let xyz = input_samples(0x3E5A, VERTS * 3, 500);
    for v in 0..VERTS {
        verts.extend_from_slice(&[xyz[3 * v], xyz[3 * v + 1], xyz[3 * v + 2], 256]);
    }
    let expected = reference(&verts);

    let mut b = ProgramBuilder::new();
    b.data_label("matrix");
    for &m in &MATRIX {
        b.data_word(m as u32);
    }
    b.data_label("verts");
    for &v in &verts {
        b.data_word(v as u32);
    }
    b.data_label("output");
    b.data_zeros((VERTS * 3) as u32);
    let moff = b.data_offset("matrix").unwrap();
    let voff = b.data_offset("verts").unwrap();
    let ooff = b.data_offset("output").unwrap();

    b.li(r(26), 2);
    b.label("outer");
    // Hoist the matrix into r10..r25 (a software renderer would).
    b.li(r(6), DATA_BASE + moff);
    for k in 0..16u8 {
        b.lw(r(10 + k), r(6), (k as i16) * 4);
    }
    b.li(r(2), DATA_BASE + voff);
    b.li(r(3), DATA_BASE + ooff);
    b.li(r(4), 0);
    b.li(r(5), VERTS as u32);
    b.label("vloop");
    // Load the vertex into r6..r9? r9 is the link register — use r27/r28.
    b.lw(r(6), r(2), 0);
    b.lw(r(7), r(2), 4);
    b.lw(r(8), r(2), 8);
    b.lw(r(27), r(2), 12);
    // t[row] = (m0*x + m1*y + m2*z + m3*w) >> 8, rows 0..3 → r28 rows via
    // temp accumulation; store t3 (w') in r30, t0..t2 written out after
    // division.
    for row in 0..4u8 {
        b.mul(r(28), r(10 + 4 * row), r(6));
        b.mul(r(29), r(11 + 4 * row), r(7));
        b.add(r(28), r(28), r(29));
        b.mul(r(29), r(12 + 4 * row), r(8));
        b.add(r(28), r(28), r(29));
        b.mul(r(29), r(13 + 4 * row), r(27));
        b.add(r(28), r(28), r(29));
        b.srai(r(28), r(28), FRAC as u8);
        if row == 3 {
            b.ori(r(30), r(28), 1); // w' | 1 (nonzero divisor)
        } else {
            // Park t[row] in r20+row? Those hold matrix entries. Use the
            // stack-free trick: store transformed rows to the output area
            // temporarily.
            b.sw(r(3), r(28), (row as i16) * 4);
        }
    }
    // Reload t0..t2, divide by w', clamp, store.
    for row in 0..3u8 {
        b.lw(r(28), r(3), (row as i16) * 4);
        b.div(r(28), r(28), r(30));
        emit_max_const(&mut b, 28, -1024, 29, 31);
        emit_min_const(&mut b, 28, 1023, 29, 31);
        b.sw(r(3), r(28), (row as i16) * 4);
    }
    b.addi(r(2), r(2), 16);
    b.addi(r(3), r(3), 12);
    b.addi(r(4), r(4), 1);
    b.sf(Cond::Ltu, r(4), r(5));
    b.bf("vloop");
    b.nop();
    b.addi(r(26), r(26), -1);
    b.sfi(Cond::Gts, r(26), 0);
    b.bf("outer");
    b.nop();
    b.halt();

    let checks =
        expected.iter().enumerate().map(|(i, &v)| (ooff + 4 * i as u32, v as u32)).collect();
    Workload { name: "mesa", unit: b.into_unit(), checks, min_mem_bytes: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    #[test]
    fn reference_clamps_to_viewport() {
        let verts = vec![30_000, 30_000, 30_000, 1];
        let out = reference(&verts);
        assert!(out.iter().all(|&p| (-1024..=1023).contains(&p)));
    }

    #[test]
    fn mesa_runs_clean_in_both_modes() {
        let w = mesa();
        run_workload(&w, false, 20_000_000);
        run_workload(&w, true, 20_000_000);
    }
}
