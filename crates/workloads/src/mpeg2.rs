//! MPEG-2-style decoder kernel: residual reconstruction with motion
//! compensation — `out[i] = clip(ref[i + mv] + resid[i], 0, 255)` — over
//! byte-packed frames, exercising sub-word loads/stores and the
//! alignment/sign-extension paths the RSSE checker covers.

use crate::common::{input_bytes, input_samples, Workload, DATA_BASE};
use argus_compiler::ProgramBuilder;
use argus_isa::instr::{Cond, MemSize};
use argus_isa::reg::r;

/// Pixels per macroblock row in this kernel.
const MB: usize = 48;
/// Number of macroblock rows.
const ROWS: usize = 10;
/// Total pixels.
pub const N: usize = MB * ROWS;
/// Motion-vector byte offsets per row (always ≥ 0 in this kernel).
const MVS: [i32; ROWS] = [0, 3, 1, 7, 2, 5, 0, 6, 4, 2];

fn reference(reference_frame: &[u32], resid: &[i32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(N);
    for (row, &mv) in MVS.iter().enumerate() {
        for i in 0..MB {
            let idx = row * MB + i;
            let p = reference_frame[(idx as i32 + mv) as usize] as i32;
            out.push((p + resid[idx]).clamp(0, 255) as u32);
        }
    }
    out
}

/// The MPEG-2-style reconstruction workload.
pub fn decode() -> Workload {
    // Reference frame needs slack at the end for the largest MV.
    let refframe = input_bytes(0x4762, N + 8);
    let resid = input_samples(0x4763, N, 48);
    let expected = reference(&refframe, &resid);

    let mut b = ProgramBuilder::new();
    // Reference frame packed as bytes.
    b.data_label("refframe");
    for chunk in refframe.chunks(4) {
        let mut w = 0u32;
        for (k, &byte) in chunk.iter().enumerate() {
            w |= byte << (8 * k);
        }
        b.data_word(w);
    }
    b.data_label("resid");
    for &v in &resid {
        b.data_word(v as u32);
    }
    b.data_label("output");
    b.data_zeros(N.div_ceil(4) as u32);
    let resid_off = b.data_offset("resid").unwrap();
    let out_off = b.data_offset("output").unwrap();

    b.li(r(26), 2);
    b.label("outer");
    for (row, &mv) in MVS.iter().enumerate() {
        let lp = format!("mb{row}_loop");
        let base = (row * MB) as u32;
        b.li(r(2), DATA_BASE + base + mv as u32); // &ref[row*MB + mv]
        b.li(r(3), DATA_BASE + resid_off + 4 * base); // &resid[row*MB]
        b.li(r(5), DATA_BASE + out_off + base); // &out[row*MB] (bytes)
        b.li(r(4), 0);
        b.li(r(10), MB as u32);
        b.label(&lp);
        b.load(MemSize::Byte, false, r(6), r(2), 0); // pixel (lbu)
        b.lw(r(7), r(3), 0); // residual
        b.add(r(8), r(6), r(7));
        // Branchless saturation to [0, 255], as the reference decoders'
        // CLIP macro compiles.
        crate::common::emit_max_const(&mut b, 8, 0, 11, 12);
        crate::common::emit_min_const(&mut b, 8, 255, 11, 12);
        b.store(MemSize::Byte, r(5), r(8), 0); // sb
        b.addi(r(2), r(2), 1);
        b.addi(r(3), r(3), 4);
        b.addi(r(5), r(5), 1);
        b.addi(r(4), r(4), 1);
        b.sf(Cond::Ltu, r(4), r(10));
        b.bf(&lp);
        b.nop();
    }
    b.addi(r(26), r(26), -1);
    b.sfi(Cond::Gts, r(26), 0);
    b.bf("outer");
    b.nop();
    b.halt();

    // Checks compare packed output words.
    let mut checks = Vec::new();
    for wi in 0..N / 4 {
        let mut w = 0u32;
        for k in 0..4 {
            w |= expected[4 * wi + k] << (8 * k);
        }
        checks.push((out_off + 4 * wi as u32, w));
    }
    Workload { name: "mpeg2_dec", unit: b.into_unit(), checks, min_mem_bytes: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    #[test]
    fn reference_clips() {
        let frame = vec![250u32; N + 8];
        let resid = vec![100i32; N];
        let out = reference(&frame, &resid);
        assert!(out.iter().all(|&p| p == 255), "saturating add must clip high");
        let resid = vec![-300i32; N];
        let out = reference(&frame, &resid);
        assert!(out.iter().all(|&p| p == 0), "must clip low");
    }

    #[test]
    fn mpeg2_runs_clean_in_both_modes() {
        let w = decode();
        run_workload(&w, false, 10_000_000);
        run_workload(&w, true, 10_000_000);
    }
}
