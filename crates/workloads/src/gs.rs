//! Ghostscript-like kernel: a bytecode interpreter. Interpreters are the
//! worst case for control-flow checking — every virtual instruction is an
//! indirect jump through a function-pointer table — so this workload
//! hammers the CFC's register-carried-DCS mechanism (§3.2.2, "Indirect
//! Branches").

use crate::common::{Workload, DATA_BASE};
use argus_compiler::ProgramBuilder;
use argus_isa::instr::Cond;
use argus_isa::reg::r;

/// Virtual-machine opcodes (the jump table in the data section has one
/// handler per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VmOp {
    /// Push the following literal word.
    Push = 0,
    /// Pop b, a; push a + b.
    Add = 1,
    /// Pop b, a; push a − b.
    Sub = 2,
    /// Pop b, a; push a · b.
    Mul = 3,
    /// Duplicate the top of stack.
    Dup = 4,
    /// Swap the two top stack entries.
    Swap = 5,
    /// Pop and write to output slot (following word).
    Store = 6,
    /// Pop; if nonzero, jump to bytecode index (following word).
    Jnz = 7,
    /// Stop the VM.
    Halt = 8,
    /// Push variable (following word = index).
    Load = 9,
    /// Pop into variable (following word = index).
    SetVar = 10,
}

/// The interpreted program: sum of squares 1..=N into out[0], a derived
/// product into out[1], and a stack-shuffle checksum into out[2].
fn bytecode(n: u32) -> Vec<u32> {
    use VmOp::*;
    let mut c: Vec<u32> = Vec::new();
    fn emit_into(c: &mut Vec<u32>, op: VmOp, arg: Option<u32>) {
        c.push(op as u32);
        if let Some(a) = arg {
            c.push(a);
        }
    }
    emit_into(&mut c, Push, Some(n)); // counter
    emit_into(&mut c, SetVar, Some(0));
    emit_into(&mut c, Push, Some(0)); // acc
    emit_into(&mut c, SetVar, Some(1));
    let loop_top = c.len() as u32;
    let mut emit = |op: VmOp, arg: Option<u32>| emit_into(&mut c, op, arg);
    emit(Load, Some(0));
    emit(Dup, None);
    emit(Mul, None);
    emit(Load, Some(1));
    emit(Add, None);
    emit(SetVar, Some(1));
    emit(Load, Some(0));
    emit(Push, Some(1));
    emit(Sub, None);
    emit(Dup, None);
    emit(SetVar, Some(0));
    emit(Jnz, Some(loop_top));
    emit(Load, Some(1));
    emit(Store, Some(0));
    // out[1] = 7·acc − n  (uses Swap).
    emit(Push, Some(7));
    emit(Load, Some(1));
    emit(Mul, None);
    emit(Push, Some(n));
    emit(Swap, None);
    emit(Sub, None); // n − 7·acc, then negate via 0 − x
    emit(Push, Some(0));
    emit(Swap, None);
    emit(Sub, None);
    emit(Store, Some(1));
    // out[2] = a small stack dance checksum.
    emit(Push, Some(0x1234));
    emit(Push, Some(0x0F0F));
    emit(Dup, None);
    emit(Add, None);
    emit(Swap, None);
    emit(Sub, None);
    emit(Store, Some(2));
    emit(Halt, None);
    c
}

/// Host-side reference interpreter (same wrapping semantics as the
/// assembly one).
fn interpret(code: &[u32]) -> Vec<u32> {
    let mut pc = 0usize;
    let mut stack: Vec<u32> = Vec::new();
    let mut vars = [0u32; 8];
    let mut out = vec![0u32; 4];
    loop {
        let op = code[pc];
        pc += 1;
        let mut arg = || {
            let a = code[pc];
            pc += 1;
            a
        };
        match op {
            x if x == VmOp::Push as u32 => {
                let a = arg();
                stack.push(a);
            }
            x if x == VmOp::Add as u32 => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(a.wrapping_add(b));
            }
            x if x == VmOp::Sub as u32 => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(a.wrapping_sub(b));
            }
            x if x == VmOp::Mul as u32 => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(a.wrapping_mul(b));
            }
            x if x == VmOp::Dup as u32 => {
                let a = *stack.last().unwrap();
                stack.push(a);
            }
            x if x == VmOp::Swap as u32 => {
                let len = stack.len();
                stack.swap(len - 1, len - 2);
            }
            x if x == VmOp::Store as u32 => {
                let slot = arg();
                out[slot as usize] = stack.pop().unwrap();
            }
            x if x == VmOp::Jnz as u32 => {
                let target = arg();
                if stack.pop().unwrap() != 0 {
                    pc = target as usize;
                }
            }
            x if x == VmOp::Halt as u32 => return out,
            x if x == VmOp::Load as u32 => {
                let idx = arg();
                stack.push(vars[idx as usize]);
            }
            x if x == VmOp::SetVar as u32 => {
                let idx = arg();
                vars[idx as usize] = stack.pop().unwrap();
            }
            other => panic!("bad opcode {other}"),
        }
    }
}

/// The interpreter workload.
pub fn gs() -> Workload {
    let code = bytecode(48);
    let expected = interpret(&code);

    let mut b = ProgramBuilder::new();
    b.data_label("bytecode");
    for &w in &code {
        b.data_word(w);
    }
    b.data_label("table");
    for name in [
        "op_push",
        "op_add",
        "op_sub",
        "op_mul",
        "op_dup",
        "op_swap",
        "op_store",
        "op_jnz",
        "op_haltvm",
        "op_load",
        "op_setvar",
    ] {
        b.data_code_ptr(name);
    }
    b.data_label("vars");
    b.data_zeros(8);
    b.data_label("stack");
    b.data_zeros(64);
    b.data_label("output");
    b.data_zeros(4);
    let tbl = b.data_offset("table").unwrap();
    let vars = b.data_offset("vars").unwrap();
    let stack = b.data_offset("stack").unwrap();
    let out = b.data_offset("output").unwrap();

    // r24 = bytecode base, r2 = VM pc, r3 = stack top, r5 = table base,
    // r25 = vars base, r10 = output base.
    b.li(r(24), DATA_BASE);
    b.li(r(2), DATA_BASE);
    b.li(r(3), DATA_BASE + stack);
    b.li(r(5), DATA_BASE + tbl);
    b.li(r(25), DATA_BASE + vars);
    b.li(r(10), DATA_BASE + out);

    b.label("dispatch");
    b.lw(r(4), r(2), 0); // opcode
    b.addi(r(2), r(2), 4);
    b.slli(r(6), r(4), 2);
    b.add(r(6), r(5), r(6));
    b.lw(r(7), r(6), 0); // handler (packed address + DCS)
    b.jr(r(7));
    b.nop();

    b.label("op_push");
    b.lw(r(6), r(2), 0);
    b.addi(r(2), r(2), 4);
    b.sw(r(3), r(6), 0);
    b.addi(r(3), r(3), 4);
    b.j("dispatch");
    b.nop();

    for (name, is_sub, is_mul) in
        [("op_add", false, false), ("op_sub", true, false), ("op_mul", false, true)]
    {
        b.label(name);
        b.addi(r(3), r(3), -8);
        b.lw(r(6), r(3), 0);
        b.lw(r(7), r(3), 4);
        if is_mul {
            b.mul(r(6), r(6), r(7));
        } else if is_sub {
            b.sub(r(6), r(6), r(7));
        } else {
            b.add(r(6), r(6), r(7));
        }
        b.sw(r(3), r(6), 0);
        b.addi(r(3), r(3), 4);
        b.j("dispatch");
        b.nop();
    }

    b.label("op_dup");
    b.lw(r(6), r(3), -4);
    b.sw(r(3), r(6), 0);
    b.addi(r(3), r(3), 4);
    b.j("dispatch");
    b.nop();

    b.label("op_swap");
    b.lw(r(6), r(3), -4);
    b.lw(r(7), r(3), -8);
    b.sw(r(3), r(6), -8);
    b.sw(r(3), r(7), -4);
    b.j("dispatch");
    b.nop();

    b.label("op_store");
    b.lw(r(6), r(2), 0); // slot
    b.addi(r(2), r(2), 4);
    b.addi(r(3), r(3), -4);
    b.lw(r(7), r(3), 0);
    b.slli(r(6), r(6), 2);
    b.add(r(6), r(10), r(6));
    b.sw(r(6), r(7), 0);
    b.j("dispatch");
    b.nop();

    b.label("op_jnz");
    b.lw(r(6), r(2), 0); // target bytecode index
    b.addi(r(2), r(2), 4);
    b.addi(r(3), r(3), -4);
    b.lw(r(7), r(3), 0);
    b.sfi(Cond::Eq, r(7), 0);
    b.bf("dispatch");
    b.nop();
    b.slli(r(6), r(6), 2);
    b.add(r(2), r(24), r(6));
    b.j("dispatch");
    b.nop();

    b.label("op_load");
    b.lw(r(6), r(2), 0);
    b.addi(r(2), r(2), 4);
    b.slli(r(6), r(6), 2);
    b.add(r(6), r(25), r(6));
    b.lw(r(7), r(6), 0);
    b.sw(r(3), r(7), 0);
    b.addi(r(3), r(3), 4);
    b.j("dispatch");
    b.nop();

    b.label("op_setvar");
    b.lw(r(6), r(2), 0);
    b.addi(r(2), r(2), 4);
    b.addi(r(3), r(3), -4);
    b.lw(r(7), r(3), 0);
    b.slli(r(6), r(6), 2);
    b.add(r(6), r(25), r(6));
    b.sw(r(6), r(7), 0);
    b.j("dispatch");
    b.nop();

    b.label("op_haltvm");
    b.halt();

    let checks =
        expected.iter().take(3).enumerate().map(|(i, &v)| (out + 4 * i as u32, v)).collect();
    Workload { name: "gs", unit: b.into_unit(), checks, min_mem_bytes: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    #[test]
    fn reference_interpreter_computes_sum_of_squares() {
        let out = interpret(&bytecode(10));
        assert_eq!(out[0], (1..=10u32).map(|i| i * i).sum::<u32>());
        assert_eq!(out[1], out[0].wrapping_mul(7).wrapping_sub(10));
    }

    #[test]
    fn gs_runs_clean_in_both_modes() {
        let w = gs();
        run_workload(&w, false, 20_000_000);
        run_workload(&w, true, 20_000_000);
    }

    #[test]
    fn gs_uses_the_zero_register_convention() {
        // Dispatch jumps must never touch r9 except through jr/jalr.
        let w = gs();
        assert!(w.unit.stmts.iter().any(|s| matches!(
            s,
            argus_compiler::builder::Stmt::JumpReg { link: false, rb } if rb.index() == 7
        )));
    }
}
