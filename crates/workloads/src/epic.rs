//! EPIC-style image pyramid kernels: a two-level Haar-like analysis
//! (`epic`) and its synthesis inverse (`unepic`). Shift/add dominated,
//! with strided memory access patterns.

use crate::common::{input_samples, Workload, DATA_BASE};
use argus_compiler::ProgramBuilder;
use argus_isa::instr::Cond;
use argus_isa::reg::r;

/// Input length (power of two).
pub const N: usize = 128;

/// One analysis level: lo[i] = (x[2i] + x[2i+1]) >> 1, hi[i] = x[2i] − x[2i+1].
fn analyze(x: &[i32]) -> (Vec<i32>, Vec<i32>) {
    let mut lo = Vec::with_capacity(x.len() / 2);
    let mut hi = Vec::with_capacity(x.len() / 2);
    for p in x.chunks(2) {
        lo.push((p[0].wrapping_add(p[1])) >> 1);
        hi.push(p[0].wrapping_sub(p[1]));
    }
    (lo, hi)
}

/// Inverse of [`analyze`] (exact because hi carries the parity).
fn synthesize(lo: &[i32], hi: &[i32]) -> Vec<i32> {
    let mut x = Vec::with_capacity(lo.len() * 2);
    for (&l, &h) in lo.iter().zip(hi) {
        // x0 = l + ((h + (h & 1)) >> 1)? Reconstruct from l = (x0+x1)>>1, h = x0-x1:
        // x0 + x1 = 2l + ((x0+x1) & 1); the lost parity bit equals
        // (h & 1) because x0+x1 and x0-x1 have the same parity.
        let sum = 2 * l + (h & 1);
        let x0 = (sum + h) >> 1;
        x.push(x0);
        x.push(x0 - h);
    }
    x
}

/// Two-level pyramid layout: [lo2 | hi2 | hi1].
fn epic_reference(input: &[i32]) -> Vec<i32> {
    let (lo1, hi1) = analyze(input);
    let (lo2, hi2) = analyze(&lo1);
    let mut out = lo2;
    out.extend(hi2);
    out.extend(hi1);
    out
}

fn unepic_reference(pyr: &[i32]) -> Vec<i32> {
    let (lo2, rest) = pyr.split_at(N / 4);
    let (hi2, hi1) = rest.split_at(N / 4);
    let lo1 = synthesize(lo2, hi2);
    synthesize(&lo1, hi1)
}

/// Emits one analysis level from `src_off` (len `n`) into lo at `lo_off`
/// and hi at `hi_off` (data-section byte offsets).
fn emit_analyze(b: &mut ProgramBuilder, tag: &str, src_off: u32, lo_off: u32, hi_off: u32, n: u32) {
    let lp = format!("{tag}_loop");
    b.li(r(2), DATA_BASE + src_off);
    b.li(r(3), DATA_BASE + lo_off);
    b.li(r(5), DATA_BASE + hi_off);
    b.li(r(4), 0);
    b.li(r(11), n / 2); // loop bound in a register
    b.label(&lp);
    b.lw(r(6), r(2), 0);
    b.lw(r(7), r(2), 4);
    b.add(r(8), r(6), r(7));
    b.srai(r(8), r(8), 1);
    b.sub(r(10), r(6), r(7));
    b.sw(r(3), r(8), 0);
    b.sw(r(5), r(10), 0);
    b.addi(r(2), r(2), 8);
    b.addi(r(3), r(3), 4);
    b.addi(r(5), r(5), 4);
    b.addi(r(4), r(4), 1);
    b.sf(Cond::Ltu, r(4), r(11));
    b.bf(&lp);
    b.nop();
}

/// Emits one synthesis level from lo at `lo_off`, hi at `hi_off` into
/// `dst_off` (each lo/hi has `n/2` entries).
fn emit_synthesize(
    b: &mut ProgramBuilder,
    tag: &str,
    lo_off: u32,
    hi_off: u32,
    dst_off: u32,
    n: u32,
) {
    let lp = format!("{tag}_loop");
    b.li(r(2), DATA_BASE + lo_off);
    b.li(r(3), DATA_BASE + hi_off);
    b.li(r(5), DATA_BASE + dst_off);
    b.li(r(4), 0);
    b.li(r(13), n / 2); // loop bound in a register
    b.label(&lp);
    b.lw(r(6), r(2), 0); // l
    b.lw(r(7), r(3), 0); // h
    b.slli(r(8), r(6), 1); // 2l
    b.andi(r(10), r(7), 1); // parity
    b.add(r(8), r(8), r(10)); // sum
    b.add(r(11), r(8), r(7));
    b.srai(r(11), r(11), 1); // x0
    b.sub(r(12), r(11), r(7)); // x1
    b.sw(r(5), r(11), 0);
    b.sw(r(5), r(12), 4);
    b.addi(r(2), r(2), 4);
    b.addi(r(3), r(3), 4);
    b.addi(r(5), r(5), 8);
    b.addi(r(4), r(4), 1);
    b.sf(Cond::Ltu, r(4), r(13));
    b.bf(&lp);
    b.nop();
}

/// The EPIC analysis workload.
pub fn epic() -> Workload {
    let input = input_samples(0xE61C, N, 20000);
    let expected = epic_reference(&input);

    let mut b = ProgramBuilder::new();
    b.data_label("input");
    for &v in &input {
        b.data_word(v as u32);
    }
    b.data_label("lo1");
    b.data_zeros((N / 2) as u32);
    b.data_label("out");
    b.data_zeros(N as u32); // [lo2 | hi2 | hi1]
    let lo1 = b.data_offset("lo1").unwrap();
    let out = b.data_offset("out").unwrap();
    let (lo2, hi2, hi1) = (out, out + N as u32, out + 2 * N as u32);

    b.li(r(26), 3);
    b.label("outer");
    emit_analyze(&mut b, "l1", 0, lo1, hi1, N as u32);
    emit_analyze(&mut b, "l2", lo1, lo2, hi2, (N / 2) as u32);
    b.addi(r(26), r(26), -1);
    b.sfi(Cond::Gts, r(26), 0);
    b.bf("outer");
    b.nop();
    b.halt();

    let checks =
        expected.iter().enumerate().map(|(i, &v)| (out + 4 * i as u32, v as u32)).collect();
    Workload { name: "epic", unit: b.into_unit(), checks, min_mem_bytes: 0 }
}

/// The EPIC synthesis (reconstruction) workload.
pub fn unepic() -> Workload {
    let original = input_samples(0xE61C, N, 20000);
    let pyr = epic_reference(&original);
    let expected = unepic_reference(&pyr);
    assert_eq!(expected, original, "host reference must reconstruct exactly");

    let mut b = ProgramBuilder::new();
    b.data_label("pyr");
    for &v in &pyr {
        b.data_word(v as u32);
    }
    b.data_label("lo1");
    b.data_zeros((N / 2) as u32);
    b.data_label("out");
    b.data_zeros(N as u32);
    let lo1 = b.data_offset("lo1").unwrap();
    let out = b.data_offset("out").unwrap();
    let (lo2, hi2, hi1) = (0u32, (N as u32), 2 * N as u32);

    b.li(r(26), 3);
    b.label("outer");
    emit_synthesize(&mut b, "s2", lo2, hi2, lo1, (N / 2) as u32);
    emit_synthesize(&mut b, "s1", lo1, hi1, out, N as u32);
    b.addi(r(26), r(26), -1);
    b.sfi(Cond::Gts, r(26), 0);
    b.bf("outer");
    b.nop();
    b.halt();

    let checks =
        expected.iter().enumerate().map(|(i, &v)| (out + 4 * i as u32, v as u32)).collect();
    Workload { name: "unepic", unit: b.into_unit(), checks, min_mem_bytes: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    #[test]
    fn analysis_synthesis_roundtrip() {
        let x = input_samples(1, 64, 1 << 20);
        let (lo, hi) = analyze(&x);
        assert_eq!(synthesize(&lo, &hi), x);
    }

    #[test]
    fn epic_runs_clean() {
        run_workload(&epic(), true, 5_000_000);
        run_workload(&epic(), false, 5_000_000);
    }

    #[test]
    fn unepic_runs_clean() {
        run_workload(&unepic(), true, 5_000_000);
    }
}
