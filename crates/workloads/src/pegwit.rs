//! Pegwit-style kernel: public-key tools are dominated by long chains of
//! modular arithmetic and hashing. This kernel computes a bitwise CRC-32
//! over a message and an Adler-like modular checksum (`h = (h·31 + x) mod
//! 65521`), exercising shifts, xors, branches, multiply and divide in long
//! dependency chains.

use crate::common::{input_bytes, Workload, DATA_BASE};
use argus_compiler::ProgramBuilder;
use argus_isa::instr::Cond;
use argus_isa::reg::{r, Reg};

/// Message length in words.
pub const N: usize = 96;
const CRC_POLY: u32 = 0xEDB8_8320;
const ADLER_MOD: u32 = 65521;

fn reference(msg: &[u32]) -> (u32, u32) {
    let mut crc = 0xFFFF_FFFFu32;
    for &w in msg {
        crc ^= w;
        for _ in 0..32 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb == 1 {
                crc ^= CRC_POLY;
            }
        }
    }
    let mut h = 1u32;
    for &w in msg {
        for b in 0..4 {
            let byte = (w >> (8 * b)) & 0xFF;
            h = (h.wrapping_mul(31).wrapping_add(byte)) % ADLER_MOD;
        }
    }
    (crc, h)
}

/// The pegwit-style hashing workload.
pub fn pegwit() -> Workload {
    let msg: Vec<u32> = input_bytes(0x7E67, N * 4)
        .chunks(4)
        .map(|c| c[0] | (c[1] << 8) | (c[2] << 16) | (c[3] << 24))
        .collect();
    let (crc, h) = reference(&msg);

    let mut b = ProgramBuilder::new();
    b.data_label("msg");
    for &w in &msg {
        b.data_word(w);
    }
    b.data_label("output");
    b.data_zeros(2);
    let out_off = b.data_offset("output").unwrap();

    b.li(r(26), 2);
    b.label("outer");
    // --- CRC-32 ---
    b.li(r(2), DATA_BASE);
    b.li(r(10), 0xFFFF_FFFF); // crc
    b.li(r(11), CRC_POLY);
    b.li(r(4), 0); // word index
    b.li(r(16), N as u32); // word count in a register
    b.li(r(17), 32); // bits per word
    b.li(r(18), 1); // bit-mask constant
    b.label("crc_word");
    b.lw(r(6), r(2), 0);
    b.xor(r(10), r(10), r(6));
    b.li(r(5), 0); // bit index
    b.label("crc_bit");
    // Branchless bit step: crc = (crc >> 1) ^ (poly & -(crc & 1)), the
    // classic table-less CRC inner loop.
    b.and(r(7), r(10), r(18));
    b.sub(r(7), Reg::ZERO, r(7));
    b.and(r(7), r(7), r(11));
    b.srli(r(10), r(10), 1);
    b.xor(r(10), r(10), r(7));
    b.addi(r(5), r(5), 1);
    b.sf(Cond::Ltu, r(5), r(17));
    b.bf("crc_bit");
    b.nop();
    b.addi(r(2), r(2), 4);
    b.addi(r(4), r(4), 1);
    b.sf(Cond::Ltu, r(4), r(16));
    b.bf("crc_word");
    b.nop();
    b.li(r(3), DATA_BASE + out_off);
    b.sw(r(3), r(10), 0);

    // --- modular hash ---
    b.li(r(2), DATA_BASE);
    b.li(r(12), 1); // h
    b.li(r(13), ADLER_MOD);
    b.li(r(4), 0);
    b.li(r(8), 31); // multiplier constant hoisted out of the loop
    b.li(r(19), 0xFF); // byte mask
    b.label("adl_word");
    b.lw(r(6), r(2), 0);
    for byte in 0..4u8 {
        b.srli(r(7), r(6), 8 * byte);
        b.and(r(7), r(7), r(19));
        b.mulu(r(12), r(12), r(8));
        b.add(r(12), r(12), r(7));
        // h %= MOD  via  h - (h / MOD) * MOD
        b.divu(r(14), r(12), r(13));
        b.mulu(r(15), r(14), r(13));
        b.sub(r(12), r(12), r(15));
    }
    b.addi(r(2), r(2), 4);
    b.addi(r(4), r(4), 1);
    b.sf(Cond::Ltu, r(4), r(16));
    b.bf("adl_word");
    b.nop();
    b.sw(r(3), r(12), 4);
    b.addi(r(26), r(26), -1);
    b.sfi(Cond::Gts, r(26), 0);
    b.bf("outer");
    b.nop();
    b.halt();

    Workload {
        name: "pegwit",
        unit: b.into_unit(),
        checks: vec![(out_off, crc), (out_off + 4, h)],
        min_mem_bytes: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    #[test]
    fn crc_reference_known_property() {
        // CRC of an empty message is the initial value; appending data
        // changes it.
        let (c1, _) = reference(&[]);
        assert_eq!(c1, 0xFFFF_FFFF);
        let (c2, _) = reference(&[0x1234_5678]);
        assert_ne!(c2, c1);
    }

    #[test]
    fn adler_stays_in_range() {
        let msg: Vec<u32> = (0..64).map(|i| i * 0x0101_0101).collect();
        let (_, h) = reference(&msg);
        assert!(h < ADLER_MOD);
    }

    #[test]
    fn pegwit_runs_clean_in_both_modes() {
        let w = pegwit();
        run_workload(&w, false, 20_000_000);
        run_workload(&w, true, 20_000_000);
    }
}
