//! # argus-workloads — MediaBench-like kernels and the stress test
//!
//! The paper evaluates Argus-1's performance overheads on the MediaBench
//! suite (§4.4) and its error coverage on a "stress-test" microbenchmark
//! (§4.1). MediaBench binaries require the original toolchain and inputs,
//! so this crate provides synthetic equivalents written against the
//! `argus-compiler` macro-assembler: real signal-processing kernels
//! (ADPCM codec, G.721-style prediction, GSM autocorrelation, EPIC-style
//! pyramid filters, JPEG-style transforms, MPEG-style reconstruction,
//! pegwit-style hashing) that reproduce the property the figures hinge on —
//! register-register-heavy inner loops with plenty of unused instruction
//! bits versus load/store/immediate-heavy setup code that forces Signature
//! instructions.
//!
//! Every workload is *self-checking*: it writes its results to the data
//! section and carries host-side expected values computed by a Rust
//! reference implementation.
//!
//! # Examples
//!
//! ```
//! use argus_workloads::suite;
//! let ws = suite();
//! assert!(ws.len() >= 10);
//! for w in &ws {
//!     assert!(!w.checks.is_empty(), "{} is not self-checking", w.name);
//! }
//! ```

pub mod adpcm;
pub mod common;
pub mod dsp;
pub mod epic;
pub mod gs;
pub mod jpeg;
pub mod mesa;
pub mod mpeg2;
pub mod pegwit;
pub mod rasta;
pub mod stress;

pub use common::Workload;

/// The full MediaBench-like suite used by the performance figures.
pub fn suite() -> Vec<Workload> {
    vec![
        adpcm::encode(),
        adpcm::decode(),
        epic::epic(),
        epic::unepic(),
        dsp::g721_encode(),
        dsp::g721_decode(),
        dsp::gsm_encode(),
        gs::gs(),
        jpeg::encode(),
        jpeg::decode(),
        mesa::mesa(),
        mpeg2::decode(),
        pegwit::pegwit(),
        rasta::rasta(),
    ]
}

/// The §4.1 stress-test microbenchmark: broad register and instruction-type
/// coverage for fault-injection campaigns.
pub fn stress() -> Workload {
    stress::stress()
}

/// The XL tier of the stress test: the same fault-injection target scaled
/// to a 16 MiB machine with a page-strided sweep over an 8 MiB window,
/// sized to exercise the out-of-core snapshot store
/// ([`Workload::min_mem_bytes`] carries the memory requirement).
pub fn stress_xl() -> Workload {
    stress::stress_xl()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_are_unique() {
        let ws = suite();
        let mut names: Vec<_> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ws.len());
    }
}
