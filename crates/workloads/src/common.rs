//! Workload plumbing: self-checking programs and shared input generation.

use argus_compiler::ProgramUnit;
use argus_machine::Machine;
use argus_sim::rng::SplitMix64;

/// Default data-section base (must match `EmbedConfig::default`).
pub const DATA_BASE: u32 = 0x8_0000;

/// A self-checking benchmark program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name as it appears in the figures.
    pub name: &'static str,
    /// The source unit (compile in either mode).
    pub unit: ProgramUnit,
    /// `(data-section byte offset, expected word)` pairs to verify after a
    /// run.
    pub checks: Vec<(u32, u32)>,
    /// Minimum main-memory size the program needs; `0` means the default
    /// machine configuration is large enough. Runners must size
    /// `MemConfig::mem_bytes` to at least this value.
    pub min_mem_bytes: u32,
}

impl Workload {
    /// Verifies the run's results against the host-side reference.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatching word.
    pub fn check(&self, m: &Machine) -> Result<(), String> {
        for &(off, expect) in &self.checks {
            let got = m.read_data_word(DATA_BASE + off);
            if got != expect {
                return Err(format!(
                    "{}: data[{:#x}] = {:#010x}, expected {:#010x}",
                    self.name, off, got, expect
                ));
            }
        }
        Ok(())
    }
}

/// Compiles and runs a workload in the given mode, verifying its
/// self-checks and (in Argus mode) the absence of false positives.
/// Returns the finished run.
///
/// # Panics
///
/// Panics on compile errors, failed self-checks, non-halting runs, or
/// checker false positives — the invariants every workload must satisfy.
pub fn run_workload(
    w: &Workload,
    argus: bool,
    max_cycles: u64,
) -> argus_compiler::verify::CheckedRun {
    use argus_compiler::{compile, EmbedConfig, Mode};
    let mode = if argus { Mode::Argus } else { Mode::Baseline };
    let prog = compile(&w.unit, mode, &EmbedConfig::default())
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
    let mut mcfg = argus_machine::MachineConfig::default();
    mcfg.mem.mem_bytes = mcfg.mem.mem_bytes.max(w.min_mem_bytes);
    let run = if argus {
        argus_compiler::verify::run_checked(
            &prog,
            mcfg,
            argus_core::ArgusConfig::default(),
            &mut argus_sim::fault::FaultInjector::none(),
            max_cycles,
        )
    } else {
        argus_compiler::verify::run_baseline(
            &prog,
            argus_machine::MachineConfig { argus_mode: false, ..mcfg },
            max_cycles,
        )
    };
    assert!(run.halted, "{}: did not halt within {max_cycles} cycles", w.name);
    if argus {
        assert!(run.events.is_empty(), "{}: false positives: {:?}", w.name, run.events);
    }
    if let Err(e) = w.check(&run.machine) {
        panic!("self-check failed: {e}");
    }
    run
}

/// Emits a branchless `rx = min(rx, c)` (signed) using `rt`/`rt2` as
/// scratch: `d = x − c; x' = c + (d & (d>>31))`.
pub fn emit_min_const(b: &mut argus_compiler::ProgramBuilder, rx: u8, c: i16, rt: u8, rt2: u8) {
    use argus_isa::reg::r;
    b.addi(r(rt), r(rx), -c);
    b.srai(r(rt2), r(rt), 31);
    b.and(r(rt), r(rt), r(rt2));
    b.addi(r(rx), r(rt), c);
}

/// Emits a branchless `rx = max(rx, c)` (signed):
/// `d = x − c; x' = c + (d & ~(d>>31))`.
pub fn emit_max_const(b: &mut argus_compiler::ProgramBuilder, rx: u8, c: i16, rt: u8, rt2: u8) {
    use argus_isa::reg::r;
    b.addi(r(rt), r(rx), -c);
    b.srai(r(rt2), r(rt), 31);
    b.xori(r(rt2), r(rt2), 0xFFFF); // sign-extends to !mask
    b.and(r(rt), r(rt), r(rt2));
    b.addi(r(rx), r(rt), c);
}

/// Deterministic pseudo-random input samples in `[-bound, bound)`,
/// identical on every call with the same tag.
pub fn input_samples(tag: u64, n: usize, bound: i32) -> Vec<i32> {
    let mut rng = SplitMix64::new(0xBEEF_0000 ^ tag);
    (0..n).map(|_| (rng.below(2 * bound as u64) as i32) - bound).collect()
}

/// Deterministic pseudo-random unsigned bytes.
pub fn input_bytes(tag: u64, n: usize) -> Vec<u32> {
    let mut rng = SplitMix64::new(0xF00D_0000 ^ tag);
    (0..n).map(|_| (rng.below(256)) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_are_deterministic_and_bounded() {
        let a = input_samples(7, 100, 1000);
        let b = input_samples(7, 100, 1000);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (-1000..1000).contains(&x)));
        assert_ne!(input_samples(8, 100, 1000), a);
        assert!(input_bytes(1, 64).iter().all(|&x| x < 256));
    }
}
