//! G.721-style adaptive prediction and GSM-style autocorrelation kernels.

use crate::common::{input_samples, Workload, DATA_BASE};
use argus_compiler::ProgramBuilder;
use argus_isa::instr::Cond;
use argus_isa::reg::{r, Reg};

const G721_CHUNK: usize = 32;
const G721_PASSES: usize = 6;
/// Samples processed by the G.721-style kernels.
pub const G721_N: usize = G721_CHUNK * G721_PASSES;

/// Host reference: 2-tap adaptive predictor with sign-LMS adaptation.
/// Returns (quantized residuals, reconstructions).
fn g721_reference(input: &[i32]) -> (Vec<i32>, Vec<i32>) {
    let (mut a1, mut a2): (i32, i32) = (192, -64);
    let (mut y1, mut y2): (i32, i32) = (0, 0);
    let mut qs = Vec::with_capacity(input.len());
    let mut ys = Vec::with_capacity(input.len());
    for &x in input {
        let pred = (a1.wrapping_mul(y1).wrapping_add(a2.wrapping_mul(y2))) >> 8;
        let e = x.wrapping_sub(pred);
        let q = e >> 4;
        let xr = pred.wrapping_add(q << 4);
        // sign-sign LMS
        let se = if e >= 0 { 1 } else { -1 };
        let s1 = if y1 >= 0 { 1 } else { -1 };
        let s2 = if y2 >= 0 { 1 } else { -1 };
        a1 = (a1 + se * s1).clamp(-256, 256);
        a2 = (a2 + se * s2).clamp(-256, 256);
        y2 = y1;
        y1 = xr;
        qs.push(q);
        ys.push(xr);
    }
    (qs, ys)
}

/// Emits `rd = sign(rs)` (1 or -1) without branches.
fn emit_sign(b: &mut ProgramBuilder, rd: u8, rs: u8) {
    // sign = (x >> 31) | 1  →  -1 for negative, 1 otherwise.
    b.srai(r(rd), r(rs), 31);
    b.ori(r(rd), r(rd), 1);
}

/// Emits a branchless `clamp(rx, -256, 256)`.
fn emit_clamp256(b: &mut ProgramBuilder, _tag: &str, rx: u8) {
    crate::common::emit_min_const(b, rx, 256, 22, 23);
    crate::common::emit_max_const(b, rx, -256, 22, 23);
}

fn g721_build(encode: bool) -> Workload {
    let input = input_samples(0x0721, G721_N, 8000);
    let (qs, ys) = g721_reference(&input);
    let expected: Vec<i32> = if encode { qs } else { ys };

    let mut b = ProgramBuilder::new();
    b.data_label("input");
    for &v in &input {
        b.data_word(v as u32);
    }
    b.data_label("output");
    b.data_zeros(G721_N as u32);
    let out_off = b.data_offset("output").unwrap();

    b.li(r(26), 2);
    b.label("outer");
    b.li(r(2), DATA_BASE);
    b.li(r(3), DATA_BASE + out_off);
    b.li(r(10), 192); // a1
    b.addi(r(11), Reg::ZERO, -64); // a2
    b.li(r(12), 0); // y1
    b.li(r(13), 0); // y2

    for pass in 0..G721_PASSES {
        let lp = format!("g{pass}_loop");
        b.li(r(4), 0);
        b.li(r(5), G721_CHUNK as u32); // loop bound in a register
        b.label(&lp);
        b.lw(r(6), r(2), 0); // x
                             // pred = (a1*y1 + a2*y2) >> 8
        b.mul(r(7), r(10), r(12));
        b.mul(r(8), r(11), r(13));
        b.add(r(7), r(7), r(8));
        b.srai(r(7), r(7), 8);
        // e = x - pred; q = e >> 4; xr = pred + (q << 4)
        b.sub(r(14), r(6), r(7));
        b.srai(r(15), r(14), 4);
        b.slli(r(16), r(15), 4);
        b.add(r(17), r(7), r(16)); // xr
                                   // adaptation
        emit_sign(&mut b, 18, 14); // se
        emit_sign(&mut b, 19, 12); // s1
        emit_sign(&mut b, 20, 13); // s2
        b.mul(r(21), r(18), r(19));
        b.add(r(10), r(10), r(21));
        emit_clamp256(&mut b, &format!("g{pass}a1"), 10);
        b.mul(r(21), r(18), r(20));
        b.add(r(11), r(11), r(21));
        emit_clamp256(&mut b, &format!("g{pass}a2"), 11);
        // shift delay line
        b.add(r(13), r(12), Reg::ZERO);
        b.add(r(12), r(17), Reg::ZERO);
        // store result
        if encode {
            b.sw(r(3), r(15), 0);
        } else {
            b.sw(r(3), r(17), 0);
        }
        b.addi(r(2), r(2), 4);
        b.addi(r(3), r(3), 4);
        b.addi(r(4), r(4), 1);
        b.sf(Cond::Ltu, r(4), r(5));
        b.bf(&lp);
        b.nop();
    }
    b.addi(r(26), r(26), -1);
    b.sfi(Cond::Gts, r(26), 0);
    b.bf("outer");
    b.nop();
    b.halt();

    let checks =
        expected.iter().enumerate().map(|(i, &v)| (out_off + 4 * i as u32, v as u32)).collect();
    Workload {
        name: if encode { "g721_enc" } else { "g721_dec" },
        unit: b.into_unit(),
        checks,
        min_mem_bytes: 0,
    }
}

/// G.721-style encoder (emits quantized residuals).
pub fn g721_encode() -> Workload {
    g721_build(true)
}

/// G.721-style decoder (emits reconstructions).
pub fn g721_decode() -> Workload {
    g721_build(false)
}

const GSM_WINDOW: usize = 40;
const GSM_LAGS: usize = 9;
const GSM_FRAMES: usize = 5;

/// Host reference: per-frame autocorrelation, the heart of GSM LPC
/// analysis.
fn gsm_reference(input: &[i32]) -> Vec<i32> {
    let mut out = Vec::new();
    for f in 0..GSM_FRAMES {
        let frame = &input[f * GSM_WINDOW..(f + 1) * GSM_WINDOW];
        for k in 0..GSM_LAGS {
            let mut acc: i32 = 0;
            for i in 0..GSM_WINDOW - k {
                acc = acc.wrapping_add((frame[i] >> 3).wrapping_mul(frame[i + k] >> 3));
            }
            out.push(acc);
        }
    }
    out
}

/// GSM-style LPC autocorrelation workload (multiply-dominated).
pub fn gsm_encode() -> Workload {
    let input = input_samples(0x0675, GSM_WINDOW * GSM_FRAMES, 16000);
    let expected = gsm_reference(&input);

    let mut b = ProgramBuilder::new();
    b.data_label("input");
    for &v in &input {
        b.data_word(v as u32);
    }
    b.data_label("output");
    b.data_zeros((GSM_LAGS * GSM_FRAMES) as u32);
    let out_off = b.data_offset("output").unwrap();

    b.li(r(26), 2);
    b.label("outer");
    b.li(r(3), DATA_BASE + out_off);
    for f in 0..GSM_FRAMES {
        b.li(r(2), DATA_BASE + (f * GSM_WINDOW * 4) as u32);
        for k in 0..GSM_LAGS {
            let lp = format!("f{f}k{k}_loop");
            b.li(r(10), 0); // acc
            b.li(r(4), 0); // i
            b.li(r(5), (GSM_WINDOW - k) as u32);
            // r6 = &frame[0], r7 = &frame[k]
            b.add(r(6), r(2), Reg::ZERO);
            b.addi(r(7), r(2), (k * 4) as i16);
            b.label(&lp);
            b.lw(r(11), r(6), 0);
            b.lw(r(12), r(7), 0);
            b.srai(r(11), r(11), 3);
            b.srai(r(12), r(12), 3);
            b.mul(r(13), r(11), r(12));
            b.add(r(10), r(10), r(13));
            b.addi(r(6), r(6), 4);
            b.addi(r(7), r(7), 4);
            b.addi(r(4), r(4), 1);
            b.sf(Cond::Ltu, r(4), r(5));
            b.bf(&lp);
            b.nop();
            b.sw(r(3), r(10), 0);
            b.addi(r(3), r(3), 4);
        }
    }
    b.addi(r(26), r(26), -1);
    b.sfi(Cond::Gts, r(26), 0);
    b.bf("outer");
    b.nop();
    b.halt();

    let checks =
        expected.iter().enumerate().map(|(i, &v)| (out_off + 4 * i as u32, v as u32)).collect();
    Workload { name: "gsm_enc", unit: b.into_unit(), checks, min_mem_bytes: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    #[test]
    fn g721_encode_runs_clean() {
        run_workload(&g721_encode(), true, 5_000_000);
    }

    #[test]
    fn g721_decode_runs_clean() {
        run_workload(&g721_decode(), true, 5_000_000);
        run_workload(&g721_decode(), false, 5_000_000);
    }

    #[test]
    fn gsm_runs_clean() {
        run_workload(&gsm_encode(), true, 10_000_000);
        run_workload(&gsm_encode(), false, 10_000_000);
    }

    #[test]
    fn g721_reference_reconstruction_tracks_input() {
        let input = input_samples(0x0721, G721_N, 8000);
        let (_, ys) = g721_reference(&input);
        let err: i64 = input[G721_N - 8..]
            .iter()
            .zip(&ys[G721_N - 8..])
            .map(|(&x, &y)| (x as i64 - y as i64).abs())
            .max()
            .unwrap();
        assert!(err <= 16, "reconstruction error {err} exceeds quantizer bound");
    }
}
