//! Standalone snapshot files for the `argus snapshot` CLI.
//!
//! A campaign keeps snapshots in memory (page-deduplicated, behind an
//! `Arc`); this module is the offline form — one self-contained,
//! versioned binary file per checkpoint, memory materialized in full.
//! Everything is little-endian; the layout is private to this module and
//! guarded by the magic/version header.

use crate::page::PageStore;
use crate::store::Snapshot;
use argus_core::config::{CheckerKind, DetectionEvent};
use argus_core::{Argus, ArgusConfig, ArgusState};
use argus_machine::machine::MachineConfig;
use argus_machine::snapshot::CoreState;
use argus_machine::{Machine, SnapshotState};
use argus_mem::{CacheConfig, CacheState, CachesState, LineState, MemConfig};
use std::io::{self, Read, Write};

/// File magic: "ARGSNAP" + format version 4.
///
/// Version 2 packed the CFC block-bit stream as u64 words (was one byte
/// per bit) and recorded the machine's predecode flag. Version 3 appends
/// a little-endian CRC-32 (IEEE) trailer over everything before it —
/// including the magic — so torn writes and flipped bits are rejected on
/// load *before* any state is parsed or allocated. Version 4 records the
/// `predecode_entries` and `block_exec` machine-config knobs (the plan
/// cache itself, like the predecode memo, is pure and never serialized).
const MAGIC: [u8; 8] = *b"ARGSNAP\x04";

/// Largest memory image (in words) a snapshot file may describe: 1 GiB of
/// payload. Guards allocation against crafted headers.
const MAX_MEM_WORDS: usize = 1 << 28;

/// Writes `snap` as a standalone snapshot file (payload + CRC32 trailer).
pub fn write_snapshot(w: &mut dyn Write, snap: &Snapshot) -> io::Result<()> {
    let mut buf: Vec<u8> = Vec::new();
    {
        let b: &mut dyn Write = &mut buf;
        b.write_all(&MAGIC)?;
        put_u64(b, snap.cycle())?;
        put_u64(b, snap.fingerprint())?;
        put_machine_config(b, &snap.core().cfg)?;
        put_argus_config(b, &snap.argus_config())?;
        put_core(b, snap.core())?;
        put_checker(b, snap.checker())?;
        let (words, tags) = snap.materialize_memory();
        put_u64(b, words.len() as u64)?;
        for &word in &words {
            put_u32(b, word)?;
        }
        put_bools(b, &tags)?;
    }
    let crc = argus_sim::crc::crc32(&buf);
    w.write_all(&buf)?;
    w.write_all(&crc.to_le_bytes())
}

/// Reads a snapshot file back into a live machine + checker pair.
///
/// The pair is rebuilt from the stored configurations, so the result forks
/// exactly like the in-memory snapshot the file came from. The whole file
/// is checksummed before any of it is interpreted: truncation, torn
/// writes, and bit flips all surface as `Err(InvalidData)` — never as a
/// panic, an over-allocation, or a silently wrong machine.
pub fn read_snapshot(r: &mut dyn Read) -> io::Result<(Machine, Argus)> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    if buf.len() < MAGIC.len() + 4 {
        return Err(bad("not an argus snapshot file (too short)"));
    }
    if buf[..MAGIC.len()] != MAGIC {
        return Err(if buf.starts_with(b"ARGSNAP") {
            bad("unsupported snapshot format version (bad magic)")
        } else {
            bad("not an argus snapshot file (bad magic)")
        });
    }
    let (payload, trailer) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("split_at(len - 4)"));
    if argus_sim::crc::crc32(payload) != stored {
        return Err(bad("snapshot checksum mismatch (file is truncated or corrupted)"));
    }

    let mut body = &payload[MAGIC.len()..];
    let r: &mut dyn Read = &mut body;
    let cycle = get_u64(r)?;
    let fingerprint = get_u64(r)?;
    let mcfg = get_machine_config(r)?;
    let acfg = get_argus_config(r)?;
    let core = get_core(r, mcfg)?;
    if core.cycle != cycle {
        return Err(bad("header cycle disagrees with core state"));
    }
    let checker = get_checker(r)?;

    let n = get_u64(r)? as usize;
    if n > MAX_MEM_WORDS {
        return Err(bad("memory image implausibly large"));
    }
    let mut words = Vec::new();
    for _ in 0..n {
        words.push(get_u32(r)?);
    }
    let tags = get_bools(r, n)?;
    if !body.is_empty() {
        return Err(bad("trailing bytes after snapshot payload"));
    }

    let mut m = Machine::new(mcfg);
    if m.mem().memory().words().len() != n {
        return Err(bad("memory image size disagrees with machine config"));
    }
    m.restore_core(&core);
    m.mem_mut().memory_mut().restore_words(0, &words, &tags);
    let mut argus = Argus::new(acfg);
    argus.restore_state(&checker);
    if crate::store::combined_fingerprint(&m, &argus) != fingerprint {
        return Err(bad("restored state does not match stored fingerprint"));
    }
    Ok((m, argus))
}

/// Reads a snapshot file into a [`Snapshot`] value (for `argus snapshot
/// info` and store-level tooling), interning pages in `pool`.
pub fn read_snapshot_value(r: &mut dyn Read, pool: &mut PageStore) -> io::Result<Snapshot> {
    let (m, argus) = read_snapshot(r)?;
    Ok(Snapshot::capture(&m, &argus, pool))
}

/// Serializes a live machine + checker pair to an in-memory ARGSNAP v3
/// image (payload + CRC-32 trailer). This is the body the distributed
/// lease protocol serves from `GET /jobs/<id>/artifacts/<hash>`: the byte
/// stream is deterministic for a given state, so its CRC doubles as the
/// artifact's content address.
pub fn snapshot_to_vec(m: &Machine, argus: &Argus) -> io::Result<Vec<u8>> {
    let mut pool = PageStore::new();
    let snap = Snapshot::capture(m, argus, &mut pool);
    let mut buf = Vec::new();
    write_snapshot(&mut buf, &snap)?;
    Ok(buf)
}

/// Parses an in-memory ARGSNAP image produced by [`snapshot_to_vec`] (or
/// any snapshot file read into memory), verifying the CRC trailer before
/// interpreting a single byte.
pub fn snapshot_from_slice(bytes: &[u8]) -> io::Result<(Machine, Argus)> {
    let mut r: &[u8] = bytes;
    let rd: &mut dyn Read = &mut r;
    read_snapshot(rd)
}

pub(crate) fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

pub(crate) fn put_u8(w: &mut dyn Write, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

pub(crate) fn put_u32(w: &mut dyn Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn put_u64(w: &mut dyn Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn put_bools(w: &mut dyn Write, bs: &[bool]) -> io::Result<()> {
    for &b in bs {
        put_u8(w, b as u8)?;
    }
    Ok(())
}

pub(crate) fn get_u8(r: &mut dyn Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

pub(crate) fn get_u32(r: &mut dyn Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn get_u64(r: &mut dyn Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn get_bool(r: &mut dyn Read) -> io::Result<bool> {
    match get_u8(r)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(bad("boolean field out of range")),
    }
}

pub(crate) fn get_bools(r: &mut dyn Read, n: usize) -> io::Result<Vec<bool>> {
    (0..n).map(|_| get_bool(r)).collect()
}

fn put_cache_config(w: &mut dyn Write, c: &CacheConfig) -> io::Result<()> {
    put_u32(w, c.size_bytes)?;
    put_u32(w, c.line_bytes)?;
    put_u32(w, c.ways)
}

fn get_cache_config(r: &mut dyn Read) -> io::Result<CacheConfig> {
    Ok(CacheConfig { size_bytes: get_u32(r)?, line_bytes: get_u32(r)?, ways: get_u32(r)? })
}

pub(crate) fn put_machine_config(w: &mut dyn Write, c: &MachineConfig) -> io::Result<()> {
    put_cache_config(w, &c.mem.icache)?;
    put_cache_config(w, &c.mem.dcache)?;
    put_u32(w, c.mem.mem_bytes)?;
    put_u32(w, c.mem.hit_cycles)?;
    put_u32(w, c.mem.miss_penalty)?;
    put_u32(w, c.mem.writeback_penalty)?;
    put_u8(w, c.argus_mode as u8)?;
    put_u8(w, c.predecode as u8)?;
    put_u64(w, c.predecode_entries as u64)?;
    put_u8(w, c.block_exec as u8)?;
    put_u32(w, c.mul_cycles)?;
    put_u32(w, c.div_cycles)
}

pub(crate) fn get_machine_config(r: &mut dyn Read) -> io::Result<MachineConfig> {
    Ok(MachineConfig {
        mem: MemConfig {
            icache: get_cache_config(r)?,
            dcache: get_cache_config(r)?,
            mem_bytes: get_u32(r)?,
            hit_cycles: get_u32(r)?,
            miss_penalty: get_u32(r)?,
            writeback_penalty: get_u32(r)?,
        },
        argus_mode: get_bool(r)?,
        predecode: get_bool(r)?,
        predecode_entries: get_predecode_entries(r)?,
        block_exec: get_bool(r)?,
        mul_cycles: get_u32(r)?,
        div_cycles: get_u32(r)?,
    })
}

/// Reads the predecode table size, rejecting crafted headers that would
/// panic `Predecode::with_entries` (must be a power of two in [2, 2^30]).
fn get_predecode_entries(r: &mut dyn Read) -> io::Result<usize> {
    let n = get_u64(r)?;
    if !n.is_power_of_two() || !(2..=1 << 30).contains(&n) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid predecode_entries in snapshot: {n}"),
        ));
    }
    Ok(n as usize)
}

pub(crate) fn put_argus_config(w: &mut dyn Write, c: &ArgusConfig) -> io::Result<()> {
    put_u32(w, c.sig_width)?;
    put_u32(w, c.modulus)?;
    put_u32(w, c.watchdog_bits)?;
    put_u32(w, c.max_block_len)?;
    let flags = c.enable_cc as u8
        | (c.enable_parity as u8) << 1
        | (c.enable_dcs as u8) << 2
        | (c.enable_watchdog as u8) << 3;
    put_u8(w, flags)
}

pub(crate) fn get_argus_config(r: &mut dyn Read) -> io::Result<ArgusConfig> {
    let (sig_width, modulus) = (get_u32(r)?, get_u32(r)?);
    let (watchdog_bits, max_block_len) = (get_u32(r)?, get_u32(r)?);
    let flags = get_u8(r)?;
    Ok(ArgusConfig {
        sig_width,
        modulus,
        watchdog_bits,
        max_block_len,
        enable_cc: flags & 1 != 0,
        enable_parity: flags & 2 != 0,
        enable_dcs: flags & 4 != 0,
        enable_watchdog: flags & 8 != 0,
    })
}

pub(crate) fn put_core(w: &mut dyn Write, c: &CoreState) -> io::Result<()> {
    for &reg in &c.regs {
        put_u32(w, reg)?;
    }
    put_bools(w, &c.parity)?;
    put_u8(w, c.flag as u8)?;
    put_u32(w, c.pc)?;
    put_u64(w, c.cycle)?;
    put_u64(w, c.retired)?;
    match c.pending_branch {
        Some(t) => {
            put_u8(w, 1)?;
            put_u32(w, t)?;
        }
        None => put_u8(w, 0)?,
    }
    put_u8(w, c.delay_slot as u8)?;
    put_u64(w, c.block_bits.len() as u64)?;
    for &word in c.block_bits.words() {
        put_u64(w, word)?;
    }
    put_u8(w, c.halted as u8)?;
    put_cache(w, &c.caches.icache)?;
    put_cache(w, &c.caches.dcache)
}

pub(crate) fn get_core(r: &mut dyn Read, cfg: MachineConfig) -> io::Result<CoreState> {
    let mut regs = [0u32; 32];
    for reg in &mut regs {
        *reg = get_u32(r)?;
    }
    let parity_v = get_bools(r, 32)?;
    let mut parity = [false; 32];
    parity.copy_from_slice(&parity_v);
    let flag = get_bool(r)?;
    let pc = get_u32(r)?;
    let cycle = get_u64(r)?;
    let retired = get_u64(r)?;
    let pending_branch = if get_bool(r)? { Some(get_u32(r)?) } else { None };
    let delay_slot = get_bool(r)?;
    let nbits = get_u64(r)? as usize;
    if nbits > 1 << 24 {
        return Err(bad("block bit stream implausibly long"));
    }
    let mut bit_words = vec![0u64; nbits.div_ceil(64)];
    for word in &mut bit_words {
        *word = get_u64(r)?;
    }
    if !nbits.is_multiple_of(64) && bit_words.last().is_some_and(|&w| w >> (nbits % 64) != 0) {
        return Err(bad("set bits past the block stream length"));
    }
    let block_bits = argus_sim::bitstream::BitStream::from_words(bit_words, nbits);
    let halted = get_bool(r)?;
    let caches = CachesState { icache: get_cache(r)?, dcache: get_cache(r)? };
    Ok(CoreState {
        cfg,
        regs,
        parity,
        flag,
        pc,
        cycle,
        retired,
        pending_branch,
        delay_slot,
        block_bits,
        halted,
        caches,
    })
}

fn put_cache(w: &mut dyn Write, c: &CacheState) -> io::Result<()> {
    put_u64(w, c.lines.len() as u64)?;
    for line in &c.lines {
        put_u8(w, line.valid as u8)?;
        put_u8(w, line.dirty as u8)?;
        put_u32(w, line.tag)?;
        put_u64(w, line.lru)?;
    }
    put_u64(w, c.tick)?;
    put_u64(w, c.stats.accesses)?;
    put_u64(w, c.stats.hits)?;
    put_u64(w, c.stats.misses)?;
    put_u64(w, c.stats.writebacks)
}

fn get_cache(r: &mut dyn Read) -> io::Result<CacheState> {
    let n = get_u64(r)? as usize;
    let mut lines = Vec::with_capacity(n);
    for _ in 0..n {
        lines.push(LineState {
            valid: get_bool(r)?,
            dirty: get_bool(r)?,
            tag: get_u32(r)?,
            lru: get_u64(r)?,
        });
    }
    let tick = get_u64(r)?;
    let stats = argus_mem::CacheStats {
        accesses: get_u64(r)?,
        hits: get_u64(r)?,
        misses: get_u64(r)?,
        writebacks: get_u64(r)?,
    };
    Ok(CacheState { lines, tick, stats })
}

pub(crate) fn put_checker(w: &mut dyn Write, s: &ArgusState) -> io::Result<()> {
    put_words(w, &s.file.state_words())?;
    put_words(w, &s.cfc.state_words())?;
    put_words(w, &s.watchdog.state_words())?;
    put_u64(w, s.events.len() as u64)?;
    for ev in &s.events {
        put_u8(
            w,
            match ev.checker {
                CheckerKind::Computation => 0,
                CheckerKind::Parity => 1,
                CheckerKind::Dcs => 2,
                CheckerKind::Watchdog => 3,
            },
        )?;
        let reason = ev.reason.as_bytes();
        put_u64(w, reason.len() as u64)?;
        w.write_all(reason)?;
        put_u64(w, ev.cycle)?;
        put_u32(w, ev.pc)?;
    }
    Ok(())
}

pub(crate) fn get_checker(r: &mut dyn Read) -> io::Result<ArgusState> {
    let file = argus_core::shs::ShsFile::from_state_words(&get_words(r)?)
        .ok_or_else(|| bad("malformed SHS file state"))?;
    let cfc = argus_core::cfc::Cfc::from_state_words(&get_words(r)?)
        .ok_or_else(|| bad("malformed CFC state"))?;
    let watchdog = argus_core::watchdog::Watchdog::from_state_words(&get_words(r)?)
        .ok_or_else(|| bad("malformed watchdog state"))?;
    let nev = get_u64(r)? as usize;
    let mut events = Vec::with_capacity(nev);
    for _ in 0..nev {
        let checker = match get_u8(r)? {
            0 => CheckerKind::Computation,
            1 => CheckerKind::Parity,
            2 => CheckerKind::Dcs,
            3 => CheckerKind::Watchdog,
            _ => return Err(bad("unknown checker kind")),
        };
        let rlen = get_u64(r)? as usize;
        if rlen > 4096 {
            return Err(bad("detection reason implausibly long"));
        }
        let mut rbytes = vec![0u8; rlen];
        r.read_exact(&mut rbytes)?;
        let reason_owned =
            String::from_utf8(rbytes).map_err(|_| bad("detection reason not UTF-8"))?;
        // DetectionEvent carries a &'static str; deserialized reasons are
        // interned for the process lifetime (snapshot loads are rare and
        // reasons are short).
        let reason: &'static str = Box::leak(reason_owned.into_boxed_str());
        events.push(DetectionEvent { checker, reason, cycle: get_u64(r)?, pc: get_u32(r)? });
    }
    Ok(ArgusState { file, cfc, watchdog, events })
}

fn put_words(w: &mut dyn Write, ws: &[u64]) -> io::Result<()> {
    put_u64(w, ws.len() as u64)?;
    for &word in ws {
        put_u64(w, word)?;
    }
    Ok(())
}

fn get_words(r: &mut dyn Read) -> io::Result<Vec<u64>> {
    let n = get_u64(r)? as usize;
    if n > 1 << 20 {
        return Err(bad("state word run implausibly long"));
    }
    (0..n).map(|_| get_u64(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::combined_fingerprint;

    #[test]
    fn file_roundtrip_reproduces_fingerprint() {
        let m = Machine::new(MachineConfig::default());
        let argus = Argus::new(ArgusConfig::default());
        let mut pool = PageStore::new();
        let snap = Snapshot::capture(&m, &argus, &mut pool);

        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        let (m2, a2) = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(combined_fingerprint(&m2, &a2), snap.fingerprint());
        assert_eq!(m2.cycle(), m.cycle());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_snapshot(&mut &b"NOTASNAP________"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn truncated_file_rejected() {
        let m = Machine::new(MachineConfig::default());
        let argus = Argus::new(ArgusConfig::default());
        let mut pool = PageStore::new();
        let snap = Snapshot::capture(&m, &argus, &mut pool);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_snapshot(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_payload_fails_fingerprint_check() {
        let m = Machine::new(MachineConfig::default());
        let argus = Argus::new(ArgusConfig::default());
        let mut pool = PageStore::new();
        let snap = Snapshot::capture(&m, &argus, &mut pool);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        let n = buf.len();
        buf[n - 100] ^= 0x01; // flip a memory tag near the end
        assert!(read_snapshot(&mut buf.as_slice()).is_err());
    }
}
