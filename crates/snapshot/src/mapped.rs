//! ARGSTORE v1: the out-of-core, memory-mapped snapshot store.
//!
//! A campaign's in-RAM [`crate::SnapshotStore`] holds every distinct page
//! of every checkpoint on the heap, so peak RSS scales with
//! `snapshots × pages`. This module stores the same content-addressed
//! pages in a single on-disk file instead, maps it read-only, and decodes
//! pages on demand through a small per-worker [`PageCache`] — peak RSS is
//! then bounded by the cache, not the store.
//!
//! # File layout (`ARGSTORE` v1, little-endian throughout)
//!
//! | region      | offset                    | contents                               |
//! |-------------|---------------------------|----------------------------------------|
//! | header      | 0                         | magic, version, page words, interval; zero-padded to 4096 |
//! | page bodies | 4096                      | one 4096-byte slot per distinct page (LE `u32` words, short tail zero-padded) |
//! | page tags   | after bodies              | one 128-byte slot per page (parity tags packed LSB-first) |
//! | page index  | after tags                | 8 bytes per page: `word_len: u32`, `crc32: u32` over body+tag slots |
//! | snapshots   | after index               | per snapshot: cycle, fingerprint, configs, core, checker, `mem_words`, page-id table |
//! | footer      | after snapshots           | `n_pages: u64`, `n_snaps: u64`, `meta_len: u64`, footer magic |
//! | trailer     | last 4 bytes              | CRC-32 (IEEE) over everything before it |
//!
//! Pages are deduplicated **across** snapshots at write time (the same
//! content-addressing the RAM store uses), so snapshots are just page-id
//! tables; the body region holds each distinct page once.
//!
//! # Lifecycle pitfalls this module is careful about
//!
//! * **fsync before map** — [`MappedStoreWriter::finish`] flushes and
//!   `sync_all`s the file before reopening it for mapping, so the map
//!   never observes a torn write of our own making.
//! * **envelope, then verify, then parse** — [`MappedStore::open`] checks
//!   the whole-file CRC over the raw mapping *before* interpreting any
//!   field beyond the magic, and validates the footer's size equation
//!   with checked arithmetic before allocating anything sized by it.
//!   Truncation, bit flips, and lying counts surface as `Err`, never as a
//!   panic or an over-allocation.
//! * **the file can change under the map** — the mapping is shared and
//!   the file may be writable by others, so snapshot metadata is decoded
//!   into RAM once at open (it is small), and every page body+tag slot is
//!   CRC-checked on first decode (memoized per page). A file mutated
//!   after mapping fails that per-page CRC instead of mis-executing.

use crate::io::get_checker;
use crate::io::{
    bad, get_argus_config, get_core, get_machine_config, get_u32, get_u64, put_argus_config,
    put_checker, put_core, put_machine_config, put_u32, put_u64,
};
use crate::page::{Page, PAGE_WORDS};
use crate::store::{combined_fingerprint, StoreStats};
use crate::workspace::Workspace;
use argus_core::{Argus, ArgusConfig, ArgusState};
use argus_machine::snapshot::CoreState;
use argus_machine::{Machine, SnapshotState};
use argus_sim::crc::Crc32;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// File magic: "ARGSTORE" (version is a separate field).
const MAGIC: [u8; 8] = *b"ARGSTORE";
/// Format version.
const VERSION: u32 = 1;
/// Footer magic, so truncation right before the trailer is caught even
/// when the CRC of the shorter file happens to collide.
const FOOTER_MAGIC: [u8; 8] = *b"ARGSEND\x01";
/// Header region size; also the page-body slot size (4 KiB payload).
const HEADER_LEN: usize = 4096;
/// Bytes per page-body slot.
const BODY_BYTES: usize = PAGE_WORDS * 4;
/// Bytes per packed-tag slot.
const TAG_BYTES: usize = PAGE_WORDS / 8;
/// Bytes per page-index entry (`word_len: u32` + `crc32: u32`).
const INDEX_BYTES: usize = 8;
/// Footer size: three u64 counts + footer magic.
const FOOTER_LEN: usize = 8 + 8 + 8 + 8;
/// Largest memory image (in words) a stored snapshot may describe
/// (matches the ARGSNAP guard): 1 GiB of payload.
const MAX_MEM_WORDS: usize = 1 << 28;

const _: () = assert!(HEADER_LEN == BODY_BYTES, "header occupies one body slot");

/// Process-unique store ids, so workspace delta bookkeeping never trusts
/// page ids from a different store.
static NEXT_UID: AtomicU64 = AtomicU64::new(1);
/// Distinguishes temp files created by concurrent writers in one process.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn pack_tags(tags: &[bool]) -> [u8; TAG_BYTES] {
    let mut out = [0u8; TAG_BYTES];
    for (i, &t) in tags.iter().enumerate() {
        out[i / 8] |= (t as u8) << (i % 8);
    }
    out
}

fn encode_body(words: &[u32]) -> [u8; BODY_BYTES] {
    let mut out = [0u8; BODY_BYTES];
    for (i, &w) in words.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// CRC over one page's full body slot and tag slot (padding included, so
/// any flip anywhere in either slot is detected).
fn page_crc(body: &[u8], tags: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(body);
    h.update(tags);
    h.finish()
}

#[cfg(unix)]
fn pread_exact(f: &File, off: u64, buf: &mut [u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    f.read_exact_at(buf, off)
}

#[cfg(not(unix))]
fn pread_exact(f: &File, off: u64, buf: &mut [u8]) -> io::Result<()> {
    use std::io::Seek;
    let mut fr = f;
    let pos = fr.stream_position()?;
    fr.seek(io::SeekFrom::Start(off))?;
    let res = fr.read_exact(buf);
    fr.seek(io::SeekFrom::Start(pos))?;
    res
}

// ---------------------------------------------------------------------------
// Memory mapping
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod mmap_ffi {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_SHARED: c_int = 1;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only view of a whole file. On unix this is a shared `mmap` —
/// the pages are backed by the page cache, shared between every store
/// opened on the file, and reclaimable under memory pressure. Elsewhere
/// it degrades to a heap copy (correct, just not out-of-core).
#[derive(Debug)]
pub(crate) struct MapRegion {
    #[cfg(unix)]
    ptr: *mut std::os::raw::c_void,
    #[cfg(unix)]
    len: usize,
    #[cfg(not(unix))]
    buf: Vec<u8>,
}

// The mapping is PROT_READ and never handed out mutably.
unsafe impl Send for MapRegion {}
unsafe impl Sync for MapRegion {}

impl MapRegion {
    #[cfg(unix)]
    fn map(file: &File, len: usize) -> io::Result<Self> {
        use std::os::fd::AsRawFd;
        if len == 0 {
            return Err(bad("cannot map an empty file"));
        }
        // SAFETY: len is nonzero and the fd is a valid open file.
        let ptr = unsafe {
            mmap_ffi::mmap(
                std::ptr::null_mut(),
                len,
                mmap_ffi::PROT_READ,
                mmap_ffi::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::other("mmap failed"));
        }
        Ok(Self { ptr, len })
    }

    #[cfg(not(unix))]
    fn map(file: &File, len: usize) -> io::Result<Self> {
        let mut fr = file;
        let mut buf = Vec::with_capacity(len);
        fr.read_to_end(&mut buf)?;
        if buf.len() != len {
            return Err(bad("file changed size while opening"));
        }
        Ok(Self { buf })
    }

    fn bytes(&self) -> &[u8] {
        #[cfg(unix)]
        // SAFETY: the region stays mapped for the lifetime of self.
        unsafe {
            std::slice::from_raw_parts(self.ptr as *const u8, self.len)
        }
        #[cfg(not(unix))]
        &self.buf
    }
}

#[cfg(unix)]
impl Drop for MapRegion {
    fn drop(&mut self) {
        // SAFETY: ptr/len came from a successful mmap.
        unsafe {
            mmap_ffi::munmap(self.ptr, self.len);
        }
    }
}

impl std::ops::Deref for MapRegion {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Per-distinct-page bookkeeping the writer keeps in RAM (~140 bytes per
/// page; bodies go straight to disk).
#[derive(Debug)]
struct PageRecord {
    word_len: u32,
    crc: u32,
    tags: [u8; TAG_BYTES],
}

/// Streaming ARGSTORE writer with the same capture policy surface as
/// [`crate::SnapshotBuilder`]: the golden run calls
/// [`MappedStoreWriter::maybe_capture`] after every step, page bodies are
/// deduplicated and written through to disk immediately, and
/// [`MappedStoreWriter::finish`] seals the file and reopens it as a
/// [`MappedStore`].
///
/// RAM held while writing is O(distinct pages) bookkeeping (tag bits +
/// index entries + dedup buckets), never page bodies.
#[derive(Debug)]
pub struct MappedStoreWriter {
    file: File,
    path: PathBuf,
    every: u64,
    next_due: u64,
    /// (page crc, word_len) → candidate page ids; full comparison (RAM
    /// tags + body read-back) decides equality, so colliding pages stay
    /// distinct.
    buckets: HashMap<(u32, u32), Vec<u32>>,
    pages: Vec<PageRecord>,
    metas: Vec<u8>,
    n_snaps: u64,
    last_cycle: Option<u64>,
    crc: Crc32,
    pages_total: u64,
    saved_bytes: u64,
    unique_bytes: u64,
}

impl MappedStoreWriter {
    /// Creates a store file at `path` (truncating any existing file),
    /// capturing every `every` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn create(path: &Path, every: u64) -> io::Result<Self> {
        assert!(every > 0, "snapshot interval must be at least one cycle");
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        let mut header = [0u8; HEADER_LEN];
        header[..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&(PAGE_WORDS as u32).to_le_bytes());
        header[16..24].copy_from_slice(&every.to_le_bytes());
        let mut w = Self {
            file,
            path: path.to_path_buf(),
            every,
            next_due: 0,
            buckets: HashMap::new(),
            pages: Vec::new(),
            metas: Vec::new(),
            n_snaps: 0,
            last_cycle: None,
            crc: Crc32::new(),
            pages_total: 0,
            saved_bytes: 0,
            unique_bytes: 0,
        };
        w.write_bytes(&header)?;
        Ok(w)
    }

    /// Creates a store file under the system temp directory with a
    /// process-unique name (campaign-internal stores nobody needs to keep;
    /// the campaign unlinks the path once the store is mapped).
    pub fn create_temp(every: u64) -> io::Result<Self> {
        let name = format!(
            "argstore-{}-{}.tmp",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        Self::create(&std::env::temp_dir().join(name), every)
    }

    /// Path of the store file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_bytes(&mut self, b: &[u8]) -> io::Result<()> {
        self.file.write_all(b)?;
        self.crc.update(b);
        Ok(())
    }

    /// Interns one page, writing its body through to disk if distinct.
    fn intern(&mut self, words: &[u32], tags: &[bool]) -> io::Result<u32> {
        self.pages_total += 1;
        let body = encode_body(words);
        let packed = pack_tags(tags);
        let crc = page_crc(&body, &packed);
        let key = (crc, words.len() as u32);
        // Split borrow: candidate lookup needs &self.pages and &self.file
        // while the bucket entry is held.
        let candidates = self.buckets.get(&key).cloned().unwrap_or_default();
        for id in candidates {
            let rec = &self.pages[id as usize];
            if rec.word_len == words.len() as u32 && rec.tags == packed {
                let mut stored = [0u8; BODY_BYTES];
                pread_exact(
                    &self.file,
                    (HEADER_LEN + id as usize * BODY_BYTES) as u64,
                    &mut stored,
                )?;
                if stored == body {
                    self.saved_bytes += 4 * words.len() as u64;
                    return Ok(id);
                }
            }
        }
        let id = u32::try_from(self.pages.len()).map_err(|_| bad("store page count overflow"))?;
        self.write_bytes(&body)?;
        self.pages.push(PageRecord { word_len: words.len() as u32, crc, tags: packed });
        self.buckets.entry(key).or_default().push(id);
        self.unique_bytes += 4 * words.len() as u64;
        Ok(id)
    }

    /// Captures unconditionally (the golden run seeds cycle 0 with this so
    /// every arm cycle has a snapshot at or before it).
    pub fn capture_now(&mut self, m: &Machine, argus: &Argus) -> io::Result<()> {
        if let Some(last) = self.last_cycle {
            assert!(m.cycle() > last, "snapshots must advance in cycle order");
        }
        let words = m.mem().memory().words();
        let tags = m.mem().memory().tags();
        assert_eq!(words.len(), tags.len(), "payload/tag images must be parallel");
        let mut ids = Vec::with_capacity(words.len().div_ceil(PAGE_WORDS));
        for (w, t) in words.chunks(PAGE_WORDS).zip(tags.chunks(PAGE_WORDS)) {
            ids.push(self.intern(w, t)?);
        }

        let mut buf: Vec<u8> = Vec::new();
        {
            let b: &mut dyn Write = &mut buf;
            put_u64(b, m.cycle())?;
            put_u64(b, combined_fingerprint(m, argus))?;
            put_machine_config(b, &m.config())?;
            put_argus_config(b, &argus.config())?;
            put_core(b, &m.capture_core())?;
            put_checker(b, &argus.capture_state())?;
            put_u64(b, words.len() as u64)?;
            put_u64(b, ids.len() as u64)?;
            for &id in &ids {
                put_u32(b, id)?;
            }
        }
        self.metas.extend_from_slice(&buf);
        self.n_snaps += 1;
        self.last_cycle = Some(m.cycle());
        self.next_due = m.cycle() + self.every;
        Ok(())
    }

    /// Captures when the interval has elapsed; returns whether it did.
    pub fn maybe_capture(&mut self, m: &Machine, argus: &Argus) -> io::Result<bool> {
        if m.cycle() >= self.next_due {
            self.capture_now(m, argus)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Number of snapshots captured so far.
    pub fn len(&self) -> usize {
        self.n_snaps as usize
    }

    /// Whether no snapshot has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.n_snaps == 0
    }

    /// Seals the file (tags, index, snapshot metadata, footer, CRC
    /// trailer), syncs it to disk, and reopens it as a mapped store.
    ///
    /// The `sync_all` *before* mapping matters: mapping a file whose
    /// writes are still in flight could tear; after fsync the bytes the
    /// map sees are the bytes we wrote.
    pub fn finish(mut self) -> io::Result<MappedStore> {
        for i in 0..self.pages.len() {
            let tags = self.pages[i].tags;
            self.write_bytes(&tags)?;
        }
        for i in 0..self.pages.len() {
            let (wl, crc) = (self.pages[i].word_len, self.pages[i].crc);
            let mut entry = [0u8; INDEX_BYTES];
            entry[..4].copy_from_slice(&wl.to_le_bytes());
            entry[4..].copy_from_slice(&crc.to_le_bytes());
            self.write_bytes(&entry)?;
        }
        let metas = std::mem::take(&mut self.metas);
        self.write_bytes(&metas)?;
        let mut footer = [0u8; FOOTER_LEN];
        footer[..8].copy_from_slice(&(self.pages.len() as u64).to_le_bytes());
        footer[8..16].copy_from_slice(&self.n_snaps.to_le_bytes());
        footer[16..24].copy_from_slice(&(metas.len() as u64).to_le_bytes());
        footer[24..].copy_from_slice(&FOOTER_MAGIC);
        self.write_bytes(&footer)?;
        let crc = self.crc.finish();
        self.file.write_all(&crc.to_le_bytes())?;
        self.file.flush()?;
        self.file.sync_all()?;
        let path = self.path.clone();
        drop(self.file);
        MappedStore::open(&path)
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Decoded per-snapshot metadata (small: core + checker state and the
/// page-id table; page bodies stay out-of-core).
#[derive(Debug)]
struct SnapMeta {
    cycle: u64,
    fingerprint: u64,
    acfg: ArgusConfig,
    core: CoreState,
    checker: ArgusState,
    mem_words: usize,
    page_ids: Vec<u32>,
}

/// A sealed ARGSTORE file, mapped read-only and shared by every campaign
/// worker behind an `Arc`. Restores decode pages on demand through a
/// per-worker [`PageCache`]; each page's CRC is checked on first decode.
#[derive(Debug)]
pub struct MappedStore {
    map: MapRegion,
    path: PathBuf,
    uid: u64,
    n_pages: usize,
    tags_off: usize,
    index_off: usize,
    metas: Vec<SnapMeta>,
    /// Per-page "CRC already checked" memo, shared across workers.
    page_verified: Vec<AtomicBool>,
    stats: StoreStats,
}

impl MappedStore {
    /// Opens and validates a store file: magic → whole-file CRC → footer
    /// size equation → metadata decode, in that order, so nothing is
    /// parsed or allocated from unverified bytes.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| bad("store file too large to map"))?;
        if len < HEADER_LEN + FOOTER_LEN + 4 {
            return Err(bad("not an argus store file (too short)"));
        }
        let map = MapRegion::map(&file, len)?;
        drop(file);
        let bytes: &[u8] = &map;
        if bytes[..8] != MAGIC {
            return Err(bad("not an argus store file (bad magic)"));
        }
        let stored_crc = u32::from_le_bytes(bytes[len - 4..].try_into().expect("len checked"));
        if argus_sim::crc::crc32(&bytes[..len - 4]) != stored_crc {
            return Err(bad("store checksum mismatch (file is truncated or corrupted)"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("len checked"));
        if version != VERSION {
            return Err(bad("unsupported store format version"));
        }
        let page_words = u32::from_le_bytes(bytes[12..16].try_into().expect("len checked"));
        if page_words as usize != PAGE_WORDS {
            return Err(bad("store page geometry disagrees with this build"));
        }
        let interval = u64::from_le_bytes(bytes[16..24].try_into().expect("len checked"));

        let footer = &bytes[len - 4 - FOOTER_LEN..len - 4];
        if footer[24..] != FOOTER_MAGIC {
            return Err(bad("store footer magic missing (file truncated?)"));
        }
        let n_pages_u64 = u64::from_le_bytes(footer[..8].try_into().expect("fixed split"));
        let n_snaps = u64::from_le_bytes(footer[8..16].try_into().expect("fixed split"));
        let meta_len = u64::from_le_bytes(footer[16..24].try_into().expect("fixed split"));
        let expected = (|| {
            let per_page = (BODY_BYTES + TAG_BYTES + INDEX_BYTES) as u64;
            n_pages_u64
                .checked_mul(per_page)?
                .checked_add(HEADER_LEN as u64)?
                .checked_add(meta_len)?
                .checked_add((FOOTER_LEN + 4) as u64)
        })();
        if expected != Some(len as u64) {
            return Err(bad("store geometry disagrees with file size"));
        }
        // The size equation bounds n_pages by len / 4232, so these
        // allocations are safe.
        let n_pages = n_pages_u64 as usize;
        let tags_off = HEADER_LEN + n_pages * BODY_BYTES;
        let index_off = tags_off + n_pages * TAG_BYTES;
        let meta_off = index_off + n_pages * INDEX_BYTES;

        let word_len_of = |id: usize| -> usize {
            let e = &bytes[index_off + id * INDEX_BYTES..];
            u32::from_le_bytes(e[..4].try_into().expect("index entry")) as usize
        };
        for id in 0..n_pages {
            if word_len_of(id) > PAGE_WORDS {
                return Err(bad("page length exceeds page geometry"));
            }
        }

        let mut metas = Vec::new();
        let mut body: &[u8] = &bytes[meta_off..meta_off + meta_len as usize];
        let mut pages_total: u64 = 0;
        let mut refs_bytes: u64 = 0;
        for _ in 0..n_snaps {
            let r: &mut dyn Read = &mut body;
            let cycle = get_u64(r)?;
            let fingerprint = get_u64(r)?;
            let mcfg = get_machine_config(r)?;
            let acfg = get_argus_config(r)?;
            let core = get_core(r, mcfg)?;
            if core.cycle != cycle {
                return Err(bad("snapshot cycle disagrees with core state"));
            }
            let checker = get_checker(r)?;
            let mem_words = get_u64(r)? as usize;
            if mem_words > MAX_MEM_WORDS {
                return Err(bad("memory image implausibly large"));
            }
            let nids = get_u64(r)? as usize;
            if nids != mem_words.div_ceil(PAGE_WORDS) {
                return Err(bad("page table length disagrees with memory size"));
            }
            let mut page_ids = Vec::with_capacity(nids);
            for j in 0..nids {
                let id = get_u32(r)?;
                if id as usize >= n_pages {
                    return Err(bad("page id out of range"));
                }
                let wl = word_len_of(id as usize);
                let want =
                    if j + 1 == nids { mem_words - (nids - 1) * PAGE_WORDS } else { PAGE_WORDS };
                if wl != want {
                    return Err(bad("page table is not canonical for the memory size"));
                }
                refs_bytes += 4 * wl as u64;
                page_ids.push(id);
            }
            pages_total += nids as u64;
            if let Some(prev) = metas.last().map(|m: &SnapMeta| m.cycle) {
                if cycle <= prev {
                    return Err(bad("snapshots out of cycle order"));
                }
            }
            metas.push(SnapMeta { cycle, fingerprint, acfg, core, checker, mem_words, page_ids });
        }
        if !body.is_empty() {
            return Err(bad("trailing bytes after store metadata"));
        }

        let unique_bytes: u64 = (0..n_pages).map(|id| 4 * word_len_of(id) as u64).sum();
        let stats = StoreStats {
            interval,
            unique_pages: n_pages as u64,
            dedup_hits: pages_total.saturating_sub(n_pages as u64),
            unique_bytes,
            pages_total,
            pages_distinct: n_pages as u64,
            bytes_saved: refs_bytes.saturating_sub(unique_bytes),
        };
        Ok(Self {
            map,
            path: path.to_path_buf(),
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
            n_pages,
            tags_off,
            index_off,
            metas,
            page_verified: (0..n_pages).map(|_| AtomicBool::new(false)).collect(),
            stats,
        })
    }

    /// Path this store was opened from (may since be unlinked for
    /// campaign-internal temp stores).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Process-unique identity of this open store.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// The entire mapped file image, byte for byte — what a distributed
    /// coordinator serves as the `store` artifact so workers can adopt the
    /// store without re-running the golden capture. Reading it never
    /// materializes pages: the bytes come straight from the map.
    pub fn file_bytes(&self) -> &[u8] {
        &self.map
    }

    /// Number of checkpoints.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Whether the store holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Distinct pages stored in the file.
    pub fn page_count(&self) -> usize {
        self.n_pages
    }

    /// Page-sharing statistics (same shape as the RAM store's).
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Bytes a store without page sharing would have used for memory
    /// images (each snapshot materialized in full).
    pub fn materialized_bytes(&self) -> u64 {
        self.metas.iter().map(|m| 4 * m.mem_words as u64).sum()
    }

    /// The latest snapshot index whose cycle stamp is `<= cycle`, if any.
    pub fn nearest_index_at_or_before(&self, cycle: u64) -> Option<usize> {
        self.metas.partition_point(|m| m.cycle <= cycle).checked_sub(1)
    }

    /// Cycle stamp of snapshot `i`.
    pub fn cycle(&self, i: usize) -> Option<u64> {
        self.metas.get(i).map(|m| m.cycle)
    }

    /// Capture-time fingerprint of snapshot `i`.
    pub fn fingerprint(&self, i: usize) -> Option<u64> {
        self.metas.get(i).map(|m| m.fingerprint)
    }

    /// Page-id table of snapshot `i` (for invariants and tooling).
    pub fn page_ids(&self, i: usize) -> Option<&[u32]> {
        self.metas.get(i).map(|m| m.page_ids.as_slice())
    }

    /// Memory payload words snapshot `i` reassembles to.
    pub fn mem_words(&self, i: usize) -> Option<usize> {
        self.metas.get(i).map(|m| m.mem_words)
    }

    fn word_len(&self, id: u32) -> usize {
        let e = &self.map[self.index_off + id as usize * INDEX_BYTES..];
        u32::from_le_bytes(e[..4].try_into().expect("index entry")) as usize
    }

    fn body_slot(&self, id: u32) -> &[u8] {
        &self.map[HEADER_LEN + id as usize * BODY_BYTES..][..BODY_BYTES]
    }

    fn tag_slot(&self, id: u32) -> &[u8] {
        &self.map[self.tags_off + id as usize * TAG_BYTES..][..TAG_BYTES]
    }

    /// Recomputes page `id`'s CRC against the live mapping, ignoring and
    /// not updating the first-touch memo — the invariant spot-check hook.
    /// Returns `None` for an out-of-range id.
    pub fn check_page_crc(&self, id: u32) -> Option<bool> {
        if id as usize >= self.n_pages {
            return None;
        }
        let e = &self.map[self.index_off + id as usize * INDEX_BYTES..];
        let stored = u32::from_le_bytes(e[4..8].try_into().expect("index entry"));
        Some(page_crc(self.body_slot(id), self.tag_slot(id)) == stored)
    }

    /// Decodes page `id` through `cache`, CRC-checking the mapped slots on
    /// the page's first decode ever (memoized store-wide).
    fn page(&self, id: u32, cache: &mut PageCache) -> Result<Arc<Page>, String> {
        if let Some(p) = cache.get(id) {
            return Ok(p);
        }
        cache.misses += 1;
        let body = self.body_slot(id);
        let tags = self.tag_slot(id);
        if !self.page_verified[id as usize].load(Ordering::Relaxed) {
            let e = &self.map[self.index_off + id as usize * INDEX_BYTES..];
            let stored = u32::from_le_bytes(e[4..8].try_into().expect("index entry"));
            if page_crc(body, tags) != stored {
                return Err(format!(
                    "mapped page {id} failed its CRC (store file corrupted after open)"
                ));
            }
            self.page_verified[id as usize].store(true, Ordering::Relaxed);
        }
        let wl = self.word_len(id);
        let mut words = Vec::with_capacity(wl);
        for i in 0..wl {
            words.push(u32::from_le_bytes(body[4 * i..4 * i + 4].try_into().expect("body slot")));
        }
        let tag_bits: Vec<bool> = (0..wl).map(|i| tags[i / 8] >> (i % 8) & 1 != 0).collect();
        let page = Arc::new(Page { words, tags: tag_bits });
        cache.insert(id, Arc::clone(&page));
        Ok(page)
    }

    fn restore_unverified(
        &self,
        meta: &SnapMeta,
        m: &mut Machine,
        argus: &mut Argus,
        cache: &mut PageCache,
    ) -> Result<(), String> {
        if m.mem().memory().words().len() != meta.mem_words {
            return Err("memory image size disagrees with machine config".into());
        }
        cache.grow_to(meta.page_ids.len());
        m.restore_core(&meta.core);
        let mut base = 0usize;
        for &id in &meta.page_ids {
            let p = self.page(id, cache)?;
            m.mem_mut().memory_mut().restore_words(base, &p.words, &p.tags);
            base += p.words.len();
        }
        argus.restore_state(&meta.checker);
        Ok(())
    }

    /// Builds a fresh machine + checker pair from snapshot `i` — the cold
    /// fork operation on the mapped store. Pages are CRC-checked on first
    /// decode; the full fingerprint is *not* re-verified (see
    /// [`MappedStore::try_restore_fresh`]).
    pub fn restore_fresh(
        &self,
        i: usize,
        cache: &mut PageCache,
    ) -> Result<(Machine, Argus), String> {
        let meta = self.metas.get(i).ok_or_else(|| format!("no snapshot {i}"))?;
        let mut m = Machine::new(meta.core.cfg);
        let mut argus = Argus::new(meta.acfg);
        self.restore_unverified(meta, &mut m, &mut argus, cache)?;
        Ok((m, argus))
    }

    /// Like [`MappedStore::restore_fresh`], but verifies the restored pair
    /// against the capture-time fingerprint.
    pub fn try_restore_fresh(
        &self,
        i: usize,
        cache: &mut PageCache,
    ) -> Result<(Machine, Argus), String> {
        let (m, argus) = self.restore_fresh(i, cache)?;
        let got = combined_fingerprint(&m, &argus);
        let want = self.metas[i].fingerprint;
        if got == want {
            Ok((m, argus))
        } else {
            Err(format!(
                "snapshot at cycle {} is corrupt: restored fingerprint {got:#018x} != captured {want:#018x}",
                self.metas[i].cycle
            ))
        }
    }

    /// Delta-restores snapshot `i` into a reusable [`Workspace`]: pages
    /// are rewritten only when dirtied since the workspace's last restore
    /// or when the page id differs from what the workspace mirrors (ids
    /// are exact content identity within one store). Under
    /// `debug_assertions` the full fingerprint is re-checked.
    pub fn restore_into(
        &self,
        i: usize,
        ws: &mut Workspace,
        cache: &mut PageCache,
    ) -> Result<(), String> {
        self.restore_into_delta(i, ws, cache)?;
        #[cfg(debug_assertions)]
        {
            let (m, a) = ws.pair().expect("restore populated the workspace");
            assert_eq!(
                combined_fingerprint(m, a),
                self.metas[i].fingerprint,
                "mapped delta restore does not match capture fingerprint"
            );
        }
        Ok(())
    }

    /// Like [`MappedStore::restore_into`], but verifies the restored pair
    /// against the capture-time fingerprint, retrying once with a full
    /// rebuild on mismatch. Returns whether the fallback was needed.
    pub fn try_restore_into(
        &self,
        i: usize,
        ws: &mut Workspace,
        cache: &mut PageCache,
    ) -> Result<bool, String> {
        let want = self.metas.get(i).ok_or_else(|| format!("no snapshot {i}"))?.fingerprint;
        self.restore_into_delta(i, ws, cache)?;
        {
            let (m, a) = ws.pair().expect("restore populated the workspace");
            if combined_fingerprint(m, a) == want {
                return Ok(false);
            }
        }
        ws.invalidate();
        ws.pair = None;
        self.restore_into_delta(i, ws, cache)?;
        let (m, a) = ws.pair().expect("restore populated the workspace");
        let got = combined_fingerprint(m, a);
        if got == want {
            Ok(true)
        } else {
            Err(format!(
                "snapshot at cycle {} is corrupt: restored fingerprint {got:#018x} != captured {want:#018x}",
                self.metas[i].cycle
            ))
        }
    }

    fn restore_into_delta(
        &self,
        i: usize,
        ws: &mut Workspace,
        cache: &mut PageCache,
    ) -> Result<(), String> {
        let res = self.restore_into_delta_inner(i, ws, cache);
        if res.is_err() {
            // The workspace memory may be partially rewritten; forget what
            // it mirrors so the next restore rewrites everything.
            ws.invalidate();
        }
        res
    }

    fn restore_into_delta_inner(
        &self,
        i: usize,
        ws: &mut Workspace,
        cache: &mut PageCache,
    ) -> Result<(), String> {
        let meta = self.metas.get(i).ok_or_else(|| format!("no snapshot {i}"))?;
        cache.grow_to(meta.page_ids.len());
        ws.stats.restores += 1;
        let compatible = match ws.pair() {
            Some((m, a)) => m.config() == meta.core.cfg && a.config() == meta.acfg,
            None => false,
        };
        if !compatible {
            let mut m = Machine::new(meta.core.cfg);
            let mut argus = Argus::new(meta.acfg);
            self.restore_unverified(meta, &mut m, &mut argus, cache)?;
            ws.pair = Some((m, argus));
            ws.stats.full_restores += 1;
        } else {
            let (m, argus) = ws.pair.as_mut().expect("checked compatible above");
            if m.mem().memory().words().len() != meta.mem_words {
                return Err("memory image size disagrees with machine config".into());
            }
            m.restore_core(&meta.core);
            let delta_ok =
                ws.mirrored_store == self.uid && ws.mirrored_ids.len() == meta.page_ids.len();
            let mut base = 0usize;
            if delta_ok {
                for (j, &id) in meta.page_ids.iter().enumerate() {
                    let dirty = m.mem_mut().memory_mut().page_dirty_since(j, ws.clean_gen);
                    if dirty || ws.mirrored_ids[j] != id {
                        let p = self.page(id, cache)?;
                        m.mem_mut().memory_mut().restore_words(base, &p.words, &p.tags);
                        ws.stats.pages_rewritten += 1;
                        base += p.words.len();
                    } else {
                        ws.stats.pages_skipped += 1;
                        base += self.word_len(id);
                    }
                }
            } else {
                for &id in &meta.page_ids {
                    let p = self.page(id, cache)?;
                    m.mem_mut().memory_mut().restore_words(base, &p.words, &p.tags);
                    base += p.words.len();
                }
                ws.stats.full_restores += 1;
            }
            assert_eq!(base, meta.mem_words, "page table does not cover memory");
            argus.restore_state(&meta.checker);
        }
        ws.mirrored.clear();
        ws.mirrored_ids.clear();
        ws.mirrored_ids.extend_from_slice(&meta.page_ids);
        ws.mirrored_store = self.uid;
        let (m, _) = ws.pair.as_mut().expect("restore populated the workspace");
        ws.clean_gen = m.mem_mut().memory_mut().advance_generation();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Page cache
// ---------------------------------------------------------------------------

/// Initial resident-page budget per worker (256 × ~5 KiB ≈ 1.3 MiB).
/// Restores raise it to one full image via [`PageCache::grow_to`], so the
/// effective bound is `max` of this and the machine's working set —
/// independent of snapshot count either way.
pub const DEFAULT_PAGE_CACHE_ENTRIES: usize = 256;

#[derive(Debug)]
struct CacheSlot {
    id: u32,
    page: Arc<Page>,
    referenced: bool,
}

/// A small per-worker cache of decoded pages with clock (second-chance)
/// eviction: this — not the store size — bounds a worker's resident set.
#[derive(Debug)]
pub struct PageCache {
    cap: usize,
    slots: Vec<CacheSlot>,
    index: HashMap<u32, usize>,
    hand: usize,
    hits: u64,
    misses: u64,
}

impl Default for PageCache {
    fn default() -> Self {
        Self::new(DEFAULT_PAGE_CACHE_ENTRIES)
    }
}

impl PageCache {
    /// A cache holding at most `cap` decoded pages.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "page cache must hold at least one page");
        Self { cap, slots: Vec::new(), index: HashMap::new(), hand: 0, hits: 0, misses: 0 }
    }

    fn get(&mut self, id: u32) -> Option<Arc<Page>> {
        let &slot = self.index.get(&id)?;
        self.hits += 1;
        self.slots[slot].referenced = true;
        Some(Arc::clone(&self.slots[slot].page))
    }

    fn insert(&mut self, id: u32, page: Arc<Page>) {
        if self.index.contains_key(&id) {
            return;
        }
        if self.slots.len() < self.cap {
            self.index.insert(id, self.slots.len());
            self.slots.push(CacheSlot { id, page, referenced: true });
            return;
        }
        // Clock sweep: clear reference bits until an unreferenced victim
        // comes around (terminates within two laps).
        loop {
            let slot = &mut self.slots[self.hand];
            if slot.referenced {
                slot.referenced = false;
                self.hand = (self.hand + 1) % self.cap;
            } else {
                self.index.remove(&slot.id);
                self.index.insert(id, self.hand);
                *slot = CacheSlot { id, page, referenced: true };
                self.hand = (self.hand + 1) % self.cap;
                return;
            }
        }
    }

    /// Raises the capacity to at least `cap` (never shrinks; resident
    /// entries and the clock state are preserved). Restores size the
    /// cache to one full image this way, so steady-state delta forks
    /// decode each distinct page once — the resident bound becomes the
    /// working set, still independent of snapshot count.
    pub fn grow_to(&mut self, cap: usize) {
        self.cap = self.cap.max(cap);
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (pages decoded from the map) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Approximate resident payload bytes held by the cache.
    pub fn resident_bytes(&self) -> u64 {
        self.slots.iter().map(|s| 4 * s.page.words.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_machine::machine::MachineConfig;

    fn idle_pair() -> (Machine, Argus) {
        (Machine::new(MachineConfig::default()), Argus::new(ArgusConfig::default()))
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "argstore-test-{}-{}-{tag}.bin",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn roundtrip_on_fresh_machine() {
        let (m, a) = idle_pair();
        let path = temp_path("roundtrip");
        let mut w = MappedStoreWriter::create(&path, 100).unwrap();
        w.capture_now(&m, &a).unwrap();
        let store = w.finish().unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.cycle(0), Some(0));
        let mut cache = PageCache::default();
        let (m2, a2) = store.try_restore_fresh(0, &mut cache).unwrap();
        assert_eq!(combined_fingerprint(&m2, &a2), store.fingerprint(0).unwrap());
        assert_eq!(m2.mem().memory().words(), m.mem().memory().words());
        assert_eq!(m2.mem().memory().tags(), m.mem().memory().tags());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn identical_pages_share_storage() {
        let path = temp_path("dedup");
        let mut w = MappedStoreWriter::create(&path, 100).unwrap();
        let words = vec![7u32; PAGE_WORDS];
        let tags = vec![true; PAGE_WORDS];
        let a = w.intern(&words, &tags).unwrap();
        let b = w.intern(&words, &tags).unwrap();
        assert_eq!(a, b, "identical page must intern to the same id");
        assert_eq!(w.pages.len(), 1);
        assert_eq!(w.saved_bytes, 4 * PAGE_WORDS as u64);

        let mut other_words = words.clone();
        other_words[3] ^= 1;
        let c = w.intern(&other_words, &tags).unwrap();
        assert_ne!(a, c, "differing payload must store a new page");

        let mut other_tags = tags.clone();
        other_tags[5] = false;
        let d = w.intern(&words, &other_tags).unwrap();
        assert_ne!(a, d, "differing tags must store a new page");
        assert_eq!(w.pages.len(), 3);
        drop(w);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repeated_captures_dedup_across_snapshots() {
        // Two captures of machines whose memories share most pages: the
        // second capture's unchanged pages must be satisfied by dedup.
        let (m, a) = idle_pair();
        let path = temp_path("xsnap");
        let mut w = MappedStoreWriter::create(&path, 100).unwrap();
        w.capture_now(&m, &a).unwrap();
        let before = w.pages.len();
        let mut m2 = Machine::new(argus_machine::machine::MachineConfig::default());
        // Touch one word, advance the cycle stamp via a restore-free path:
        // capture_now only needs a larger cycle, which restore_core gives.
        let mut core = m.capture_core();
        core.cycle += 1;
        m2.restore_core(&core);
        m2.mem_mut().memory_mut().restore_words(0, &[0xDEAD_BEEF], &[true]);
        w.capture_now(&m2, &a).unwrap();
        assert_eq!(w.pages.len(), before + 1, "only the touched page is new");
        let store = w.finish().unwrap();
        let stats = store.stats();
        assert_eq!(stats.pages_total, 2 * before as u64);
        assert_eq!(stats.pages_distinct, before as u64 + 1);
        assert!(stats.bytes_saved > 0);
        assert_eq!(stats.dedup_hits, stats.pages_total - stats.pages_distinct);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn workspace_restore_matches_fresh() {
        let (m, a) = idle_pair();
        let path = temp_path("ws");
        let mut w = MappedStoreWriter::create(&path, 100).unwrap();
        w.capture_now(&m, &a).unwrap();
        let store = w.finish().unwrap();
        let mut cache = PageCache::default();
        let mut ws = Workspace::new();
        assert!(!store.try_restore_into(0, &mut ws, &mut cache).unwrap());
        let (wm, wa) = ws.pair().unwrap();
        assert_eq!(combined_fingerprint(wm, wa), store.fingerprint(0).unwrap());
        // Second restore takes the delta path: everything clean + matching.
        store.restore_into(0, &mut ws, &mut cache).unwrap();
        assert!(ws.stats().pages_skipped > 0, "delta path should skip clean pages");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_and_corrupt_files_rejected() {
        let (m, a) = idle_pair();
        let path = temp_path("adversarial");
        let mut w = MappedStoreWriter::create(&path, 100).unwrap();
        w.capture_now(&m, &a).unwrap();
        let store = w.finish().unwrap();
        drop(store);
        let bytes = std::fs::read(&path).unwrap();

        let garbage = temp_path("garbage");
        std::fs::write(&garbage, b"NOTASTORE").unwrap();
        assert!(MappedStore::open(&garbage).is_err());
        std::fs::remove_file(&garbage).ok();

        for cut in [bytes.len() / 2, bytes.len() - 1, HEADER_LEN + 3] {
            let t = temp_path("trunc");
            std::fs::write(&t, &bytes[..cut]).unwrap();
            assert!(MappedStore::open(&t).is_err(), "truncated at {cut} must be rejected");
            std::fs::remove_file(&t).ok();
        }

        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        let t = temp_path("flip");
        std::fs::write(&t, &flipped).unwrap();
        assert!(MappedStore::open(&t).is_err(), "bit flip must fail the whole-file CRC");
        std::fs::remove_file(&t).ok();
        std::fs::remove_file(&path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn mutation_after_mapping_fails_page_crc() {
        let (m, a) = idle_pair();
        let path = temp_path("postmap");
        let mut w = MappedStoreWriter::create(&path, 100).unwrap();
        w.capture_now(&m, &a).unwrap();
        let store = w.finish().unwrap();
        // Corrupt a page body *after* the store validated the whole file.
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(HEADER_LEN as u64 + 17)).unwrap();
            f.write_all(&[0xFF]).unwrap();
            f.sync_all().unwrap();
        }
        let mut cache = PageCache::default();
        let err = store.try_restore_fresh(0, &mut cache).unwrap_err();
        assert!(err.contains("CRC"), "post-map mutation must fail the page CRC: {err}");
        assert_eq!(store.check_page_crc(0), Some(false));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn page_cache_evicts_with_clock() {
        let mut cache = PageCache::new(2);
        let page = |v: u32| Arc::new(Page { words: vec![v; 4], tags: vec![false; 4] });
        cache.insert(0, page(0));
        cache.insert(1, page(1));
        cache.insert(2, page(2)); // evicts one of 0/1
        assert_eq!(cache.slots.len(), 2);
        assert!(cache.get(2).is_some());
        let survivors = [0u32, 1].iter().filter(|&&i| cache.get(i).is_some()).count();
        assert_eq!(survivors, 1);
    }

    #[test]
    fn unlinked_store_stays_readable() {
        let (m, a) = idle_pair();
        let mut w = MappedStoreWriter::create_temp(100).unwrap();
        w.capture_now(&m, &a).unwrap();
        let store = w.finish().unwrap();
        std::fs::remove_file(store.path()).unwrap();
        let mut cache = PageCache::default();
        let (m2, a2) = store.try_restore_fresh(0, &mut cache).unwrap();
        assert_eq!(combined_fingerprint(&m2, &a2), store.fingerprint(0).unwrap());
    }
}
