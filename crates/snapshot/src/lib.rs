//! # argus-snapshot — checkpointed golden-run forking
//!
//! Fault campaigns (§5) re-execute the same workload thousands of times,
//! and each injection is bit-identical to the golden run until its fault
//! arms: `FaultInjector` is a pure pass-through before the arm cycle, so
//! everything before it is shared, deterministic work. This crate makes
//! that sharing explicit:
//!
//! * [`store::Snapshot`] — a forkable checkpoint: core state
//!   ([`argus_machine::snapshot::CoreState`]: registers, parity tags,
//!   pipeline latches, cycle/retired counters, both cache arrays), the
//!   checker state ([`argus_core::ArgusState`]), and main memory as
//!   content-addressed [`page::Page`]s, stamped with its cycle and a
//!   combined state fingerprint.
//! * [`page::PageStore`] — the content-addressed page pool; consecutive
//!   snapshots share every page the run didn't touch in between.
//! * [`store::SnapshotBuilder`] — the interval policy the golden run
//!   drives (`--snapshot-every N`).
//! * [`store::SnapshotStore`] — the finished, read-only store campaign
//!   shards share behind an `Arc`; `nearest_at_or_before(arm_cycle)`
//!   seeks the fork point for an injection.
//! * [`workspace::Workspace`] — a reusable per-worker fork target;
//!   [`store::Snapshot::restore_into`] rewrites only pages dirtied since
//!   the workspace's last restore plus pages differing from the target
//!   snapshot, keeping forks O(touched state) instead of O(machine
//!   state).
//! * [`io`] — standalone snapshot files for `argus snapshot save /
//!   restore / info`.
//!
//! The load-bearing guarantee — forking from a snapshot is
//! **bit-identical** to cold-booting and re-executing — rests on two
//! facts the property tests in `tests/snapshot_props.rs` pin down:
//! snapshots are taken at step boundaries only, and every piece of state
//! that influences future behaviour (architectural, microarchitectural,
//! checker) round-trips through capture/restore.

pub mod io;
pub mod mapped;
pub mod page;
pub mod store;
pub mod workspace;

pub use mapped::{MappedStore, MappedStoreWriter, PageCache, DEFAULT_PAGE_CACHE_ENTRIES};
pub use page::{Page, PageStore, PAGE_WORDS};
pub use store::{combined_fingerprint, Snapshot, SnapshotBuilder, SnapshotStore, StoreStats};
pub use workspace::{Workspace, WorkspaceStats};
