//! Content-addressed memory pages.
//!
//! Main memory dominates snapshot size (the paper's simulated machine
//! carries megabytes of RAM against a few hundred bytes of core state),
//! yet a workload's golden run touches only a sliver of it between two
//! checkpoints. Storing memory as fixed-size pages interned in a
//! content-addressed pool lets consecutive snapshots share every page
//! that didn't change: a snapshot holds `Arc`s into the pool, and only
//! pages whose contents differ from anything seen before cost new
//! storage.
//!
//! Interning is collision-safe: the content hash only selects a bucket,
//! and a full word-by-word comparison decides equality, so two distinct
//! pages that happen to hash alike are both kept.

use argus_machine::snapshot::Fnv64;
use std::collections::HashMap;
use std::sync::Arc;

/// Words per page (4 KiB of payload).
pub const PAGE_WORDS: usize = 1024;

/// One page of main memory: payload words plus the parallel parity tags.
///
/// The final page of a memory image may be short when the memory size is
/// not a multiple of [`PAGE_WORDS`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    /// Payload words.
    pub words: Vec<u32>,
    /// Per-word parity tags (parallel to `words`).
    pub tags: Vec<bool>,
}

impl Page {
    /// Content hash over payload and tags (bucket selection, not identity).
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.mix(self.words.len() as u64);
        for &w in &self.words {
            h.mix(w as u64);
        }
        for &t in &self.tags {
            h.mix(t as u64);
        }
        h.finish()
    }
}

/// A content-addressed pool of [`Page`]s.
///
/// All snapshots of a campaign intern their pages here, so pages shared
/// between snapshots (or repeated within one image — e.g. zero-filled
/// regions) are stored once.
#[derive(Debug, Default)]
pub struct PageStore {
    buckets: HashMap<u64, Vec<Arc<Page>>>,
    interned: u64,
    hits: u64,
    saved: u64,
}

impl PageStore {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `page`, returning the pooled copy. Full content comparison
    /// on a hash hit keeps colliding pages distinct.
    pub fn intern(&mut self, page: Page) -> Arc<Page> {
        let bucket = self.buckets.entry(page.content_hash()).or_default();
        if let Some(existing) = bucket.iter().find(|p| ***p == page) {
            self.hits += 1;
            self.saved += 4 * page.words.len() as u64;
            return Arc::clone(existing);
        }
        self.interned += 1;
        let arc = Arc::new(page);
        bucket.push(Arc::clone(&arc));
        arc
    }

    /// Splits a full memory image into interned pages.
    pub fn intern_image(&mut self, words: &[u32], tags: &[bool]) -> Vec<Arc<Page>> {
        assert_eq!(words.len(), tags.len(), "payload/tag images must be parallel");
        words
            .chunks(PAGE_WORDS)
            .zip(tags.chunks(PAGE_WORDS))
            .map(|(w, t)| self.intern(Page { words: w.to_vec(), tags: t.to_vec() }))
            .collect()
    }

    /// Distinct pages stored.
    pub fn unique_pages(&self) -> u64 {
        self.interned
    }

    /// Intern requests satisfied by an already-stored page.
    pub fn dedup_hits(&self) -> u64 {
        self.hits
    }

    /// Payload bytes deduplication avoided storing (bytes of every page
    /// reference satisfied by an already-stored page).
    pub fn saved_bytes(&self) -> u64 {
        self.saved
    }

    /// Bytes held by distinct pages (payload words only).
    pub fn unique_bytes(&self) -> u64 {
        self.buckets.values().flat_map(|b| b.iter()).map(|p| 4 * p.words.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: u32, len: usize) -> Page {
        Page { words: vec![fill; len], tags: vec![true; len] }
    }

    #[test]
    fn identical_pages_share_storage() {
        let mut store = PageStore::new();
        let a = store.intern(page(7, PAGE_WORDS));
        let b = store.intern(page(7, PAGE_WORDS));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.unique_pages(), 1);
        assert_eq!(store.dedup_hits(), 1);
    }

    #[test]
    fn differing_tags_differ() {
        let mut store = PageStore::new();
        let a = store.intern(page(7, 8));
        let mut q = page(7, 8);
        q.tags[3] = false;
        let b = store.intern(q);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(store.unique_pages(), 2);
    }

    #[test]
    fn image_roundtrips_through_pages() {
        let mut store = PageStore::new();
        // 2.5 pages, so the tail page is short.
        let n = PAGE_WORDS * 5 / 2;
        let words: Vec<u32> = (0..n as u32).collect();
        let tags: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let pages = store.intern_image(&words, &tags);
        assert_eq!(pages.len(), 3);
        let rewords: Vec<u32> = pages.iter().flat_map(|p| p.words.iter().copied()).collect();
        let retags: Vec<bool> = pages.iter().flat_map(|p| p.tags.iter().copied()).collect();
        assert_eq!(rewords, words);
        assert_eq!(retags, tags);
    }

    #[test]
    fn zero_pages_of_a_blank_image_collapse() {
        let mut store = PageStore::new();
        let words = vec![0u32; PAGE_WORDS * 8];
        let tags = vec![true; PAGE_WORDS * 8];
        let pages = store.intern_image(&words, &tags);
        assert_eq!(pages.len(), 8);
        assert_eq!(store.unique_pages(), 1, "eight identical pages stored once");
        assert!(pages.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
    }
}
