//! Reusable per-worker fork target: one `Machine` + `Argus` pair that
//! successive snapshot restores rewrite in place.
//!
//! A cold fork ([`crate::Snapshot::restore_fresh`]) allocates a machine,
//! zero-fills memory, and copies every page. A workspace restore keeps the
//! allocation (and the warm predecode memo) and rewrites only
//!
//! 1. pages the previous injection run dirtied (tracked by
//!    `argus_mem::MainMemory`'s generation stamps), plus
//! 2. pages where the target snapshot differs from the snapshot the
//!    workspace currently mirrors (pages are content-interned in one
//!    `PageStore` per golden run, so `Arc::ptr_eq` on the page slots is a
//!    sound equality test; a false negative merely rewrites an equal page).
//!
//! Identity stays defined by `Machine::state_digest` /
//! [`crate::combined_fingerprint`]: the verifying entry point
//! ([`crate::Snapshot::try_restore_into`]) checks the capture fingerprint
//! after the delta rewrite and falls back to a full in-place restore on
//! mismatch, and the trusted entry point ([`crate::Snapshot::restore_into`])
//! re-checks the full fingerprint under `debug_assertions`, so every test
//! build verifies every delta restore.

use crate::page::Page;
use argus_core::Argus;
use argus_machine::Machine;
use std::sync::Arc;

// A dirty-tracking page in main memory must be exactly one snapshot page,
// or the page-index identification below is wrong.
const _: () = assert!(crate::page::PAGE_WORDS == argus_mem::DIRTY_PAGE_WORDS);

/// Cumulative restore statistics (observability for the fork-overhead
/// bench and the equivalence tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Restores served by this workspace (any path).
    pub restores: u64,
    /// Restores that could not use the delta path (first use, config
    /// change, explicit invalidation, or verification fallback).
    pub full_restores: u64,
    /// Pages rewritten by delta restores.
    pub pages_rewritten: u64,
    /// Pages skipped by delta restores (clean and already matching).
    pub pages_skipped: u64,
}

/// A reusable fork target. Create once per worker with [`Workspace::new`],
/// then restore snapshots into it via [`crate::Snapshot::restore_into`] /
/// [`crate::Snapshot::try_restore_into`].
#[derive(Debug, Default)]
pub struct Workspace {
    pub(crate) pair: Option<(Machine, Argus)>,
    /// Page slots of the snapshot this workspace's memory mirrored after
    /// the last restore (empty = unknown → next restore is full).
    pub(crate) mirrored: Vec<Arc<Page>>,
    /// Mapped-store twin of `mirrored`: page ids (within the store
    /// identified by `mirrored_store`) the memory mirrored after the last
    /// mapped restore. A store dedups its pages, so equal ids mean equal
    /// contents — but only within one store, hence the uid check.
    pub(crate) mirrored_ids: Vec<u32>,
    /// Process-unique uid of the mapped store `mirrored_ids` refers to
    /// (0 = none). Restores from a different store must not trust the ids.
    pub(crate) mirrored_store: u64,
    /// Memory write generation stamped right after the last restore:
    /// pages dirty since this generation have diverged from `mirrored`.
    pub(crate) clean_gen: u64,
    pub(crate) stats: WorkspaceStats,
}

impl Workspace {
    /// An empty workspace; the first restore into it is a full (cold)
    /// restore that builds the machine + checker pair.
    pub fn new() -> Self {
        Self::default()
    }

    /// The resident pair, if any restore has populated the workspace.
    pub fn pair_mut(&mut self) -> Option<(&mut Machine, &mut Argus)> {
        self.pair.as_mut().map(|(m, a)| (&mut *m, &mut *a))
    }

    /// Read-only view of the resident pair.
    pub fn pair(&self) -> Option<(&Machine, &Argus)> {
        self.pair.as_ref().map(|(m, a)| (m, a))
    }

    /// Forgets what the workspace mirrors: the next restore rewrites every
    /// page. Call after mutating machine memory through any path that
    /// bypasses `MainMemory`'s write API (none exist in-tree; the hook is
    /// for tests and future instrumentation).
    pub fn invalidate(&mut self) {
        self.mirrored.clear();
        self.mirrored_ids.clear();
        self.mirrored_store = 0;
    }

    /// Memory write generation stamped right after the last restore:
    /// pages not dirty since this generation still hold the restored
    /// snapshot's content (the campaign engine bounds its end-of-run
    /// memory scrub with this).
    pub fn clean_generation(&self) -> u64 {
        self.clean_gen
    }

    /// Cumulative restore statistics.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }
}
